"""Asynchronous simulation tests (paper footnote 2)."""

import numpy as np
import pytest

from repro.net.asynchrony import run_with_asynchrony
from repro.net.message import Message
from repro.net.network import CapacityPolicy, ProtocolNode


class CounterNode(ProtocolNode):
    """Passes a counter around a ring for a fixed number of laps."""

    def __init__(self, node_id, n, laps):
        super().__init__(node_id)
        self.n = n
        self.remaining = laps * n if node_id == 0 else None
        self.seen = 0
        self.done = node_id != 0

    def on_round(self, round_no, inbox):
        out = []
        if round_no == 0 and self.node_id == 0:
            out.append(Message(0, 1 % self.n, "tok", self.remaining - 1))
            return out
        for msg in inbox:
            self.seen += 1
            if msg.payload > 0:
                out.append(
                    Message(self.node_id, (self.node_id + 1) % self.n, "tok", msg.payload - 1)
                )
            self.done = True
        return out

    def is_idle(self):
        return True  # quiescence = no messages in flight


def make_ring(n, laps):
    return {v: CounterNode(v, n, laps) for v in range(n)}


class TestSynchronizer:
    def test_results_match_synchronous_run(self):
        from repro.net.network import SyncNetwork

        sync_nodes = make_ring(6, laps=2)
        net = SyncNetwork(sync_nodes, CapacityPolicy.unbounded(), np.random.default_rng(0))
        net.run(max_rounds=50)

        async_nodes = make_ring(6, laps=2)
        report, _net = run_with_asynchrony(
            async_nodes,
            CapacityPolicy.unbounded(),
            np.random.default_rng(0),
            max_delay=5,
            max_rounds=50,
        )
        for v in range(6):
            assert async_nodes[v].seen == sync_nodes[v].seen

    def test_elapsed_time_is_rounds_times_delay(self):
        report, _ = run_with_asynchrony(
            make_ring(4, laps=1),
            CapacityPolicy.unbounded(),
            np.random.default_rng(1),
            max_delay=7,
            max_rounds=30,
        )
        assert report.elapsed_time_units == report.logical_rounds * 7
        assert report.dilation == 7.0

    def test_observed_delay_bounded(self):
        report, _ = run_with_asynchrony(
            make_ring(5, laps=2),
            CapacityPolicy.unbounded(),
            np.random.default_rng(2),
            max_delay=4,
            max_rounds=40,
        )
        assert 1 <= report.observed_max_delay <= 4

    def test_invalid_delay(self):
        with pytest.raises(ValueError):
            run_with_asynchrony(
                make_ring(3, laps=1),
                CapacityPolicy.unbounded(),
                np.random.default_rng(3),
                max_delay=0,
                max_rounds=5,
            )

    def test_dilation_of_empty_run(self):
        from repro.net.asynchrony import AsyncReport

        report = AsyncReport(
            logical_rounds=0, max_delay=3, elapsed_time_units=0, observed_max_delay=0
        )
        assert report.dilation == 0.0


class SprayNode(ProtocolNode):
    """Over-budget sender: which subset survives depends on the network's
    truncation RNG, so any perturbation of the delivery stream shows up in
    the received logs."""

    def __init__(self, node_id, n, rounds):
        super().__init__(node_id)
        self.n = n
        self.rounds = rounds
        self.received = []

    def on_round(self, round_no, inbox):
        self.received.append(sorted((m.sender, m.payload) for m in inbox))
        if round_no >= self.rounds:
            return []
        return [
            Message(self.node_id, (self.node_id + k) % self.n, "x", round_no * 100 + k)
            for k in range(1, 7)
        ]

    def is_idle(self):
        return True


def make_spray(n=8, rounds=4):
    return {v: SprayNode(v, n, rounds) for v in range(n)}


class TestSplitRngEquivalence:
    """Regression for the RNG bleed: delay sampling used to draw from the
    delivery generator, so a capacity-truncated protocol diverged from its
    synchronous execution under the same seed."""

    TIGHT = CapacityPolicy(max_send=3, max_receive=3)

    def test_seed_matched_executions_identical(self):
        from repro.net.network import SyncNetwork

        sync_nodes = make_spray()
        SyncNetwork(sync_nodes, self.TIGHT, np.random.default_rng(11)).run(max_rounds=10)

        async_nodes = make_spray()
        report, _ = run_with_asynchrony(
            async_nodes, self.TIGHT, np.random.default_rng(11), max_delay=4, max_rounds=10
        )
        assert report.converged
        for v in sync_nodes:
            assert async_nodes[v].received == sync_nodes[v].received

    def test_truncation_actually_draws_randomness(self):
        # The workload must exercise the delivery RNG for the regression
        # test above to mean anything.
        from repro.net.network import SyncNetwork

        nodes = make_spray()
        net = SyncNetwork(nodes, self.TIGHT, np.random.default_rng(11))
        net.run(max_rounds=10)
        assert net.metrics.total_drops > 0


class Babbler(ProtocolNode):
    """Never quiesces: one message per round, forever."""

    def __init__(self, node_id, n):
        super().__init__(node_id)
        self.n = n

    def on_round(self, round_no, inbox):
        return [Message(self.node_id, (self.node_id + 1) % self.n, "b", round_no)]

    def is_idle(self):
        return True  # quiescence still blocked by in-flight messages


class TestNonConvergence:
    def test_truncated_run_raises_by_default(self):
        nodes = {v: Babbler(v, 3) for v in range(3)}
        with pytest.raises(RuntimeError, match="did not quiesce"):
            run_with_asynchrony(
                nodes, CapacityPolicy.unbounded(), np.random.default_rng(0),
                max_delay=2, max_rounds=5,
            )

    def test_truncated_run_flagged_when_opted_out(self):
        nodes = {v: Babbler(v, 3) for v in range(3)}
        report, _ = run_with_asynchrony(
            nodes, CapacityPolicy.unbounded(), np.random.default_rng(0),
            max_delay=2, max_rounds=5, require_quiescence=False,
        )
        assert not report.converged
        assert report.logical_rounds == 5

    def test_converged_run_is_flagged_converged(self):
        report, _ = run_with_asynchrony(
            make_ring(4, laps=1), CapacityPolicy.unbounded(),
            np.random.default_rng(1), max_delay=3, max_rounds=30,
        )
        assert report.converged


class TestEngineSelection:
    @pytest.mark.parametrize("engine", ["legacy", "vectorized"])
    def test_engines_agree_under_asynchrony(self, engine):
        baseline_nodes = make_spray()
        run_with_asynchrony(
            baseline_nodes, TestSplitRngEquivalence.TIGHT,
            np.random.default_rng(3), max_delay=3, max_rounds=10,
        )
        nodes = make_spray()
        run_with_asynchrony(
            nodes, TestSplitRngEquivalence.TIGHT,
            np.random.default_rng(3), max_delay=3, max_rounds=10, engine=engine,
        )
        for v in nodes:
            assert nodes[v].received == baseline_nodes[v].received


class TestDropWorkloadsAcrossTiers:
    """``require_quiescence=False`` under adversarial drop workloads on
    all three node tiers (object vs. batch vs. SoA): seed-matched
    ``report.converged`` and round ledgers must coincide exactly."""

    N = 96
    SEEDS = range(6)

    @staticmethod
    def _run(tier, seed, drop_p):
        import math

        from repro.core.protocol_tree import build_rooting_population
        from repro.graphs.portgraph import PortGraph
        from repro.net.network import CapacityPolicy
        from repro.scenarios import MessageDrop, ScenarioSpec

        n = TestDropWorkloadsAcrossTiers.N
        graph = PortGraph.ring_with_chords(n, delta=16, chords=2, seed=7)
        fr = max(1, math.ceil(math.log2(n))) + 4
        spec = ScenarioSpec(
            name="drop", drop=MessageDrop(drop_p), fault_seed=seed
        )
        population = build_rooting_population(graph, fr, tier)
        report, network = run_with_asynchrony(
            population,
            CapacityPolicy.ncc0(n, graph.delta),
            np.random.default_rng(seed),
            max_delay=3,
            max_rounds=3 * fr,
            require_quiescence=False,
            fault_hook=spec.compile(n),
        )
        if tier == "soa":
            parent = population.parent.copy()
        else:
            parent = np.fromiter(
                (population[v].parent for v in range(n)), dtype=np.int64, count=n
            )
        return report, network.metrics.as_dict(), parent

    @pytest.mark.parametrize("seed", SEEDS)
    def test_three_tiers_seed_matched(self, seed):
        drop_p = 0.4
        rep_obj, metrics_obj, parent_obj = self._run("object", seed, drop_p)
        for tier in ("batch", "soa"):
            rep, metrics, parent = self._run(tier, seed, drop_p)
            assert rep.converged == rep_obj.converged, tier
            assert rep.logical_rounds == rep_obj.logical_rounds, tier
            assert rep.elapsed_time_units == rep_obj.elapsed_time_units, tier
            assert rep.observed_max_delay == rep_obj.observed_max_delay, tier
            assert metrics == metrics_obj, tier
            assert np.array_equal(parent, parent_obj), tier

    def test_heavy_drops_actually_starve_some_seed(self):
        # The matrix above must include real non-convergence to mean
        # anything: under 40% link loss at least one seed's BFS offers
        # are destroyed and the run is flagged (never raised).
        outcomes = [self._run("soa", seed, 0.4)[0].converged for seed in self.SEEDS]
        assert not all(outcomes)
        assert any(outcomes)

    def test_faulted_runs_report_fault_drops(self):
        _, metrics, _ = self._run("batch", 0, 0.4)
        assert metrics["fault_drops"] > 0
