"""Regression tests pinning the §1.1 drop semantics.

Three properties of the NCC0 capacity model that both delivery engines
must preserve under any future optimisation:

1. **Uniformity** — when a node is over budget, the surviving subset is
   uniformly random (chi-square over many seeds, send and receive side);
2. **Self-loop exemption** — self-addressed messages bypass the network:
   they consume no send/receive capacity and appear in no metric;
3. **Exactness of ``None``** — disabling a bound disables it *exactly*:
   no truncation, no drops, and not a single bite of network randomness
   consumed (the generator state is untouched).
"""

import copy

import numpy as np
import pytest
from scipy import stats

from repro.net.message import Message
from repro.net.network import CapacityPolicy, ProtocolNode, SyncNetwork

ENGINES = ["legacy", "vectorized"]


class BurstNode(ProtocolNode):
    """Sends a configured burst in round 0 and records its inbox."""

    def __init__(self, node_id, sends=()):
        super().__init__(node_id)
        self.sends = list(sends)
        self.received: list[Message] = []

    def on_round(self, round_no, inbox):
        self.received.extend(inbox)
        if round_no == 0:
            return [Message(self.node_id, r, k, p) for r, k, p in self.sends]
        return []

    def is_idle(self):
        return True


def surviving_payloads(engine, seed, num_messages, max_send):
    """One over-capacity send burst; returns the payloads that survived."""
    sender = BurstNode(0, [(1, "m", p) for p in range(num_messages)])
    sink = BurstNode(1)
    net = SyncNetwork(
        {0: sender, 1: sink},
        CapacityPolicy(max_send=max_send, max_receive=None),
        np.random.default_rng(seed),
        engine=engine,
    )
    net.run(max_rounds=2)
    return [m.payload for m in sink.received]


class TestDroppedSubsetsAreUniform:
    NUM_MESSAGES = 10
    CAP = 3
    TRIALS = 400

    @pytest.mark.parametrize("engine", ENGINES)
    def test_send_side_chi_square(self, engine):
        counts = np.zeros(self.NUM_MESSAGES, dtype=np.int64)
        for seed in range(self.TRIALS):
            kept = surviving_payloads(engine, seed, self.NUM_MESSAGES, self.CAP)
            assert len(kept) == self.CAP
            counts[kept] += 1
        # Each payload survives with probability cap/num; chi-square over
        # the payload bins must not reject uniformity.
        result = stats.chisquare(counts)
        assert result.pvalue > 1e-3, f"non-uniform survivals: {counts.tolist()}"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_receive_side_chi_square(self, engine):
        num_senders, cap, trials = 8, 3, 400
        counts = np.zeros(num_senders, dtype=np.int64)
        for seed in range(trials):
            sink = BurstNode(0)
            nodes = {0: sink}
            for s in range(1, num_senders + 1):
                nodes[s] = BurstNode(s, [(0, "m", s)])
            net = SyncNetwork(
                nodes,
                CapacityPolicy(max_send=None, max_receive=cap),
                np.random.default_rng(seed),
                engine=engine,
            )
            net.run(max_rounds=2)
            assert len(sink.received) == cap
            for m in sink.received:
                counts[m.sender - 1] += 1
        result = stats.chisquare(counts)
        assert result.pvalue > 1e-3, f"non-uniform survivals: {counts.tolist()}"

    def test_both_engines_drop_identical_subsets(self):
        for seed in range(25):
            kept_l = surviving_payloads("legacy", seed, 10, 3)
            kept_v = surviving_payloads("vectorized", seed, 10, 3)
            assert kept_l == kept_v


class TestSelfLoopExemption:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_self_messages_never_consume_capacity(self, engine):
        # cap remote messages exactly at the budget, plus a pile of
        # self-sends: nothing may be dropped on either side.
        cap = 3
        sends = [(0, "self", p) for p in range(7)] + [(1, "remote", p) for p in range(cap)]
        node = BurstNode(0, sends)
        sink = BurstNode(1)
        net = SyncNetwork(
            {0: node, 1: sink},
            CapacityPolicy(max_send=cap, max_receive=cap),
            np.random.default_rng(0),
            engine=engine,
        )
        metrics = net.run(max_rounds=3)
        assert len(node.received) == 7  # every self-send delivered
        assert len(sink.received) == cap
        assert metrics.total_drops == 0
        # Self-sends are local computation, not communication (§1.1).
        assert metrics.total_messages == cap
        assert metrics.max_sent_per_round == cap
        assert dict(metrics.sent_per_node) == {0: cap}
        assert dict(metrics.received_per_node) == {1: cap}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_pure_self_traffic_is_invisible_to_the_network(self, engine):
        node = BurstNode(0, [(0, "self", p) for p in range(20)])
        net = SyncNetwork(
            {0: node},
            CapacityPolicy(max_send=1, max_receive=1),
            np.random.default_rng(0),
            engine=engine,
        )
        metrics = net.run(max_rounds=3)
        assert len(node.received) == 20
        assert metrics.total_messages == 0
        assert metrics.total_drops == 0
        assert metrics.max_sent_per_round == 0
        assert metrics.max_received_per_round == 0


class TestNoneDisablesTruncationExactly:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_huge_fanin_with_unbounded_capacity(self, engine):
        num_senders, per_sender = 30, 9
        sink = BurstNode(0)
        nodes = {0: sink}
        for s in range(1, num_senders + 1):
            nodes[s] = BurstNode(s, [(0, "m", p) for p in range(per_sender)])
        net = SyncNetwork(
            nodes, CapacityPolicy.unbounded(), np.random.default_rng(7), engine=engine
        )
        metrics = net.run(max_rounds=2)
        assert len(sink.received) == num_senders * per_sender
        assert metrics.total_drops == 0
        assert metrics.total_messages == num_senders * per_sender

    @pytest.mark.parametrize("engine", ENGINES)
    def test_unbounded_run_consumes_no_network_randomness(self, engine):
        sink = BurstNode(1)
        nodes = {0: BurstNode(0, [(1, "m", p) for p in range(50)]), 1: sink}
        rng = np.random.default_rng(123)
        state_before = copy.deepcopy(rng.bit_generator.state)
        net = SyncNetwork(nodes, CapacityPolicy.unbounded(), rng, engine=engine)
        net.run(max_rounds=2)
        assert rng.bit_generator.state == state_before

    @pytest.mark.parametrize("engine", ENGINES)
    def test_at_cap_traffic_consumes_no_network_randomness(self, engine):
        # The shared RNG discipline draws only when a bound actually binds:
        # sending *exactly* the budget must leave the generator untouched.
        cap = 5
        sink = BurstNode(1)
        nodes = {0: BurstNode(0, [(1, "m", p) for p in range(cap)]), 1: sink}
        rng = np.random.default_rng(321)
        state_before = copy.deepcopy(rng.bit_generator.state)
        net = SyncNetwork(
            nodes, CapacityPolicy(max_send=cap, max_receive=cap), rng, engine=engine
        )
        metrics = net.run(max_rounds=2)
        assert rng.bit_generator.state == state_before
        assert metrics.total_drops == 0
        assert len(sink.received) == cap
