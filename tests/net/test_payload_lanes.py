"""Second payload lane: pair payloads through batches and both engines.

``MessageBatch.payloads2`` lets a packet carry an ``(int64, int64)`` pair
(e.g. the rooting phase's ``(depth, offerer)`` BFS offers).  These tests
pin the conversion rules — pair ⇄ two lanes, zero-fill in mixed inboxes —
and the engine contract: legacy and vectorized delivery agree exactly for
every sender/receiver representation pairing.
"""

import numpy as np
import pytest

from repro.net.batch import KINDS, MessageBatch, pair_payload
from repro.net.message import Message
from repro.net.network import (
    BatchProtocolNode,
    CapacityPolicy,
    ProtocolNode,
    SyncNetwork,
)

PAIR = KINDS.code("pair")
PLAIN = KINDS.code("plain")


class TestPairPayloadPredicate:
    def test_accepts_int_pairs(self):
        assert pair_payload((3, 4)) == (3, 4)
        assert pair_payload((np.int64(3), 4)) == (3, 4)

    def test_rejects_everything_else(self):
        assert pair_payload(3) is None
        assert pair_payload((1, 2, 3)) is None
        assert pair_payload(("a", 1)) is None
        assert pair_payload([1, 2]) is None  # convention: tuples only
        assert pair_payload(None) is None


class TestBatchConversions:
    def test_roundtrip_pure_pairs(self):
        msgs = [Message(0, 1, "pair", (7, 8)), Message(0, 2, "pair", (9, 10))]
        batch = MessageBatch.from_messages(msgs)
        assert batch.payloads.tolist() == [7, 9]
        assert batch.payloads2.tolist() == [8, 10]
        assert batch.to_messages() == msgs

    def test_mixed_inbox_zero_fills_lane_two(self):
        msgs = [Message(0, 1, "plain", 5), Message(0, 1, "pair", (6, 7))]
        batch = MessageBatch.from_messages(msgs)
        assert batch.payloads.tolist() == [5, 6]
        assert batch.payloads2.tolist() == [0, 7]

    def test_non_pair_payload_rejected(self):
        with pytest.raises(TypeError, match="integer or integer-pair"):
            MessageBatch.from_messages([Message(0, 1, "x", "oops")])
        with pytest.raises(TypeError, match="integer or integer-pair"):
            MessageBatch.from_messages([Message(0, 1, "x", (1, 2, 3))])

    def test_concat_zero_fills_laneless_batches(self):
        with_lane = MessageBatch(0, [1, 2], "pair", [3, 4], [5, 6])
        without = MessageBatch(1, [3], "plain", [7])
        merged = MessageBatch.concat([with_lane, without])
        assert merged.payloads2.tolist() == [5, 6, 0]
        merged_plain = MessageBatch.concat([without, without])
        assert merged_plain.payloads2 is None

    def test_of_kind_filters_all_columns(self):
        batch = MessageBatch(
            [0, 1, 0],
            [5, 6, 7],
            [PAIR, PLAIN, PAIR],
            [1, 2, 3],
            [10, 20, 30],
        )
        sub = batch.of_kind(PAIR)
        assert sub.receivers.tolist() == [5, 7]
        assert sub.payloads.tolist() == [1, 3]
        assert sub.payloads2.tolist() == [10, 30]
        assert sub.senders_array().tolist() == [0, 0]
        assert batch.payloads_of_kind(PLAIN).tolist() == [2]

    def test_of_kind_scalar_fast_paths(self):
        batch = MessageBatch(0, [1, 2], PAIR, [3, 4], [5, 6])
        assert batch.of_kind(PAIR) is batch
        assert len(batch.of_kind(PLAIN)) == 0
        assert batch.payloads_of_kind(PLAIN).shape == (0,)


class PairSprayer(BatchProtocolNode):
    """Batch node broadcasting (round, id) pairs to every other node."""

    def __init__(self, node_id, n, rounds):
        super().__init__(node_id)
        self.n = n
        self.rounds = rounds
        self.log = []

    def on_round_batch(self, round_no, inbox):
        senders = inbox.senders_array()
        p2 = (
            inbox.payloads2
            if inbox.payloads2 is not None
            else np.zeros(len(inbox), dtype=np.int64)
        )
        self.log.append(
            sorted(
                (int(senders[i]), int(inbox.payloads[i]), int(p2[i]))
                for i in range(len(inbox))
            )
        )
        if round_no >= self.rounds:
            return None
        targets = np.array([u for u in range(self.n) if u != self.node_id], dtype=np.int64)
        return MessageBatch._raw(
            self.node_id,
            targets,
            PAIR,
            np.full(targets.shape[0], round_no, dtype=np.int64),
            np.full(targets.shape[0], self.node_id, dtype=np.int64),
        )

    def is_idle(self):
        return False


class ObjectPairSprayer(ProtocolNode):
    """Object node sending the same traffic as tuple payloads, plus one
    plain-int message per round (a mixed lane-presence round)."""

    def __init__(self, node_id, n, rounds):
        super().__init__(node_id)
        self.n = n
        self.rounds = rounds
        self.log = []

    def on_round(self, round_no, inbox):
        entries = []
        for m in inbox:
            if isinstance(m.payload, tuple):
                entries.append((m.sender, m.payload[0], m.payload[1]))
            else:
                entries.append((m.sender, m.payload, 0))
        self.log.append(sorted(entries))
        if round_no >= self.rounds:
            return []
        out = [
            Message(self.node_id, u, "pair", (round_no, self.node_id))
            for u in range(self.n)
            if u != self.node_id
        ]
        out.append(Message(self.node_id, (self.node_id + 1) % self.n, "plain", round_no))
        return out

    def is_idle(self):
        return False


def _run(node_cls, n, engine, capacity, seed, rounds=4):
    nodes = {v: node_cls(v, n, rounds) for v in range(n)}
    net = SyncNetwork(nodes, capacity, np.random.default_rng(seed), engine=engine)
    for _ in range(rounds + 1):
        net.run_round()
    return {v: nodes[v].log for v in nodes}, net.metrics.as_dict()


class TestEnginesAgreeOnPairTraffic:
    @pytest.mark.parametrize("node_cls", [PairSprayer, ObjectPairSprayer])
    @pytest.mark.parametrize(
        "capacity", [CapacityPolicy.unbounded(), CapacityPolicy(max_send=4, max_receive=3)]
    )
    def test_legacy_and_vectorized_identical(self, node_cls, capacity):
        logs_l, metrics_l = _run(node_cls, 6, "legacy", capacity, seed=2)
        logs_v, metrics_v = _run(node_cls, 6, "vectorized", capacity, seed=2)
        assert metrics_l == metrics_v
        assert logs_l == logs_v


class PairEmitter(BatchProtocolNode):
    def __init__(self, node_id, target):
        super().__init__(node_id)
        self.target = target

    def on_round_batch(self, round_no, inbox):
        if round_no:
            return None
        return MessageBatch._raw(
            self.node_id,
            np.array([self.target], dtype=np.int64),
            PAIR,
            np.array([41], dtype=np.int64),
            np.array([42], dtype=np.int64),
        )

    def is_idle(self):
        return False


class Recorder(ProtocolNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.seen = []

    def on_round(self, round_no, inbox):
        self.seen.extend((m.sender, m.kind, m.payload) for m in inbox)
        return []

    def is_idle(self):
        return False


class TestCrossRepresentation:
    @pytest.mark.parametrize("engine", ["legacy", "vectorized"])
    def test_batch_pairs_reach_object_nodes_as_tuples(self, engine):
        nodes = {0: PairEmitter(0, target=1), 1: Recorder(1)}
        net = SyncNetwork(
            nodes, CapacityPolicy.unbounded(), np.random.default_rng(0), engine=engine
        )
        net.run_round()
        net.run_round()
        assert nodes[1].seen == [(0, "pair", (41, 42))]

    @pytest.mark.parametrize("engine", ["legacy", "vectorized"])
    def test_object_tuples_reach_batch_nodes_on_both_lanes(self, engine):
        class TupleSender(ProtocolNode):
            def on_round(self, round_no, inbox):
                if round_no:
                    return []
                return [
                    Message(self.node_id, 1, "pair", (13, 14)),
                    Message(self.node_id, 1, "plain", 15),
                ]

            def is_idle(self):
                return False

        sink = PairSprayer(1, n=2, rounds=0)
        nodes = {0: TupleSender(0), 1: sink}
        net = SyncNetwork(
            nodes, CapacityPolicy.unbounded(), np.random.default_rng(0), engine=engine
        )
        net.run_round()
        net.run_round()
        # Round 1's inbox: the pair on both lanes, the plain int zero-filled.
        assert sink.log[1] == [(0, 13, 14), (0, 15, 0)]

    @pytest.mark.parametrize("engine", ["legacy", "vectorized"])
    def test_bad_payload_to_batch_node_still_raises(self, engine):
        class BadSender(ProtocolNode):
            def on_round(self, round_no, inbox):
                if round_no:
                    return []
                return [Message(self.node_id, 1, "x", (1, 2, 3))]

            def is_idle(self):
                return False

        nodes = {0: BadSender(0), 1: PairSprayer(1, n=2, rounds=0)}
        net = SyncNetwork(
            nodes, CapacityPolicy.unbounded(), np.random.default_rng(0), engine=engine
        )
        # Delivery to a batch node validates payload shape; a 3-tuple is
        # neither an integer nor a pair, so the first round's delivery raises.
        with pytest.raises(TypeError):
            net.run_round()
