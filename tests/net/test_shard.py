"""Sharded receiver sort: the pool is bit-for-bit the in-process sort.

The equality contract of :mod:`repro.net.shard`: concatenating stable
per-shard sorts over disjoint ascending receiver ranges *is* the global
stable receiver sort, so ``ShardPool.sort_round`` must return exactly —
not merely equivalently — what ``group_argsort`` + gathers produce.
Everything downstream (the worker-count differential matrices) leans on
this invariant.
"""

import numpy as np
import pytest

from repro.net.shard import ShardPool, resolve_workers, shard_bounds
from repro.net.vectorops import group_argsort


def reference_sort(rcv, snd, pay, pay2):
    order = group_argsort(rcv, int(rcv.max(initial=0)) + 1 if rcv.size else 1)
    return (
        order,
        rcv[order],
        snd[order],
        pay[order],
        pay2[order] if pay2 is not None else None,
    )


def random_round(rng, n, m, with_pay2=False):
    rcv = rng.integers(0, n, size=m).astype(np.int64)
    snd = np.sort(rng.integers(0, n, size=m)).astype(np.int64)
    pay = rng.integers(-(2**40), 2**40, size=m).astype(np.int64)
    pay2 = rng.integers(0, 2**20, size=m).astype(np.int64) if with_pay2 else None
    return rcv, snd, pay, pay2


class TestResolveWorkers:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers() == 4

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(2) == 2

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(0)


class TestShardBounds:
    def test_partition_is_even_and_complete(self):
        bounds = shard_bounds(10, 3)
        assert bounds.tolist() == [0, 3, 6, 10]

    def test_more_workers_than_nodes_allows_empty_shards(self):
        bounds = shard_bounds(2, 4)
        assert bounds[0] == 0 and bounds[-1] == 2
        widths = np.diff(bounds)
        assert (widths >= 0).all() and widths.sum() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_bounds(4, 0)


class TestSortRoundEquality:
    @pytest.mark.parametrize("workers", [2, 3, 5])
    @pytest.mark.parametrize("seed", range(4))
    def test_bit_for_bit_vs_group_argsort(self, workers, seed):
        rng = np.random.default_rng(seed)
        n = 37
        pool = ShardPool(n, workers, capacity=64)
        try:
            for round_no in range(5):
                m = int(rng.integers(1, 400))
                rcv, snd, pay, pay2 = random_round(
                    rng, n, m, with_pay2=round_no % 2 == 0
                )
                counts = np.bincount(rcv, minlength=n)
                got = pool.sort_round(rcv, snd, pay, pay2, counts)
                order = group_argsort(rcv, n)
                assert np.array_equal(got[0], order)
                assert np.array_equal(got[1], rcv[order])
                assert np.array_equal(got[2], snd[order])
                assert np.array_equal(got[3], pay[order])
                if pay2 is None:
                    assert got[4] is None
                else:
                    assert np.array_equal(got[4], pay2[order])
        finally:
            pool.close()

    def test_empty_shards_are_fine(self):
        # workers > n: some shards own an empty receiver range.
        pool = ShardPool(3, 5, capacity=16)
        try:
            rcv = np.array([2, 0, 2, 1, 0], dtype=np.int64)
            snd = np.array([0, 0, 1, 1, 2], dtype=np.int64)
            pay = np.arange(5, dtype=np.int64)
            got = pool.sort_round(rcv, snd, pay, None, np.bincount(rcv, minlength=3))
            order = group_argsort(rcv, 3)
            assert np.array_equal(got[0], order)
            assert np.array_equal(got[3], pay[order])
        finally:
            pool.close()

    def test_arena_resize_preserves_equality(self):
        rng = np.random.default_rng(7)
        pool = ShardPool(11, 2, capacity=8)  # tiny: first big round resizes
        try:
            for m in (4, 200, 40, 1000):
                rcv, snd, pay, _ = random_round(rng, 11, m)
                got = pool.sort_round(rcv, snd, pay, None, np.bincount(rcv, minlength=11))
                order = group_argsort(rcv, 11)
                assert np.array_equal(got[0], order)
                assert np.array_equal(got[2], snd[order])
        finally:
            pool.close()

    def test_bad_recv_counts_length_raises(self):
        pool = ShardPool(5, 2, capacity=8)
        try:
            with pytest.raises(ValueError, match="length n=5"):
                pool.sort_round(
                    np.zeros(2, dtype=np.int64),
                    np.zeros(2, dtype=np.int64),
                    np.zeros(2, dtype=np.int64),
                    None,
                    np.zeros(3, dtype=np.int64),
                )
        finally:
            pool.close()


class TestGatherPayloads:
    def test_gather_reuses_cached_shard_permutation(self):
        rng = np.random.default_rng(3)
        n = 19
        pool = ShardPool(n, 3, capacity=64)
        try:
            rcv, snd, pay, _ = random_round(rng, n, 120)
            counts = np.bincount(rcv, minlength=n)
            order, *_ = pool.sort_round(rcv, snd, pay, None, counts)
            gen = pool.gen
            # Same layout, new payloads (the flooding steady state).
            for _ in range(3):
                pay = rng.integers(0, 2**40, size=120).astype(np.int64)
                pay2 = rng.integers(0, 2**10, size=120).astype(np.int64)
                pay_s, pay2_s = pool.gather_payloads(120, pay, pay2, gen)
                assert np.array_equal(pay_s, pay[order])
                assert np.array_equal(pay2_s, pay2[order])
        finally:
            pool.close()

    def test_stale_generation_raises(self):
        rng = np.random.default_rng(4)
        n = 9
        pool = ShardPool(n, 2, capacity=64)
        try:
            rcv, snd, pay, _ = random_round(rng, n, 30)
            counts = np.bincount(rcv, minlength=n)
            pool.sort_round(rcv, snd, pay, None, counts)
            old_gen = pool.gen
            pool.sort_round(rcv, snd, pay, None, counts)  # gen moves on
            with pytest.raises(RuntimeError, match="stale shard generation"):
                pool.gather_payloads(30, pay, None, old_gen)
        finally:
            pool.close()


class TestSerialFallback:
    def test_serial_mode_is_bit_for_bit_the_pool(self):
        # Force the no-fork degradation and check it computes the same
        # per-shard jobs (portability escape hatch, must not change
        # semantics).
        rng = np.random.default_rng(5)
        n = 23
        pooled = ShardPool(n, 3, capacity=64)
        serial = ShardPool(n, 3, capacity=64)
        serial._stop_workers()
        serial._serial = True
        try:
            for _ in range(3):
                rcv, snd, pay, pay2 = random_round(rng, n, 150, with_pay2=True)
                counts = np.bincount(rcv, minlength=n)
                a = pooled.sort_round(rcv, snd, pay, pay2, counts)
                b = serial.sort_round(rcv, snd, pay, pay2, counts)
                for x, y in zip(a, b):
                    assert np.array_equal(x, y)
            pay = rng.integers(0, 99, size=150).astype(np.int64)
            a = pooled.gather_payloads(150, pay, None, pooled.gen)
            b = serial.gather_payloads(150, pay, None, serial.gen)
            assert np.array_equal(a[0], b[0])
        finally:
            pooled.close()
            serial.close()


class TestLifecycle:
    def test_close_is_idempotent_and_workers_exit(self):
        pool = ShardPool(5, 2, capacity=8)
        procs = list(pool._procs)
        pool.close()
        pool.close()
        for proc in procs:
            proc.join(timeout=5)
            assert not proc.is_alive()

    def test_one_worker_is_rejected(self):
        with pytest.raises(ValueError, match=">= 2 workers"):
            ShardPool(5, 1)
