"""Delivery layout cache: reuse semantics and the alias-write hazard.

ISSUE 6's first bugfix satellite: the old sort cache keyed the receiver
permutation on array *identity* and froze the cached view — but a write
through a **different view of the same base buffer** left the identity
intact while changing the values, silently reusing a stale permutation
(misdelivery: the "receiver-sorted" inbox no longer was).  The layout
cache now verifies every identity hit against a defensive copy taken at
store time; a mismatch forces a fresh sort.  These tests pin that down,
plus the equality of cached rounds with uncached ones.
"""

import numpy as np
import pytest

from repro.net.batch import MessageBatch
from repro.net.network import CapacityPolicy, SyncNetwork
from repro.net.soa import SoAInbox, SoAProtocolClass

N = 8


class Scripted(SoAProtocolClass):
    """Emits one prescribed batch per round and records its inboxes."""

    def __init__(self, n, script):
        super().__init__(n)
        self.script = script
        self.seen: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    def on_round_soa(self, round_no, inbox):
        self.seen.append(
            (
                np.asarray(inbox.receivers).copy(),
                np.asarray(inbox.senders).copy(),
                np.asarray(inbox.payloads).copy(),
            )
        )
        if round_no < len(self.script):
            return self.script[round_no]()
        return None


def run_scripted(script, capacity=None, rounds=None, seed=0, workers=None):
    cls = Scripted(N, script)
    net = SyncNetwork(
        cls,
        capacity or CapacityPolicy.unbounded(),
        np.random.default_rng(seed),
        workers=workers,
    )
    for _ in range(rounds if rounds is not None else len(script) + 1):
        net.run_round()
    return cls, net


def batch(rcv, snd, pay):
    return MessageBatch._raw(
        np.asarray(snd, dtype=np.int64),
        np.asarray(rcv, dtype=np.int64),
        0,
        np.asarray(pay, dtype=np.int64),
    )


class TestAliasWriteRegression:
    def test_alias_mutation_forces_fresh_sort_not_misdelivery(self):
        # One scratch base; the protocol emits a *view* of it each round.
        base = np.array([1, 2, 3, 4], dtype=np.int64)
        view = base[:]
        snd = np.array([0, 1, 2, 3], dtype=np.int64)

        def r0():
            return batch(view, snd, [10, 11, 12, 13])

        def r1():  # identity-stable re-emission, values unchanged: a hit
            return batch(view, snd, [20, 21, 22, 23])

        def r2():  # mutate THROUGH THE BASE, then re-emit the same view
            base[0] = 6
            return batch(view, snd, [30, 31, 32, 33])

        cls, _ = run_scripted([r0, r1, r2])

        # Control: identical values, fresh arrays every round (no cache).
        control = [
            lambda: batch([1, 2, 3, 4], [0, 1, 2, 3], [10, 11, 12, 13]),
            lambda: batch([1, 2, 3, 4], [0, 1, 2, 3], [20, 21, 22, 23]),
            lambda: batch([6, 2, 3, 4], [0, 1, 2, 3], [30, 31, 32, 33]),
        ]
        ref, _ = run_scripted(control)

        assert len(cls.seen) == len(ref.seen) == 4
        for got, want in zip(cls.seen, ref.seen):
            for g, w in zip(got, want):
                assert np.array_equal(g, w)
        # The round after the alias write in particular: receiver-sorted
        # (a stale permutation would have left [6, 2, 3, 4] unsorted).
        final_rcv = cls.seen[3][0]
        assert np.array_equal(final_rcv, np.sort(final_rcv))
        assert 6 in final_rcv.tolist()

    def test_direct_write_to_cached_column_still_raises(self):
        # The frozen-view guard of the old cache is kept: mutating the
        # emitted column itself errors immediately.
        rcv = np.array([1, 2, 3], dtype=np.int64)
        snd = np.array([0, 1, 2], dtype=np.int64)
        run_scripted([lambda: batch(rcv, snd, [1, 2, 3])])
        with pytest.raises(ValueError, match="read-only"):
            rcv[0] = 5

    def test_sender_alias_mutation_revalidates_canonical_order(self):
        # _deliver_soa skips its ascending check on an identity-stable
        # sender column; if an alias write breaks the order underneath,
        # the guard must re-run the check and raise, not deliver.
        snd_base = np.array([0, 1, 2, 3], dtype=np.int64)
        snd_view = snd_base[:]
        rcv = np.array([1, 2, 3, 0], dtype=np.int64)

        def r0():
            return batch(rcv, snd_view, [1, 2, 3, 4])

        def r1():
            snd_base[:] = [2, 1, 0, 3]  # no longer ascending
            return batch(rcv, snd_view, [5, 6, 7, 8])

        cls = Scripted(N, [r0, r1])
        net = SyncNetwork(
            cls, CapacityPolicy.unbounded(), np.random.default_rng(0)
        )
        net.run_round()
        with pytest.raises(ValueError, match="sorted ascending"):
            net.run_round()


def _steady_state_script(fresh: bool):
    """Five rounds of flooding-shaped traffic: stable receiver/sender
    columns, changing payloads."""
    if fresh:
        return [
            (lambda r=r: batch([1, 2, 3, 4, 5], [0, 1, 2, 3, 4], [r * 10 + i for i in range(5)]))
            for r in range(5)
        ]
    rcv = np.array([1, 2, 3, 4, 5], dtype=np.int64)
    snd = np.array([0, 1, 2, 3, 4], dtype=np.int64)
    return [
        (lambda r=r: batch(rcv, snd, [r * 10 + i for i in range(5)]))
        for r in range(5)
    ]


class TestLayoutReuseEquality:
    def test_cached_rounds_equal_fresh_rounds(self):
        cached, net_c = run_scripted(_steady_state_script(fresh=False))
        fresh, net_f = run_scripted(_steady_state_script(fresh=True))
        for got, want in zip(cached.seen, fresh.seen):
            for g, w in zip(got, want):
                assert np.array_equal(g, w)
        assert net_c.metrics.as_dict() == net_f.metrics.as_dict()

    def test_legacy_cache_mode_is_equal(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOA_LAYOUT_REUSE", "0")
        legacy, net_l = run_scripted(_steady_state_script(fresh=False))
        monkeypatch.delenv("REPRO_SOA_LAYOUT_REUSE")
        reuse, net_r = run_scripted(_steady_state_script(fresh=False))
        for got, want in zip(legacy.seen, reuse.seen):
            for g, w in zip(got, want):
                assert np.array_equal(g, w)
        assert net_l.metrics.as_dict() == net_r.metrics.as_dict()

    def test_truncating_rounds_match_with_and_without_reuse(self, monkeypatch):
        # Capacity binds ⇒ fresh post-truncation arrays ⇒ the cache must
        # neither store stale state nor perturb the RNG discipline.
        def fan_in():
            return batch(
                np.full(6, 7, dtype=np.int64),
                np.array([0, 1, 2, 3, 4, 5], dtype=np.int64),
                np.arange(6),
            )

        cap = CapacityPolicy(max_send=None, max_receive=3)
        with_reuse, net_w = run_scripted([fan_in] * 4, capacity=cap, seed=5)
        monkeypatch.setenv("REPRO_SOA_LAYOUT_REUSE", "0")
        without, net_o = run_scripted([fan_in] * 4, capacity=cap, seed=5)
        for got, want in zip(with_reuse.seen, without.seen):
            for g, w in zip(got, want):
                assert np.array_equal(g, w)
        assert net_w.metrics.as_dict() == net_o.metrics.as_dict()
        assert net_w.metrics.receive_drops > 0

    def test_segments_attached_by_delivery_match_lazy_scan(self):
        rcv = np.array([1, 1, 3, 5, 5, 5], dtype=np.int64)
        snd = np.array([0, 2, 2, 3, 4, 6], dtype=np.int64)
        cls, net = run_scripted(
            [lambda: batch(rcv, snd, np.arange(6))], rounds=1
        )
        inbox = net.take_staged_soa_inbox()
        starts, nodes = inbox.segments()
        lazy = SoAInbox(
            np.asarray(inbox.senders),
            np.asarray(inbox.receivers),
            inbox.kinds,
            np.asarray(inbox.payloads),
        ).segments()
        assert np.array_equal(starts, lazy[0])
        assert np.array_equal(nodes, lazy[1])
        assert nodes.tolist() == [1, 3, 5]
        assert starts.tolist() == [0, 2, 3]
