"""Hybrid-model ledger accounting tests."""

import pytest

from repro.net.hybrid import HybridLedger


class TestHybridLedger:
    def test_charge_and_totals(self):
        ledger = HybridLedger()
        ledger.charge("a", local_rounds=3, global_rounds=5, global_capacity=10)
        ledger.charge("b", local_rounds=7, global_rounds=2, global_capacity=4)
        # Per-phase cost is max(local, global): 5 + 7.
        assert ledger.total_rounds == 12
        assert ledger.max_global_capacity == 10

    def test_merge_with_prefix(self):
        inner = HybridLedger()
        inner.charge("x", global_rounds=4)
        outer = HybridLedger()
        outer.charge("setup", local_rounds=1)
        outer.merge(inner, prefix="sub/")
        names = [name for name, *_ in outer.phases]
        assert names == ["setup", "sub/x"]
        assert outer.total_rounds == 5

    def test_negative_charge_rejected(self):
        ledger = HybridLedger()
        with pytest.raises(ValueError):
            ledger.charge("bad", local_rounds=-1)

    def test_summary(self):
        ledger = HybridLedger()
        ledger.charge("only", global_rounds=3, global_capacity=9)
        assert ledger.summary() == {
            "phases": 1,
            "total_rounds": 3,
            "max_global_capacity": 9,
        }

    def test_empty_ledger(self):
        ledger = HybridLedger()
        assert ledger.total_rounds == 0
        assert ledger.max_global_capacity == 0
