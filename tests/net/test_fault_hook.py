"""Fault-hook contract: one decode for both delivery engines.

ISSUE 5's bugfix satellite: the hook used to be decoded with a bare
``np.flatnonzero``, which silently misreads an integer keep-*indices*
return (the shape the network's own truncation primitive,
``segmented_keep_indices``, produces) as a keep-*mask* — dropping the
wrong messages and miscounting ``metrics.fault_drops``.  Both engines now
share ``_fault_keep_indices``: boolean masks and ascending integer
indices are decoded identically, anything else raises, and the
``fault_drops`` metric is identical across engines per seed.
"""

import numpy as np
import pytest

from repro.net.message import Message
from repro.net.network import (
    CapacityPolicy,
    ProtocolNode,
    SyncNetwork,
    _fault_keep_indices,
)
from repro.net.vectorops import segmented_keep_indices
from repro.scenarios import CrashWave, MessageDrop, Partition, ScenarioSpec

N = 12
ROUNDS = 5


class Chatter(ProtocolNode):
    """Sends one message to every other node each round."""

    def __init__(self, node_id: int, n: int, rounds: int) -> None:
        super().__init__(node_id)
        self.n = n
        self.rounds = rounds
        self.received: list[tuple[int, int, int]] = []

    def on_round(self, round_no, inbox):
        self.received.extend(
            (round_no, m.sender, int(m.payload)) for m in inbox
        )
        if round_no >= self.rounds:
            return []
        return [
            Message(self.node_id, v, "chat", round_no)
            for v in range(self.n)
            if v != self.node_id
        ]

    def is_idle(self):
        return True


def run_chatter(engine: str, hook, seed: int = 0, capacity=None, n: int = N):
    nodes = {v: Chatter(v, n, ROUNDS) for v in range(n)}
    network = SyncNetwork(
        nodes,
        capacity or CapacityPolicy.unbounded(),
        np.random.default_rng(seed),
        engine=engine,
        fault_hook=hook,
    )
    for _ in range(ROUNDS + 1):
        network.run_round()
    inboxes = {v: nodes[v].received for v in range(n)}
    return inboxes, network.metrics.as_dict()


class TestDecodeHelper:
    def test_bool_mask_decodes_to_indices(self):
        mask = np.array([True, False, True, True])
        assert _fault_keep_indices(mask, 4).tolist() == [0, 2, 3]

    def test_integer_indices_pass_through(self):
        idx = np.array([0, 2, 3], dtype=np.int64)
        assert _fault_keep_indices(idx, 4).tolist() == [0, 2, 3]

    def test_index_zero_only_is_not_read_as_mask(self):
        # The historical np.flatnonzero decode read [0] as an all-false
        # mask; the unified contract keeps exactly message 0.
        assert _fault_keep_indices(np.array([0]), 3).tolist() == [0]

    def test_wrong_length_mask_raises(self):
        with pytest.raises(ValueError, match="keep-mask has length 3"):
            _fault_keep_indices(np.ones(3, dtype=bool), 5)

    def test_out_of_range_indices_raise(self):
        with pytest.raises(ValueError, match="out of range"):
            _fault_keep_indices(np.array([1, 7]), 5)
        with pytest.raises(ValueError, match="out of range"):
            _fault_keep_indices(np.array([-1, 2]), 5)

    def test_unsorted_indices_raise(self):
        with pytest.raises(ValueError, match="ascending"):
            _fault_keep_indices(np.array([3, 1]), 5)
        with pytest.raises(ValueError, match="ascending"):
            _fault_keep_indices(np.array([2, 2]), 5)

    def test_float_return_raises(self):
        with pytest.raises(TypeError, match="boolean keep-mask or integer"):
            _fault_keep_indices(np.array([0.0, 1.0]), 2)

    def test_two_dimensional_raises(self):
        with pytest.raises(ValueError, match="1-d"):
            _fault_keep_indices(np.ones((2, 2), dtype=bool), 4)


class TestMaskIndexParity:
    """A mask hook and the equivalent indices hook drop identically on
    both engines."""

    @staticmethod
    def _mask_hook(round_no, senders, receivers):
        return (senders + receivers + round_no) % 3 != 0

    @classmethod
    def _index_hook(cls, round_no, senders, receivers):
        return np.flatnonzero(cls._mask_hook(round_no, senders, receivers))

    @pytest.mark.parametrize("engine", ["legacy", "vectorized"])
    def test_mask_equals_indices(self, engine):
        by_mask = run_chatter(engine, self._mask_hook)
        by_index = run_chatter(engine, self._index_hook)
        assert by_mask == by_index
        assert by_mask[1]["fault_drops"] > 0

    def test_cross_engine_identical(self):
        legacy = run_chatter("legacy", self._mask_hook)
        vectorized = run_chatter("vectorized", self._index_hook)
        assert legacy == vectorized

    def test_truncation_style_hook_composes(self):
        """A hook built from the network's own keep-indices primitive —
        the composition the old mask-only decode silently corrupted."""
        def hook(round_no, senders, receivers):
            return segmented_keep_indices(
                receivers, 4, np.random.default_rng(round_no)
            )

        legacy = run_chatter("legacy", hook)
        vectorized = run_chatter("vectorized", hook)
        assert legacy == vectorized
        assert legacy[1]["fault_drops"] > 0

    @pytest.mark.parametrize("engine", ["legacy", "vectorized"])
    def test_bad_hook_return_raises_on_both_engines(self, engine):
        with pytest.raises(ValueError, match="keep-mask has length"):
            run_chatter(engine, lambda r, s, d: np.ones(1, dtype=bool))


class GappyChatter(ProtocolNode):
    """Chatter over an explicit (gappy, unsorted-at-insertion) id set."""

    def __init__(self, node_id: int, ids: tuple[int, ...], rounds: int) -> None:
        super().__init__(node_id)
        self.ids = ids
        self.rounds = rounds
        self.received: list[tuple[int, int, int]] = []

    def on_round(self, round_no, inbox):
        self.received.extend(
            (round_no, m.sender, int(m.payload)) for m in inbox
        )
        if round_no >= self.rounds:
            return []
        return [
            Message(self.node_id, v, "chat", round_no)
            for v in self.ids
            if v != self.node_id
        ]

    def is_idle(self):
        return True


class TestGappyNodeIdRegression:
    """ISSUE 6's cross-engine pin: non-contiguous node ids inserted out
    of order exercise the id-mapping path of the vectorized tail (raw ids
    → dense indices → raw ids), where a fault hook composed with capacity
    truncation historically had the most room to diverge from the
    per-message legacy engine.  The matrix pins inbox contents,
    ``fault_drops``, and the full metrics dict as engine-identical."""

    IDS = (12, 0, 30, 7, 22, 3, 21, 15)

    @classmethod
    def _run(cls, engine, hook, seed):
        nodes = {v: GappyChatter(v, cls.IDS, ROUNDS) for v in cls.IDS}
        network = SyncNetwork(
            nodes,
            CapacityPolicy(4, 4),
            np.random.default_rng(seed),
            engine=engine,
            fault_hook=hook,
        )
        for _ in range(ROUNDS + 1):
            network.run_round()
        return {v: nodes[v].received for v in cls.IDS}, network.metrics.as_dict()

    @staticmethod
    def _mask_hook(round_no, senders, receivers):
        # Hooks see *raw* ids on both engines — the parity below would
        # break immediately if one engine passed dense indices instead.
        return (senders + receivers + round_no) % 3 != 0

    @staticmethod
    def _truncation_hook(round_no, senders, receivers):
        return segmented_keep_indices(
            receivers, 3, np.random.default_rng(round_no)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_mask_hook_cross_engine(self, seed):
        legacy = self._run("legacy", self._mask_hook, seed)
        vectorized = self._run("vectorized", self._mask_hook, seed)
        assert legacy[1]["fault_drops"] == vectorized[1]["fault_drops"]
        assert legacy == vectorized
        assert legacy[1]["fault_drops"] > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_truncation_hook_cross_engine(self, seed):
        legacy = self._run("legacy", self._truncation_hook, seed)
        vectorized = self._run("vectorized", self._truncation_hook, seed)
        assert legacy == vectorized
        assert legacy[1]["fault_drops"] > 0

    def test_hook_receives_raw_ids(self):
        seen: set[int] = set()

        def spy(round_no, senders, receivers):
            seen.update(np.asarray(senders).tolist())
            seen.update(np.asarray(receivers).tolist())
            return np.ones(np.asarray(senders).shape[0], dtype=bool)

        self._run("vectorized", spy, seed=0)
        assert seen == set(self.IDS)


class TestFaultDropsCrossEngineRegression:
    """Acceptance criterion: identical ``fault_drops`` for identical
    seeds/specs on both delivery engines (and with capacity enforcement
    interleaved)."""

    SPECS = [
        ScenarioSpec(name="drop", drop=MessageDrop(0.25), fault_seed=3),
        ScenarioSpec(
            name="crash",
            crashes=(CrashWave(round_no=1, fraction=0.3, rejoin_round=4),),
            fault_seed=5,
        ),
        ScenarioSpec(
            name="partition", partition=Partition(start=1, stop=4), fault_seed=7
        ),
        ScenarioSpec(
            name="composite",
            drop=MessageDrop(0.1),
            crashes=(CrashWave(round_no=2, fraction=0.2),),
            partition=Partition(start=0, stop=3, blocks=3),
            fault_seed=11,
        ),
    ]

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    @pytest.mark.parametrize("seed", range(4))
    def test_identical_fault_drops_per_seed(self, spec, seed):
        hook = spec.compile(N)
        legacy = run_chatter(
            "legacy", hook, seed=seed, capacity=CapacityPolicy(6, 6)
        )
        vectorized = run_chatter(
            "vectorized", hook, seed=seed, capacity=CapacityPolicy(6, 6)
        )
        assert legacy[1]["fault_drops"] == vectorized[1]["fault_drops"]
        assert legacy == vectorized
        assert legacy[1]["fault_drops"] > 0
