"""Synchronous network simulator tests: delivery, capacity, metrics."""

import numpy as np
import pytest

from repro.net.message import Message
from repro.net.network import CapacityPolicy, ProtocolNode, SyncNetwork


class EchoNode(ProtocolNode):
    """Sends one message to a fixed target in round 0; records inbox."""

    def __init__(self, node_id, target=None, payloads=1):
        super().__init__(node_id)
        self.target = target
        self.payloads = payloads
        self.received: list[Message] = []
        self.done = False

    def on_round(self, round_no, inbox):
        self.received.extend(inbox)
        if round_no == 0 and self.target is not None:
            self.done = True
            return [
                Message(self.node_id, self.target, "ping", k)
                for k in range(self.payloads)
            ]
        self.done = True
        return []

    def is_idle(self):
        return self.done


def build_network(nodes, capacity=None, seed=0):
    capacity = capacity or CapacityPolicy.unbounded()
    return SyncNetwork(nodes, capacity, np.random.default_rng(seed))


class TestDelivery:
    def test_message_arrives_next_round(self):
        nodes = {0: EchoNode(0, target=1), 1: EchoNode(1)}
        net = build_network(nodes)
        net.run_round()
        assert nodes[1].received == []
        net.run_round()
        assert len(nodes[1].received) == 1
        assert nodes[1].received[0].kind == "ping"

    def test_forged_sender_rejected(self):
        class Forger(ProtocolNode):
            def on_round(self, round_no, inbox):
                return [Message(99, 1, "fake")]

        net = build_network({0: Forger(0), 1: EchoNode(1)})
        with pytest.raises(ValueError, match="forge"):
            net.run_round()

    def test_unknown_receiver_rejected(self):
        net = build_network({0: EchoNode(0, target=42)})
        with pytest.raises(KeyError):
            net.run_round()

    def test_self_messages_bypass_network(self):
        nodes = {0: EchoNode(0, target=0, payloads=5)}
        net = build_network(nodes, capacity=CapacityPolicy(max_send=1, max_receive=1))
        net.run_round()
        net.run_round()
        assert len(nodes[0].received) == 5  # no cap applied to self-sends
        assert net.metrics.total_messages == 0


class TestCapacity:
    def test_send_cap_drops(self):
        nodes = {0: EchoNode(0, target=1, payloads=10), 1: EchoNode(1)}
        net = build_network(nodes, capacity=CapacityPolicy(max_send=3, max_receive=None))
        net.run_round()
        net.run_round()
        assert len(nodes[1].received) == 3
        assert net.metrics.send_drops == 7

    def test_receive_cap_drops(self):
        nodes = {
            0: EchoNode(0, target=2, payloads=4),
            1: EchoNode(1, target=2, payloads=4),
            2: EchoNode(2),
        }
        net = build_network(nodes, capacity=CapacityPolicy(max_send=None, max_receive=5))
        net.run_round()
        net.run_round()
        assert len(nodes[2].received) == 5
        assert net.metrics.receive_drops == 3

    def test_ncc0_policy_scales_with_delta(self):
        pol = CapacityPolicy.ncc0(100, delta=48)
        assert pol.max_send == 48
        assert pol.max_receive == 48


class TestMetrics:
    def test_totals_and_peaks(self):
        nodes = {0: EchoNode(0, target=1, payloads=4), 1: EchoNode(1)}
        net = build_network(nodes)
        metrics = net.run(max_rounds=5)
        assert metrics.total_messages == 4
        assert metrics.max_sent_per_round == 4
        assert metrics.max_received_per_round == 4
        assert metrics.sent_per_node[0] == 4
        assert metrics.received_per_node[1] == 4

    def test_run_stops_when_idle(self):
        nodes = {0: EchoNode(0, target=1), 1: EchoNode(1)}
        net = build_network(nodes)
        metrics = net.run(max_rounds=50)
        assert metrics.rounds <= 3

    def test_stop_when_predicate(self):
        nodes = {0: EchoNode(0, target=1, payloads=2), 1: EchoNode(1)}
        net = build_network(nodes)
        net.run(max_rounds=50, stop_when=lambda: True)
        assert net.metrics.rounds == 1


class TestEarlyStopBookkeeping:
    """The ``stop_when`` fix: in-flight/idle bookkeeping is evaluated every
    round, even on the round the predicate fires."""

    def test_predicate_with_traffic_in_flight(self):
        nodes = {0: EchoNode(0, target=1, payloads=3), 1: EchoNode(1)}
        net = build_network(nodes)
        metrics = net.run(max_rounds=50, stop_when=lambda: True)
        # Stopped after round 1, while the 3 messages were still pending.
        assert metrics.stopped_by_predicate
        assert metrics.in_flight_at_stop == 3
        assert net.pending_messages() == 3

    def test_predicate_firing_on_final_round_is_consistent(self):
        # Baseline: without a predicate the run goes quiescent by itself.
        baseline_nodes = {0: EchoNode(0, target=1, payloads=2), 1: EchoNode(1)}
        baseline = build_network(baseline_nodes).run(max_rounds=50)
        assert not baseline.stopped_by_predicate

        # A predicate that fires exactly on the round the network would
        # have stopped anyway must not corrupt the bookkeeping: zero
        # messages in flight, identical aggregates.
        nodes = {0: EchoNode(0, target=1, payloads=2), 1: EchoNode(1)}
        net = build_network(nodes)
        metrics = net.run(
            max_rounds=50, stop_when=lambda: net.round_no >= baseline.rounds
        )
        assert metrics.stopped_by_predicate
        assert metrics.in_flight_at_stop == 0
        assert metrics.rounds == baseline.rounds
        assert metrics.total_messages == baseline.total_messages
        assert dict(metrics.received_per_node) == dict(baseline.received_per_node)

    def test_no_predicate_leaves_flags_unset(self):
        nodes = {0: EchoNode(0, target=1), 1: EchoNode(1)}
        metrics = build_network(nodes).run(max_rounds=50)
        assert not metrics.stopped_by_predicate
        assert metrics.in_flight_at_stop == 0

    @pytest.mark.parametrize("engine", ["legacy", "vectorized"])
    def test_pending_messages_tracks_both_engines(self, engine):
        nodes = {0: EchoNode(0, target=1, payloads=4), 1: EchoNode(1)}
        net = SyncNetwork(
            nodes, CapacityPolicy.unbounded(), np.random.default_rng(0), engine=engine
        )
        assert net.pending_messages() == 0
        net.run_round()
        assert net.pending_messages() == 4
        net.run_round()
        assert net.pending_messages() == 0


class TestNodeCounts:
    """Lazy columnar per-node counters behind ``NetworkMetrics``."""

    def test_defaultdict_compatible(self):
        from repro.net.network import NodeCounts

        counts = NodeCounts()
        assert counts[5] == 0  # missing reads as 0 ...
        assert 5 not in counts  # ... without inserting
        counts[3] += 2
        counts[3] += 1
        assert counts[3] == 3
        assert dict(counts) == {3: 3}

    def test_column_absorption_is_lazy_and_correct(self):
        from repro.net.network import NodeCounts

        counts = NodeCounts()
        ids = np.array([10, 20, 30], dtype=np.int64)
        counts.add_column(ids, np.array([1, 0, 2], dtype=np.int64))
        counts.add_column(ids, np.array([4, 0, 0], dtype=np.int64))
        # Zero entries never materialise; repeated columns accumulate.
        assert dict(counts) == {10: 5, 30: 2}
        assert len(counts) == 2
        assert sorted(counts.items()) == [(10, 5), (30, 2)]
        assert max(counts.values()) == 5

    def test_columns_and_dict_writes_combine(self):
        from repro.net.network import NodeCounts

        counts = NodeCounts()
        counts[10] += 7
        counts.add_column(
            np.array([10, 11], dtype=np.int64), np.array([1, 1], dtype=np.int64)
        )
        assert counts[10] == 8
        assert counts[11] == 1

    def test_equality_flushes_both_sides(self):
        from repro.net.network import NodeCounts

        a = NodeCounts()
        a.add_column(np.array([1], dtype=np.int64), np.array([3], dtype=np.int64))
        b = NodeCounts()
        b[1] = 3
        assert a == b
        assert a == {1: 3}

    def test_network_metrics_stay_correct_and_lazy(self):
        # The vectorized engine's per-node dicts materialise only on
        # read; scalar aggregates never force the flush.
        nodes = {0: EchoNode(0, target=1, payloads=4), 1: EchoNode(1)}
        net = build_network(nodes)
        net.run_round()
        metrics = net.metrics
        assert metrics.sent_per_node._counts is not None  # still columnar
        assert metrics.total_messages == 4
        assert metrics.max_total_sent_by_any_node() == 4  # forces the flush
        assert metrics.sent_per_node._counts is None
        assert dict(metrics.sent_per_node) == {0: 4}
        # Receive accounting happens at delivery time (same round).
        assert dict(metrics.received_per_node) == {1: 4}
        net.run_round()
        assert net.metrics.received_per_node[1] == 4
