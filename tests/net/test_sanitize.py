"""REPRO_SANITIZE runtime sanitizer: asserts, canaries, hook validation.

The sanitizer is the runtime half of the determinism contracts that
``python -m repro.analysis`` checks statically (docs/contracts.md maps
one to the other).  These tests arm the module flag directly — the env
var is only read at import — and verify that:

- armed runs are behaviourally identical to unarmed runs (the checks
  observe, they never steer);
- a fault hook that consumes the delivery RNG or edits the lanes it is
  shown fails loudly;
- the shard-arena canary catches workers writing outside their
  prefix-sum ranges;
- the fork-unavailable serial fallback warns once and reports
  ``workers_effective=1``.
"""

import subprocess
import sys
import warnings

import numpy as np
import pytest

import repro.net.shard as shard
from repro import sanitize
from repro.net.message import Message
from repro.net.network import CapacityPolicy, ProtocolNode, SyncNetwork
from repro.net.shard import ShardPool, effective_workers, fork_available
from repro.net.vectorops import group_argsort


@pytest.fixture
def armed(monkeypatch):
    monkeypatch.setattr(sanitize, "ENABLED", True)


class Chatter(ProtocolNode):
    """Sends one message to every other node for a few rounds."""

    def __init__(self, node_id: int, n: int, rounds: int) -> None:
        super().__init__(node_id)
        self.n = n
        self.rounds = rounds
        self.received: list[tuple[int, int, int]] = []

    def on_round(self, round_no, inbox):
        self.received.extend((round_no, m.sender, int(m.payload)) for m in inbox)
        if round_no >= self.rounds:
            return []
        return [
            Message(self.node_id, v, "chat", round_no)
            for v in range(self.n)
            if v != self.node_id
        ]

    def is_idle(self):
        return True


def run_chatter(hook=None, n: int = 8, rounds: int = 3, seed: int = 0):
    nodes = {v: Chatter(v, n, rounds) for v in range(n)}
    network = SyncNetwork(
        nodes,
        CapacityPolicy.unbounded(),
        np.random.default_rng(seed),
        engine="vectorized",
        fault_hook=hook,
    )
    for _ in range(rounds + 1):
        network.run_round()
    return {v: nodes[v].received for v in range(n)}, network


class TestHelpers:
    def test_sanitize_error_is_assertion_error(self):
        assert issubclass(sanitize.SanitizeError, AssertionError)

    def test_check_int64(self):
        sanitize.check_int64("ok", np.zeros(3, dtype=np.int64))
        sanitize.check_int64("none", None)
        with pytest.raises(sanitize.SanitizeError, match="int32"):
            sanitize.check_int64("lane", np.zeros(3, dtype=np.int32))

    def test_check_nondecreasing(self):
        sanitize.check_nondecreasing("ok", np.array([0, 0, 1, 5]))
        sanitize.check_nondecreasing("tiny", np.array([7]))
        with pytest.raises(sanitize.SanitizeError, match="index 2"):
            sanitize.check_nondecreasing("bad", np.array([0, 4, 3]))

    def test_rng_state_moves_on_draw(self):
        rng = np.random.default_rng(5)
        before = sanitize.rng_state(rng)
        assert sanitize.rng_state(rng) == before
        rng.random()
        assert sanitize.rng_state(rng) != before


class TestEnvWiring:
    def test_env_arms_flag_and_implies_soa_validation(self):
        # ENABLED is read at import, so probe a fresh interpreter.
        code = (
            "import repro.sanitize, repro.net.soa as soa; "
            "print(repro.sanitize.ENABLED, soa.DEBUG_VALIDATE)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_SANITIZE": "1", "PATH": "/usr/bin:/bin"},
            cwd=".",
            check=True,
        ).stdout
        assert out.split() == ["True", "True"]


class TestArmedRunsAreIdentical:
    def test_chatter_identical(self, armed):
        armed_inboxes, _ = run_chatter()
        sanitize.ENABLED = False
        plain_inboxes, _ = run_chatter()
        sanitize.ENABLED = True
        assert armed_inboxes == plain_inboxes

    def test_soa_rooting_with_sharding_passes(self, armed):
        from repro.core.soa_rooting import run_soa_rooting
        from repro.graphs.portgraph import PortGraph

        graph = PortGraph.ring_with_chords(300, delta=8, chords=1, seed=3)
        a = run_soa_rooting(graph, 12, rng=np.random.default_rng(1), workers=2)
        sanitize.ENABLED = False
        b = run_soa_rooting(graph, 12, rng=np.random.default_rng(1), workers=1)
        sanitize.ENABLED = True
        assert np.array_equal(a.parent, b.parent)
        assert np.array_equal(a.depth, b.depth)


class TestFaultHookValidation:
    def test_hook_consuming_delivery_rng_raises(self, armed):
        box = {}

        def hook(round_no, snd, rcv):
            box["net"].rng.random()  # the forbidden draw
            return None

        nodes = {v: Chatter(v, 6, 3) for v in range(6)}
        net = SyncNetwork(
            nodes,
            CapacityPolicy.unbounded(),
            np.random.default_rng(0),
            engine="vectorized",
            fault_hook=hook,
        )
        box["net"] = net
        with pytest.raises(sanitize.SanitizeError, match="consumed the delivery RNG"):
            for _ in range(3):
                net.run_round()

    def test_hook_mutating_lanes_raises(self, armed):
        def hook(round_no, snd, rcv):
            rcv[:] = 0
            return None

        with pytest.raises(sanitize.SanitizeError, match="mutated"):
            run_chatter(hook=hook)

    def test_oblivious_hook_passes_and_matches_unarmed(self, armed):
        def drop_even_rounds(round_no, snd, rcv):
            if round_no % 2 == 0:
                return np.zeros(snd.shape[0], dtype=bool)
            return None

        armed_inboxes, armed_net = run_chatter(hook=drop_even_rounds)
        sanitize.ENABLED = False
        plain_inboxes, plain_net = run_chatter(hook=drop_even_rounds)
        sanitize.ENABLED = True
        assert armed_inboxes == plain_inboxes
        assert (
            armed_net.metrics.as_dict()["fault_drops"]
            == plain_net.metrics.as_dict()["fault_drops"]
            > 0
        )

    def test_legacy_engine_also_validated(self, armed):
        def hook(round_no, snd, rcv):
            rcv[:] = 0
            return None

        nodes = {v: Chatter(v, 5, 2) for v in range(5)}
        net = SyncNetwork(
            nodes,
            CapacityPolicy.unbounded(),
            np.random.default_rng(0),
            engine="legacy",
            fault_hook=hook,
        )
        with pytest.raises(sanitize.SanitizeError, match="mutated"):
            for _ in range(2):
                net.run_round()


def _round_data(rng, n, m):
    rcv = rng.integers(0, n, size=m).astype(np.int64)
    snd = np.sort(rng.integers(0, n, size=m)).astype(np.int64)
    pay = rng.integers(0, 2**40, size=m).astype(np.int64)
    return rcv, snd, pay


class TestShardCanary:
    def test_armed_pool_still_bit_for_bit(self, armed):
        rng = np.random.default_rng(9)
        n, m = 19, 120
        pool = ShardPool(n, 3, capacity=256)
        try:
            rcv, snd, pay = _round_data(rng, n, m)
            got = pool.sort_round(rcv, snd, pay, None, np.bincount(rcv, minlength=n))
            order = group_argsort(rcv, n)
            assert np.array_equal(got[0], order)
            assert np.array_equal(got[1], rcv[order])
        finally:
            pool.close()

    def _serial_pool(self, n=13, workers=2, capacity=128):
        pool = ShardPool(n, workers, capacity=capacity)
        pool._stop_workers()
        pool._serial = True
        return pool

    def test_uncovered_slot_detected(self, armed):
        pool = self._serial_pool()
        orig = pool._serial_sort

        def hole_after(m, offs, want_pay2):
            orig(m, offs, want_pay2)
            pool._cols["order"][0] = -1  # simulate a skipped output slot

        pool._serial_sort = hole_after
        try:
            rcv, snd, pay = _round_data(np.random.default_rng(2), 13, 40)
            with pytest.raises(sanitize.SanitizeError, match="unwritten"):
                pool.sort_round(rcv, snd, pay, None, np.bincount(rcv, minlength=13))
        finally:
            pool.close()

    def test_guard_trample_detected(self, armed):
        pool = self._serial_pool()
        orig = pool._serial_sort

        def overrun(m, offs, want_pay2):
            orig(m, offs, want_pay2)
            pool._cols["order"][m] = 0  # write one slot past the round

        pool._serial_sort = overrun
        try:
            rcv, snd, pay = _round_data(np.random.default_rng(2), 13, 40)
            with pytest.raises(sanitize.SanitizeError, match="guard slot"):
                pool.sort_round(rcv, snd, pay, None, np.bincount(rcv, minlength=13))
        finally:
            pool.close()

    def test_unarmed_pool_skips_canary(self, monkeypatch):
        monkeypatch.setattr(sanitize, "ENABLED", False)
        pool = self._serial_pool()
        orig = pool._serial_sort

        def overrun(m, offs, want_pay2):
            orig(m, offs, want_pay2)
            pool._cols["order"][m] = 0

        pool._serial_sort = overrun
        try:
            rcv, snd, pay = _round_data(np.random.default_rng(2), 13, 40)
            pool.sort_round(rcv, snd, pay, None, np.bincount(rcv, minlength=13))
        finally:
            pool.close()


class TestSerialFallback:
    def _patch_no_fork(self, monkeypatch):
        def no_fork(method):
            raise ValueError(f"start method {method!r} unavailable")

        monkeypatch.setattr(shard.mp, "get_context", no_fork)

    def test_warns_once_and_degrades(self, monkeypatch):
        self._patch_no_fork(monkeypatch)
        monkeypatch.setattr(shard, "_SERIAL_FALLBACK_WARNED", False)
        with pytest.warns(RuntimeWarning, match="serial"):
            pool = ShardPool(8, 2, capacity=32)
        assert pool._serial
        pool.close()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would fail
            pool2 = ShardPool(8, 4, capacity=32)
        pool2.close()

    def test_effective_workers_reports_one(self, monkeypatch):
        self._patch_no_fork(monkeypatch)
        assert not fork_available()
        assert effective_workers(4) == 1
        assert effective_workers(1) == 1

    def test_effective_workers_under_fork(self):
        assert fork_available()
        assert effective_workers(4) == 4
