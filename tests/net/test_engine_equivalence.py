"""Differential equivalence: legacy vs. vectorized delivery engines,
across all three node representations (object, batch, SoA).

All engines of :class:`SyncNetwork` implement the §1.1 NCC0 semantics
under one canonical RNG discipline (see ``docs/engine.md``), so under the
same seed they must produce *identical* executions — not just statistically
similar ones.  This suite replays seeded random workloads (mixed
self-loops, over-capacity senders, hot receivers) through every
engine × node-representation combination — including the SoA tier, where
one :class:`SoAProtocolClass` emits the whole population's round — and
asserts exact equality of

- per-node inbox multisets (in fact full sequences) for every round, and
- every :class:`NetworkMetrics` aggregate,

plus identical error behaviour for unknown receivers.
"""

import numpy as np
import pytest

from repro.net.batch import KINDS, MessageBatch
from repro.net.message import Message
from repro.net.network import (
    BatchProtocolNode,
    CapacityPolicy,
    ProtocolNode,
    SoAProtocolClass,
    SyncNetwork,
)

N_NODES = 24
N_ROUNDS = 6
SEEDS = range(20)


def make_plan(seed: int, n: int = N_NODES, rounds: int = N_ROUNDS):
    """Deterministic per-node send schedule with stressful structure.

    Every round each node sends a random number of messages to random
    receivers (self included — exercising the local bypass), two "chatty"
    nodes burst far over any send cap, and all bursts favour a "hot"
    receiver so the receive cap binds too.
    """
    rng = np.random.default_rng(seed * 1013 + 7)
    hot = int(rng.integers(0, n))
    chatty = set(rng.choice(n, size=2, replace=False).tolist())
    plan: dict[int, list[list[tuple[int, str, int]]]] = {v: [] for v in range(n)}
    payload = 0
    for _ in range(rounds):
        for v in range(n):
            k = int(rng.integers(0, 4))
            if v in chatty:
                k += int(rng.integers(8, 14))
            sends = []
            for _ in range(k):
                if rng.random() < 0.15:
                    receiver = v  # self-loop
                elif rng.random() < 0.4:
                    receiver = hot
                else:
                    receiver = int(rng.integers(0, n))
                kind = "ping" if rng.random() < 0.7 else "pong"
                sends.append((receiver, kind, payload))
                payload += 1
            plan[v].append(sends)
    return plan


class ScriptedNode(ProtocolNode):
    """Replays a plan with object messages; logs every inbox."""

    def __init__(self, node_id, sends_per_round):
        super().__init__(node_id)
        self.sends_per_round = sends_per_round
        self.log: list[list[tuple[int, str, int]]] = []

    def on_round(self, round_no, inbox):
        self.log.append([(m.sender, m.kind, m.payload) for m in inbox])
        if round_no >= len(self.sends_per_round):
            return []
        return [
            Message(self.node_id, receiver, kind, payload)
            for receiver, kind, payload in self.sends_per_round[round_no]
        ]

    def is_idle(self):
        return False


class BatchScriptedNode(BatchProtocolNode):
    """Replays the same plan with message batches; logs every inbox."""

    def __init__(self, node_id, sends_per_round):
        super().__init__(node_id)
        self.sends_per_round = sends_per_round
        self.log: list[list[tuple[int, str, int]]] = []

    def on_round_batch(self, round_no, inbox):
        senders = inbox.senders_array()
        kinds = inbox.kinds_array()
        self.log.append(
            [
                (int(senders[i]), KINDS.name(int(kinds[i])), int(inbox.payloads[i]))
                for i in range(len(inbox))
            ]
        )
        if round_no >= len(self.sends_per_round):
            return None
        sends = self.sends_per_round[round_no]
        if not sends:
            return None
        return MessageBatch(
            self.node_id,
            np.array([receiver for receiver, _, _ in sends], dtype=np.int64),
            np.array([KINDS.code(kind) for _, kind, _ in sends], dtype=np.int64),
            np.array([payload for _, _, payload in sends], dtype=np.int64),
        )

    def is_idle(self):
        return False


class SoAScriptedClass(SoAProtocolClass):
    """Replays the same plan as one SoA class; logs every node's inbox.

    The plan is flattened per round into one batch in canonical order
    (ascending sender, per-sender emission order) — exactly the flat
    buffer the engine packs from per-node outputs, so the executions must
    coincide bit for bit, drops and all.
    """

    def __init__(self, n, plan):
        super().__init__(n)
        self.log = {v: [] for v in range(n)}
        self._rounds = []
        for r in range(max(len(plan[v]) for v in plan)):
            senders, receivers, kinds, payloads = [], [], [], []
            for v in range(n):
                for receiver, kind, payload in plan[v][r] if r < len(plan[v]) else []:
                    senders.append(v)
                    receivers.append(receiver)
                    kinds.append(KINDS.code(kind))
                    payloads.append(payload)
            if senders:
                self._rounds.append(
                    MessageBatch(
                        np.array(senders, dtype=np.int64),
                        np.array(receivers, dtype=np.int64),
                        np.array(kinds, dtype=np.int64),
                        np.array(payloads, dtype=np.int64),
                    )
                )
            else:
                self._rounds.append(None)

    def on_round_soa(self, round_no, inbox):
        for v, msgs in enumerate(inbox.to_node_lists(self.n)):
            self.log[v].append(msgs)
        if round_no >= len(self._rounds):
            return None
        return self._rounds[round_no]

    def is_idle(self):
        return False


def run_workload(plan, node_cls, engine, capacity, net_seed, rounds=N_ROUNDS + 1):
    nodes = {v: node_cls(v, plan[v]) for v in sorted(plan)}
    net = SyncNetwork(nodes, capacity, np.random.default_rng(net_seed), engine=engine)
    for _ in range(rounds):
        net.run_round()
    logs = {v: nodes[v].log for v in nodes}
    return logs, net.metrics.as_dict()


def run_soa_workload(plan, capacity, net_seed, rounds=N_ROUNDS + 1):
    cls = SoAScriptedClass(N_NODES, plan)
    net = SyncNetwork(cls, capacity, np.random.default_rng(net_seed))
    for _ in range(rounds):
        net.run_round()
    return cls.log, net.metrics.as_dict()


CAPACITY = CapacityPolicy(max_send=6, max_receive=5)


class TestObjectNodeEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_legacy_and_vectorized_identical(self, seed):
        plan = make_plan(seed)
        logs_l, metrics_l = run_workload(plan, ScriptedNode, "legacy", CAPACITY, seed)
        logs_v, metrics_v = run_workload(plan, ScriptedNode, "vectorized", CAPACITY, seed)
        assert metrics_l == metrics_v
        for v in logs_l:
            # Exact sequences (stronger than the multiset requirement).
            assert logs_l[v] == logs_v[v]
            # And explicitly as multisets, the §1.1-level statement.
            for a, b in zip(logs_l[v], logs_v[v]):
                assert sorted(a) == sorted(b)

    @pytest.mark.parametrize("seed", range(5))
    def test_workloads_actually_exercise_drops(self, seed):
        plan = make_plan(seed)
        _, metrics = run_workload(plan, ScriptedNode, "vectorized", CAPACITY, seed)
        assert metrics["send_drops"] > 0
        assert metrics["receive_drops"] > 0


class TestCrossRepresentationEquivalence:
    """Scripted nodes draw no randomness of their own, so all four
    engine × representation combinations must coincide exactly."""

    @pytest.mark.parametrize("seed", range(8))
    def test_four_way_identical(self, seed):
        plan = make_plan(seed)
        runs = {
            (node_cls.__name__, engine): run_workload(plan, node_cls, engine, CAPACITY, seed)
            for node_cls in (ScriptedNode, BatchScriptedNode)
            for engine in ("legacy", "vectorized")
        }
        reference_logs, reference_metrics = runs[("ScriptedNode", "legacy")]
        for key, (logs, metrics) in runs.items():
            assert metrics == reference_metrics, key
            assert logs == reference_logs, key


class TestSoAEquivalence:
    """The SoA tier replays the identical workloads — over-capacity
    senders, hot receivers, self-loops, mixed kinds — and must coincide
    exactly with the per-node tiers on both engines: the three-way
    (object / batch / SoA) matrix of ISSUE 3."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_soa_matches_object_oracle(self, seed):
        plan = make_plan(seed)
        logs_obj, metrics_obj = run_workload(plan, ScriptedNode, "legacy", CAPACITY, seed)
        logs_soa, metrics_soa = run_soa_workload(plan, CAPACITY, seed)
        assert metrics_soa == metrics_obj
        assert logs_soa == logs_obj

    @pytest.mark.parametrize("seed", range(6))
    def test_soa_matches_batch_vectorized(self, seed):
        plan = make_plan(seed)
        logs_bat, metrics_bat = run_workload(
            plan, BatchScriptedNode, "vectorized", CAPACITY, seed
        )
        logs_soa, metrics_soa = run_soa_workload(plan, CAPACITY, seed)
        assert metrics_soa == metrics_bat
        assert logs_soa == logs_bat

    @pytest.mark.parametrize("seed", range(4))
    def test_soa_unbounded(self, seed):
        plan = make_plan(seed)
        cap = CapacityPolicy.unbounded()
        logs_obj, metrics_obj = run_workload(plan, ScriptedNode, "legacy", cap, seed)
        logs_soa, metrics_soa = run_soa_workload(plan, cap, seed)
        assert metrics_soa == metrics_obj
        assert logs_soa == logs_obj
        assert metrics_soa["send_drops"] == 0

    def test_soa_rejects_legacy_engine(self):
        cls = SoAScriptedClass(4, {v: [[]] for v in range(4)})
        with pytest.raises(ValueError, match="vectorized"):
            SyncNetwork(cls, CAPACITY, np.random.default_rng(0), engine="legacy")

    def test_soa_rejects_unsorted_senders(self):
        class Unsorted(SoAProtocolClass):
            def on_round_soa(self, round_no, inbox):
                return MessageBatch(
                    np.array([2, 1], dtype=np.int64),
                    np.array([0, 0], dtype=np.int64),
                    "ping",
                    np.array([1, 2], dtype=np.int64),
                )

        net = SyncNetwork(Unsorted(4), CAPACITY, np.random.default_rng(0))
        with pytest.raises(ValueError, match="ascending"):
            net.run_round()

    def test_soa_unknown_receiver_raises_same_error(self):
        class Stray(SoAProtocolClass):
            def on_round_soa(self, round_no, inbox):
                return MessageBatch(
                    np.array([0], dtype=np.int64),
                    np.array([999], dtype=np.int64),
                    "ping",
                    np.array([1], dtype=np.int64),
                )

        net = SyncNetwork(
            Stray(4), CapacityPolicy.unbounded(), np.random.default_rng(0)
        )
        with pytest.raises(KeyError, match="unknown node 999"):
            net.run_round()


class TestUnbounded:
    @pytest.mark.parametrize("seed", range(5))
    def test_unbounded_capacity_equivalence(self, seed):
        plan = make_plan(seed)
        cap = CapacityPolicy.unbounded()
        logs_l, metrics_l = run_workload(plan, ScriptedNode, "legacy", cap, seed)
        logs_v, metrics_v = run_workload(plan, ScriptedNode, "vectorized", cap, seed)
        assert metrics_l == metrics_v
        assert logs_l == logs_v
        assert metrics_l["send_drops"] == 0
        assert metrics_l["receive_drops"] == 0


class TestErrorEquivalence:
    @pytest.mark.parametrize("engine", ["legacy", "vectorized"])
    def test_unknown_receiver_raises_same_error(self, engine):
        plan = {v: [[(999, "ping", 1)]] if v == 0 else [[]] for v in range(4)}
        nodes = {v: ScriptedNode(v, plan[v]) for v in range(4)}
        net = SyncNetwork(
            nodes, CapacityPolicy.unbounded(), np.random.default_rng(0), engine=engine
        )
        with pytest.raises(KeyError, match="unknown node 999"):
            net.run_round()

    @pytest.mark.parametrize("engine", ["legacy", "vectorized"])
    def test_forged_sender_raises_on_both_engines(self, engine):
        class Forger(ProtocolNode):
            def on_round(self, round_no, inbox):
                return [Message(99, 1, "fake")]

        nodes = {0: Forger(0), 1: ScriptedNode(1, [[]])}
        net = SyncNetwork(
            nodes, CapacityPolicy.unbounded(), np.random.default_rng(0), engine=engine
        )
        with pytest.raises(ValueError, match="forge"):
            net.run_round()
