"""Worker-count differential matrix: sharding never changes a bit.

ISSUE 6's tentpole acceptance: the sharded SoA round loop is **bit-for-
bit** equal to the single-process path — tree, per-node metrics, round
ledger — at every worker count, over the same 20-seed matrix the
three-way engine tests use.  Per-shard stable sorts over disjoint
ascending receiver ranges concatenate to the global stable receiver
sort, so nothing downstream can tell the difference; these tests pin
that end to end (rooting, synchroniser, fault hooks, and the per-node
send/receive counters that flush through ``metrics.as_dict()``).
"""

import math

import numpy as np
import pytest

from repro.core.protocol_tree import build_rooting_population, run_protocol_rooting
from repro.core.soa_rooting import run_soa_rooting
from repro.graphs.portgraph import PortGraph
from repro.net.asynchrony import run_with_asynchrony
from repro.net.network import CapacityPolicy
from repro.scenarios import MessageDrop, ScenarioSpec

SEEDS = range(20)


def overlay_like(n: int, seed: int, chords: int = 2) -> PortGraph:
    return PortGraph.ring_with_chords(n, delta=16, chords=chords, seed=seed)


def _flood_rounds(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n)))) + 4


def _run(graph, fr, seed, workers):
    return run_soa_rooting(
        graph, fr, rng=np.random.default_rng(seed), workers=workers
    )


def _assert_identical(a, b):
    assert a.root == b.root
    assert np.array_equal(a.parent, b.parent)
    assert np.array_equal(a.depth, b.depth)
    # as_dict carries the per-node sent/received counters — the
    # "metrics flushing under the sharded path" satellite: identical
    # dictionaries mean identical per-node totals, not just aggregates.
    assert a.metrics.as_dict() == b.metrics.as_dict()
    assert a.rounds == b.rounds


class TestShardedRootingMatrix:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_two_workers_bit_for_bit(self, seed):
        n = 48 + 8 * (seed % 5)
        graph = overlay_like(n, seed, chords=2 + seed % 2)
        fr = _flood_rounds(n)
        _assert_identical(_run(graph, fr, seed, 1), _run(graph, fr, seed, 2))

    @pytest.mark.parametrize("workers", [3, 4])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_higher_worker_counts(self, seed, workers):
        n = 48 + 8 * (seed % 5)
        graph = overlay_like(n, seed)
        fr = _flood_rounds(n)
        _assert_identical(_run(graph, fr, seed, 1), _run(graph, fr, seed, workers))

    @pytest.mark.parametrize("seed", range(4))
    def test_sharded_counters_match_object_tier_oracle(self, seed):
        # Per-node sent/received totals of the sharded run equal the
        # per-message object engine's — the strongest counter oracle.
        n = 48 + 8 * (seed % 5)
        graph = overlay_like(n, seed)
        fr = _flood_rounds(n)
        obj = run_protocol_rooting(
            graph, fr, rng=np.random.default_rng(seed), engine="legacy"
        )
        sharded = _run(graph, fr, seed, 3)
        _assert_identical(sharded, obj)

    def test_env_var_workers_engage(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        graph = overlay_like(64, seed=9)
        fr = _flood_rounds(64)
        via_env = run_soa_rooting(graph, fr, rng=np.random.default_rng(9))
        monkeypatch.delenv("REPRO_WORKERS")
        single = run_soa_rooting(graph, fr, rng=np.random.default_rng(9))
        _assert_identical(via_env, single)


class TestShardedScenarioInvariance:
    """Fault streams and delay draws are shard-invariant: the hook sees
    the canonical pre-sort stream and the delay queue the merged
    receiver-sorted columns, both outside the sharded sort."""

    SPEC = ScenarioSpec(name="drop", drop=MessageDrop(0.2), fault_seed=13)

    @pytest.mark.parametrize("seed", range(4))
    def test_synchronised_faulty_run_is_worker_invariant(self, seed):
        n = 64
        graph = overlay_like(n, seed)
        hook = self.SPEC.compile(n)
        runs = {}
        for workers in (1, 2, 3):
            soa_class = build_rooting_population(
                graph, _flood_rounds(n), tier="soa"
            )
            report, network = run_with_asynchrony(
                soa_class,
                CapacityPolicy(max_send=16, max_receive=None),
                np.random.default_rng(seed),
                max_delay=4,
                max_rounds=4 * _flood_rounds(n),
                fault_hook=hook,
                require_quiescence=False,
                workers=workers,
            )
            runs[workers] = (
                report.logical_rounds,
                report.observed_max_delay,
                report.converged,
                network.metrics.as_dict(),
            )
        assert runs[1] == runs[2] == runs[3]
        assert runs[1][3]["fault_drops"] > 0
