"""Spectral machinery tests: gaps, Cheeger sandwich, sweep cuts."""

import math

import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.analysis import conductance_exact
from repro.graphs.portgraph import PortGraph
from repro.graphs.spectral import (
    cheeger_bounds,
    conductance_interval,
    fiedler_sweep_conductance,
    lazy_walk_matrix,
    spectral_gap,
)


def lazy_cycle(n: int, delta: int = 8) -> PortGraph:
    ends_a = np.arange(n)
    ends_b = (np.arange(n) + 1) % n
    return PortGraph.from_edge_multiset(
        n=n, delta=delta, endpoints_a=ends_a, endpoints_b=ends_b
    )


class TestWalkMatrix:
    def test_simple_graph_matrix_is_lazy_stochastic(self):
        mat = lazy_walk_matrix(G.cycle_graph(6))
        assert np.allclose(mat.sum(axis=1), 1.0)
        assert np.allclose(np.diag(mat), 0.5)

    def test_portgraph_matrix_used_directly(self):
        pg = lazy_cycle(6)
        assert np.allclose(lazy_walk_matrix(pg), pg.walk_matrix())

    def test_isolated_node_self_absorbs(self):
        mat = lazy_walk_matrix([set(), {2}, {1}])
        assert mat[0, 0] == 1.0


class TestSpectralGap:
    def test_gap_of_lazy_cycle_matches_formula(self):
        # Lazy cycle walk matrix eigenvalues: known closed form
        # lambda_k = 6/8 + (2/8) cos(2 pi k / n) for delta=8 with one
        # cycle edge each way.
        n = 16
        gap = spectral_gap(lazy_cycle(n))
        expected = 1 - (6 / 8 + (2 / 8) * math.cos(2 * math.pi / n))
        assert gap == pytest.approx(expected, rel=1e-9)

    def test_gap_shrinks_with_cycle_length(self):
        gaps = [spectral_gap(lazy_cycle(n)) for n in (8, 16, 32)]
        assert gaps[0] > gaps[1] > gaps[2]

    def test_gap_positive_iff_connected(self):
        pg = PortGraph.from_edge_multiset(
            n=4,
            delta=4,
            endpoints_a=np.array([0, 2]),
            endpoints_b=np.array([1, 3]),
        )
        assert spectral_gap(pg) == pytest.approx(0.0, abs=1e-9)

    def test_sparse_path_agrees_with_dense(self):
        pg = lazy_cycle(64)
        dense = spectral_gap(pg)
        sparse = spectral_gap(pg, sparse_threshold=10)
        assert sparse == pytest.approx(dense, abs=1e-8)

    def test_single_node(self):
        assert spectral_gap(PortGraph(np.zeros((1, 4), dtype=np.int64))) == 1.0


class TestCheegerSandwich:
    def test_bounds_shape(self):
        lo, hi = cheeger_bounds(0.08)
        assert lo == pytest.approx(0.04)
        assert hi == pytest.approx(math.sqrt(0.16))

    def test_negative_gap_clamped(self):
        lo, hi = cheeger_bounds(-1e-12)
        assert lo == 0.0 and hi == 0.0

    @pytest.mark.parametrize("n", [8, 10, 12])
    def test_sandwich_contains_exact_conductance(self, n):
        pg = lazy_cycle(n)
        exact = conductance_exact(pg)
        lo, _ = cheeger_bounds(spectral_gap(pg))
        hi = fiedler_sweep_conductance(pg)
        assert lo <= exact + 1e-9
        assert exact <= hi + 1e-9


class TestSweepCut:
    def test_sweep_upper_bounds_gap_conductance(self):
        pg = lazy_cycle(24)
        gap = spectral_gap(pg)
        sweep = fiedler_sweep_conductance(pg)
        assert sweep <= math.sqrt(2 * gap) + 1e-9

    def test_sweep_on_simple_graph(self):
        # Barbell: the sweep must find the bridge cut.
        phi = fiedler_sweep_conductance(G.barbell(6))
        assert phi < 0.05

    def test_interval_is_ordered(self):
        lo, hi = conductance_interval(lazy_cycle(20))
        assert lo <= hi
