"""Stoer–Wagner minimum cut: known answers and networkx differential."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.mincut import min_cut_of_portgraph, stoer_wagner_min_cut
from repro.graphs.portgraph import PortGraph


def weights_of(graph: nx.Graph) -> np.ndarray:
    n = graph.number_of_nodes()
    w = np.zeros((n, n))
    for a, b in graph.edges:
        w[a, b] += 1
        w[b, a] += 1
    return w


class TestStoerWagner:
    def test_bridge_graph(self):
        value, side = stoer_wagner_min_cut(weights_of(G.two_cliques_bridge(4)))
        assert value == 1
        assert len(side) in (4, 4)

    def test_cycle_cut_is_two(self):
        value, _ = stoer_wagner_min_cut(weights_of(G.cycle_graph(9)))
        assert value == 2

    def test_complete_graph(self):
        value, side = stoer_wagner_min_cut(weights_of(G.complete_graph(6)))
        assert value == 5
        assert len(side) == 1

    def test_weighted_cut(self):
        w = np.array(
            [
                [0, 3, 0, 0],
                [3, 0, 1, 0],
                [0, 1, 0, 3],
                [0, 0, 3, 0],
            ],
            dtype=float,
        )
        value, side = stoer_wagner_min_cut(w)
        assert value == 1
        assert sorted(side) in ([0, 1], [2, 3])

    def test_partition_is_consistent(self):
        g = G.barbell(5, 2)
        w = weights_of(g)
        value, side = stoer_wagner_min_cut(w)
        inside = set(side)
        crossing = sum(
            1 for a, b in g.edges if (a in inside) != (b in inside)
        )
        assert crossing == value

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx_on_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        g = G.erdos_renyi_connected(24, 5.0, rng)
        for a, b in g.edges:
            g[a][b]["weight"] = 1
        expected, _ = nx.stoer_wagner(g)
        value, _ = stoer_wagner_min_cut(weights_of(g))
        assert value == expected

    def test_input_validation(self):
        with pytest.raises(ValueError):
            stoer_wagner_min_cut(np.zeros((1, 1)))
        with pytest.raises(ValueError):
            stoer_wagner_min_cut(np.array([[0.0, 1.0], [2.0, 0.0]]))
        with pytest.raises(ValueError):
            stoer_wagner_min_cut(np.zeros(4))


class TestPortGraphCut:
    def test_counts_parallel_edges(self):
        # Path 0-1-2 where {0,1} has multiplicity 3 and {1,2} has 1.
        pg = PortGraph.from_edge_multiset(
            n=3,
            delta=8,
            endpoints_a=np.array([0, 0, 0, 1]),
            endpoints_b=np.array([1, 1, 1, 2]),
        )
        assert min_cut_of_portgraph(pg) == 1

    def test_lambda_copies_give_lambda_cut(self):
        lam = 4
        ends_a = np.repeat(np.arange(5), lam)
        ends_b = np.repeat(np.arange(1, 6) % 5, lam)  # cycle, lam copies
        pg = PortGraph.from_edge_multiset(
            n=5, delta=24, endpoints_a=ends_a, endpoints_b=ends_b
        )
        assert min_cut_of_portgraph(pg) == 2 * lam

    def test_disconnected_raises(self):
        pg = PortGraph(np.zeros((3, 4), dtype=np.int64) + np.arange(3)[:, None])
        with pytest.raises(ValueError):
            min_cut_of_portgraph(pg)
