"""Churn simulation tests (§1.4 robustness machinery)."""

import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.churn import churn_report, fail_nodes, survival_curve


class TestFailNodes:
    def test_no_churn_keeps_everything(self, rng):
        adj, alive = fail_nodes(G.cycle_graph(20), 0.0, rng)
        assert alive.all()
        assert all(len(a) == 2 for a in adj)

    def test_total_churn_kills_everything(self, rng):
        adj, alive = fail_nodes(G.cycle_graph(20), 1.0, rng)
        assert not alive.any()
        assert all(len(a) == 0 for a in adj)

    def test_dead_nodes_removed_from_neighbours(self, rng):
        adj, alive = fail_nodes(G.complete_graph(30), 0.5, rng)
        for v in range(30):
            if alive[v]:
                assert all(alive[u] for u in adj[v])
            else:
                assert adj[v] == set()

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            fail_nodes(G.cycle_graph(5), 1.5, rng)


class TestReport:
    def test_connected_survivors(self, rng):
        adj, alive = fail_nodes(G.complete_graph(40), 0.3, rng)
        report = churn_report(adj, alive)
        assert report.stayed_connected
        assert report.largest_fraction == 1.0
        assert report.survivors == int(alive.sum())

    def test_shattered_line(self):
        rng = np.random.default_rng(3)
        adj, alive = fail_nodes(G.line_graph(200), 0.3, rng)
        report = churn_report(adj, alive)
        assert report.components > 10
        assert report.largest_fraction < 0.5

    def test_empty_survivors(self):
        alive = np.zeros(4, dtype=bool)
        report = churn_report([set()] * 4, alive)
        assert report.largest_fraction == 0.0
        assert report.components == 0


class TestSurvivalCurve:
    def test_monotone_degradation(self):
        rng = np.random.default_rng(4)
        rows = survival_curve(G.cycle_graph(100), [0.05, 0.3], rng, trials=5)
        assert rows[0]["mean_largest_fraction"] > rows[1]["mean_largest_fraction"]

    def test_overlay_beats_ring(self):
        # The §1.4 claim in miniature: the expander overlay survives churn
        # that shatters the ring it was built from.
        from repro.core.pipeline import build_well_formed_tree

        n = 128
        ring = G.cycle_graph(n)
        overlay = build_well_formed_tree(
            ring, rng=np.random.default_rng(0)
        ).final_graph()
        rng = np.random.default_rng(5)
        ring_rows = survival_curve(ring, [0.2], rng, trials=5)
        overlay_rows = survival_curve(
            overlay.neighbor_sets(), [0.2], rng, trials=5
        )
        assert overlay_rows[0]["connected_rate"] == 1.0
        assert ring_rows[0]["connected_rate"] == 0.0
        assert (
            overlay_rows[0]["mean_largest_fraction"]
            > 2 * ring_rows[0]["mean_largest_fraction"]
        )
