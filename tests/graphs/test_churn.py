"""Churn simulation tests (§1.4 robustness machinery)."""

import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.portgraph import PortGraph
from repro.graphs.churn import (
    churn_report,
    fail_nodes,
    rebuild_survivor_overlay,
    survival_curve,
)


class TestFailNodes:
    def test_no_churn_keeps_everything(self, rng):
        adj, alive = fail_nodes(G.cycle_graph(20), 0.0, rng)
        assert alive.all()
        assert all(len(a) == 2 for a in adj)

    def test_total_churn_kills_everything(self, rng):
        adj, alive = fail_nodes(G.cycle_graph(20), 1.0, rng)
        assert not alive.any()
        assert all(len(a) == 0 for a in adj)

    def test_dead_nodes_removed_from_neighbours(self, rng):
        adj, alive = fail_nodes(G.complete_graph(30), 0.5, rng)
        for v in range(30):
            if alive[v]:
                assert all(alive[u] for u in adj[v])
            else:
                assert adj[v] == set()

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            fail_nodes(G.cycle_graph(5), 1.5, rng)


class TestReport:
    def test_connected_survivors(self, rng):
        adj, alive = fail_nodes(G.complete_graph(40), 0.3, rng)
        report = churn_report(adj, alive)
        assert report.stayed_connected
        assert report.largest_fraction == 1.0
        assert report.survivors == int(alive.sum())

    def test_shattered_line(self):
        rng = np.random.default_rng(3)
        adj, alive = fail_nodes(G.line_graph(200), 0.3, rng)
        report = churn_report(adj, alive)
        assert report.components > 10
        assert report.largest_fraction < 0.5

    def test_empty_survivors(self):
        alive = np.zeros(4, dtype=bool)
        report = churn_report([set()] * 4, alive)
        assert report.largest_fraction == 0.0
        assert report.components == 0


class TestSurvivalCurve:
    def test_monotone_degradation(self):
        rng = np.random.default_rng(4)
        rows = survival_curve(G.cycle_graph(100), [0.05, 0.3], rng, trials=5)
        assert rows[0]["mean_largest_fraction"] > rows[1]["mean_largest_fraction"]

    def test_overlay_beats_ring(self):
        # The §1.4 claim in miniature: the expander overlay survives churn
        # that shatters the ring it was built from.
        from repro.core.pipeline import build_well_formed_tree

        n = 128
        ring = G.cycle_graph(n)
        overlay = build_well_formed_tree(
            ring, rng=np.random.default_rng(0)
        ).final_graph()
        rng = np.random.default_rng(5)
        ring_rows = survival_curve(ring, [0.2], rng, trials=5)
        overlay_rows = survival_curve(
            overlay.neighbor_sets(), [0.2], rng, trials=5
        )
        assert overlay_rows[0]["connected_rate"] == 1.0
        assert ring_rows[0]["connected_rate"] == 0.0
        assert (
            overlay_rows[0]["mean_largest_fraction"]
            > 2 * ring_rows[0]["mean_largest_fraction"]
        )


class TestSurvivorRebuild:
    """The §1.4 "throw away and reconstruct" step on the batched engine."""

    def test_rebuild_produces_valid_overlay(self):
        rng = np.random.default_rng(7)
        result = rebuild_survivor_overlay(G.complete_graph(48), 0.25, rng)
        k = result.survivors.shape[0]
        assert k == result.report.largest_component
        assert result.overlay.well_formed.max_degree() <= 3
        assert result.overlay.bfs.parent.shape[0] == k
        # Survivor labels are original ids: a subset of 0..n-1, sorted.
        assert (np.diff(result.survivors) > 0).all()
        assert 0 <= result.survivors[0] and result.survivors[-1] < 48

    @pytest.mark.parametrize("seed", range(4))
    def test_seed_matched_rebuild_identical_across_engines(self, seed):
        """Regression: under one seed, every execution tier reconstructs
        the *identical* survivor overlay — same survivor set, same BFS
        tree, same round ledger — so churn re-runs can move to the
        batched/SoA tiers without changing a single result."""
        runs = {}
        for rooting in ("reference", "protocol", "batch", "soa"):
            rng = np.random.default_rng(100 + seed)
            runs[rooting] = rebuild_survivor_overlay(
                G.complete_graph(40), 0.3, rng, rooting=rooting
            )
        ref = runs["reference"]
        for rooting, run in runs.items():
            assert np.array_equal(run.survivors, ref.survivors), rooting
            assert np.array_equal(run.overlay.bfs.parent, ref.overlay.bfs.parent)
            assert np.array_equal(run.overlay.bfs.depth, ref.overlay.bfs.depth)
            # Every phase except the bfs entry (whose round *accounting*
            # legitimately differs: tree height for the oracle, flood +
            # BFS protocol rounds for the message tiers) matches the
            # reference ledger exactly.
            for phase in ("prepare", "evolutions", "well_forming"):
                assert run.overlay.round_ledger[phase] == ref.overlay.round_ledger[phase], (
                    rooting,
                    phase,
                )
        # The message-level tiers agree on the full ledger, bfs included.
        assert (
            runs["batch"].overlay.round_ledger
            == runs["soa"].overlay.round_ledger
            == runs["protocol"].overlay.round_ledger
        )

    def test_total_churn_raises(self):
        with pytest.raises(ValueError, match="rebuild"):
            rebuild_survivor_overlay(
                G.cycle_graph(16), 1.0, np.random.default_rng(0)
            )


class TestHybridRebuild:
    """Churn-rebuild through the §4 pipeline: every surviving component
    (not just the largest) gets a well-formed tree, identically on both
    hybrid tiers under a matched seed."""

    @pytest.mark.parametrize("seed", range(3))
    def test_hybrid_tiers_rebuild_identically(self, seed):
        graph = PortGraph.ring_with_chords(220, delta=16, chords=2, seed=seed)
        per_node = rebuild_survivor_overlay(
            graph, 0.15, np.random.default_rng(seed), hybrid="object"
        )
        columnar = rebuild_survivor_overlay(
            graph, 0.15, np.random.default_rng(seed), hybrid="soa"
        )
        assert np.array_equal(per_node.survivors, columnar.survivors)
        assert per_node.report == columnar.report
        assert np.array_equal(per_node.overlay.labels, columnar.overlay.labels)
        assert np.array_equal(
            per_node.overlay.forest.parent, columnar.overlay.forest.parent
        )
        assert per_node.overlay.ledger.summary() == columnar.overlay.ledger.summary()

    def test_hybrid_rebuild_covers_all_components(self):
        graph = PortGraph.ring_with_chords(150, delta=16, chords=1, seed=2)
        rebuild = rebuild_survivor_overlay(
            graph, 0.3, np.random.default_rng(7), hybrid="soa"
        )
        # Every survivor is labelled and parented within its component.
        assert rebuild.survivors.shape[0] == rebuild.report.survivors
        labels = rebuild.overlay.labels
        assert labels.shape[0] == rebuild.survivors.shape[0]
        assert len(rebuild.overlay.components()) == rebuild.report.components
        assert rebuild.overlay.forest.max_degree() <= 3

    def test_invalid_hybrid_tier_rejected(self):
        graph = PortGraph.ring_with_chords(64, delta=16, chords=2, seed=0)
        with pytest.raises(ValueError, match="hybrid tier must be one of"):
            rebuild_survivor_overlay(
                graph, 0.1, np.random.default_rng(0), hybrid="warp"
            )

    def test_hybrid_rejects_theorem11_kwargs(self):
        graph = PortGraph.ring_with_chords(64, delta=16, chords=2, seed=0)
        with pytest.raises(ValueError, match="overlay_params instead"):
            rebuild_survivor_overlay(
                graph, 0.1, np.random.default_rng(0), rooting="soa", hybrid="soa"
            )
