"""Sparse-table range query tests (brute-force differential)."""

import numpy as np
import pytest

from repro.graphs.rmq import SparseTable


class TestSparseTable:
    def test_min_queries_exhaustive(self):
        values = np.array([5, 2, 8, 1, 9, 3, 7, 4])
        table = SparseTable(values, op="min")
        n = len(values)
        for lo in range(n):
            for hi in range(lo + 1, n + 1):
                assert table.query(lo, hi) == values[lo:hi].min()

    def test_max_queries_exhaustive(self):
        values = np.array([5, 2, 8, 1, 9, 3, 7, 4])
        table = SparseTable(values, op="max")
        n = len(values)
        for lo in range(n):
            for hi in range(lo + 1, n + 1):
                assert table.query(lo, hi) == values[lo:hi].max()

    def test_single_element(self):
        table = SparseTable(np.array([42]), op="min")
        assert table.query(0, 1) == 42

    def test_random_differential(self):
        rng = np.random.default_rng(3)
        values = rng.integers(-1000, 1000, size=100)
        table = SparseTable(values, op="min")
        for _ in range(200):
            lo = int(rng.integers(0, 100))
            hi = int(rng.integers(lo + 1, 101))
            assert table.query(lo, hi) == values[lo:hi].min()

    def test_invalid_range(self):
        table = SparseTable(np.arange(5), op="min")
        with pytest.raises(IndexError):
            table.query(2, 2)
        with pytest.raises(IndexError):
            table.query(0, 6)
        with pytest.raises(IndexError):
            table.query(-1, 3)

    def test_bad_op(self):
        with pytest.raises(ValueError):
            SparseTable(np.arange(3), op="sum")

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            SparseTable(np.zeros((2, 2)))
