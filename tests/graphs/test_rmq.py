"""Sparse-table range query tests (brute-force differential)."""

import numpy as np
import pytest

from repro.graphs.rmq import SparseTable


class TestSparseTable:
    def test_min_queries_exhaustive(self):
        values = np.array([5, 2, 8, 1, 9, 3, 7, 4])
        table = SparseTable(values, op="min")
        n = len(values)
        for lo in range(n):
            for hi in range(lo + 1, n + 1):
                assert table.query(lo, hi) == values[lo:hi].min()

    def test_max_queries_exhaustive(self):
        values = np.array([5, 2, 8, 1, 9, 3, 7, 4])
        table = SparseTable(values, op="max")
        n = len(values)
        for lo in range(n):
            for hi in range(lo + 1, n + 1):
                assert table.query(lo, hi) == values[lo:hi].max()

    def test_single_element(self):
        table = SparseTable(np.array([42]), op="min")
        assert table.query(0, 1) == 42

    def test_random_differential(self):
        rng = np.random.default_rng(3)
        values = rng.integers(-1000, 1000, size=100)
        table = SparseTable(values, op="min")
        for _ in range(200):
            lo = int(rng.integers(0, 100))
            hi = int(rng.integers(lo + 1, 101))
            assert table.query(lo, hi) == values[lo:hi].min()

    def test_invalid_range(self):
        table = SparseTable(np.arange(5), op="min")
        with pytest.raises(IndexError):
            table.query(2, 2)
        with pytest.raises(IndexError):
            table.query(0, 6)
        with pytest.raises(IndexError):
            table.query(-1, 3)

    def test_query_many_matches_scalar(self):
        rng = np.random.default_rng(7)
        values = rng.integers(-1000, 1000, size=97)
        for op in ("min", "max"):
            table = SparseTable(values, op=op)
            lo = rng.integers(0, 97, size=300)
            hi = np.array([int(rng.integers(int(x) + 1, 98)) for x in lo])
            batch = table.query_many(lo, hi)
            for i in range(lo.shape[0]):
                assert batch[i] == table.query(int(lo[i]), int(hi[i]))

    def test_query_many_empty_batch(self):
        table = SparseTable(np.arange(5), op="min")
        assert table.query_many(np.array([]), np.array([])).shape == (0,)

    def test_query_many_rejects_invalid_ranges(self):
        table = SparseTable(np.arange(8), op="min")
        with pytest.raises(IndexError):
            table.query_many(np.array([0, 3]), np.array([4, 3]))  # empty range
        with pytest.raises(IndexError):
            table.query_many(np.array([-1]), np.array([2]))  # negative lo
        with pytest.raises(IndexError):
            table.query_many(np.array([0]), np.array([9]))  # hi > n
        with pytest.raises(ValueError):
            table.query_many(np.array([0, 1]), np.array([2]))  # shape mismatch

    def test_query_many_no_sentinel_leak(self):
        """A -1 bound must raise, not wrap to the last slot — the
        batched twin of the Euler root-sentinel contract (C6)."""
        table = SparseTable(np.array([5, 1, 9]), op="max")
        with pytest.raises(IndexError):
            table.query_many(np.array([-1]), np.array([1]))

    def test_bad_op(self):
        with pytest.raises(ValueError):
            SparseTable(np.arange(3), op="sum")

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            SparseTable(np.zeros((2, 2)))
