"""Union-find unit tests."""

import pytest

from repro.graphs.unionfind import UnionFind


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert uf.num_sets == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.find(0) == uf.find(1)
        assert uf.num_sets == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.num_sets == 2

    def test_transitivity(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        assert uf.find(0) == uf.find(2)
        assert uf.find(4) == uf.find(5)
        assert uf.find(0) != uf.find(4)
        assert uf.find(3) == 3

    def test_groups(self):
        uf = UnionFind(5)
        uf.union(0, 2)
        uf.union(2, 4)
        groups = sorted(map(tuple, uf.groups().values()))
        assert groups == [(0, 2, 4), (1,), (3,)]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_empty(self):
        uf = UnionFind(0)
        assert uf.num_sets == 0
        assert uf.groups() == {}
