"""Workload generator unit tests: sizes, degrees, connectivity, shapes."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets, is_connected


def _connected(graph) -> bool:
    return is_connected(adjacency_sets(graph))


class TestLineAndCycle:
    def test_line_structure(self):
        g = G.line_graph(10)
        assert g.number_of_nodes() == 10
        assert g.number_of_edges() == 9
        degrees = sorted(d for _, d in g.degree)
        assert degrees == [1, 1] + [2] * 8

    def test_line_is_connected(self):
        assert _connected(G.line_graph(33))

    def test_cycle_structure(self):
        g = G.cycle_graph(12)
        assert g.number_of_edges() == 12
        assert all(d == 2 for _, d in g.degree)

    def test_cycle_small_degenerates_to_line(self):
        g = G.cycle_graph(2)
        assert g.number_of_edges() == 1

    def test_line_two_nodes(self):
        g = G.line_graph(2)
        assert list(g.edges) == [(0, 1)]


class TestStarsAndTrees:
    def test_star(self):
        g = G.star_graph(9)
        assert g.degree[0] == 8
        assert all(g.degree[v] == 1 for v in range(1, 9))

    def test_binary_tree_is_tree(self):
        g = G.binary_tree(31)
        assert nx.is_tree(g)
        assert max(d for _, d in g.degree) == 3

    def test_random_tree_is_tree(self, rng):
        g = G.random_tree(50, rng)
        assert nx.is_tree(g)

    def test_random_tree_deterministic_with_seed(self):
        g1 = G.random_tree(40, np.random.default_rng(5))
        g2 = G.random_tree(40, np.random.default_rng(5))
        assert set(g1.edges) == set(g2.edges)

    def test_caterpillar_connected_with_exact_n(self):
        for n in (5, 10, 17):
            g = G.caterpillar(n)
            assert g.number_of_nodes() == n
            assert _connected(g)

    def test_double_star_bridge(self):
        g = G.double_star(20)
        assert _connected(g)
        assert (0, 1) in g.edges


class TestGridsAndCubes:
    def test_grid_size_and_degree(self):
        g = G.grid_2d(4, 5)
        assert g.number_of_nodes() == 20
        assert max(d for _, d in g.degree) == 4
        assert _connected(g)

    def test_torus_regularity(self):
        g = G.torus_2d(4, 4)
        assert all(d == 4 for _, d in g.degree)

    def test_hypercube(self):
        g = G.hypercube(4)
        assert g.number_of_nodes() == 16
        assert all(d == 4 for _, d in g.degree)
        assert _connected(g)


class TestRandomGraphs:
    def test_random_regular_degrees(self, rng):
        for n, d in [(20, 3), (40, 6), (64, 8)]:
            g = G.random_regular(n, d, rng)
            assert all(deg == d for _, deg in g.degree)
            assert _connected(g)

    def test_random_regular_rejects_odd_product(self, rng):
        with pytest.raises(ValueError):
            G.random_regular(9, 3, rng)

    def test_random_regular_rejects_degree_too_large(self, rng):
        with pytest.raises(ValueError):
            G.random_regular(5, 5, rng)

    def test_erdos_renyi_connected(self, rng):
        g = G.erdos_renyi_connected(100, 8.0, rng)
        assert g.number_of_nodes() == 100
        assert _connected(g)

    def test_erdos_renyi_giant_is_connected(self, rng):
        g = G.erdos_renyi_giant(200, 3.0, rng)
        assert g.number_of_nodes() > 100  # giant component exists
        assert _connected(g)


class TestCompositeTopologies:
    def test_barbell(self):
        g = G.barbell(5, 3)
        assert g.number_of_nodes() == 13
        assert _connected(g)

    def test_lollipop(self):
        g = G.lollipop(6, 4)
        assert g.number_of_nodes() == 10
        assert _connected(g)

    def test_ring_of_cliques(self):
        g = G.ring_of_cliques(4, 5)
        assert g.number_of_nodes() == 20
        assert _connected(g)

    def test_component_mixture_membership(self, rng):
        mix, members = G.component_mixture(
            [G.line_graph(5), G.cycle_graph(4), G.star_graph(6)]
        )
        assert mix.number_of_nodes() == 15
        assert members[0] == [0, 1, 2, 3, 4]
        assert members[1] == [5, 6, 7, 8]
        assert members[2] == [9, 10, 11, 12, 13, 14]
        # no cross-component edges
        for a, b in mix.edges:
            assert any(a in m and b in m for m in members)


class TestOrientation:
    def test_random_orientation_preserves_edge_set(self, rng):
        g = G.grid_2d(4, 4)
        d = G.random_orientation(g, rng)
        und = {(min(a, b), max(a, b)) for a, b in d.edges}
        assert und == {(min(a, b), max(a, b)) for a, b in g.edges}

    def test_random_orientation_single_direction(self, rng):
        d = G.random_orientation(G.cycle_graph(10), rng)
        for a, b in d.edges:
            assert not d.has_edge(b, a)


class TestWorkloadRegistry:
    @pytest.mark.parametrize("name", sorted(G.WORKLOADS))
    def test_every_workload_instantiates(self, name, rng):
        g = G.make_workload(name, 40, rng)
        assert g.number_of_nodes() >= 10
        assert _connected(g)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            G.make_workload("nope", 10)
