"""PortGraph invariants: construction, symmetry, laziness, matrices."""

import numpy as np
import pytest

from repro.graphs.portgraph import SELF_LOOP, PortGraph


def small_graph() -> PortGraph:
    """Triangle with delta=4: each node one edge to both others + loops."""
    return PortGraph.from_edge_multiset(
        n=3,
        delta=4,
        endpoints_a=np.array([0, 1, 2]),
        endpoints_b=np.array([1, 2, 0]),
    )


class TestConstruction:
    def test_shape(self):
        pg = small_graph()
        assert pg.n == 3
        assert pg.delta == 4

    def test_padding_with_self_loops(self):
        pg = small_graph()
        assert (pg.self_loop_counts() == 2).all()

    def test_real_degree(self):
        pg = small_graph()
        assert (pg.real_degree() == 2).all()

    def test_edge_ids_symmetric(self):
        pg = small_graph()
        # Edge 0 = {0,1}: exactly one port at 0 and one at 1 carry id 0.
        for eid, (a, b) in enumerate([(0, 1), (1, 2), (2, 0)]):
            assert (pg.port_edge_ids[a] == eid).sum() == 1
            assert (pg.port_edge_ids[b] == eid).sum() == 1

    def test_self_loop_ports_have_sentinel_id(self):
        pg = small_graph()
        loops = pg.ports == np.arange(3)[:, None]
        assert (pg.port_edge_ids[loops] == SELF_LOOP).all()

    def test_overfull_node_raises(self):
        with pytest.raises(ValueError, match="exceed"):
            PortGraph.from_edge_multiset(
                n=2,
                delta=2,
                endpoints_a=np.array([0, 0, 0]),
                endpoints_b=np.array([1, 1, 1]),
            )

    def test_parallel_edges_kept(self):
        pg = PortGraph.from_edge_multiset(
            n=2,
            delta=8,
            endpoints_a=np.array([0, 0, 0]),
            endpoints_b=np.array([1, 1, 1]),
        )
        assert (pg.real_degree() == 3).all()
        assert len(pg.edge_multiset()) == 3
        assert pg.unique_edges() == {(0, 1)}

    def test_explicit_loop_edge_consumes_two_ports(self):
        pg = PortGraph.from_edge_multiset(
            n=2,
            delta=4,
            endpoints_a=np.array([0]),
            endpoints_b=np.array([0]),
        )
        # A loop edge {0,0} occupies two ports at node 0 (both "self").
        assert pg.self_loop_counts()[0] == 4
        assert pg.self_loop_counts()[1] == 4

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            PortGraph(np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            PortGraph(
                np.zeros((2, 2), dtype=np.int64),
                port_edge_ids=np.zeros((3, 2), dtype=np.int64),
            )


class TestInvariants:
    def test_symmetry(self):
        assert small_graph().is_symmetric()

    def test_asymmetric_detected(self):
        ports = np.array([[1, 0], [1, 1]])  # 0 points at 1, 1 never back
        assert not PortGraph(ports).is_symmetric()

    def test_laziness(self):
        pg = small_graph()
        assert pg.is_lazy(min_fraction=0.5)
        assert not pg.is_lazy(min_fraction=0.9)

    def test_neighbor_sets(self):
        pg = small_graph()
        assert pg.neighbor_sets() == [{1, 2}, {0, 2}, {0, 1}]


class TestWalkMatrix:
    def test_rows_are_stochastic(self):
        mat = small_graph().walk_matrix()
        assert np.allclose(mat.sum(axis=1), 1.0)

    def test_symmetric_for_undirected_multigraph(self):
        mat = small_graph().walk_matrix()
        assert np.allclose(mat, mat.T)

    def test_entries_reflect_multiplicity(self):
        pg = PortGraph.from_edge_multiset(
            n=2,
            delta=8,
            endpoints_a=np.array([0, 0]),
            endpoints_b=np.array([1, 1]),
        )
        mat = pg.walk_matrix()
        assert mat[0, 1] == pytest.approx(2 / 8)
        assert mat[0, 0] == pytest.approx(6 / 8)


class TestHelpers:
    def test_complete_lazy_is_lazy_and_symmetric(self):
        pg = PortGraph.complete_lazy(6, 8)
        assert pg.is_lazy()
        assert pg.is_symmetric()

    def test_copy_is_independent(self):
        pg = small_graph()
        cp = pg.copy()
        cp.ports[0, 0] = 0
        assert pg.ports[0, 0] != 0 or (pg.ports[0] == cp.ports[0]).all() is False
        assert not np.array_equal(pg.ports, cp.ports)
