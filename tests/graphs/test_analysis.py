"""Structural analysis tests: BFS, diameter, components, conductance."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.analysis import (
    adjacency_sets,
    bfs_distances,
    bfs_tree,
    conductance_exact,
    conductance_of_set,
    connected_components,
    degree_stats,
    diameter,
    eccentricity,
    edge_boundary_size,
    is_connected,
)
from repro.graphs.portgraph import PortGraph


class TestAdjacency:
    def test_from_networkx_undirected(self):
        adj = adjacency_sets(G.line_graph(4))
        assert adj == [{1}, {0, 2}, {1, 3}, {2}]

    def test_from_digraph_ignores_direction(self, rng):
        d = G.random_orientation(G.cycle_graph(6), rng)
        adj = adjacency_sets(d)
        assert all(len(a) == 2 for a in adj)

    def test_from_portgraph(self):
        pg = PortGraph.from_edge_multiset(
            n=3, delta=4, endpoints_a=np.array([0, 1]), endpoints_b=np.array([1, 2])
        )
        assert adjacency_sets(pg) == [{1}, {0, 2}, {1}]

    def test_from_raw_lists(self):
        adj = adjacency_sets([[1], [0]])
        assert adj == [{1}, {0}]


class TestBFS:
    def test_distances_on_line(self):
        adj = adjacency_sets(G.line_graph(6))
        assert bfs_distances(adj, 0).tolist() == [0, 1, 2, 3, 4, 5]

    def test_unreachable_marked(self):
        adj = [set(), set()]
        assert bfs_distances(adj, 0).tolist() == [0, -1]

    def test_bfs_tree_parents(self):
        adj = adjacency_sets(G.cycle_graph(5))
        parent = bfs_tree(adj, 0)
        assert parent[0] == 0
        assert parent[1] == 0 and parent[4] == 0
        assert parent[2] == 1 and parent[3] == 4

    def test_bfs_tree_matches_distances(self, rng):
        g = G.erdos_renyi_connected(60, 6.0, rng)
        adj = adjacency_sets(g)
        parent = bfs_tree(adj, 0)
        dist = bfs_distances(adj, 0)
        for v in range(1, 60):
            assert dist[v] == dist[parent[v]] + 1


class TestComponentsAndDiameter:
    def test_components_of_mixture(self, rng):
        mix, members = G.component_mixture([G.line_graph(4), G.cycle_graph(3)])
        comps = connected_components(adjacency_sets(mix))
        assert sorted(map(tuple, comps)) == sorted(map(tuple, members))

    def test_is_connected(self):
        assert is_connected(adjacency_sets(G.line_graph(5)))
        assert not is_connected([{1}, {0}, set()])

    def test_diameter_of_known_graphs(self):
        assert diameter(adjacency_sets(G.line_graph(7))) == 6
        assert diameter(adjacency_sets(G.cycle_graph(8))) == 4
        assert diameter(adjacency_sets(G.complete_graph(5))) == 1
        assert diameter(adjacency_sets(G.star_graph(9))) == 2

    def test_diameter_heuristic_on_tree_is_exact(self, rng):
        g = G.random_tree(300, rng)
        adj = adjacency_sets(g)
        exact = diameter(adj, exact_threshold=1000)
        heuristic = diameter(adj, exact_threshold=10)
        assert heuristic == exact  # double sweep is exact on trees

    def test_diameter_raises_on_disconnected(self):
        with pytest.raises(ValueError):
            diameter([{1}, {0}, set()])

    def test_eccentricity(self):
        adj = adjacency_sets(G.line_graph(5))
        assert eccentricity(adj, 0) == 4
        assert eccentricity(adj, 2) == 2


class TestConductance:
    def test_boundary_size(self):
        adj = adjacency_sets(G.cycle_graph(6))
        assert edge_boundary_size(adj, {0, 1, 2}) == 2

    def test_conductance_of_set_simple_graph(self):
        # Cycle of 6, S = {0,1,2}: 2 boundary edges, dmax=2 -> 2/(2*3).
        phi = conductance_of_set(G.cycle_graph(6), {0, 1, 2})
        assert phi == pytest.approx(1 / 3)

    def test_conductance_of_set_portgraph_counts_multiplicity(self):
        pg = PortGraph.from_edge_multiset(
            n=4,
            delta=8,
            endpoints_a=np.array([0, 0, 1, 2]),
            endpoints_b=np.array([1, 1, 2, 3]),
        )
        # S = {0, 1}: boundary = single edge {1,2} -> 1 / (8*2).
        assert conductance_of_set(pg, {0, 1}) == pytest.approx(1 / 16)

    def test_exact_conductance_cycle(self):
        # Cycle C8: minimum over sets of size 4 = 2/(2*4) = 0.25.
        assert conductance_exact(G.cycle_graph(8)) == pytest.approx(0.25)

    def test_exact_conductance_guard(self):
        with pytest.raises(ValueError):
            conductance_exact(G.cycle_graph(30))

    def test_conductance_empty_set_rejected(self):
        with pytest.raises(ValueError):
            conductance_of_set(G.cycle_graph(4), set())


class TestDegreeStats:
    def test_stats(self):
        stats = degree_stats(adjacency_sets(G.star_graph(5)))
        assert stats["max"] == 4
        assert stats["min"] == 1
        assert stats["mean"] == pytest.approx(8 / 5)
