"""Workload registry tests: declared tier support, lazy builders, and
the one consistent choice-listing validation message shared by every
layer that used to hand-roll the check."""

from __future__ import annotations

import pytest

from repro.runtime import (
    HYBRID_TIERS,
    ROOTING_TIERS,
    RunContext,
    WORKLOADS,
    get_workload,
    validate_tier,
)


class TestRegistryShape:
    def test_known_workloads(self):
        assert set(WORKLOADS) == {
            "rooting",
            "expander",
            "hybrid",
            "churn-rebuild",
            "supernode-merge",
            "pointer-jumping",
            "flooding",
        }

    def test_entries_are_self_named(self):
        for name, workload in WORKLOADS.items():
            assert workload.name == name

    def test_tier_fields_are_context_fields(self):
        context_fields = set(RunContext().__dataclass_fields__)
        for workload in WORKLOADS.values():
            assert workload.tier_field in context_fields

    def test_declared_tiers(self):
        assert WORKLOADS["rooting"].tiers == ROOTING_TIERS
        assert WORKLOADS["hybrid"].tiers == HYBRID_TIERS
        assert WORKLOADS["churn-rebuild"].tiers == HYBRID_TIERS
        assert WORKLOADS["supernode-merge"].tiers == ("object",)

    def test_builders_load(self):
        for workload in WORKLOADS.values():
            assert callable(workload.load()), workload.name


class TestValidation:
    def test_valid_tier_returned(self):
        assert validate_tier("hybrid", "soa") == "soa"
        assert validate_tier("rooting", "batch") == "batch"

    def test_invalid_tier_message_lists_choices(self):
        with pytest.raises(
            ValueError,
            match=r"hybrid tier must be one of \('object', 'soa'\), got 'warp'",
        ):
            validate_tier("hybrid", "warp")

    def test_message_is_consistent_across_workloads(self):
        for name in WORKLOADS:
            with pytest.raises(ValueError, match=f"{name} tier must be one of"):
                validate_tier(name, "warp")

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload 'grooting'; known:"):
            get_workload("grooting")


class TestDedupedCallSites:
    """The three layers that owned private HYBRID_TIERS copies now raise
    the registry's message (the ISSUE 10 dedupe satellite)."""

    def test_components_site(self):
        import numpy as np

        from repro.graphs import generators as G
        from repro.hybrid.components import connected_components_hybrid

        mix, _ = G.component_mixture([G.cycle_graph(8)])
        with pytest.raises(ValueError, match="hybrid tier must be one of"):
            connected_components_hybrid(
                mix, rng=np.random.default_rng(0), tier="warp"
            )

    def test_churn_site(self):
        import numpy as np

        from repro.graphs.churn import rebuild_survivor_overlay
        from repro.graphs.portgraph import PortGraph

        graph = PortGraph.ring_with_chords(32, delta=16, chords=1, seed=0)
        with pytest.raises(ValueError, match="hybrid tier must be one of"):
            rebuild_survivor_overlay(
                graph, 0.1, np.random.default_rng(0), hybrid="warp"
            )

    def test_scenario_runner_site(self):
        from repro.scenarios.runner import ScenarioRunner

        # The runner validates against the registry entry, which reports
        # under the *workload* name — same shape, same choice listing.
        with pytest.raises(ValueError, match="churn-rebuild tier must be one of"):
            ScenarioRunner(workload="churn-rebuild", tiers=("warp",))

    def test_scenario_runner_rooting_site(self):
        from repro.scenarios.runner import ScenarioRunner

        with pytest.raises(ValueError, match="rooting tier must be one of"):
            ScenarioRunner(workload="rooting", tiers=("warp",))
