"""Context-path vs kwarg-shim bit-for-bit equivalence (ISSUE 10 bar).

The refactor's acceptance criterion: threading one resolved
:class:`~repro.runtime.context.RunContext` through an entry point
produces *identical* trees, labels, and scenario rows to the historical
kwarg spelling — across tiers, seeds, and worker counts.  Anything
less means the context changed execution, not just configuration.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.protocol_tree import run_batch_rooting
from repro.core.pipeline import build_well_formed_tree
from repro.core.soa_rooting import run_soa_rooting
from repro.graphs import generators as G
from repro.graphs.churn import rebuild_survivor_overlay
from repro.graphs.portgraph import PortGraph
from repro.runtime import RunContext

SEEDS = range(12)
FLOOD_ROUNDS = 16
N = 96


def tree_sha(result) -> str:
    return hashlib.sha1(
        result.parent.tobytes() + result.depth.tobytes()
    ).hexdigest()


def rooting_graph(seed: int) -> PortGraph:
    return PortGraph.ring_with_chords(N, delta=16, chords=2, seed=seed)


class TestRootingInvariance:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_soa_ctx_matches_shim(self, seed):
        graph = rooting_graph(seed)
        shim = run_soa_rooting(graph, FLOOD_ROUNDS, rng=np.random.default_rng(seed))
        ctx = RunContext.resolve()
        via_ctx = run_soa_rooting(
            graph, FLOOD_ROUNDS, rng=np.random.default_rng(seed), ctx=ctx
        )
        assert tree_sha(via_ctx) == tree_sha(shim)
        assert via_ctx.metrics.as_dict() == shim.metrics.as_dict()

    @pytest.mark.parametrize("workers", (1, 2))
    def test_soa_workers_invariant_through_ctx(self, workers):
        graph = rooting_graph(0)
        baseline = run_soa_rooting(graph, FLOOD_ROUNDS, rng=np.random.default_rng(0))
        ctx = RunContext.resolve(workers=workers)
        sharded = run_soa_rooting(
            graph, FLOOD_ROUNDS, rng=np.random.default_rng(0), ctx=ctx
        )
        assert tree_sha(sharded) == tree_sha(baseline)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_ctx_matches_shim(self, seed):
        graph = rooting_graph(seed)
        shim = run_batch_rooting(graph, FLOOD_ROUNDS, rng=np.random.default_rng(seed))
        via_ctx = run_batch_rooting(
            graph,
            FLOOD_ROUNDS,
            rng=np.random.default_rng(seed),
            ctx=RunContext.resolve(),
        )
        assert tree_sha(via_ctx) == tree_sha(shim)


class TestPipelineInvariance:
    @pytest.mark.parametrize("rooting", ("reference", "batch", "soa"))
    def test_build_tree_ctx_matches_kwargs(self, rooting):
        ring = G.cycle_graph(64)
        shim = build_well_formed_tree(
            ring, rng=np.random.default_rng(3), rooting=rooting
        )
        ctx = RunContext.resolve(rooting=rooting)
        via_ctx = build_well_formed_tree(ring, rng=np.random.default_rng(3), ctx=ctx)
        assert np.array_equal(via_ctx.bfs.parent, shim.bfs.parent)
        assert np.array_equal(via_ctx.bfs.depth, shim.bfs.depth)
        assert via_ctx.round_ledger == shim.round_ledger

    def test_explicit_kwarg_beats_context_field(self):
        """The shim merge: an explicit rooting kwarg wins over ctx.rooting."""
        ring = G.cycle_graph(48)
        ctx = RunContext.resolve(rooting="reference")
        overridden = build_well_formed_tree(
            ring, rng=np.random.default_rng(5), rooting="batch", ctx=ctx
        )
        plain = build_well_formed_tree(
            ring, rng=np.random.default_rng(5), rooting="batch"
        )
        assert np.array_equal(overridden.bfs.parent, plain.bfs.parent)


class TestChurnRebuildInvariance:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_theorem11_rebuild_ctx_matches_shim(self, seed):
        graph = G.complete_graph(40)
        shim = rebuild_survivor_overlay(graph, 0.3, np.random.default_rng(seed))
        # The shim default runs the batched rooting tier; the context
        # spelling pins the same mode explicitly.
        ctx = RunContext.resolve(rooting="batch", expander="walks")
        via_ctx = rebuild_survivor_overlay(
            graph, 0.3, np.random.default_rng(seed), ctx=ctx
        )
        assert np.array_equal(via_ctx.survivors, shim.survivors)
        assert np.array_equal(via_ctx.overlay.bfs.parent, shim.overlay.bfs.parent)
        assert via_ctx.overlay.round_ledger == shim.overlay.round_ledger

    @pytest.mark.parametrize("seed", range(3))
    def test_hybrid_rebuild_ctx_matches_shim(self, seed):
        graph = PortGraph.ring_with_chords(150, delta=16, chords=2, seed=seed)
        shim = rebuild_survivor_overlay(
            graph, 0.15, np.random.default_rng(seed), hybrid="soa"
        )
        via_ctx = rebuild_survivor_overlay(
            graph,
            0.15,
            np.random.default_rng(seed),
            hybrid="soa",
            ctx=RunContext.resolve(workers=2),
        )
        assert np.array_equal(via_ctx.survivors, shim.survivors)
        assert np.array_equal(via_ctx.overlay.labels, shim.overlay.labels)
        assert np.array_equal(
            via_ctx.overlay.forest.parent, shim.overlay.forest.parent
        )
        assert via_ctx.overlay.ledger.summary() == shim.overlay.ledger.summary()

    def test_ctx_never_selects_hybrid_mode(self):
        """hybrid=None always means the Theorem 1.1 rebuild, even when the
        context carries a hybrid tier."""
        graph = G.complete_graph(40)
        ctx = RunContext.resolve(
            rooting="batch", expander="walks", hybrid="soa"
        )
        result = rebuild_survivor_overlay(graph, 0.3, np.random.default_rng(1), ctx=ctx)
        # A Theorem 1.1 SurvivorRebuild has a bfs tree, not hybrid labels.
        assert hasattr(result.overlay, "bfs")


class TestScenarioRowInvariance:
    @pytest.mark.parametrize("workload", ("rooting", "churn-rebuild"))
    def test_runner_ctx_matches_plain(self, workload):
        from repro.scenarios import ScenarioSpec
        from repro.scenarios.runner import ScenarioRunner

        tiers = ("batch", "soa") if workload == "rooting" else ("object", "soa")
        spec = ScenarioSpec(name="invariance/baseline")
        plain = ScenarioRunner(
            sizes=(96,), seeds=(0, 1), tiers=tiers, workload=workload
        ).run_spec(spec)
        via_ctx = ScenarioRunner(
            sizes=(96,),
            seeds=(0, 1),
            tiers=tiers,
            workload=workload,
            ctx=RunContext.resolve(workers=2),
        ).run_spec(spec)
        from repro.scenarios.runner import tier_invariant_view

        assert [tier_invariant_view(r) for r in via_ctx] == [
            tier_invariant_view(r) for r in plain
        ]
