"""RunContext precedence matrix (contract C8).

One test class per context field pins the full chain

    explicit kwarg  >  CLI value  >  ``REPRO_*`` environment  >  default

including the invalid-value error at each step, so the resolution order
can never drift silently.  The registry's tier vocabulary and the
shim-vs-context bit-for-bit equivalence live in ``test_registry.py`` /
``test_ctx_invariance.py``.
"""

from __future__ import annotations

import argparse

import pytest

from repro.runtime import (
    ENGINES,
    EXPANDER_MODES,
    HYBRID_TIERS,
    ROOTING_MODES,
    TIER_CHOICES,
    TIER_KINDS,
    RunContext,
    choice_specified,
    resolve_workers,
    select_choice,
    workers_specified,
)

ALL_ENV = (
    "REPRO_ENGINE",
    "REPRO_ROOTING",
    "REPRO_EXPANDER",
    "REPRO_HYBRID",
    "REPRO_WORKERS",
    "REPRO_SEED",
    "REPRO_SANITIZE",
    "REPRO_DEBUG_SOA",
    "REPRO_SOA_LAYOUT_REUSE",
    "REPRO_TRACE",
)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    """Every test starts from an unconfigured environment."""
    for var in ALL_ENV:
        monkeypatch.delenv(var, raising=False)


def cli_ns(**kwargs) -> argparse.Namespace:
    return argparse.Namespace(**kwargs)


class TestDefaults:
    def test_all_defaults(self):
        ctx = RunContext.resolve()
        assert ctx.engine == "vectorized"
        assert ctx.rooting == "reference"
        assert ctx.expander == "walks"
        assert ctx.hybrid == "object"
        assert ctx.workers == 1
        assert ctx.seed is None
        assert ctx.sanitize is False
        assert ctx.debug_soa is False
        assert ctx.layout_reuse is True
        assert ctx.tracer is None
        assert ctx.fault_hook is None

    def test_frozen(self):
        ctx = RunContext.resolve()
        with pytest.raises(AttributeError):
            ctx.engine = "legacy"

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown RunContext field"):
            RunContext.resolve(enginee="legacy")

    def test_unknown_field_rejected_in_with_overrides(self):
        with pytest.raises(ValueError, match="unknown RunContext field"):
            RunContext.resolve().with_overrides(wrokers=2)


#: (field, env var, default, choices) for the four choice-valued kinds.
CHOICE_FIELDS = [
    ("engine", "REPRO_ENGINE", "vectorized", TIER_CHOICES),
    ("rooting", "REPRO_ROOTING", "reference", ROOTING_MODES),
    ("expander", "REPRO_EXPANDER", "walks", EXPANDER_MODES),
    ("hybrid", "REPRO_HYBRID", "object", HYBRID_TIERS),
]


@pytest.mark.parametrize("field,env_var,default,choices", CHOICE_FIELDS)
class TestChoicePrecedence:
    """kwarg > CLI > env > default for every choice-valued field."""

    def _alt(self, choices, *exclude):
        return next(c for c in choices if c not in exclude)

    def test_default(self, field, env_var, default, choices):
        assert getattr(RunContext.resolve(), field) == default

    def test_env_beats_default(self, field, env_var, default, choices, monkeypatch):
        env_value = self._alt(choices, default)
        monkeypatch.setenv(env_var, env_value)
        assert getattr(RunContext.resolve(), field) == env_value

    def test_cli_beats_env(self, field, env_var, default, choices, monkeypatch):
        # cli may coincide with the default — resolving to it while the
        # env names something else still proves CLI beat the env.
        env_value = self._alt(choices, default)
        cli_value = self._alt(choices, env_value)
        monkeypatch.setenv(env_var, env_value)
        ctx = RunContext.resolve(cli=cli_ns(**{field: cli_value}))
        assert getattr(ctx, field) == cli_value

    def test_kwarg_beats_cli_and_env(self, field, env_var, default, choices, monkeypatch):
        env_value = self._alt(choices, default)
        cli_value = self._alt(choices, default)
        monkeypatch.setenv(env_var, env_value)
        ctx = RunContext.resolve(
            cli=cli_ns(**{field: cli_value}), **{field: default}
        )
        assert getattr(ctx, field) == default

    def test_none_kwarg_falls_through(self, field, env_var, default, choices, monkeypatch):
        env_value = self._alt(choices, default)
        monkeypatch.setenv(env_var, env_value)
        ctx = RunContext.resolve(**{field: None})
        assert getattr(ctx, field) == env_value

    def test_invalid_kwarg_raises(self, field, env_var, default, choices):
        with pytest.raises(ValueError, match=f"{field} must be one of"):
            RunContext.resolve(**{field: "warp"})

    def test_invalid_env_raises(self, field, env_var, default, choices, monkeypatch):
        monkeypatch.setenv(env_var, "warp")
        with pytest.raises(ValueError, match=f"{field} must be one of"):
            RunContext.resolve()

    def test_invalid_with_overrides_raises(self, field, env_var, default, choices):
        with pytest.raises(ValueError, match=f"{field} must be one of"):
            RunContext.resolve().with_overrides(**{field: "warp"})

    def test_cli_dict_accepted(self, field, env_var, default, choices):
        cli_value = self._alt(choices, default)
        ctx = RunContext.resolve(cli={field: cli_value})
        assert getattr(ctx, field) == cli_value


class TestWorkersPrecedence:
    def test_default(self):
        assert RunContext.resolve().workers == 1

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert RunContext.resolve().workers == 3

    def test_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert RunContext.resolve(cli=cli_ns(workers=2)).workers == 2

    def test_kwarg_beats_cli_and_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        ctx = RunContext.resolve(cli=cli_ns(workers=2), workers=4)
        assert ctx.workers == 4

    def test_invalid_kwarg_raises(self):
        with pytest.raises(ValueError, match="worker count must be >= 1"):
            RunContext.resolve(workers=0)

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS must be a positive integer"):
            RunContext.resolve()

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError, match="worker count must be >= 1"):
            RunContext.resolve().with_overrides(workers=-2)


class TestSeedPrecedence:
    def test_default_is_none(self):
        assert RunContext.resolve().seed is None

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "7")
        assert RunContext.resolve().seed == 7

    def test_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "7")
        assert RunContext.resolve(cli=cli_ns(seed=5)).seed == 5

    def test_kwarg_beats_cli_and_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "7")
        assert RunContext.resolve(cli=cli_ns(seed=5), seed=9).seed == 9

    def test_negative_seed_raises(self):
        with pytest.raises(ValueError, match="seed must be >= 0"):
            RunContext.resolve(seed=-1)

    def test_rng_requires_seed(self):
        with pytest.raises(ValueError, match="seed is unset"):
            RunContext.resolve().rng()

    def test_rng_seed_discipline(self):
        ctx = RunContext.resolve(seed=11)
        a, b = ctx.rng(), ctx.rng()
        # Two calls return identically seeded, independent generators.
        assert a is not b
        assert a.integers(1 << 30) == b.integers(1 << 30)


#: (field, env var, default) for the boolean flags.
FLAG_FIELDS = [
    ("sanitize", "REPRO_SANITIZE", False),
    ("debug_soa", "REPRO_DEBUG_SOA", False),
    ("layout_reuse", "REPRO_SOA_LAYOUT_REUSE", True),
]


@pytest.mark.parametrize("field,env_var,default", FLAG_FIELDS)
class TestFlagPrecedence:
    def test_default(self, field, env_var, default):
        assert getattr(RunContext.resolve(), field) is default

    def test_env_beats_default(self, field, env_var, default, monkeypatch):
        monkeypatch.setenv(env_var, "0" if default else "1")
        assert getattr(RunContext.resolve(), field) is (not default)

    def test_env_zero_means_false(self, field, env_var, default, monkeypatch):
        monkeypatch.setenv(env_var, "0")
        assert getattr(RunContext.resolve(), field) is False

    def test_kwarg_beats_env(self, field, env_var, default, monkeypatch):
        monkeypatch.setenv(env_var, "0" if default else "1")
        ctx = RunContext.resolve(**{field: default})
        assert getattr(ctx, field) is default

    def test_cli_beats_env(self, field, env_var, default, monkeypatch):
        monkeypatch.setenv(env_var, "0" if default else "1")
        ctx = RunContext.resolve(cli=cli_ns(**{field: default}))
        assert getattr(ctx, field) is default


class TestFlagCoupling:
    def test_sanitize_implies_debug_soa(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        ctx = RunContext.resolve()
        assert ctx.sanitize is True and ctx.debug_soa is True

    def test_explicit_debug_soa_false_beats_sanitize(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        ctx = RunContext.resolve(debug_soa=False)
        assert ctx.sanitize is True and ctx.debug_soa is False

    def test_module_switch_honoured(self, monkeypatch):
        from repro import sanitize as sanitize_mod

        monkeypatch.setattr(sanitize_mod, "ENABLED", True)
        assert RunContext.resolve().sanitize is True


class TestTracerAndFaultHook:
    def test_tracer_kwarg_wins(self):
        sentinel = object()
        assert RunContext.resolve(tracer=sentinel).tracer is sentinel

    def test_tracer_ambient_session(self):
        from repro.obs import Tracer, activate

        tracer = Tracer()
        previous = activate(tracer)
        try:
            assert RunContext.resolve().tracer is tracer
        finally:
            activate(previous)

    def test_fault_hook_is_kwarg_only(self):
        hook = object()
        assert RunContext.resolve(fault_hook=hook).fault_hook is hook
        assert RunContext.resolve().fault_hook is None


class TestWithOverrides:
    def test_none_skips(self):
        ctx = RunContext.resolve(engine="legacy", workers=2)
        same = ctx.with_overrides(engine=None, workers=None)
        assert same == ctx

    def test_override_applies(self):
        ctx = RunContext.resolve().with_overrides(engine="legacy", workers=3)
        assert ctx.engine == "legacy" and ctx.workers == 3

    def test_original_untouched(self):
        ctx = RunContext.resolve()
        ctx.with_overrides(engine="legacy")
        assert ctx.engine == "vectorized"


class TestAsDict:
    def test_json_safe_snapshot(self):
        ctx = RunContext.resolve(seed=3, workers=2, tracer=object())
        d = ctx.as_dict()
        assert d["workers"] == 2 and d["seed"] == 3
        assert d["traced"] is True and d["fault_hook"] is False
        import json

        json.dumps(d)  # every value must serialise


class TestSingleFieldResolvers:
    """The harness-facing helpers share the context's resolution."""

    def test_select_choice_matches_resolve(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROOTING", "batch")
        assert select_choice("rooting") == RunContext.resolve().rooting == "batch"

    def test_select_choice_unknown_kind(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            select_choice("flavour")

    def test_select_choice_restricted_choices(self):
        with pytest.raises(ValueError, match="engine must be one of"):
            select_choice("engine", "soa", choices=ENGINES)

    def test_choice_specified(self, monkeypatch):
        assert not choice_specified("engine")
        monkeypatch.setenv("REPRO_ENGINE", "legacy")
        assert choice_specified("engine")
        assert choice_specified("rooting", "batch")

    def test_workers_specified(self, monkeypatch):
        assert not workers_specified()
        assert workers_specified(2)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert workers_specified()

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5
        assert resolve_workers(2) == 2

    def test_tier_kinds_table_is_complete(self):
        assert set(TIER_KINDS) == {"engine", "rooting", "expander", "hybrid"}
        for field, (env_var, default, choices) in TIER_KINDS.items():
            assert env_var.startswith("REPRO_")
            assert default in choices
