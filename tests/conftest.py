"""Shared pytest fixtures for the reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic default generator (seed 0)."""
    return np.random.default_rng(0)


@pytest.fixture
def make_rng():
    """Factory for seeded generators: ``make_rng(seed)``."""

    def factory(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    return factory
