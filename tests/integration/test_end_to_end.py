"""End-to-end integration tests across the full stack."""

import math

import networkx as nx
import numpy as np
import pytest

from repro import (
    biconnected_components_hybrid,
    build_well_formed_tree,
    connected_components_hybrid,
    mis_hybrid,
    spanning_tree_hybrid,
)
from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets, connected_components
from repro.hybrid.mis import verify_mis


class TestTheorem11EndToEnd:
    @pytest.mark.parametrize("n", [64, 256])
    def test_line_to_well_formed_tree(self, n):
        result = build_well_formed_tree(
            G.line_graph(n), rng=np.random.default_rng(n)
        )
        log_n = math.ceil(math.log2(n))
        assert result.well_formed.max_degree() <= 3
        assert result.well_formed.depth() <= log_n + 1
        # O(log n) rounds with the calibrated constant (< 40 per log2 n:
        # evolutions dominate at (ell+1) * (log n + 4) rounds).
        assert result.total_rounds <= 40 * log_n

    def test_many_topologies_one_seed(self):
        rng = np.random.default_rng(42)
        for name in ["line", "cycle", "binary_tree", "grid", "caterpillar"]:
            g = G.make_workload(name, 80, rng)
            result = build_well_formed_tree(g, rng=np.random.default_rng(0))
            assert result.well_formed.max_degree() <= 3


class TestSection4EndToEnd:
    def test_full_analytics_stack_on_one_graph(self):
        """CC, ST, BCC, and MIS on the same composite network."""
        rng = np.random.default_rng(7)
        g = G.barbell(20, 6)
        n = g.number_of_nodes()

        st_res = spanning_tree_hybrid(g, rng=np.random.default_rng(1))
        t = nx.Graph()
        t.add_nodes_from(range(n))
        t.add_edges_from(st_res.tree_edges)
        assert nx.is_tree(t)

        bcc = biconnected_components_hybrid(g, rng=np.random.default_rng(2))
        assert bcc.cut_vertices == set(nx.articulation_points(g))

        mis = mis_hybrid(g, rng=np.random.default_rng(3))
        assert verify_mis(adjacency_sets(g), mis.in_mis)

    def test_components_then_per_component_analytics(self):
        rng = np.random.default_rng(11)
        mix, members = G.component_mixture(
            [G.cycle_graph(30), G.erdos_renyi_connected(40, 6.0, rng)]
        )
        comp = connected_components_hybrid(mix, rng=np.random.default_rng(4))
        truth = {
            min(c): sorted(c)
            for c in connected_components(adjacency_sets(mix))
        }
        assert {k: sorted(v) for k, v in comp.components().items()} == truth
        # The forest gives every node an O(log m) path to its root.
        for root, wft in comp.forest.trees.items():
            assert wft.max_degree() <= 3

    def test_spanning_tree_feeds_biconnectivity(self):
        from repro.core.child_sibling import RootedTree

        g = G.ring_of_cliques(4, 6)
        st_res = spanning_tree_hybrid(g, rng=np.random.default_rng(5))
        tree = RootedTree(root=st_res.root, parent=st_res.parent.copy())
        bcc = biconnected_components_hybrid(g, tree=tree)
        truth = {
            frozenset(frozenset(tuple(sorted(e))) for e in comp)
            for comp in nx.biconnected_component_edges(g)
        }
        ours = {
            frozenset(frozenset(e) for e in comp)
            for comp in bcc.components.values()
        }
        assert ours == truth


class TestCrossEngineConsistency:
    def test_protocol_and_fast_engine_same_invariants(self):
        from repro.core.params import ExpanderParams
        from repro.core.protocol import run_protocol_expander
        from repro.core.expander import create_expander
        from repro.graphs.analysis import is_connected

        n = 48
        params = ExpanderParams.recommended(n, ell=16).with_evolutions(8)
        for seed in (0, 1):
            proto = run_protocol_expander(
                G.cycle_graph(n), params=params, rng=np.random.default_rng(seed)
            )
            fast = create_expander(
                G.cycle_graph(n), params=params, rng=np.random.default_rng(seed)
            )
            for graph in (proto.final_graph, fast.final_graph):
                assert graph.is_lazy()
                assert graph.is_symmetric()
                assert is_connected(graph.neighbor_sets())
            assert proto.metrics.total_drops == 0
