"""Seed-matrix robustness: the w.h.p. claims across randomness.

The paper's guarantees are "with high probability"; a reproduction that
passes on one lucky seed proves little.  This suite sweeps seeds ×
workloads for the three randomised pipelines whose failure mode is
silent degradation (disconnection, invalid outputs) rather than a crash.
The matrices are sized to stay fast while covering the randomness that
actually matters (walk choices, acceptance sampling, exponential shifts).
"""

import math

import networkx as nx
import numpy as np
import pytest

from repro.core.pipeline import build_well_formed_tree
from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets, is_connected
from repro.hybrid.mis import mis_hybrid, verify_mis
from repro.hybrid.spanning_tree import spanning_tree_hybrid


class TestCorePipelineMatrix:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("workload", ["line", "cycle", "random_tree"])
    def test_pipeline_never_degrades(self, workload, seed):
        g = G.make_workload(workload, 72, np.random.default_rng(seed))
        n = g.number_of_nodes()
        result = build_well_formed_tree(g, rng=np.random.default_rng(seed * 7 + 1))
        assert is_connected(result.final_graph().neighbor_sets())
        assert result.well_formed.max_degree() <= 3
        assert result.well_formed.depth() <= math.ceil(math.log2(n)) + 1


class TestRoundLedgerMatrix:
    """Theorem 1.1 accounting: the per-phase round ledger is complete,
    internally consistent, and totals ``O(log n)`` across sizes."""

    PHASES = ("prepare", "evolutions", "bfs", "well_forming")

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("workload", ["line", "cycle", "random_tree"])
    def test_phase_counts_across_topologies(self, workload, seed):
        g = G.make_workload(workload, 72, np.random.default_rng(seed))
        result = build_well_formed_tree(g, rng=np.random.default_rng(seed * 11 + 3))
        ledger = result.round_ledger
        assert tuple(ledger) == self.PHASES
        # Preparation is exactly bidirect + copy (§2.1).
        assert ledger["prepare"] == 2
        # Each evolution costs ℓ forwarding rounds plus one answer round.
        params = result.expander.params
        assert ledger["evolutions"] == len(result.history) * (params.ell + 1)
        assert ledger["bfs"] == result.bfs.rounds >= 1
        assert ledger["well_forming"] == result.well_formed.rounds >= 1
        assert result.total_rounds == sum(ledger.values())

    def test_total_rounds_scale_logarithmically(self):
        from repro.experiments.harness import fit_vs_logn

        sizes = [32, 64, 128, 256]
        totals = []
        for n in sizes:
            result = build_well_formed_tree(
                G.line_graph(n), rng=np.random.default_rng(n)
            )
            totals.append(result.total_rounds)
        # O(log n): the fit against log2(n) is tight and the normalised
        # ratio stays bounded across the sweep (the E3/E6 bench criterion).
        _, slope, r2 = fit_vs_logn(sizes, totals)
        assert slope > 0
        assert r2 > 0.9
        ratios = [t / math.log2(n) for t, n in zip(totals, sizes)]
        assert max(ratios) <= 3 * min(ratios)


class TestSpanningTreeMatrix:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_a_spanning_tree(self, seed):
        g = G.erdos_renyi_connected(64, 6.0, np.random.default_rng(seed + 20))
        res = spanning_tree_hybrid(g, rng=np.random.default_rng(seed))
        t = nx.Graph()
        t.add_nodes_from(range(64))
        t.add_edges_from(res.tree_edges)
        assert nx.is_tree(t)
        gadj = adjacency_sets(g)
        assert all(b in gadj[a] for a, b in res.tree_edges)


class TestMISMatrix:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_valid_even_with_forced_residue(self, seed):
        g = G.erdos_renyi_connected(90, 7.0, np.random.default_rng(seed + 40))
        res = mis_hybrid(
            g, rng=np.random.default_rng(seed), shatter_rounds=2
        )
        assert verify_mis(adjacency_sets(g), res.in_mis)
