"""Baseline algorithm tests: correctness and scaling shape."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.baselines import flooding, pointer_jumping, supernode_merge
from repro.graphs import generators as G


class TestSupernodeMerge:
    @pytest.mark.parametrize("n", [16, 64, 129])
    def test_produces_spanning_tree(self, n):
        g = G.line_graph(n)
        res = supernode_merge(g)
        t = nx.Graph()
        t.add_nodes_from(range(n))
        t.add_edges_from(res.tree_edges)
        assert nx.is_tree(t)

    def test_tree_edges_subset_of_input(self, rng):
        g = G.erdos_renyi_connected(60, 6.0, rng)
        res = supernode_merge(g)
        edges = {(min(a, b), max(a, b)) for a, b in g.edges}
        assert res.tree_edges <= edges

    def test_phases_logarithmic(self):
        res = supernode_merge(G.line_graph(256))
        assert res.num_phases <= math.ceil(math.log2(256)) + 2

    def test_rounds_grow_like_log_squared(self):
        r64 = supernode_merge(G.line_graph(64)).total_rounds
        r1024 = supernode_merge(G.line_graph(1024)).total_rounds
        ratio = (r1024 / math.log2(1024) ** 2) / (r64 / math.log2(64) ** 2)
        assert 0.5 < ratio < 2.0  # rounds / log^2 n is stable

    def test_disconnected_rejected(self):
        mix, _ = G.component_mixture([G.line_graph(4), G.line_graph(4)])
        with pytest.raises(ValueError):
            supernode_merge(mix)

    def test_phase_supernode_counts_decrease(self):
        res = supernode_merge(G.cycle_graph(64))
        for phase in res.phases:
            assert phase.supernodes_after < phase.supernodes_before


class TestPointerJumping:
    def test_rounds_log_of_diameter(self):
        res = pointer_jumping(G.line_graph(64))
        assert res.rounds == math.ceil(math.log2(63))

    def test_message_blowup_is_polynomial(self):
        res = pointer_jumping(G.line_graph(128))
        # Peak messages approach n^2 (every node knows almost everyone and
        # introduces all pairs) — the Θ(n) identifiers per node the paper
        # cites, squared by pairwise introduction.
        assert res.peak_messages > 128 * 128 / 2

    def test_terminates_on_clique(self):
        res = pointer_jumping(G.complete_graph(8))
        assert res.rounds == 0

    def test_disconnected_rejected(self):
        mix, _ = G.component_mixture([G.line_graph(3), G.line_graph(3)])
        with pytest.raises(ValueError):
            pointer_jumping(mix)


class TestFlooding:
    def test_rounds_equal_diameter(self):
        res = flooding(G.line_graph(40))
        assert res.rounds == 39

    def test_total_messages_quadratic_on_line(self):
        res = flooding(G.line_graph(50))
        # Each of n identifiers crosses each of n-1 edges once per
        # direction at most: Theta(n^2).
        assert res.total_messages >= 50 * 49 / 2
        assert res.total_messages <= 4 * 50 * 50

    def test_star_floods_in_two_rounds(self):
        res = flooding(G.star_graph(30))
        assert res.rounds == 2

    def test_empty_graph(self):
        import networkx as nx

        res = flooding(nx.Graph())
        assert res.rounds == 0


class TestSupernodeDeterminism:
    """Pinned regression for the order-independent merge tie-break.

    The label-choice loop used to keep the first neighbour a set yielded
    on equal labels (hash-order-dependent once ids are gappy/large); it
    now compares the full (label, v, u) candidate tuple, so the merge
    schedule — and hence rounds, phases, and the intra-supernode trees —
    is a pure function of the graph.
    """

    def test_pinned_seeded_graph(self):
        rng = np.random.default_rng(7)
        g = G.erdos_renyi_connected(40, 4.0, rng)
        res = supernode_merge(g)
        assert res.total_rounds == 466
        assert len(res.phases) == 21
        import hashlib
        import json

        edges = sorted(res.tree_edges)
        sha = hashlib.sha256(json.dumps(edges).encode()).hexdigest()[:16]
        assert sha == "47c6fda126f72ccb"

    def test_repeat_runs_identical(self):
        rng = np.random.default_rng(3)
        g = G.erdos_renyi_connected(30, 3.5, rng)
        a = supernode_merge(g)
        b = supernode_merge(g)
        assert a.total_rounds == b.total_rounds
        assert sorted(a.tree_edges) == sorted(b.tree_edges)
