"""Cross-module checks of the paper's supporting lemmas.

These tests validate the *mathematical* facts the analysis rests on,
using the repository's own measurement tools against each other:

- Lemma 3.13: any connected graph has conductance ``≥ 1/n²``;
- Lemma 3.14: conductance ``Φ`` implies diameter ``O(Φ⁻¹ log n)``;
- Lemma 2.2 (Kwok–Lau): powering a lazy graph multiplies its
  conductance by ``Ω(√ℓ)`` (checked on the exact spectral quantities of
  small graphs);
- Cheeger: the exact conductance lies in the spectral sandwich.
"""

import math

import numpy as np
import pytest

from repro.core.benign import make_benign
from repro.core.params import ExpanderParams
from repro.graphs import generators as G
from repro.graphs.analysis import (
    adjacency_sets,
    conductance_exact,
    diameter,
    min_vertex_expansion_exact,
    vertex_expansion_of_set,
)
from repro.graphs.portgraph import PortGraph
from repro.graphs.spectral import cheeger_bounds, spectral_gap


def lazy_pg(graph, delta=None, lam=2):
    if delta is None:
        dmax = max(d for _, d in graph.degree)
        delta = max(32, ((4 * lam * dmax + 7) // 8) * 8)
    params = ExpanderParams(delta=delta, lam=lam, ell=4, num_evolutions=1)
    pg, _ = make_benign(graph, params)
    return pg


class TestLemma313MinimumConductance:
    @pytest.mark.parametrize(
        "make", [lambda: G.line_graph(10), lambda: G.cycle_graph(12),
                 lambda: G.barbell(5), lambda: G.star_graph(11)],
        ids=["line", "cycle", "barbell", "star"],
    )
    def test_connected_graphs_exceed_one_over_n_squared(self, make):
        g = make()
        pg = lazy_pg(g)
        n = pg.n
        phi = conductance_exact(pg, max_n=14)
        assert phi >= 1 / n**2


class TestLemma314ConductanceDiameter:
    @pytest.mark.parametrize(
        "make", [lambda: G.cycle_graph(14), lambda: G.grid_2d(3, 4),
                 lambda: G.barbell(6), lambda: G.complete_graph(10)],
        ids=["cycle", "grid", "barbell", "clique"],
    )
    def test_diameter_bounded_by_inverse_conductance(self, make):
        g = make()
        pg = lazy_pg(g)
        phi = conductance_exact(pg, max_n=14)
        diam = diameter(pg.neighbor_sets())
        n = pg.n
        # Lemma 3.14: diam = O(log n / Phi); constant calibrated to 2.
        assert diam <= 2 * math.log(n) / phi + 1


class TestKwokLauPowering:
    def test_powered_cycle_gains_conductance(self):
        # Compare the spectral gap of G and of G^ell (walk matrix power):
        # Kwok-Lau predicts Phi_ell >= sqrt(ell)/40 * Phi; spectrally,
        # 1 - lambda2^ell grows superlinearly while Phi is small.
        pg = lazy_pg(G.cycle_graph(16))
        mat = pg.walk_matrix()
        lam2 = 1 - spectral_gap(pg)
        for ell in (4, 16):
            gap_ell = 1 - lam2**ell
            gap_1 = 1 - lam2
            # Powered gap at least sqrt(ell)/2 times the base gap (the
            # spectral analogue of Lemma 2.2 at small gaps).
            assert gap_ell >= (math.sqrt(ell) / 2) * gap_1

    def test_conductance_of_power_never_decreases(self):
        pg = lazy_pg(G.cycle_graph(12))
        base = conductance_exact(pg, max_n=12)
        mat = np.linalg.matrix_power(pg.walk_matrix(), 4)
        # Phi_4(S) via the walk-matrix mass leaving each subset.
        from itertools import combinations

        worst = 1.0
        n = pg.n
        for size in range(1, n // 2 + 1):
            for subset in combinations(range(n), size):
                inside = list(subset)
                outside = [v for v in range(n) if v not in subset]
                mass_out = mat[np.ix_(inside, outside)].sum() / len(inside)
                worst = min(worst, mass_out)
        assert worst >= base - 1e-12


class TestCheegerSandwichOnEvolutions:
    def test_exact_conductance_within_bounds_after_evolution(self):
        from repro.core.expander import ExpanderBuilder

        params = ExpanderParams(delta=32, lam=2, ell=8, num_evolutions=2)
        base, _ = make_benign(G.cycle_graph(12), params)
        builder = ExpanderBuilder(base, params, np.random.default_rng(0))
        builder.run()
        pg = builder.current
        phi = conductance_exact(pg, max_n=12)
        lo, hi = cheeger_bounds(spectral_gap(pg))
        assert lo - 1e-9 <= phi <= hi + 1e-9


class TestSoAColumnInvariants:
    """Seeded-random property checks on the SoA rooting state columns.

    The SoA tier holds the whole population's protocol state in shared
    numpy arrays; these tests pin the *theory-level* invariants of those
    columns round by round — the facts footnote 8's correctness argument
    rests on — over randomized low-diameter multigraphs:

    - min-id flooding is monotone: ``best`` never increases at any node
      and is always a valid node id ≥ the global minimum;
    - the finished parent array is acyclic and rooted (every non-root
      strictly decreases ``depth`` towards its parent);
    - ``depth`` equals true BFS distance from the elected root.
    """

    @staticmethod
    def _random_overlay(n, seed, chords):
        return PortGraph.ring_with_chords(
            n, delta=2 + 2 * chords + 2, chords=chords, seed=seed
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_min_id_column_monotone_per_round(self, seed):
        from repro.core.soa_rooting import SoARootingClass, csr_neighbors
        from repro.net.network import CapacityPolicy, SyncNetwork

        n = 40 + 12 * (seed % 3)
        graph = self._random_overlay(n, seed, chords=1 + seed % 3)
        flood = math.ceil(math.log2(n)) + 6
        cls = SoARootingClass(*csr_neighbors(graph), flood)
        net = SyncNetwork(
            cls, CapacityPolicy.ncc0(n, graph.delta), np.random.default_rng(seed)
        )
        prev = cls.best.copy()
        for _ in range(flood + 4 * flood + 8):
            net.run_round()
            assert (cls.best <= prev).all(), "min-id flooding regressed"
            assert (cls.best >= 0).all() and (cls.best < n).all()
            prev = cls.best.copy()
            if cls.is_idle() and net.pending_messages() == 0:
                break
        # Flooding converged to the global minimum everywhere.
        assert (cls.best == 0).all()

    @pytest.mark.parametrize("seed", range(8))
    def test_parent_array_acyclic_and_depth_consistent(self, seed):
        from repro.core.soa_rooting import run_soa_rooting
        from repro.graphs.analysis import bfs_distances

        n = 36 + 16 * (seed % 4)
        graph = self._random_overlay(n, seed * 31 + 5, chords=1 + seed % 2)
        result = run_soa_rooting(graph, math.ceil(math.log2(n)) + 6)
        parent, depth = result.parent, result.depth
        root = result.root
        # Rooted: exactly one fixed point, at depth 0.
        assert parent[root] == root and depth[root] == 0
        non_root = np.flatnonzero(parent != np.arange(n))
        assert non_root.shape[0] == n - 1
        # Acyclic: depth strictly decreases along every parent pointer,
        # so following parents can never revisit a node.
        assert (depth[parent[non_root]] == depth[non_root] - 1).all()
        # Edge validity: every parent is a real neighbour.
        sets = graph.neighbor_sets()
        for v in non_root.tolist():
            assert int(parent[v]) in sets[v]
        # Depth = true BFS distance from the elected (minimum-id) root.
        assert root == 0
        assert np.array_equal(depth, bfs_distances(sets, root))


class TestVertexExpansion:
    def test_of_set_matches_hand_count(self):
        adj = adjacency_sets(G.star_graph(6))
        assert vertex_expansion_of_set(adj, {1, 2}) == pytest.approx(0.5)
        assert vertex_expansion_of_set(adj, {0}) == pytest.approx(5.0)

    def test_clique_has_maximal_expansion(self):
        adj = adjacency_sets(G.complete_graph(8))
        assert min_vertex_expansion_exact(adj) == pytest.approx(1.0)

    def test_line_has_vanishing_expansion(self):
        adj = adjacency_sets(G.line_graph(12))
        assert min_vertex_expansion_exact(adj) == pytest.approx(1 / 6)

    def test_overlay_beats_input_expansion(self):
        # The expander overlay's sampled vertex expansion dominates the
        # ring's worst set (the robustness mechanism of §5).
        from repro.core.pipeline import build_well_formed_tree

        n = 64
        overlay = build_well_formed_tree(
            G.cycle_graph(n), rng=np.random.default_rng(1)
        ).final_graph()
        adj = overlay.neighbor_sets()
        ring = adjacency_sets(G.cycle_graph(n))
        # Contiguous arcs are the ring's worst sets.
        arc = set(range(n // 2))
        assert vertex_expansion_of_set(adj, arc) > 10 * vertex_expansion_of_set(
            ring, arc
        )

    def test_validation(self):
        adj = adjacency_sets(G.cycle_graph(6))
        with pytest.raises(ValueError):
            vertex_expansion_of_set(adj, set())
        with pytest.raises(ValueError):
            min_vertex_expansion_exact(adjacency_sets(G.cycle_graph(30)))
