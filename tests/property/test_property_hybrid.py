"""Property-based tests for the hybrid-model algorithms.

Random graphs in, validated invariants out: spanner connectivity, MIS
legality, spanning-tree validity, biconnectivity vs networkx.  These are
the heaviest hypothesis suites, so example counts stay modest.
"""

import networkx as nx
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs.analysis import adjacency_sets, connected_components, is_connected
from repro.hybrid.biconnectivity import biconnected_components_hybrid
from repro.hybrid.degree_reduction import reduce_degree
from repro.hybrid.mis import metivier_mis, mis_hybrid, verify_mis
from repro.hybrid.spanner import build_spanner
from repro.hybrid.rapid_sampling import _pair_tokens


@st.composite
def connected_graphs(draw, min_n=4, max_n=30):
    """Random connected graph: a random tree plus random extra edges."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for v in range(1, n):
        g.add_edge(v, draw(st.integers(min_value=0, max_value=v - 1)))
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=2 * n,
        )
    )
    g.add_edges_from((a, b) for a, b in extra if a != b)
    return g


class TestSpannerProperties:
    @given(connected_graphs(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_spanner_connected_and_subgraph(self, g, seed):
        rng = np.random.default_rng(seed)
        sp = build_spanner(g, rng)
        adj = adjacency_sets(g)
        assert is_connected(sp.undirected_adjacency())
        for v, targets in enumerate(sp.out_edges):
            assert targets <= adj[v]

    @given(connected_graphs(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_reduction_preserves_components(self, g, seed):
        rng = np.random.default_rng(seed)
        red = reduce_degree(build_spanner(g, rng))
        ours = connected_components(red.adj)
        truth = connected_components(adjacency_sets(g))
        assert sorted(map(tuple, ours)) == sorted(map(tuple, truth))


class TestMISProperties:
    @given(connected_graphs(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_hybrid_mis_always_valid(self, g, seed):
        res = mis_hybrid(g, rng=np.random.default_rng(seed), shatter_rounds=3)
        assert verify_mis(adjacency_sets(g), res.in_mis)

    @given(connected_graphs(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_metivier_always_valid(self, g, seed):
        adj = adjacency_sets(g)
        res = metivier_mis(adj, list(range(len(adj))), np.random.default_rng(seed))
        assert verify_mis(adj, res.in_mis)


class TestBiconnectivityProperties:
    @given(connected_graphs(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_matches_networkx(self, g, seed):
        res = biconnected_components_hybrid(
            g, rng=np.random.default_rng(seed), tree_source="bfs"
        )
        ours = {
            frozenset(frozenset(e) for e in comp)
            for comp in res.components.values()
        }
        truth = {
            frozenset(frozenset(tuple(sorted(e))) for e in comp)
            for comp in nx.biconnected_component_edges(g)
        }
        assert ours == truth
        assert res.cut_vertices == set(nx.articulation_points(g))


class TestPairingProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=6), max_size=60),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_pairing_invariants(self, positions, seed):
        positions = np.array(positions, dtype=np.int64)
        reds, blues = _pair_tokens(positions, np.random.default_rng(seed))
        assert reds.shape == blues.shape
        # Pairs co-located; indices disjoint; each group pairs floor(k/2).
        assert (positions[reds] == positions[blues]).all()
        used = np.concatenate([reds, blues])
        assert len(set(used.tolist())) == used.size
        counts = np.bincount(positions, minlength=7)
        red_counts = np.bincount(positions[reds], minlength=7)
        assert (red_counts == counts // 2).all()
