"""Property-based tests for core algorithm components."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.child_sibling import RootedTree, to_child_sibling
from repro.core.euler import (
    build_well_formed_from_tree,
    euler_tour,
    heap_tree,
    list_rank,
    preorder_and_sizes,
)
from repro.core.expander import _accept_tokens


@st.composite
def random_rooted_trees(draw, max_n=40):
    """Random rooted trees via random parent attachment."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    parent = np.zeros(n, dtype=np.int64)
    for v in range(1, n):
        parent[v] = draw(st.integers(min_value=0, max_value=v - 1))
    return RootedTree(root=0, parent=parent)


class TestChildSiblingProperties:
    @given(random_rooted_trees())
    @settings(max_examples=50, deadline=None)
    def test_degree_at_most_three(self, tree):
        cs = to_child_sibling(tree)
        assert cs.max_degree() <= 3

    @given(random_rooted_trees())
    @settings(max_examples=50, deadline=None)
    def test_spans_all_nodes(self, tree):
        cs = to_child_sibling(tree)
        cs.validate()  # raises if not a spanning tree
        assert cs.n == tree.n


class TestEulerProperties:
    @given(random_rooted_trees())
    @settings(max_examples=40, deadline=None)
    def test_tour_shape(self, tree):
        if tree.n == 1:
            return
        tour = euler_tour(tree)
        assert tour.length == 2 * (tree.n - 1)
        # Contiguity.
        for (a, b), (c, d) in zip(tour.edges, tour.edges[1:]):
            assert b == c

    @given(random_rooted_trees())
    @settings(max_examples=40, deadline=None)
    def test_preorder_sizes_sum(self, tree):
        labels, sizes, _ = preorder_and_sizes(tree)
        assert sizes[tree.root] == tree.n
        # Subtree sizes: each node's size = 1 + sum over children.
        children = tree.children_lists()
        for v in range(tree.n):
            assert sizes[v] == 1 + sum(sizes[c] for c in children[v])

    @given(random_rooted_trees())
    @settings(max_examples=40, deadline=None)
    def test_well_formed_tree_invariants(self, tree):
        wft = build_well_formed_from_tree(tree)
        assert wft.max_degree() <= 3
        if tree.n > 1:
            assert wft.depth() <= int(np.ceil(np.log2(tree.n))) + 1


class TestListRankProperties:
    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_chain_distances(self, m):
        succ = np.arange(1, m + 1, dtype=np.int64)
        succ[-1] = -1
        dist, rounds = list_rank(succ)
        assert dist.tolist() == list(range(m - 1, -1, -1))
        if m > 1:
            assert rounds <= int(np.ceil(np.log2(m))) + 1


class TestHeapTreeProperties:
    @given(st.permutations(list(range(15))))
    @settings(max_examples=30, deadline=None)
    def test_heap_tree_on_permutation(self, order):
        tree = heap_tree(list(order))
        assert tree.root == order[0]
        assert tree.max_degree() <= 3
        depth = int(tree.depth_array().max())
        assert depth <= int(np.floor(np.log2(15)))


class TestAcceptanceProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=8), min_size=0, max_size=80),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_cap_never_exceeded_and_maximal(self, endpoints, cap, seed):
        endpoints = np.array(endpoints, dtype=np.int64)
        accepted = _accept_tokens(endpoints, cap, np.random.default_rng(seed))
        if endpoints.size == 0:
            assert accepted.size == 0
            return
        kept = endpoints[accepted]
        counts = np.bincount(kept, minlength=9)
        all_counts = np.bincount(endpoints, minlength=9)
        assert (counts <= cap).all()
        # Maximality: every endpoint keeps min(cap, received).
        assert (counts == np.minimum(all_counts, cap)).all()

    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_accepted_indices_are_valid_and_unique(self, endpoints, seed):
        endpoints = np.array(endpoints, dtype=np.int64)
        accepted = _accept_tokens(endpoints, 2, np.random.default_rng(seed))
        assert len(set(accepted.tolist())) == accepted.size
        assert (accepted >= 0).all() and (accepted < endpoints.size).all()
