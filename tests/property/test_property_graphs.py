"""Property-based tests (hypothesis) for the graph substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs.analysis import (
    adjacency_sets,
    bfs_distances,
    connected_components,
    diameter,
    is_connected,
)
from repro.graphs.portgraph import PortGraph
from repro.graphs.rmq import SparseTable
from repro.graphs.unionfind import UnionFind


@st.composite
def edge_lists(draw, max_n=24, max_edges=60):
    """Random undirected simple graphs as (n, edges)."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    )
    raw = draw(st.lists(pairs, max_size=max_edges))
    edges = {(min(a, b), max(a, b)) for a, b in raw if a != b}
    return n, sorted(edges)


def as_adj(n, edges):
    adj = [set() for _ in range(n)]
    for a, b in edges:
        adj[a].add(b)
        adj[b].add(a)
    return adj


class TestComponentsProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_components_partition_nodes(self, ne):
        n, edges = ne
        comps = connected_components(as_adj(n, edges))
        flat = sorted(v for comp in comps for v in comp)
        assert flat == list(range(n))

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_components_agree_with_unionfind(self, ne):
        n, edges = ne
        uf = UnionFind(n)
        for a, b in edges:
            uf.union(a, b)
        ours = {tuple(c) for c in connected_components(as_adj(n, edges))}
        theirs = {tuple(sorted(g)) for g in uf.groups().values()}
        assert ours == theirs

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_bfs_distances_satisfy_triangle_step(self, ne):
        n, edges = ne
        adj = as_adj(n, edges)
        dist = bfs_distances(adj, 0)
        for a, b in edges:
            if dist[a] >= 0 and dist[b] >= 0:
                assert abs(dist[a] - dist[b]) <= 1


class TestDiameterProperties:
    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_diameter_bounds(self, ne):
        n, edges = ne
        adj = as_adj(n, edges)
        if not is_connected(adj):
            return
        d = diameter(adj)
        assert 0 <= d <= n - 1
        if len(edges) == n * (n - 1) // 2 and n > 1:
            assert d == 1


class TestPortGraphProperties:
    @given(edge_lists(max_n=12, max_edges=20), st.integers(min_value=0, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_from_edge_multiset_always_symmetric_and_regular(self, ne, extra):
        n, edges = ne
        if not edges:
            return
        delta = 8 * (1 + extra)
        counts = np.zeros(n, dtype=int)
        kept = []
        for a, b in edges:
            if counts[a] < delta // 2 and counts[b] < delta // 2:
                counts[a] += 1
                counts[b] += 1
                kept.append((a, b))
        if not kept:
            return
        ends = np.array(kept)
        pg = PortGraph.from_edge_multiset(
            n=n, delta=delta, endpoints_a=ends[:, 0], endpoints_b=ends[:, 1]
        )
        assert pg.is_symmetric()
        assert pg.ports.shape == (n, delta)
        assert (pg.real_degree() == counts).all()

    @given(edge_lists(max_n=10, max_edges=16))
    @settings(max_examples=30, deadline=None)
    def test_walk_matrix_doubly_stochastic(self, ne):
        n, edges = ne
        if not edges:
            return
        ends = np.array(edges)
        pg = PortGraph.from_edge_multiset(
            n=n, delta=8 * n, endpoints_a=ends[:, 0], endpoints_b=ends[:, 1]
        )
        mat = pg.walk_matrix()
        assert np.allclose(mat.sum(axis=0), 1.0)
        assert np.allclose(mat.sum(axis=1), 1.0)


class TestRMQProperties:
    @given(
        st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=60),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_rmq_matches_bruteforce(self, values, data):
        arr = np.array(values)
        table = SparseTable(arr, op="min")
        lo = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
        hi = data.draw(st.integers(min_value=lo + 1, max_value=len(values)))
        assert table.query(lo, hi) == arr[lo:hi].min()


class TestUnionFindProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.lists(
            st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=80
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_find_is_canonical(self, n, unions):
        uf = UnionFind(n)
        for a, b in unions:
            uf.union(a % n, b % n)
        # find is idempotent and consistent within groups.
        for members in uf.groups().values():
            reps = {uf.find(m) for m in members}
            assert len(reps) == 1
