"""Tracer core: columnar round tables, span nesting, ambient resolution.

The resolution precedence under test is the probe-site contract
(docs/observability.md): an explicit ``tracer=`` kwarg beats the
session-scoped :func:`~repro.obs.activate`/:func:`~repro.obs.capture`
tracer, which beats the ``REPRO_TRACE`` environment singleton; ``None``
everywhere means every hook stays un-entered.
"""

import numpy as np
import pytest

from repro.graphs.portgraph import PortGraph
from repro.obs import (
    TRACE_ENV,
    RoundTrace,
    Tracer,
    activate,
    active_tracer,
    capture,
    maybe_span,
    read_trace,
    resolve_tracer,
)
from repro.obs.tracer import _reset_ambient_for_tests


@pytest.fixture(autouse=True)
def clean_ambient():
    _reset_ambient_for_tests()
    yield
    _reset_ambient_for_tests()


def fake_clock(step=1.0):
    state = {"t": 0.0}

    def clock():
        t = state["t"]
        state["t"] += step
        return t

    return clock


class TestRoundTrace:
    def test_append_and_column_views(self):
        rt = RoundTrace("net#0", "net", ("round", "sent"), capacity=16)
        for i in range(5):
            rt.append(i, 10 * i, 0.5 * i)
        assert len(rt) == 5
        assert rt.columns == ("round", "sent", "seconds")
        assert rt.column("round").dtype == np.int64
        assert rt.column("seconds").dtype == np.float64
        assert rt.column("sent").tolist() == [0, 10, 20, 30, 40]
        assert rt.column("seconds").tolist() == [0.0, 0.5, 1.0, 1.5, 2.0]

    def test_growth_past_capacity_preserves_rows(self):
        rt = RoundTrace("t#0", "t", ("x",), capacity=4)  # clamps to 16
        for i in range(100):
            rt.append(i, float(i))
        assert len(rt) == 100
        assert rt.column("x").tolist() == list(range(100))
        assert rt.column("seconds")[99] == 99.0

    def test_rows_are_plain_scalars(self):
        rt = RoundTrace("t#0", "t", ("a", "b"))
        rt.append(1, 2, 0.25)
        (row,) = rt.rows()
        assert row == [1, 2, 0.25]
        assert all(type(v) in (int, float) for v in row)


class TestSpans:
    def test_nesting_parent_links(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("run", cat="run") as outer:
            with tr.span("round", cat="round") as inner:
                pass
        assert outer.parent == -1
        assert inner.parent == outer.id
        assert inner.seconds > 0
        assert outer.seconds > inner.seconds

    def test_attrs_mutable_after_close(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("scenario", cat="scenario", n=8) as sp:
            pass
        sp.attrs["rounds"] = 17
        assert tr.spans[0].attrs == {"n": 8, "rounds": 17}

    def test_counter_events(self):
        tr = Tracer(clock=fake_clock())
        tr.counter("queue_depth", 3, {"round": 1})
        (name, ts, value, attrs) = tr.counters[0]
        assert (name, value, attrs) == ("queue_depth", 3, {"round": 1})
        assert ts >= 0

    def test_table_naming_and_kind_lookup(self):
        tr = Tracer(clock=fake_clock())
        a = tr.table("net", ("round",))
        b = tr.table("net", ("round",))
        c = tr.table("shard", ("round", "shard"))
        assert (a.name, b.name, c.name) == ("net#0", "net#1", "shard#0")
        assert tr.tables_of("net") == [a, b]
        assert tr.tables_of("sync") == []

    def test_maybe_span_disabled_is_noop(self):
        with maybe_span(None, "stage") as sp:
            assert sp is None

    def test_maybe_span_enabled_records(self):
        tr = Tracer(clock=fake_clock())
        with maybe_span(tr, "stage", cat="stage", tier="soa") as sp:
            assert sp is not None
        assert tr.spans[0].attrs == {"tier": "soa"}


class TestResolution:
    def test_off_by_default(self):
        assert active_tracer() is None
        assert resolve_tracer(None) is None

    def test_explicit_kwarg_beats_ambient(self):
        ambient = Tracer(clock=fake_clock())
        explicit = Tracer(clock=fake_clock())
        activate(ambient)
        assert resolve_tracer(explicit) is explicit
        assert resolve_tracer(None) is ambient

    def test_activate_returns_previous(self):
        first = Tracer(clock=fake_clock())
        assert activate(first) is None
        second = Tracer(clock=fake_clock())
        assert activate(second) is first
        assert resolve_tracer(None) is second

    def test_env_singleton(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, str(tmp_path / "env_trace.jsonl"))
        _reset_ambient_for_tests()
        env = resolve_tracer(None)
        assert isinstance(env, Tracer)
        assert env.meta["source"] == "env"
        assert resolve_tracer(None) is env  # cached singleton

    def test_session_tracer_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, str(tmp_path / "env_trace.jsonl"))
        _reset_ambient_for_tests()
        session = Tracer(clock=fake_clock())
        activate(session)
        assert resolve_tracer(None) is session

    def test_capture_scopes_and_writes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with capture(str(path), meta={"k": "v"}) as tr:
            assert resolve_tracer(None) is tr
            with tr.span("x"):
                pass
        assert resolve_tracer(None) is None
        data = read_trace(str(path))
        assert data.meta == {"k": "v"}
        assert len(data.spans) == 1

    def test_capture_writes_partial_trace_on_error(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        with pytest.raises(RuntimeError):
            with capture(str(path)) as tr:
                with tr.span("doomed"):
                    pass
                raise RuntimeError("boom")
        assert resolve_tracer(None) is None
        assert len(read_trace(str(path)).spans) == 1


class TestNetworkWiring:
    """The engine-facing surface: per-round views exist exactly when a
    tracer resolved at network construction."""

    def _run(self, **kwargs):
        from repro.core.soa_rooting import run_soa_rooting

        graph = PortGraph.ring_with_chords(64, delta=4, chords=1, seed=0)
        return run_soa_rooting(
            graph, 8, rng=np.random.default_rng(0), **kwargs
        )

    def test_untraced_run_materialises_nothing(self):
        result = self._run()
        assert result.metrics.per_round is None

    def test_traced_run_exposes_per_round_views(self):
        tr = Tracer()
        result = self._run(tracer=tr)
        view = result.metrics.per_round
        assert view is not None
        assert len(view) == result.rounds
        assert view.rounds().tolist() == list(range(result.rounds))
        assert int(view.messages_sent().sum()) == result.metrics.total_messages
        assert view.seconds().dtype == np.float64
        (net,) = tr.tables_of("net")
        assert net.meta["tier"] == "soa"

    def test_per_round_view_excluded_from_metrics_equality(self):
        base = self._run()
        traced = self._run(tracer=Tracer())
        assert traced.metrics.as_dict() == base.metrics.as_dict()
        assert "per_round" not in base.metrics.as_dict()
        assert traced.metrics == base.metrics
