"""Contract C7 at runtime: a traced execution IS the untraced one.

Tracing must never perturb what it observes — same trees, same metrics,
same scenario rows, at every tier and worker count, whether the tracer
arrives by kwarg, ambient :func:`~repro.obs.capture`, or the
``REPRO_WORKERS``-sharded delivery tail.  The matrices here are the
runtime half of the contract; the RL5xx repro-lint rules are the static
half.
"""

import hashlib
import time

import numpy as np
import pytest

from repro.core.protocol_tree import run_batch_rooting, run_protocol_rooting
from repro.core.soa_rooting import run_soa_rooting
from repro.graphs.portgraph import PortGraph
from repro.net.shard import WORKERS_ENV
from repro.obs import Tracer, capture
from repro.obs.tracer import _reset_ambient_for_tests
from repro.scenarios import CrashWave, ScenarioSpec
from repro.scenarios.runner import run_rooting_scenario, tier_invariant_view

SEEDS = tuple(range(12))
N = 128
FLOOD = 12


@pytest.fixture(autouse=True)
def clean_ambient():
    _reset_ambient_for_tests()
    yield
    _reset_ambient_for_tests()


def graph_for(seed: int) -> PortGraph:
    return PortGraph.ring_with_chords(N, delta=8, chords=1, seed=seed)


def sha(result) -> str:
    return hashlib.sha1(
        result.parent.tobytes() + result.depth.tobytes()
    ).hexdigest()


RUNNERS = {
    "object": lambda g, s, **kw: run_protocol_rooting(
        g, FLOOD, rng=np.random.default_rng(s), engine="legacy"
    ),
    "batch": lambda g, s, **kw: run_batch_rooting(
        g, FLOOD, rng=np.random.default_rng(s)
    ),
    "soa": lambda g, s, **kw: run_soa_rooting(
        g, FLOOD, rng=np.random.default_rng(s), **kw
    ),
}


@pytest.mark.parametrize("tier", sorted(RUNNERS))
def test_traced_equals_untraced_across_tiers(tier):
    """12-seed matrix per tier: ambient capture() wires the tier's
    networks with zero kwarg plumbing, and nothing changes."""
    run = RUNNERS[tier]
    for seed in SEEDS:
        graph = graph_for(seed)
        base = run(graph, seed)
        with capture() as tracer:
            traced = run(graph, seed)
        assert sha(traced) == sha(base), f"tier={tier} seed={seed}"
        assert traced.metrics.as_dict() == base.metrics.as_dict()
        (net,) = tracer.tables_of("net")
        assert len(net) == base.metrics.rounds


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_traced_equals_untraced_across_worker_counts(workers):
    """The sharded delivery tail: traced and untraced runs agree at
    every worker count, and all counts agree with each other."""
    for seed in SEEDS[:4]:
        graph = graph_for(seed)
        base = run_soa_rooting(graph, FLOOD, rng=np.random.default_rng(seed))
        traced = run_soa_rooting(
            graph,
            FLOOD,
            rng=np.random.default_rng(seed),
            workers=workers,
            tracer=Tracer(),
        )
        assert sha(traced) == sha(base), f"workers={workers} seed={seed}"
        assert traced.metrics.as_dict() == base.metrics.as_dict()


def test_env_workers_path_traced(monkeypatch):
    """REPRO_WORKERS env sharding composes with tracing."""
    monkeypatch.setenv(WORKERS_ENV, "2")
    for seed in SEEDS[:4]:
        graph = graph_for(seed)
        base = run_soa_rooting(graph, FLOOD, rng=np.random.default_rng(seed))
        tracer = Tracer()
        traced = run_soa_rooting(
            graph, FLOOD, rng=np.random.default_rng(seed), tracer=tracer
        )
        assert sha(traced) == sha(base)
        # The sharded sort actually ran and was recorded.
        assert tracer.tables_of("shard"), "expected shard telemetry"


def test_scenario_rows_invariant_under_tracing():
    """A traced adversarial scenario cell produces the identical row
    (modulo wall clock) and a scenario span nesting the run."""
    spec = ScenarioSpec(
        name="trace/crash20",
        crashes=(CrashWave(round_no=2, fraction=0.2),),
        fault_seed=3,
    )
    graph = PortGraph.ring_with_chords(256, delta=8, chords=1, seed=0)
    base = run_rooting_scenario(graph, spec, seed=0, tier="soa")
    tracer = Tracer()
    traced = run_rooting_scenario(
        graph, spec, seed=0, tier="soa", tracer=tracer
    )
    assert tier_invariant_view(traced) == tier_invariant_view(base)
    scenario_spans = [sp for sp in tracer.spans if sp.cat == "scenario"]
    assert len(scenario_spans) == 1
    assert scenario_spans[0].name == "trace/crash20"
    assert scenario_spans[0].attrs["converged"] == traced["converged"]


def test_disabled_tracer_overhead_bounded():
    """Zero-overhead-when-off: after a capture() session exits, an
    untraced run must cost what it did before any tracer existed (the
    3% bar of docs/observability.md, plus absolute slack for timer
    noise at this small shape)."""
    graph = PortGraph.ring_with_chords(20_000, delta=16, chords=2, seed=1)

    def run():
        return run_soa_rooting(graph, 23, rng=np.random.default_rng(1))

    def best_of(k):
        best = float("inf")
        for _ in range(k):
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
        return best

    run()  # warm caches
    base = best_of(2)
    with capture():
        run()
    disabled = best_of(2)
    assert disabled <= base * 1.03 + 0.05, (
        f"disabled-tracer run regressed: {disabled:.4f}s vs {base:.4f}s"
    )
