"""trace/v1 round-trip and ``python -m repro.obs`` golden outputs.

A fake stepping clock makes every timestamp deterministic, so the CLI's
fixed-width output can be pinned exactly (the formatting is built in
:mod:`repro.obs.cli` with no external table dependency for precisely
this reason).
"""

import numpy as np
import pytest

from repro.obs import Tracer, read_trace, write_trace
from repro.obs.cli import main


def stepping_clock():
    state = {"t": 0.0}

    def clock():
        state["t"] += 1.0
        return state["t"]

    return clock


def make_trace(path: str) -> Tracer:
    """One of everything: nested spans, a counter, net + shard tables."""
    tr = Tracer(clock=stepping_clock(), meta={"n": 8, "tier": "soa"})
    with tr.span("trace/crash", cat="scenario", n=8):
        with tr.span("spanner", cat="stage"):
            pass
    tr.counter("queue_depth", 3, {"round": 1})
    net = tr.table(
        "net",
        (
            "round",
            "inbox",
            "sent",
            "delivered",
            "fault_drops",
            "send_drops",
            "receive_drops",
            "layout_hit",
        ),
    )
    net.append(0, 0, 10, 10, 0, 0, 0, 0, 0.25)
    net.append(1, 10, 6, 6, 2, 0, 0, 1, 0.5)
    shard = tr.table(
        "shard", ("round", "shard", "messages", "op"), meta={"workers": 2}
    )
    shard.append(0, 0, 5, 0, 0.125)
    shard.append(0, 1, 5, 0, 0.25)
    write_trace(path, tr)
    return tr


class TestRoundTrip:
    def test_everything_survives_serialisation(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tr = make_trace(path)
        data = read_trace(path)

        assert data.meta == {"n": 8, "tier": "soa"}
        assert [sp["name"] for sp in data.spans] == ["trace/crash", "spanner"]
        assert data.spans[0]["parent"] == -1
        assert data.spans[1]["parent"] == data.spans[0]["id"]
        assert data.spans[0]["attrs"] == {"n": 8}

        (counter,) = data.counters
        assert counter["name"] == "queue_depth"
        assert counter["value"] == 3

        assert [t.name for t in data.tables] == ["net#0", "shard#0"]
        net = data.tables_of("net")[0]
        assert net.columns == tr.tables_of("net")[0].columns
        for col in net.columns:
            assert np.array_equal(
                net.column(col), tr.tables_of("net")[0].column(col)
            ), col
        assert net.column("seconds").dtype == np.float64
        assert data.tables_of("shard")[0].meta == {"workers": 2}

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "trace/v99", "meta": {}}\n')
        with pytest.raises(ValueError, match="schema"):
            read_trace(str(path))


class TestSummary:
    def test_golden_lines(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        make_trace(path)
        assert main(["summary", path]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()

        assert lines[0] == f"trace/v1 · {path}"
        assert lines[1] == "meta: n=8 tier=soa"
        assert "spans (2 total):" in lines
        # Sorted by total descending: the scenario span encloses the stage.
        cat_col = [ln.split()[0] for ln in lines if ln and ln[0].isalpha()]
        assert cat_col.index("scenario") < cat_col.index("stage")
        assert "counters: 1 events" in out
        assert "net tables (1):" in lines
        assert "[net#0]" in lines
        assert (
            "  rounds=2 sent=16 delivered=16 fault_drops=2 send_drops=0 "
            "receive_drops=0 layout_hits=1/2 seconds=0.750000" in lines
        )
        assert "  top 2 slowest rounds:" in lines
        assert "shard tables (1):" in lines
        assert "[shard#0] workers=2" in lines

    def test_top_limits_rows(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        make_trace(path)
        main(["summary", path, "--top", "1"])
        out = capsys.readouterr().out
        assert "  top 1 slowest rounds:" in out.splitlines()
        # Only the slowest round (round 1, 0.5s) is listed.
        data_rows = [ln for ln in out.splitlines() if ln.startswith("    1 ")]
        assert len(data_rows) == 1


class TestDiff:
    def test_self_diff_is_all_zero(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        make_trace(path)
        assert main(["diff", path, path]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0] == f"diff: a={path} b={path}"
        assert "span totals (seconds):" in lines
        assert "net table totals:" in lines
        assert "shard table totals:" in lines
        data = [
            ln
            for ln in lines
            if ln.endswith("%") and not ln.startswith(("span", "column"))
        ]
        assert data, "expected delta rows"
        assert all(ln.endswith("+0.0%") for ln in data), data


class TestTimeline:
    def test_ascii_golden(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        make_trace(path)
        assert main(["timeline", path, "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == [
            "[net#0]",
            "  r   0 sent=      10 0.250000 " + "#" * 20,
            "  r   1 sent=       6 0.500000 " + "#" * 40 + " !faults",
        ]

    def test_csv_golden(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        make_trace(path)
        assert main(["timeline", path, "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == [
            "table,round,inbox,sent,delivered,fault_drops,send_drops,"
            "receive_drops,layout_hit,seconds",
            "net#0,0,0,10,10,0,0,0,0,0.250000",
            "net#0,1,10,6,6,2,0,0,1,0.500000",
        ]

    def test_table_filter_selects_non_net_tables(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        make_trace(path)
        assert main(["timeline", path, "--table", "shard#0", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "table,round,shard,messages,op,seconds"

    def test_unknown_table_is_an_error(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        make_trace(path)
        assert main(["timeline", path, "--table", "nope#9"]) == 1
        assert "no table named" in capsys.readouterr().err

    def test_bad_artifact_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "trace/v99", "meta": {}}\n')
        assert main(["timeline", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ") and "schema" in err

    def test_missing_artifact_is_a_clean_error(self, tmp_path, capsys):
        assert main(["summary", str(tmp_path / "nope.jsonl")]) == 1
        assert capsys.readouterr().err.startswith("error: ")
