"""MakeBenign (Definition 2.1 preparation) tests."""

import numpy as np
import pytest

from repro.core.benign import check_benign, make_benign, undirected_edge_list
from repro.core.params import ExpanderParams
from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets
from repro.graphs.mincut import min_cut_of_portgraph


PARAMS = ExpanderParams(delta=48, lam=4, ell=8, num_evolutions=5)


class TestEdgeExtraction:
    def test_undirected_edges_of_digraph(self, rng):
        d = G.random_orientation(G.cycle_graph(5), rng)
        n, edges = undirected_edge_list(d)
        assert n == 5
        assert len(edges) == 5

    def test_duplicates_and_loops_removed(self):
        import networkx as nx

        d = nx.DiGraph()
        d.add_nodes_from(range(3))
        d.add_edges_from([(0, 1), (1, 0), (1, 1), (1, 2)])
        _, edges = undirected_edge_list(d)
        assert edges == [(0, 1), (1, 2)]

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            undirected_edge_list([[1], [0]])


class TestMakeBenign:
    def test_regular_and_lazy(self):
        pg, registry = make_benign(G.line_graph(10), PARAMS)
        assert pg.delta == PARAMS.delta
        assert pg.is_lazy()
        assert pg.is_symmetric()

    def test_lambda_copies(self):
        pg, registry = make_benign(G.line_graph(10), PARAMS)
        # Interior node: 2 incident edges, each copied lam times.
        assert pg.real_degree()[5] == 2 * PARAMS.lam
        assert pg.real_degree()[0] == PARAMS.lam

    def test_registry_matches_copies(self):
        pg, registry = make_benign(G.line_graph(10), PARAMS)
        assert len(registry) == 9 * PARAMS.lam
        # All copies of an edge share their source.
        sources = {}
        for e in registry:
            sources.setdefault(e.source, 0)
            sources[e.source] += 1
        assert all(count == PARAMS.lam for count in sources.values())

    def test_min_cut_is_lambda(self):
        pg, _ = make_benign(G.line_graph(12), PARAMS)
        assert min_cut_of_portgraph(pg) == PARAMS.lam

    def test_adjacency_preserved(self):
        pg, _ = make_benign(G.cycle_graph(9), PARAMS)
        assert adjacency_sets(pg) == adjacency_sets(G.cycle_graph(9))

    def test_too_dense_input_rejected(self):
        with pytest.raises(ValueError, match="increase delta"):
            make_benign(G.star_graph(30), PARAMS)

    def test_single_node_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(ValueError):
            make_benign(g, PARAMS)


class TestCheckBenign:
    def test_fresh_benign_graph_passes(self):
        pg, _ = make_benign(G.cycle_graph(10), PARAMS)
        report = check_benign(pg, PARAMS, cut_target=PARAMS.lam)
        assert report.is_regular
        assert report.is_lazy
        assert report.has_lambda_cut
        assert report.all_ok()

    def test_cut_target_defaults_to_floor(self):
        pg, _ = make_benign(G.cycle_graph(10), PARAMS)
        report = check_benign(pg, PARAMS)
        assert report.min_cut == 2 * PARAMS.lam
        assert report.has_lambda_cut  # floor = max(2, lam//2) = 2

    def test_cut_check_skipped_above_limit(self):
        pg, _ = make_benign(G.cycle_graph(10), PARAMS)
        report = check_benign(pg, PARAMS, cut_n_limit=5)
        assert report.min_cut is None
        assert report.has_lambda_cut is None
        assert report.all_ok()  # unknown cut does not fail the report

    def test_non_lazy_graph_fails(self):
        # All ports real: a 4-cycle with delta=8 and 4 copies per edge.
        from repro.graphs.portgraph import PortGraph

        ends_a = np.repeat(np.arange(4), 4)
        ends_b = np.repeat((np.arange(4) + 1) % 4, 4)
        pg = PortGraph.from_edge_multiset(
            n=4, delta=8, endpoints_a=ends_a, endpoints_b=ends_b
        )
        params = ExpanderParams(delta=8, lam=2, ell=4, num_evolutions=1)
        report = check_benign(pg, params)
        assert not report.is_lazy
        assert not report.all_ok()
