"""Message-level NCC0 engine tests (Theorem 1.1 communication bounds)."""

import math

import numpy as np
import pytest

from repro.core.params import ExpanderParams
from repro.core.protocol import run_protocol_expander
from repro.graphs import generators as G
from repro.graphs.analysis import diameter, is_connected
from repro.net.network import CapacityPolicy


def small_params(n: int, evolutions: int = 6) -> ExpanderParams:
    p = ExpanderParams.recommended(n, ell=16)
    return p.with_evolutions(evolutions)


class TestProtocolExecution:
    def test_final_graph_is_benign_shaped(self):
        params = small_params(48)
        result = run_protocol_expander(
            G.line_graph(48), params=params, rng=np.random.default_rng(0)
        )
        g = result.final_graph
        assert g.delta == params.delta
        assert g.is_lazy()
        assert g.is_symmetric()

    def test_final_graph_connected(self):
        result = run_protocol_expander(
            G.cycle_graph(48), params=small_params(48), rng=np.random.default_rng(1)
        )
        assert is_connected(result.final_graph.neighbor_sets())

    def test_round_count_matches_schedule(self):
        params = small_params(32, evolutions=4)
        result = run_protocol_expander(
            G.line_graph(32), params=params, rng=np.random.default_rng(2)
        )
        assert result.rounds <= params.num_evolutions * (params.ell + 2) + 1


class TestCommunicationBounds:
    def test_no_drops_at_calibrated_capacity(self):
        result = run_protocol_expander(
            G.line_graph(64), params=small_params(64), rng=np.random.default_rng(3)
        )
        assert result.metrics.total_drops == 0

    def test_per_round_load_at_most_delta(self):
        params = small_params(64)
        result = run_protocol_expander(
            G.line_graph(64), params=params, rng=np.random.default_rng(4)
        )
        assert result.metrics.max_sent_per_round <= params.delta
        assert result.metrics.max_received_per_round <= params.delta

    def test_total_messages_per_node_polylog(self):
        # Theorem 1.1: O(log^2 n) messages per node over the whole run.
        n = 64
        params = small_params(n)
        result = run_protocol_expander(
            G.line_graph(n), params=params, rng=np.random.default_rng(5)
        )
        bound = params.delta * (params.ell + 2) * params.num_evolutions
        assert result.metrics.max_total_sent_by_any_node() <= bound

    def test_tight_capacity_causes_drops_but_no_crash(self):
        # Starving the network must degrade, not break, the protocol.
        params = small_params(32, evolutions=3)
        tight = CapacityPolicy(max_send=4, max_receive=4)
        result = run_protocol_expander(
            G.line_graph(32),
            params=params,
            rng=np.random.default_rng(6),
            capacity=tight,
        )
        assert result.metrics.total_drops > 0
        assert result.final_graph.delta == params.delta  # still regular


class TestProtocolQuality:
    def test_overlay_diameter_collapses(self):
        n = 64
        params = ExpanderParams.recommended(n).with_evolutions(
            math.ceil(math.log2(n)) + 2
        )
        result = run_protocol_expander(
            G.line_graph(n), params=params, rng=np.random.default_rng(7)
        )
        assert diameter(result.final_graph.neighbor_sets()) <= 2 * math.ceil(
            math.log2(n)
        )

    def test_agrees_with_fast_engine_statistically(self):
        # Both engines run the same random process; their final spectral
        # gaps on the same input should land in the same regime.
        from repro.core.expander import create_expander
        from repro.graphs.spectral import spectral_gap

        n = 48
        params = small_params(n, evolutions=8)
        proto = run_protocol_expander(
            G.cycle_graph(n), params=params, rng=np.random.default_rng(8)
        )
        fast = create_expander(
            G.cycle_graph(n), params=params, rng=np.random.default_rng(8)
        )
        gap_p = spectral_gap(proto.final_graph)
        gap_f = spectral_gap(fast.final_graph)
        assert gap_p > 0.03 and gap_f > 0.03
        assert 0.3 < gap_p / gap_f < 3.0
