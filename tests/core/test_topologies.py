"""Structured overlay construction tests (§1.4 corollary)."""

import math

import numpy as np
import pytest

from repro.core.pipeline import build_well_formed_tree
from repro.core.topologies import (
    build_butterfly,
    build_debruijn,
    build_hypercube,
    build_sorted_path,
    build_sorted_ring,
)
from repro.graphs.generators import line_graph


BUILDERS = {
    "sorted_path": build_sorted_path,
    "sorted_ring": build_sorted_ring,
    "hypercube": build_hypercube,
    "butterfly": build_butterfly,
    "debruijn": build_debruijn,
}


@pytest.fixture(scope="module")
def wft_tree():
    result = build_well_formed_tree(line_graph(100), rng=np.random.default_rng(3))
    return result.tree


class TestAllTopologies:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_connected(self, name, wft_tree):
        topo = BUILDERS[name](wft_tree)
        assert topo.is_connected()
        assert topo.n == 100

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_rank_assignment_is_permutation(self, name, wft_tree):
        topo = BUILDERS[name](wft_tree)
        assert sorted(topo.ranks.tolist()) == list(range(100))

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_construction_rounds_logarithmic(self, name, wft_tree):
        topo = BUILDERS[name](wft_tree)
        assert topo.rounds <= 6 * math.ceil(math.log2(100))


class TestSortedStructures:
    def test_path_shape(self, wft_tree):
        topo = build_sorted_path(wft_tree)
        assert topo.max_degree() == 2
        degree_one = [v for v in range(topo.n) if len(topo.adj[v]) == 1]
        assert len(degree_one) == 2  # exactly two endpoints

    def test_ring_shape(self, wft_tree):
        topo = build_sorted_ring(wft_tree)
        assert all(len(a) == 2 for a in topo.adj)
        assert topo.overlay_diameter() == 50

    def test_ring_respects_rank_order(self, wft_tree):
        topo = build_sorted_ring(wft_tree)
        node_of = {int(topo.ranks[v]): v for v in range(topo.n)}
        for r in range(topo.n):
            assert node_of[(r + 1) % topo.n] in topo.adj[node_of[r]]


class TestLowDiameterStructures:
    def test_hypercube_diameter(self, wft_tree):
        topo = build_hypercube(wft_tree)
        assert topo.overlay_diameter() <= math.ceil(math.log2(100)) + 1
        assert topo.max_degree() <= 2 * math.ceil(math.log2(100))

    def test_butterfly_constant_degree_log_diameter(self, wft_tree):
        topo = build_butterfly(wft_tree)
        assert topo.max_degree() <= 10
        assert topo.overlay_diameter() <= 2 * math.ceil(math.log2(100))

    def test_debruijn_shape(self, wft_tree):
        topo = build_debruijn(wft_tree)
        assert topo.max_degree() <= 4
        assert topo.overlay_diameter() <= math.ceil(math.log2(100)) + 2

    def test_debruijn_shift_edges_present(self, wft_tree):
        topo = build_debruijn(wft_tree)
        node_of = {int(topo.ranks[v]): v for v in range(topo.n)}
        for r in (1, 17, 49):
            assert node_of[(2 * r) % topo.n] in topo.adj[node_of[r]]


class TestSmallTrees:
    def test_tiny_tree(self):
        from repro.core.child_sibling import RootedTree

        tree = RootedTree(root=0, parent=np.array([0, 0, 1]))
        for name, build in BUILDERS.items():
            topo = build(tree)
            assert topo.is_connected(), name
