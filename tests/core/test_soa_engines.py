"""Three-way differential matrix: object vs. batch vs. SoA engines.

ISSUE 3's acceptance bar.  Rooting nodes draw no randomness of their own,
so all three execution tiers must produce **bit-for-bit** identical
``(root, parent, depth)`` arrays, metrics, and round counts over a
20-seed matrix — and match the reference BFS oracle.

For the expander the per-tier randomness granularity necessarily differs
(the object tier draws per token, the batch tier per node-row — streams
that PR 1 already documents as intentionally distinct), so the exact
comparison runs where streams are matched: :func:`run_soa_expander` is
bit-for-bit equal to ``run_batch_expander(rng_mode="shared")`` — same
final port matrix, same accepted-edge log, same metrics — over a 20-seed
matrix, while the three tiers pairwise agree on the round ledger and the
structural invariants (no drops, degree bound, laziness, symmetry).
"""

import math

import numpy as np
import pytest

from repro.core.batch_protocol import run_batch_expander, run_soa_expander
from repro.core.bfs import build_bfs_forest
from repro.core.params import ExpanderParams
from repro.core.pipeline import build_well_formed_tree
from repro.core.protocol import run_protocol_expander
from repro.core.protocol_tree import run_batch_rooting, run_protocol_rooting
from repro.core.soa_rooting import SoARootingClass, csr_neighbors, run_soa_rooting
from repro.graphs import generators as G
from repro.graphs.portgraph import PortGraph

SEEDS = range(20)


def overlay_like(n: int, seed: int, chords: int = 2, delta: int = 16) -> PortGraph:
    """Connected low-diameter multigraph standing in for evolution output
    (the ring-plus-chords family shared with the S2/S3 benches)."""
    return PortGraph.ring_with_chords(n, delta=delta, chords=chords, seed=seed)


def _flood_rounds(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n)))) + 4


class TestRootingThreeWay:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_three_tiers_bit_for_bit(self, seed):
        # Vary size and chord structure with the seed.
        n = 48 + 8 * (seed % 5)
        graph = overlay_like(n, seed, chords=2 + seed % 2)
        fr = _flood_rounds(n)
        obj = run_protocol_rooting(
            graph, fr, rng=np.random.default_rng(seed), engine="legacy"
        )
        bat = run_batch_rooting(graph, fr, rng=np.random.default_rng(seed))
        soa = run_soa_rooting(graph, fr, rng=np.random.default_rng(seed))
        for other in (bat, soa):
            assert other.root == obj.root
            assert np.array_equal(other.parent, obj.parent)
            assert np.array_equal(other.depth, obj.depth)
            assert other.metrics.as_dict() == obj.metrics.as_dict()
            assert other.rounds == obj.rounds

    @pytest.mark.parametrize("seed", range(6))
    def test_soa_matches_reference_bfs(self, seed):
        graph = overlay_like(56, seed)
        soa = run_soa_rooting(graph, _flood_rounds(56), rng=np.random.default_rng(seed))
        forest = build_bfs_forest(graph)
        assert forest.roots == [soa.root]
        assert np.array_equal(soa.parent, forest.parent)
        assert np.array_equal(soa.depth, forest.depth)

    def test_no_drops_within_capacity(self):
        graph = overlay_like(200, seed=3)
        result = run_soa_rooting(graph, _flood_rounds(200))
        assert result.metrics.total_drops == 0
        assert result.metrics.max_sent_per_round <= graph.delta

    def test_csr_matches_neighbor_sets(self):
        graph = overlay_like(80, seed=5, chords=3)
        indptr, flat = csr_neighbors(graph)
        sets = graph.neighbor_sets()
        for v in range(graph.n):
            assert flat[indptr[v] : indptr[v + 1]].tolist() == sorted(sets[v])

    def test_soa_rejects_legacy_engine(self):
        with pytest.raises(ValueError, match="vectorized"):
            run_soa_rooting(overlay_like(32, 0), 6, engine="legacy")

    def test_unreached_nodes_raise(self):
        # Two disjoint rings: the flood never crosses, BFS cannot span.
        idx = np.arange(8, dtype=np.int64)
        half = np.concatenate([np.roll(idx[:4], -1), 4 + np.roll(idx[:4], -1)])
        graph = PortGraph.from_edge_multiset(
            n=8, delta=4, endpoints_a=idx, endpoints_b=half
        )
        with pytest.raises(RuntimeError):
            run_soa_rooting(graph, 6)


def _expander_params(n: int) -> ExpanderParams:
    return ExpanderParams.recommended(n, ell=16).with_evolutions(
        math.ceil(math.log2(n)) + 2
    )


class TestExpanderThreeWay:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_soa_equals_shared_rng_batch_bit_for_bit(self, seed):
        n = 24 + 8 * (seed % 4)
        params = _expander_params(n)
        g = G.line_graph(n)
        bat = run_batch_expander(
            g, params=params, rng=np.random.default_rng(seed), rng_mode="shared"
        )
        soa = run_soa_expander(g, params=params, rng=np.random.default_rng(seed))
        assert np.array_equal(bat.final_graph.ports, soa.final_graph.ports)
        assert bat.metrics.as_dict() == soa.metrics.as_dict()
        assert bat.rounds == soa.rounds

    @pytest.mark.parametrize("seed", range(6))
    def test_three_tiers_agree_on_ledger_and_invariants(self, seed):
        n = 32
        params = _expander_params(n)
        g = G.cycle_graph(n)
        runs = {
            "object": run_protocol_expander(g, params=params, rng=np.random.default_rng(seed)),
            "batch": run_batch_expander(g, params=params, rng=np.random.default_rng(seed)),
            "soa": run_soa_expander(g, params=params, rng=np.random.default_rng(seed)),
        }
        rounds = {tier: r.rounds for tier, r in runs.items()}
        assert len(set(rounds.values())) == 1, rounds
        for tier, r in runs.items():
            assert r.metrics.total_drops == 0, tier
            assert r.metrics.max_sent_per_round <= params.delta, tier
            assert r.final_graph.delta == params.delta, tier
            assert r.final_graph.is_lazy(), tier
            assert r.final_graph.is_symmetric(), tier

    def test_accepted_log_matches_batch_nodes(self):
        # The columnar accepted-edge log equals the per-node logs of the
        # shared-generator batch run, node by node and in order.
        n = 40
        params = _expander_params(n)
        g = G.line_graph(n)
        from repro.core.batch_protocol import BatchExpanderNode, SoAExpanderClass
        from repro.core.protocol import (
            prepare_network_inputs,
            run_expander_on_network,
        )
        from repro.net.network import SyncNetwork

        rng = np.random.default_rng(11)
        _, neighbors, params2, capacity = prepare_network_inputs(g, params, None)
        proto_rng, net_rng = rng.spawn(2)
        cls = SoAExpanderClass(n, neighbors, params2, proto_rng)
        network = SyncNetwork(cls, capacity, net_rng)
        network.run(max_rounds=params2.num_evolutions * (params2.ell + 2) + 1)

        rng_b = np.random.default_rng(11)
        proto_b, net_b = rng_b.spawn(2)
        nodes = {
            v: BatchExpanderNode(v, neighbors[v], params2, proto_b) for v in range(n)
        }
        net2 = SyncNetwork(nodes, capacity, net_b)
        net2.run(max_rounds=params2.num_evolutions * (params2.ell + 2) + 1)

        assert len(cls.accepted_log) == params2.num_evolutions
        for evo, (acceptors, origins) in enumerate(cls.accepted_log):
            for v in range(n):
                mine = origins[acceptors == v].tolist()
                theirs = (
                    nodes[v].accepted_origins[evo].tolist()
                    if evo < len(nodes[v].accepted_origins)
                    else []
                )
                assert mine == theirs, (evo, v)

    def test_soa_rejects_legacy_engine(self):
        with pytest.raises(ValueError, match="vectorized"):
            run_soa_expander(G.cycle_graph(16), engine="legacy")


class TestPipelineSoAModes:
    def test_rooting_soa_builds_the_identical_tree(self):
        g = G.cycle_graph(72)
        runs = {
            mode: build_well_formed_tree(g, rng=np.random.default_rng(9), rooting=mode)
            for mode in ("reference", "batch", "soa")
        }
        ref = runs["reference"]
        for mode, run in runs.items():
            assert np.array_equal(run.bfs.parent, ref.bfs.parent), mode
            assert np.array_equal(run.bfs.depth, ref.bfs.depth), mode
        assert runs["batch"].round_ledger == runs["soa"].round_ledger

    def test_expander_soa_mode_builds_valid_overlay(self):
        g = G.cycle_graph(64)
        result = build_well_formed_tree(
            g, rng=np.random.default_rng(2), expander="soa", rooting="soa"
        )
        n = g.number_of_nodes()
        assert result.well_formed.max_degree() <= 3
        assert result.well_formed.depth() <= math.ceil(math.log2(n)) + 1
        assert result.round_ledger["evolutions"] > 0
        assert result.total_rounds == sum(result.round_ledger.values())

    def test_message_expander_modes_reject_walk_only_features(self):
        with pytest.raises(ValueError, match="walks"):
            build_well_formed_tree(G.cycle_graph(32), expander="batch", track_gap=True)
        with pytest.raises(ValueError, match="expander must be one of"):
            build_well_formed_tree(G.cycle_graph(32), expander="hyperdrive")


class TestSoAStateMachine:
    def test_rooting_class_is_idle_only_after_spanning(self):
        graph = overlay_like(40, 1)
        from repro.net.network import CapacityPolicy, SyncNetwork

        cls = SoARootingClass(*csr_neighbors(graph), _flood_rounds(40))
        net = SyncNetwork(
            cls, CapacityPolicy.ncc0(40, graph.delta), np.random.default_rng(0)
        )
        assert not cls.is_idle()
        net.run(max_rounds=200)
        assert cls.is_idle()
        assert (cls.parent >= 0).all()
        assert (cls.announced).all()
