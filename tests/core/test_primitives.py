"""Tree primitive tests: aggregation, enumeration, routing, sampling."""

import numpy as np
import pytest

from repro.core.child_sibling import RootedTree
from repro.core.primitives import TreePrimitives


def path_tree(n: int) -> RootedTree:
    return RootedTree(root=0, parent=np.maximum(np.arange(n) - 1, 0))


def balanced_tree(n: int) -> RootedTree:
    parent = np.array([0] + [(v - 1) // 2 for v in range(1, n)])
    return RootedTree(root=0, parent=parent)


class TestAggregation:
    def test_count_nodes(self):
        prims = TreePrimitives(balanced_tree(31))
        res = prims.count_nodes()
        assert res.value == 31
        assert res.rounds == prims.height

    def test_sum_aggregate(self):
        prims = TreePrimitives(path_tree(10))
        res = prims.aggregate(list(range(10)), lambda a, b: a + b)
        assert res.value == 45

    def test_max_aggregate(self):
        prims = TreePrimitives(balanced_tree(15))
        values = [v * 7 % 13 for v in range(15)]
        res = prims.aggregate(values, max)
        assert res.value == max(values)

    def test_wrong_length_rejected(self):
        prims = TreePrimitives(path_tree(5))
        with pytest.raises(ValueError):
            prims.aggregate([1, 2], lambda a, b: a + b)

    def test_rounds_are_height(self):
        deep = TreePrimitives(path_tree(20))
        shallow = TreePrimitives(balanced_tree(20))
        assert deep.count_nodes().rounds == 19
        assert shallow.count_nodes().rounds == 4


class TestEnumeration:
    def test_ranks_are_permutation(self):
        prims = TreePrimitives(balanced_tree(20))
        ranks, rounds = prims.enumerate_nodes()
        assert sorted(ranks.tolist()) == list(range(20))
        assert rounds >= 1

    def test_root_gets_rank_zero(self):
        prims = TreePrimitives(balanced_tree(9))
        ranks, _ = prims.enumerate_nodes()
        assert ranks[0] == 0


class TestRouting:
    def test_lca_on_balanced_tree(self):
        prims = TreePrimitives(balanced_tree(15))
        assert prims.lca(7, 8) == 3
        assert prims.lca(7, 14) == 0
        assert prims.lca(3, 7) == 3

    def test_route_endpoints_and_validity(self):
        tree = balanced_tree(15)
        prims = TreePrimitives(tree)
        path, hops = prims.route(7, 14)
        assert path[0] == 7 and path[-1] == 14
        assert hops == len(path) - 1
        # Consecutive nodes are tree neighbours.
        for a, b in zip(path, path[1:]):
            assert tree.parent[a] == b or tree.parent[b] == a

    def test_route_to_self(self):
        prims = TreePrimitives(path_tree(6))
        path, hops = prims.route(3, 3)
        assert path == [3]
        assert hops == 0

    def test_route_length_bounded_by_height(self):
        prims = TreePrimitives(balanced_tree(31))
        for src, dst in [(15, 30), (16, 17), (0, 29)]:
            _, hops = prims.route(src, dst)
            assert hops <= 2 * prims.height


class TestSampling:
    def test_sample_covers_all_nodes(self):
        prims = TreePrimitives(balanced_tree(10))
        rng = np.random.default_rng(0)
        seen = {prims.sample_node(rng)[0] for _ in range(300)}
        assert seen == set(range(10))

    def test_sample_uniform_ish(self):
        prims = TreePrimitives(path_tree(5))
        rng = np.random.default_rng(1)
        counts = np.zeros(5)
        for _ in range(2000):
            node, rounds = prims.sample_node(rng)
            counts[node] += 1
            assert rounds == prims.height
        assert (np.abs(counts / 2000 - 0.2) < 0.05).all()
