"""ExpanderParams validation and derived-quantity tests."""

import pytest

from repro.core.params import ExpanderParams


class TestValidation:
    def test_delta_must_be_multiple_of_8(self):
        with pytest.raises(ValueError):
            ExpanderParams(delta=20, lam=2, ell=4, num_evolutions=3)

    def test_delta_must_be_positive(self):
        with pytest.raises(ValueError):
            ExpanderParams(delta=0, lam=2, ell=4, num_evolutions=3)

    def test_lam_positive(self):
        with pytest.raises(ValueError):
            ExpanderParams(delta=32, lam=0, ell=4, num_evolutions=3)

    def test_ell_positive(self):
        with pytest.raises(ValueError):
            ExpanderParams(delta=32, lam=2, ell=0, num_evolutions=3)

    def test_negative_evolutions_rejected(self):
        with pytest.raises(ValueError):
            ExpanderParams(delta=32, lam=2, ell=4, num_evolutions=-1)


class TestDerived:
    def test_token_and_cap_fractions(self):
        p = ExpanderParams(delta=64, lam=4, ell=8, num_evolutions=5)
        assert p.tokens_per_node == 8  # delta / 8
        assert p.accept_cap == 24  # 3 delta / 8

    def test_maintained_cut_floor(self):
        p = ExpanderParams(delta=64, lam=9, ell=8, num_evolutions=5)
        assert p.maintained_cut_floor == 4
        p = ExpanderParams(delta=64, lam=2, ell=8, num_evolutions=5)
        assert p.maintained_cut_floor == 2

    def test_max_copy_degree_respects_laziness(self):
        p = ExpanderParams(delta=64, lam=4, ell=8, num_evolutions=5)
        # lam * d <= delta/2 must hold for d = max_copy_degree.
        assert p.lam * p.max_copy_degree() * 2 <= p.delta


class TestRecommended:
    def test_divisibility_and_monotonicity(self):
        for n in (4, 16, 100, 1000, 10_000):
            p = ExpanderParams.recommended(n)
            assert p.delta % 8 == 0
            assert p.delta >= 32
            assert p.lam >= 2
            assert p.num_evolutions > 0

    def test_delta_grows_with_n(self):
        small = ExpanderParams.recommended(16)
        large = ExpanderParams.recommended(65536)
        assert large.delta > small.delta
        assert large.num_evolutions > small.num_evolutions

    def test_copy_capacity_for_declared_degree(self):
        p = ExpanderParams.recommended(256, max_degree=4)
        assert p.lam * 4 <= p.delta // 2

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            ExpanderParams.recommended(1)

    def test_with_evolutions(self):
        p = ExpanderParams.recommended(64)
        q = p.with_evolutions(3)
        assert q.num_evolutions == 3
        assert q.delta == p.delta
