"""Theorem 1.1 pipeline tests: well-formed trees in O(log n) rounds."""

import math

import numpy as np
import pytest

from repro.core.params import ExpanderParams
from repro.core.pipeline import build_well_formed_tree
from repro.graphs import generators as G
from repro.graphs.analysis import diameter


class TestWellFormedOutput:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: G.line_graph(64),
            lambda: G.cycle_graph(64),
            lambda: G.binary_tree(63),
            lambda: G.caterpillar(64),
        ],
        ids=["line", "cycle", "btree", "caterpillar"],
    )
    def test_tree_is_well_formed(self, make):
        g = make()
        n = g.number_of_nodes()
        result = build_well_formed_tree(g, rng=np.random.default_rng(1))
        wft = result.well_formed
        assert wft.max_degree() <= 3
        assert wft.depth() <= math.ceil(math.log2(n)) + 1
        wft.tree.validate()

    def test_all_nodes_in_tree(self):
        result = build_well_formed_tree(G.line_graph(40), rng=np.random.default_rng(2))
        assert result.tree.n == 40

    def test_overlay_diameter_logarithmic(self):
        result = build_well_formed_tree(G.line_graph(128), rng=np.random.default_rng(3))
        assert result.overlay_diameter() <= 2 * math.ceil(math.log2(128))


class TestRoundAccounting:
    def test_ledger_phases_present(self):
        result = build_well_formed_tree(G.cycle_graph(32), rng=np.random.default_rng(0))
        assert set(result.round_ledger) == {
            "prepare",
            "evolutions",
            "bfs",
            "well_forming",
        }
        assert result.total_rounds == sum(result.round_ledger.values())

    def test_rounds_scale_logarithmically(self):
        rounds = []
        for n in (32, 128, 512):
            result = build_well_formed_tree(
                G.line_graph(n), rng=np.random.default_rng(5)
            )
            rounds.append(result.total_rounds / math.log2(n))
        # Rounds per log2(n) stays bounded (within 2x across the sweep).
        assert max(rounds) <= 2 * min(rounds)

    def test_adaptive_mode_uses_fewer_evolutions(self):
        fixed = build_well_formed_tree(G.cycle_graph(64), rng=np.random.default_rng(6))
        adaptive = build_well_formed_tree(
            G.cycle_graph(64), rng=np.random.default_rng(6), gap_threshold=0.05
        )
        assert (
            len(adaptive.expander.history) <= len(fixed.expander.history)
        )


class TestValidationModes:
    def test_verify_benign_passes_at_calibration(self):
        result = build_well_formed_tree(
            G.line_graph(48),
            rng=np.random.default_rng(7),
            verify_benign=True,
        )
        assert result.tree.n == 48

    def test_track_gap_records_history(self):
        result = build_well_formed_tree(
            G.cycle_graph(48), rng=np.random.default_rng(8), track_gap=True
        )
        gaps = [s.spectral_gap for s in result.history]
        assert all(g is not None for g in gaps)
        assert gaps[-1] > gaps[0]

    def test_disconnected_input_rejected(self):
        mix, _ = G.component_mixture([G.line_graph(8), G.line_graph(8)])
        with pytest.raises(ValueError, match="disconnected"):
            build_well_formed_tree(mix, rng=np.random.default_rng(9))

    def test_directed_input_accepted(self, rng):
        d = G.random_orientation(G.cycle_graph(32), rng)
        result = build_well_formed_tree(d, rng=np.random.default_rng(10))
        assert result.tree.n == 32

    def test_explicit_params_respected(self):
        params = ExpanderParams(delta=64, lam=4, ell=16, num_evolutions=6)
        result = build_well_formed_tree(
            G.line_graph(32), params=params, rng=np.random.default_rng(11)
        )
        assert result.expander.params == params
        assert len(result.history) == 6


class TestRootingModes:
    """The message-level rooting modes must build the reference tree."""

    @pytest.mark.parametrize("mode", ["protocol", "batch"])
    def test_message_level_rooting_matches_reference(self, mode):
        ref = build_well_formed_tree(G.line_graph(48), rng=np.random.default_rng(12))
        res = build_well_formed_tree(
            G.line_graph(48), rng=np.random.default_rng(12), rooting=mode
        )
        assert res.bfs.roots == ref.bfs.roots
        assert np.array_equal(res.bfs.parent, ref.bfs.parent)
        assert np.array_equal(res.bfs.depth, ref.bfs.depth)
        assert np.array_equal(res.bfs.root_of, ref.bfs.root_of)
        # The protocol runs a fixed flooding budget, so its round count
        # may exceed the oracle's actual-stabilisation count, never less.
        assert res.round_ledger["bfs"] >= ref.round_ledger["bfs"]
        res.well_formed.tree.validate()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="rooting"):
            build_well_formed_tree(
                G.line_graph(16), rng=np.random.default_rng(13), rooting="typo"
            )

    @pytest.mark.parametrize("mode", ["protocol", "batch"])
    def test_disconnected_input_rejected_in_message_modes(self, mode):
        mix, _ = G.component_mixture([G.line_graph(8), G.line_graph(8)])
        with pytest.raises(ValueError, match="disconnected"):
            build_well_formed_tree(
                mix, rng=np.random.default_rng(14), rooting=mode
            )
