"""Statistical validation of the walk engine against theory.

The correctness of the whole reproduction rests on the token walks being
*bona fide* lazy random walks: the Kwok–Lau growth argument, the
stitching equivalence, and the congestion bound all assume it.  These
tests check distributional facts with enough samples that failures mean
bugs, not noise:

- chi-square-style uniformity of the stationary distribution (regular
  graphs ⇒ uniform);
- convergence rate matching the spectral gap (mixing ~ ``(1 − gap)^t``);
- independence of token coordinates (empirical correlation ≈ 0).
"""

import numpy as np
import pytest

from repro.core.benign import make_benign
from repro.core.params import ExpanderParams
from repro.core.walks import run_token_walks
from repro.graphs import generators as G
from repro.graphs.portgraph import PortGraph
from repro.graphs.spectral import spectral_gap


PARAMS = ExpanderParams(delta=32, lam=2, ell=8, num_evolutions=1)


class TestStationarity:
    def test_long_walks_are_uniform_on_regular_graphs(self, rng):
        n = 8
        pg, _ = make_benign(G.cycle_graph(n), PARAMS)
        samples = 40_000
        # The lazy cycle's spectral gap is ~0.037: 250 steps shrink the
        # starting bias to (1-gap)^250 ~ 1e-4, below sampling noise.
        walk = run_token_walks(
            pg,
            tokens_per_node=0,
            length=250,
            rng=rng,
            starts=np.zeros(samples, dtype=np.int64),
        )
        counts = np.bincount(walk.endpoints, minlength=n)
        expected = samples / n
        # Pearson statistic under H0 ~ chi2(n-1); 40k samples make the
        # 1e-4-level tolerance extremely safe.
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 40  # chi2_{0.9999, 7} ~= 29; generous margin

    def test_uniform_start_stays_uniform(self, rng):
        pg, _ = make_benign(G.cycle_graph(10), PARAMS)
        walk = run_token_walks(pg, tokens_per_node=2000, length=3, rng=rng)
        counts = np.bincount(walk.endpoints, minlength=10)
        assert np.abs(counts / counts.sum() - 0.1).max() < 0.01


class TestMixingRate:
    def test_distance_to_uniform_decays_like_the_gap(self, rng):
        n = 12
        pg, _ = make_benign(G.cycle_graph(n), PARAMS)
        gap = spectral_gap(pg)
        samples = 60_000
        distances = []
        for t in (4, 16):
            walk = run_token_walks(
                pg,
                tokens_per_node=0,
                length=t,
                rng=rng,
                starts=np.zeros(samples, dtype=np.int64),
            )
            dist = np.bincount(walk.endpoints, minlength=n) / samples
            distances.append(0.5 * np.abs(dist - 1 / n).sum())
        # TV distance contracts at least as fast as (1 - gap)^t predicts
        # over the additional 12 steps (up to sampling noise).
        predicted_ratio = (1 - gap) ** 12
        assert distances[1] <= distances[0] * predicted_ratio * 1.5 + 0.01


class TestIndependence:
    def test_tokens_are_uncorrelated(self, rng):
        pg, _ = make_benign(G.cycle_graph(16), PARAMS)
        runs = 400
        a_ends = np.empty(runs)
        b_ends = np.empty(runs)
        for k in range(runs):
            walk = run_token_walks(
                pg,
                tokens_per_node=0,
                length=6,
                rng=rng,
                starts=np.array([0, 8], dtype=np.int64),
            )
            a_ends[k] = walk.endpoints[0]
            b_ends[k] = walk.endpoints[1]
        # Displacements of two tokens are independent; empirical
        # correlation of ~400 pairs should be small.
        corr = np.corrcoef(a_ends, b_ends)[0, 1]
        assert abs(corr) < 0.2

    def test_self_loop_probability_matches_port_fraction(self, rng):
        # One step: P(stay) = self_loops / delta exactly.
        pg = PortGraph.from_edge_multiset(
            n=2,
            delta=8,
            endpoints_a=np.array([0, 0, 0]),
            endpoints_b=np.array([1, 1, 1]),
        )
        samples = 50_000
        walk = run_token_walks(
            pg,
            tokens_per_node=0,
            length=1,
            rng=rng,
            starts=np.zeros(samples, dtype=np.int64),
        )
        stay = (walk.endpoints == 0).mean()
        assert stay == pytest.approx(5 / 8, abs=0.01)
