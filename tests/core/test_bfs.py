"""Minimum-id flooding and distributed BFS tests."""

import numpy as np
import pytest

from repro.core.bfs import build_bfs_forest, distributed_bfs, flood_min_ids
from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets, bfs_distances


class TestFlooding:
    def test_single_component_elects_zero(self):
        root_of, rounds = flood_min_ids(G.cycle_graph(10))
        assert (root_of == 0).all()
        # Information travels one hop per round: ecc(0) = 5 rounds + 1
        # quiescence round.
        assert rounds == 6

    def test_per_component_minimum(self):
        mix, members = G.component_mixture([G.line_graph(4), G.cycle_graph(5)])
        root_of, _ = flood_min_ids(mix)
        assert root_of[:4].tolist() == [0] * 4
        assert root_of[4:].tolist() == [4] * 5

    def test_isolated_nodes(self):
        root_of, rounds = flood_min_ids([set(), set()])
        assert root_of.tolist() == [0, 1]
        assert rounds == 1


class TestDistributedBFS:
    def test_parent_depths_match_distances(self):
        adj = adjacency_sets(G.grid_2d(5, 5))
        parent, depth, rounds = distributed_bfs(adj, [0])
        dist = bfs_distances(adj, 0)
        assert (depth == dist).all()
        assert rounds == int(dist.max()) + 1

    def test_smallest_id_tie_break(self):
        adj = adjacency_sets(G.cycle_graph(4))
        parent, _, _ = distributed_bfs(adj, [0])
        # Node 2 is reached simultaneously from 1 and 3: picks 1.
        assert parent[2] == 1

    def test_multi_root(self):
        mix, _ = G.component_mixture([G.line_graph(3), G.line_graph(3)])
        adj = adjacency_sets(mix)
        parent, depth, _ = distributed_bfs(adj, [0, 3])
        assert parent[0] == 0 and parent[3] == 3
        assert depth[2] == 2 and depth[5] == 2


class TestForest:
    def test_connected_graph_single_tree(self):
        forest = build_bfs_forest(G.cycle_graph(12))
        assert forest.roots == [0]
        assert forest.tree_depth() == 6
        children = forest.children_lists()
        assert sum(len(c) for c in children) == 11

    def test_forest_on_mixture(self):
        mix, members = G.component_mixture(
            [G.line_graph(6), G.star_graph(5), G.cycle_graph(7)]
        )
        forest = build_bfs_forest(mix)
        assert forest.roots == [0, 6, 11]
        for v in range(mix.number_of_nodes()):
            assert forest.root_of[v] in forest.roots

    def test_rounds_positive(self):
        forest = build_bfs_forest(G.line_graph(9))
        assert forest.rounds >= 9  # flooding alone needs ecc(0)=8 rounds
