"""Random-walk engine tests: distributions, traces, congestion."""

import numpy as np
import pytest

from repro.core.benign import make_benign
from repro.core.params import ExpanderParams
from repro.core.walks import run_token_walks
from repro.graphs import generators as G
from repro.graphs.portgraph import SELF_LOOP, PortGraph


PARAMS = ExpanderParams(delta=32, lam=2, ell=8, num_evolutions=1)


@pytest.fixture
def cycle_pg():
    pg, _ = make_benign(G.cycle_graph(8), PARAMS)
    return pg


class TestBasics:
    def test_token_counts(self, cycle_pg, rng):
        res = run_token_walks(cycle_pg, tokens_per_node=3, length=5, rng=rng)
        assert res.num_tokens == 8 * 3
        assert res.origins.shape == res.endpoints.shape

    def test_zero_length_walk_stays_home(self, cycle_pg, rng):
        res = run_token_walks(cycle_pg, tokens_per_node=2, length=0, rng=rng)
        assert (res.origins == res.endpoints).all()

    def test_explicit_starts(self, cycle_pg, rng):
        starts = np.array([3, 3, 5])
        res = run_token_walks(cycle_pg, tokens_per_node=0, length=4, rng=rng, starts=starts)
        assert res.origins.tolist() == [3, 3, 5]

    def test_negative_length_rejected(self, cycle_pg, rng):
        with pytest.raises(ValueError):
            run_token_walks(cycle_pg, tokens_per_node=1, length=-1, rng=rng)

    def test_endpoints_within_walk_distance(self, cycle_pg, rng):
        # On a cycle, a token cannot travel farther than ell hops.
        ell = 3
        res = run_token_walks(cycle_pg, tokens_per_node=10, length=ell, rng=rng)
        for o, e in zip(res.origins.tolist(), res.endpoints.tolist()):
            ring_dist = min((o - e) % 8, (e - o) % 8)
            assert ring_dist <= ell


class TestDistribution:
    def test_single_step_distribution_matches_ports(self, rng):
        # delta=4 with 1 edge to the right neighbour and 3 self loops:
        # P(move) = 1/4.
        pg = PortGraph.from_edge_multiset(
            n=2, delta=4, endpoints_a=np.array([0]), endpoints_b=np.array([1])
        )
        starts = np.zeros(40_000, dtype=np.int64)
        res = run_token_walks(pg, tokens_per_node=0, length=1, rng=rng, starts=starts)
        frac_moved = (res.endpoints == 1).mean()
        assert frac_moved == pytest.approx(0.25, abs=0.01)

    def test_walk_matrix_agreement(self, rng):
        # Empirical ell-step distribution ~ walk_matrix^ell row.
        pg, _ = make_benign(G.cycle_graph(6), PARAMS)
        ell = 4
        starts = np.zeros(60_000, dtype=np.int64)
        res = run_token_walks(pg, tokens_per_node=0, length=ell, rng=rng, starts=starts)
        empirical = np.bincount(res.endpoints, minlength=6) / 60_000
        expected = np.linalg.matrix_power(pg.walk_matrix(), ell)[0]
        assert np.abs(empirical - expected).max() < 0.01


class TestTraces:
    def test_traces_require_edge_ids(self, rng):
        pg = PortGraph(np.zeros((2, 4), dtype=np.int64))
        with pytest.raises(ValueError):
            run_token_walks(pg, tokens_per_node=1, length=2, rng=rng, record_traces=True)

    def test_node_trace_consistency(self, cycle_pg, rng):
        res = run_token_walks(
            cycle_pg, tokens_per_node=4, length=6, rng=rng, record_traces=True
        )
        assert res.node_traces.shape == (32, 7)
        assert (res.node_traces[:, 0] == res.origins).all()
        assert (res.node_traces[:, -1] == res.endpoints).all()

    def test_edge_trace_matches_movement(self, cycle_pg, rng):
        res = run_token_walks(
            cycle_pg, tokens_per_node=4, length=6, rng=rng, record_traces=True
        )
        for k in range(res.num_tokens):
            for step in range(6):
                a = res.node_traces[k, step]
                b = res.node_traces[k, step + 1]
                eid = res.edge_traces[k, step]
                if eid == SELF_LOOP:
                    assert a == b
                else:
                    # The edge id must appear on a port of a pointing to b.
                    ports_a = cycle_pg.ports[a]
                    ids_a = cycle_pg.port_edge_ids[a]
                    assert any(
                        ids_a[i] == eid and ports_a[i] == b
                        for i in range(cycle_pg.delta)
                    )


class TestCongestion:
    def test_load_recorded_per_round(self, cycle_pg, rng):
        res = run_token_walks(cycle_pg, tokens_per_node=4, length=5, rng=rng)
        assert res.max_load_per_round.shape == (5,)
        assert (res.max_load_per_round >= 1).all()

    def test_lemma_3_2_congestion_bound(self, rng):
        # Lemma 3.2: max tokens at any node stays below 3*delta/8 w.h.p.
        params = ExpanderParams.recommended(64)
        pg, _ = make_benign(G.cycle_graph(64), params)
        res = run_token_walks(
            pg, tokens_per_node=params.tokens_per_node, length=params.ell, rng=rng
        )
        assert res.max_load_per_round.max() <= params.accept_cap
