"""Euler tour, list ranking, preorder, and heap-tree tests."""

import numpy as np
import pytest

from repro.core.child_sibling import RootedTree
from repro.core.euler import (
    build_well_formed_from_tree,
    euler_tour,
    heap_tree,
    list_rank,
    preorder_and_sizes,
)
from repro.graphs.analysis import adjacency_sets, bfs_tree
from repro.graphs.generators import random_tree


def path_tree(n: int) -> RootedTree:
    parent = np.maximum(np.arange(n) - 1, 0)
    return RootedTree(root=0, parent=parent)


def sample_tree(seed: int, n: int = 40) -> RootedTree:
    g = random_tree(n, np.random.default_rng(seed))
    parent = bfs_tree(adjacency_sets(g), 0)
    return RootedTree(root=0, parent=parent)


class TestEulerTour:
    def test_length_is_2n_minus_2(self):
        tree = sample_tree(0)
        tour = euler_tour(tree)
        assert tour.length == 2 * (tree.n - 1)

    def test_each_tree_edge_twice(self):
        tree = sample_tree(1)
        tour = euler_tour(tree)
        from collections import Counter

        counts = Counter(
            (min(u, v), max(u, v)) for u, v in tour.edges
        )
        assert all(c == 2 for c in counts.values())
        assert len(counts) == tree.n - 1

    def test_tour_is_contiguous(self):
        tree = sample_tree(2)
        tour = euler_tour(tree)
        for (a, b), (c, d) in zip(tour.edges, tour.edges[1:]):
            assert b == c
        assert tour.edges[0][0] == tree.root
        assert tour.edges[-1][1] == tree.root

    def test_entry_exit_indices(self):
        tree = path_tree(4)
        tour = euler_tour(tree)
        # Path tour: (0,1)(1,2)(2,3)(3,2)(2,1)(1,0).
        assert tour.first_entry[1] == 0
        assert tour.exit_entry[1] == 5
        assert tour.first_entry[3] == 2
        assert tour.exit_entry[3] == 3

    def test_single_node(self):
        tour = euler_tour(RootedTree(root=0, parent=np.array([0])))
        assert tour.length == 0


class TestRootSentinel:
    """Contract C6 (docs/contracts.md): ``first_entry``/``exit_entry``
    are ``-1`` for the root — and for *every* slot of a single-node
    tree.  ``-1`` silently aliases the last tour position under numpy
    indexing, so consumers must mask roots out before gathering; these
    pins keep the sentinel itself from drifting."""

    def test_single_node_whole_array_is_sentinel(self):
        tour = euler_tour(RootedTree(root=0, parent=np.array([0])))
        assert tour.first_entry.tolist() == [-1]
        assert tour.exit_entry.tolist() == [-1]

    def test_path_root_sentinel(self):
        tour = euler_tour(path_tree(4))
        assert tour.first_entry[0] == -1 and tour.exit_entry[0] == -1
        # Every non-root entry/exit is a real tour position — no -1s.
        assert (tour.first_entry[1:] >= 0).all()
        assert (tour.exit_entry[1:] >= 0).all()

    def test_star_root_sentinel(self):
        star = RootedTree(root=0, parent=np.array([0, 0, 0, 0]))
        tour = euler_tour(star)
        assert tour.first_entry[0] == -1 and tour.exit_entry[0] == -1
        taken = np.concatenate([tour.first_entry[1:], tour.exit_entry[1:]])
        assert sorted(taken.tolist()) == list(range(6))

    def test_nonroot_entries_cover_tour_positions(self):
        tree = sample_tree(5)
        tour = euler_tour(tree)
        nonroot = [v for v in range(tree.n) if v != tree.root]
        entries = sorted(int(tour.first_entry[v]) for v in nonroot)
        exits = sorted(int(tour.exit_entry[v]) for v in nonroot)
        assert min(entries) == 0 and max(exits) == tour.length - 1
        assert sorted(entries + exits) == list(range(tour.length))


class TestListRank:
    def test_chain_ranks(self):
        succ = np.array([1, 2, 3, -1])
        dist, rounds = list_rank(succ)
        assert dist.tolist() == [3, 2, 1, 0]
        assert rounds == 2  # ceil(log2 3) = 2 doubling rounds

    def test_rounds_logarithmic(self):
        m = 1000
        succ = np.arange(1, m + 1)
        succ[-1] = -1
        _, rounds = list_rank(succ)
        assert rounds == 10  # ceil(log2(999))

    def test_empty_and_singleton(self):
        dist, rounds = list_rank(np.array([-1]))
        assert dist.tolist() == [0]
        assert rounds == 0


class TestPreorder:
    def test_path_preorder(self):
        labels, sizes, _ = preorder_and_sizes(path_tree(5))
        assert labels.tolist() == [1, 2, 3, 4, 5]
        assert sizes.tolist() == [5, 4, 3, 2, 1]

    def test_matches_recursive_dfs(self):
        tree = sample_tree(3)
        labels, sizes, _ = preorder_and_sizes(tree)
        children = tree.children_lists()

        expected_labels = {}
        expected_sizes = {}
        counter = [1]

        def dfs(v):
            expected_labels[v] = counter[0]
            counter[0] += 1
            total = 1
            for c in children[v]:
                total += dfs(c)
            expected_sizes[v] = total
            return total

        dfs(tree.root)
        for v in range(tree.n):
            assert labels[v] == expected_labels[v]
            assert sizes[v] == expected_sizes[v]

    def test_labels_are_a_permutation(self):
        tree = sample_tree(4)
        labels, _, _ = preorder_and_sizes(tree)
        assert sorted(labels.tolist()) == list(range(1, tree.n + 1))


class TestHeapTree:
    def test_depth_and_degree(self):
        order = list(range(20))
        tree = heap_tree(order)
        assert tree.max_degree() <= 3
        assert int(tree.depth_array().max()) == 4  # floor(log2 19)

    def test_respects_order(self):
        order = [3, 1, 4, 0, 2]
        tree = heap_tree(order)
        assert tree.root == 3
        assert tree.parent[1] == 3 and tree.parent[4] == 3
        assert tree.parent[0] == 1 and tree.parent[2] == 1


class TestWellFormed:
    @pytest.mark.parametrize("seed", range(4))
    def test_well_formed_properties(self, seed):
        tree = sample_tree(seed, n=70)
        wft = build_well_formed_from_tree(tree)
        assert wft.max_degree() <= 3
        assert wft.depth() <= int(np.ceil(np.log2(70))) + 1
        wft.tree.validate()

    def test_rounds_are_logarithmic(self):
        tree = sample_tree(1, n=100)
        wft = build_well_formed_from_tree(tree)
        assert wft.rounds <= 4 * int(np.ceil(np.log2(100))) + 2

    def test_single_node(self):
        tree = RootedTree(root=0, parent=np.array([0]))
        wft = build_well_formed_from_tree(tree)
        assert wft.depth() == 0
        assert wft.rounds == 0
