"""CreateExpander evolution tests (Lemma 3.1 invariants, growth, traces)."""

import numpy as np
import pytest

from repro.core.benign import check_benign, make_benign
from repro.core.expander import ExpanderBuilder, _accept_tokens, create_expander
from repro.core.params import ExpanderParams
from repro.graphs import generators as G
from repro.graphs.analysis import is_connected
from repro.graphs.spectral import spectral_gap


def build(graph, seed=0, **kwargs):
    n = graph.number_of_nodes()
    params = ExpanderParams.recommended(n)
    base, _ = make_benign(graph, params)
    return ExpanderBuilder(base, params, np.random.default_rng(seed), **kwargs), params


class TestAcceptance:
    def test_cap_enforced_per_endpoint(self, rng):
        endpoints = np.array([0, 0, 0, 0, 1, 1, 2])
        accepted = _accept_tokens(endpoints, cap=2, rng=rng)
        kept = endpoints[accepted]
        assert (np.bincount(kept, minlength=3) <= 2).all()
        assert np.bincount(kept, minlength=3)[2] == 1

    def test_all_kept_when_under_cap(self, rng):
        endpoints = np.array([4, 5, 6])
        accepted = _accept_tokens(endpoints, cap=3, rng=rng)
        assert accepted.tolist() == [0, 1, 2]

    def test_empty(self, rng):
        assert _accept_tokens(np.empty(0, dtype=np.int64), 3, rng).size == 0

    def test_selection_is_uniform_ish(self):
        # Over many trials each of 4 tokens to one endpoint should be kept
        # about cap/4 of the time.
        counts = np.zeros(4)
        endpoints = np.zeros(4, dtype=np.int64)
        for seed in range(600):
            acc = _accept_tokens(endpoints, cap=2, rng=np.random.default_rng(seed))
            counts[acc] += 1
        assert np.abs(counts / 600 - 0.5).max() < 0.1


class TestEvolutionInvariants:
    def test_every_evolution_graph_benign(self):
        builder, params = build(G.line_graph(48), seed=1)
        for _ in range(6):
            builder.step()
            report = check_benign(builder.current, params)
            assert report.is_regular
            assert report.is_lazy
            assert report.has_lambda_cut

    def test_connectivity_preserved(self):
        builder, params = build(G.cycle_graph(64), seed=2)
        builder.run(num_evolutions=params.num_evolutions)
        assert is_connected(builder.current.neighbor_sets())

    def test_symmetry_preserved(self):
        builder, _ = build(G.line_graph(32), seed=3)
        builder.step()
        assert builder.current.is_symmetric()

    def test_degree_bound_never_exceeded(self):
        builder, params = build(G.line_graph(40), seed=4)
        for _ in range(4):
            builder.step()
            assert builder.current.delta == params.delta

    def test_deterministic_given_seed(self):
        b1, _ = build(G.line_graph(32), seed=7)
        b2, _ = build(G.line_graph(32), seed=7)
        b1.step()
        b2.step()
        assert np.array_equal(b1.current.ports, b2.current.ports)

    def test_stats_accounting(self):
        builder, params = build(G.line_graph(32), seed=5)
        stats = builder.step()
        n = 32
        assert stats.tokens_started == n * params.tokens_per_node
        assert stats.tokens_accepted + stats.tokens_dropped == stats.tokens_started
        assert stats.max_token_load <= params.accept_cap  # Lemma 3.2


class TestConductanceGrowth:
    def test_gap_grows_from_line(self):
        builder, params = build(G.line_graph(64), seed=0)
        g0 = spectral_gap(builder.current)
        builder.run(num_evolutions=params.num_evolutions)
        gL = spectral_gap(builder.current)
        assert gL > 50 * g0
        assert gL > 0.05

    def test_gap_reaches_plateau_on_cycle(self):
        builder, params = build(G.cycle_graph(128), seed=1)
        builder.run(track_gap=True)
        gaps = [s.spectral_gap for s in builder.history]
        assert gaps[-1] > 0.08
        # Growth until plateau: final gap within 2x of the max seen.
        assert gaps[-1] > max(gaps) / 2

    def test_adaptive_stop(self):
        builder, params = build(G.cycle_graph(64), seed=2)
        builder.run(gap_threshold=0.05)
        assert builder.history[-1].spectral_gap >= 0.05
        assert len(builder.history) <= params.num_evolutions * 4


class TestTraceRecording:
    def test_registry_has_traces(self):
        builder, params = build(G.line_graph(24), seed=3)
        builder.record_traces = True
        builder.step()
        registry = builder.level_registries[0]
        assert len(registry) > 0
        for edge in registry[:10]:
            assert edge.node_trace is not None
            assert edge.node_trace[0] == edge.origin
            assert edge.node_trace[-1] == edge.endpoint
            assert edge.edge_trace.shape == (params.ell,)

    def test_port_ids_index_registry(self):
        builder, _ = build(G.line_graph(24), seed=4)
        builder.step()
        graph = builder.current
        registry = builder.level_registries[0]
        for v in range(graph.n):
            for k in range(graph.delta):
                eid = int(graph.port_edge_ids[v, k])
                partner = int(graph.ports[v, k])
                if eid >= 0:
                    entry = registry[eid]
                    assert {entry.origin, entry.endpoint} == {v, partner}


class TestCreateExpanderFacade:
    def test_defaults_infer_params(self):
        result = create_expander(G.line_graph(32), rng=np.random.default_rng(0))
        assert result.params.delta % 8 == 0
        assert result.num_evolutions == result.params.num_evolutions
        assert result.rounds == result.num_evolutions * (result.params.ell + 1) + 2

    def test_mismatched_delta_rejected(self):
        params = ExpanderParams(delta=32, lam=2, ell=4, num_evolutions=2)
        base, _ = make_benign(G.line_graph(10), params)
        other = ExpanderParams(delta=40, lam=2, ell=4, num_evolutions=2)
        with pytest.raises(ValueError):
            ExpanderBuilder(base, other, np.random.default_rng(0))
