"""Child-sibling transformation tests (degree-3 guarantee)."""

import numpy as np
import pytest

from repro.core.child_sibling import RootedTree, to_child_sibling


def star_tree(n: int) -> RootedTree:
    parent = np.zeros(n, dtype=np.int64)
    return RootedTree(root=0, parent=parent)


class TestRootedTree:
    def test_children_lists(self):
        tree = star_tree(5)
        children = tree.children_lists()
        assert children[0] == [1, 2, 3, 4]
        assert all(children[v] == [] for v in range(1, 5))

    def test_depth_array(self):
        tree = star_tree(4)
        assert tree.depth_array().tolist() == [0, 1, 1, 1]

    def test_invalid_root_rejected(self):
        with pytest.raises(ValueError):
            RootedTree(root=0, parent=np.array([1, 1]))

    def test_cycle_detected(self):
        # 1 -> 2 -> 1 cycle unreachable from the root.
        tree = RootedTree(root=0, parent=np.array([0, 2, 1]))
        with pytest.raises(ValueError):
            tree.validate()

    def test_max_degree_of_star(self):
        assert star_tree(6).max_degree() == 5


class TestChildSibling:
    def test_star_becomes_path(self):
        cs = to_child_sibling(star_tree(6))
        # Children 1..5 become the chain 0-1-2-3-4-5.
        assert cs.parent.tolist() == [0, 0, 1, 2, 3, 4]
        assert cs.max_degree() <= 3

    def test_degree_bound_always_holds(self, rng):
        from repro.graphs.generators import random_tree
        from repro.graphs.analysis import adjacency_sets, bfs_tree

        for seed in range(5):
            g = random_tree(60, np.random.default_rng(seed))
            parent = bfs_tree(adjacency_sets(g), 0)
            tree = RootedTree(root=0, parent=parent)
            cs = to_child_sibling(tree)
            assert cs.max_degree() <= 3

    def test_spans_same_nodes(self):
        cs = to_child_sibling(star_tree(10))
        cs.validate()
        assert cs.n == 10

    def test_binary_tree_unchanged_in_size(self):
        # A node with <= 1 child keeps its parent.
        parent = np.array([0, 0, 1, 2])  # path 0-1-2-3
        tree = RootedTree(root=0, parent=parent)
        cs = to_child_sibling(tree)
        assert cs.parent.tolist() == [0, 0, 1, 2]

    def test_depth_growth_bounded_by_degree(self):
        tree = star_tree(8)
        cs = to_child_sibling(tree)
        assert int(cs.depth_array().max()) == 7  # path through siblings
