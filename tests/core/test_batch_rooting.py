"""Differential tests: batched rooting vs. object rooting vs. reference BFS.

ISSUE 2's acceptance bar: ``run_batch_rooting`` produces the identical
``(root, parent, depth)`` arrays as ``run_protocol_rooting`` over a
20-seed matrix, and both match the reference oracle of
:mod:`repro.core.bfs` (same min-id election, same min-id parent
tie-break).  The batched node is additionally cross-checked across both
delivery engines and under the footnote-2 asynchrony synchroniser.
"""

import math

import numpy as np
import pytest

from repro.core.bfs import build_bfs_forest
from repro.core.params import ExpanderParams
from repro.core.protocol import run_protocol_expander
from repro.core.protocol_tree import (
    run_batch_rooting,
    run_protocol_rooting,
    run_rooting_under_asynchrony,
)
from repro.graphs import generators as G
from repro.graphs.analysis import bfs_distances

SEEDS = range(20)
FLOOD_ROUNDS = 8


def small_expander(n: int, seed: int):
    params = ExpanderParams.recommended(n, ell=16).with_evolutions(
        math.ceil(math.log2(n)) + 2
    )
    return run_protocol_expander(
        G.line_graph(n), params=params, rng=np.random.default_rng(seed)
    ).final_graph


class TestDifferentialMatrix:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_object_and_batch_agree_bit_for_bit(self, seed):
        # Vary the size with the seed so the matrix covers several shapes.
        n = 32 + 8 * (seed % 4)
        graph = small_expander(n, seed)
        obj = run_protocol_rooting(graph, FLOOD_ROUNDS, rng=np.random.default_rng(seed))
        bat = run_batch_rooting(graph, FLOOD_ROUNDS, rng=np.random.default_rng(seed))
        assert obj.root == bat.root
        assert np.array_equal(obj.parent, bat.parent)
        assert np.array_equal(obj.depth, bat.depth)
        assert obj.metrics.as_dict() == bat.metrics.as_dict()
        assert obj.rounds == bat.rounds

    @pytest.mark.parametrize("seed", range(6))
    def test_batch_nodes_agree_across_engines(self, seed):
        graph = small_expander(40, seed)
        vec = run_batch_rooting(graph, FLOOD_ROUNDS, rng=np.random.default_rng(seed))
        leg = run_batch_rooting(
            graph, FLOOD_ROUNDS, rng=np.random.default_rng(seed), engine="legacy"
        )
        assert vec.root == leg.root
        assert np.array_equal(vec.parent, leg.parent)
        assert np.array_equal(vec.depth, leg.depth)
        assert vec.metrics.as_dict() == leg.metrics.as_dict()


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference_bfs(self, seed):
        # The same tree as the centralised §2.1 oracle: min-id root,
        # min-id parent tie-break, true BFS depths.
        graph = small_expander(48, seed)
        bat = run_batch_rooting(graph, FLOOD_ROUNDS, rng=np.random.default_rng(seed))
        forest = build_bfs_forest(graph)
        assert forest.roots == [bat.root]
        assert np.array_equal(bat.parent, forest.parent)
        assert np.array_equal(bat.depth, forest.depth)
        dist = bfs_distances(graph.neighbor_sets(), bat.root)
        assert np.array_equal(bat.depth, dist)

    def test_no_drops_within_capacity(self):
        graph = small_expander(64, seed=3)
        result = run_batch_rooting(graph, FLOOD_ROUNDS)
        assert result.metrics.total_drops == 0
        assert result.metrics.max_sent_per_round <= graph.delta


class TestUnderAsynchrony:
    @pytest.mark.parametrize("batched", [True, False])
    def test_delayed_run_builds_the_synchronous_tree(self, batched):
        graph = small_expander(40, seed=5)
        sync = run_batch_rooting(graph, FLOOD_ROUNDS, rng=np.random.default_rng(5))
        delayed, report = run_rooting_under_asynchrony(
            graph,
            FLOOD_ROUNDS,
            max_delay=4,
            rng=np.random.default_rng(5),
            batched=batched,
        )
        assert delayed.root == sync.root
        assert np.array_equal(delayed.parent, sync.parent)
        assert np.array_equal(delayed.depth, sync.depth)
        assert report.converged
        assert report.dilation == 4.0
        assert 1 <= report.observed_max_delay <= 4
