"""Message-level rooting phase tests (flooding + BFS under NCC0)."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.core.params import ExpanderParams
from repro.core.protocol import run_protocol_expander
from repro.core.protocol_tree import run_batch_rooting, run_protocol_rooting
from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets, bfs_distances
from repro.core.benign import make_benign


def small_expander(n: int, seed: int):
    params = ExpanderParams.recommended(n, ell=16).with_evolutions(
        math.ceil(math.log2(n)) + 2
    )
    return run_protocol_expander(
        G.line_graph(n), params=params, rng=np.random.default_rng(seed)
    ).final_graph


class TestRooting:
    def test_roots_at_minimum_id(self):
        graph = small_expander(48, seed=0)
        result = run_protocol_rooting(graph, flood_rounds=8)
        assert result.root == 0
        assert result.parent[0] == 0
        assert result.depth[0] == 0

    def test_tree_spans_with_correct_depths(self):
        graph = small_expander(48, seed=1)
        result = run_protocol_rooting(graph, flood_rounds=8)
        dist = bfs_distances(graph.neighbor_sets(), result.root)
        assert (result.depth == dist).all()
        for v in range(graph.n):
            if v != result.root:
                p = int(result.parent[v])
                assert result.depth[v] == result.depth[p] + 1
                assert p in graph.neighbor_sets()[v]

    def test_no_drops_within_capacity(self):
        graph = small_expander(64, seed=2)
        result = run_protocol_rooting(graph, flood_rounds=8)
        assert result.metrics.total_drops == 0
        assert result.metrics.max_sent_per_round <= graph.delta

    def test_rounds_logarithmic(self):
        graph = small_expander(64, seed=3)
        result = run_protocol_rooting(graph, flood_rounds=8)
        assert result.rounds <= 4 * math.ceil(math.log2(64))

    def test_works_on_benign_input_directly(self):
        # Rooting also works on any connected PortGraph (e.g. the benign
        # preparation of a cycle), just with more flooding rounds.
        params = ExpanderParams.recommended(16)
        base, _ = make_benign(G.cycle_graph(16), params)
        result = run_protocol_rooting(base, flood_rounds=10)
        assert result.root == 0
        dist = bfs_distances(base.neighbor_sets(), 0)
        assert (result.depth == dist).all()

    def test_disconnected_raises(self):
        import numpy as np
        from repro.graphs.portgraph import PortGraph

        ports = np.arange(4)[:, None] * np.ones((4, 8), dtype=np.int64)
        with pytest.raises(RuntimeError):
            run_protocol_rooting(PortGraph(ports.astype(np.int64)), flood_rounds=4)


def _reversed_path_graph(n: int):
    """Path 1-2-…-(n-1)-0: the minimum id sits at one end, so flooding
    needs the full ``diameter = n - 1`` hops to reach the far end."""
    order = list(range(1, n)) + [0]
    g = nx.Graph()
    g.add_edges_from(zip(order, order[1:]))
    return g


class TestFloodBoundary:
    """Regression for the flooding off-by-one: min_id messages arriving in
    round ``flood_rounds`` (sent in the last flooding round) must still be
    processed before the BFS hand-off.  Discarding them cut the flood one
    hop short, so ``flood_rounds == diameter`` left a second self-believed
    root at the far end of the path and raised a spurious RuntimeError."""

    @pytest.mark.parametrize("runner", [run_protocol_rooting, run_batch_rooting])
    def test_path_with_flood_rounds_equal_diameter(self, runner):
        n = 10
        params = ExpanderParams.recommended(n)
        base, _ = make_benign(_reversed_path_graph(n), params)
        result = runner(base, flood_rounds=n - 1)  # exactly the diameter
        assert result.root == 0
        dist = bfs_distances(base.neighbor_sets(), 0)
        assert (result.depth == dist).all()

    @pytest.mark.parametrize("runner", [run_protocol_rooting, run_batch_rooting])
    def test_insufficient_flooding_still_detected(self, runner):
        # One round short of the diameter: the far end never hears id 0,
        # roots itself, and the unique-root check must fire.
        n = 10
        params = ExpanderParams.recommended(n)
        base, _ = make_benign(_reversed_path_graph(n), params)
        with pytest.raises(RuntimeError, match="unique root"):
            runner(base, flood_rounds=n - 2)
