"""Good/bad source pairs for every repro-lint rule code.

Each fixture is a minimal snippet pair: ``bad`` must trigger exactly the
rule's code at least once, ``good`` is the contract-conforming spelling
of the same intent and must lint clean.  ``rel_path`` places the snippet
in the right module kind (``src/...`` = engine rules apply,
``benchmarks/...`` = relaxed).  The meta-test in ``test_rules.py``
asserts every registered rule has a pair here, so adding a rule without
a fixture fails CI.
"""

ENGINE_PATH = "src/repro/fixture_mod.py"
TESTS_PATH = "tests/test_fixture_mod.py"

RULE_FIXTURES = {
    "RL000": {
        "bad": "def f(:\n",
        "good": "X = 1\n",
        "rel_path": ENGINE_PATH,
    },
    "RL101": {
        "bad": (
            "import numpy as np\n"
            "\n"
            "def noise(n):\n"
            "    return np.random.rand(n)\n"
        ),
        "good": (
            "import numpy as np\n"
            "\n"
            "def noise(n, rng):\n"
            "    return rng.random(n)\n"
        ),
        "rel_path": ENGINE_PATH,
    },
    "RL102": {
        "bad": (
            "import random\n"
            "\n"
            "def shuffle(xs):\n"
            "    random.shuffle(xs)\n"
        ),
        "good": (
            "def shuffle(xs, rng):\n"
            "    return [xs[i] for i in rng.permutation(len(xs))]\n"
        ),
        "rel_path": ENGINE_PATH,
    },
    "RL103": {
        "bad": (
            "import numpy as np\n"
            "\n"
            "def fresh_rng():\n"
            "    return np.random.default_rng()\n"
        ),
        "good": (
            "import numpy as np\n"
            "\n"
            "def fresh_rng(seed):\n"
            "    return np.random.default_rng(seed)\n"
        ),
        "rel_path": ENGINE_PATH,
    },
    "RL104": {
        "bad": (
            "import numpy as np\n"
            "\n"
            "def child_stream(rng):\n"
            "    return np.random.default_rng(rng.integers(1 << 62))\n"
        ),
        "good": (
            "def child_stream(rng):\n"
            "    return rng.spawn(1)[0]\n"
        ),
        "rel_path": ENGINE_PATH,
    },
    "RL201": {
        "bad": (
            "def emit(items):\n"
            "    pending = set(items)\n"
            "    return [v for v in pending]\n"
        ),
        "good": (
            "def emit(items):\n"
            "    pending = set(items)\n"
            "    return [v for v in sorted(pending)]\n"
        ),
        "rel_path": ENGINE_PATH,
    },
    "RL202": {
        "bad": (
            "import time\n"
            "\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
        "good": (
            "def stamp(round_no):\n"
            "    return round_no\n"
        ),
        "rel_path": ENGINE_PATH,
    },
    "RL301": {
        "bad": (
            "def truncate(batch, keep):\n"
            "    batch.senders[keep] = -1\n"
        ),
        "good": (
            "def truncate(batch, keep):\n"
            "    snd = batch.senders.copy()\n"
            "    snd[keep] = -1\n"
            "    return snd\n"
        ),
        "rel_path": ENGINE_PATH,
    },
    "RL302": {
        "bad": (
            "def rewrite(rcv_all):\n"
            "    alias = rcv_all[:]\n"
            "    alias[0] = 7\n"
        ),
        "good": (
            "def rewrite(rcv_all):\n"
            "    fresh = rcv_all.copy()\n"
            "    fresh[0] = 7\n"
            "    return fresh\n"
        ),
        "rel_path": ENGINE_PATH,
    },
    "RL303": {
        "bad": (
            "import numpy as np\n"
            "\n"
            "def pack(col):\n"
            "    return col.astype(np.int32)\n"
        ),
        "good": (
            "import numpy as np\n"
            "\n"
            "def pack(col):\n"
            "    return col.astype(np.int64)\n"
        ),
        "rel_path": ENGINE_PATH,
    },
    "RL401": {
        "bad": (
            "def _worker_loop(conn, cols, lo, hi):\n"
            "    k = 4\n"
            "    cols['order'][0:k] = 1\n"
        ),
        "good": (
            "def _worker_loop(conn, cols, lo, hi):\n"
            "    off = 0\n"
            "    end = off + 4\n"
            "    cols['order'][off:end] = 1\n"
        ),
        "rel_path": ENGINE_PATH,
    },
    "RL501": {
        "bad": (
            "def probe_round(rcv, snd, rng):\n"
            "    if rng.random() < 0.5:\n"
            "        return None\n"
            "    return len(rcv)\n"
        ),
        "good": (
            "def probe_round(rcv, snd, round_no):\n"
            "    if round_no % 2:\n"
            "        return None\n"
            "    return len(rcv)\n"
        ),
        "rel_path": ENGINE_PATH,
    },
    "RL502": {
        "bad": (
            "def probe_round(rcv, counts):\n"
            "    counts[0] = -1\n"
            "    return counts\n"
        ),
        "good": (
            "def probe_round(rcv, counts):\n"
            "    mine = counts.copy()\n"
            "    mine[0] = -1\n"
            "    return mine\n"
        ),
        "rel_path": ENGINE_PATH,
    },
    "RL601": {
        "bad": (
            "import os\n"
            "\n"
            "def pick_engine():\n"
            "    return os.environ.get('REPRO_ENGINE') or 'vectorized'\n"
        ),
        "good": (
            "from repro.runtime import select_choice\n"
            "\n"
            "def pick_engine():\n"
            "    return select_choice('engine')\n"
        ),
        "rel_path": ENGINE_PATH,
    },
}
