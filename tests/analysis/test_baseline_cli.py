"""Baseline round-trip and CLI exit-status contract for repro-lint.

The CI gate is the exit status: 0 when the tree has no violations beyond
the committed baseline, 1 when new ones appear.  These tests drive
``main()`` over temporary trees, including the two acceptance probes
from the issue: reintroducing the PR 6 aliased-write pattern or a bare
``np.random`` draw must fail with the right rule code.
"""

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import (
    analyze_source,
    load_baseline,
    main,
    partition_new,
    write_baseline,
)

BAD_ENGINE = (
    "import numpy as np\n"
    "\n"
    "def emit(rcv_all):\n"
    "    noise = np.random.rand(3)\n"
    "    alias = rcv_all[:]\n"
    "    alias[0] = 7\n"
    "    return noise\n"
)

CLEAN_ENGINE = (
    "import numpy as np\n"
    "\n"
    "def emit(rcv_all, rng):\n"
    "    fresh = rcv_all.copy()\n"
    "    fresh[0] = int(rng.integers(10))\n"
    "    return fresh\n"
)


def make_tree(tmp_path: Path, source: str) -> Path:
    mod = tmp_path / "src" / "repro" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(source, encoding="utf-8")
    return tmp_path


class TestBaselineRoundTrip:
    def test_write_then_load_accepts_everything(self, tmp_path):
        violations = analyze_source(BAD_ENGINE, rel_path="src/repro/mod.py")
        assert violations
        path = tmp_path / "baseline.json"
        write_baseline(path, violations)
        baseline = load_baseline(path)
        new, accepted = partition_new(violations, baseline)
        assert new == []
        assert sorted(accepted) == sorted(violations)

    def test_extra_violation_is_new(self, tmp_path):
        violations = analyze_source(BAD_ENGINE, rel_path="src/repro/mod.py")
        path = tmp_path / "baseline.json"
        write_baseline(path, violations[:-1])
        new, _ = partition_new(violations, load_baseline(path))
        assert len(new) == 1

    def test_duplicate_fingerprints_counted(self):
        violations = analyze_source(
            "import numpy as np\n"
            "\n"
            "def f():\n"
            "    a = np.random.rand(3)\n"
            "    a = np.random.rand(3)\n",
            rel_path="src/repro/mod.py",
        )
        assert len(violations) == 2
        fp = violations[0].fingerprint()
        assert violations[1].fingerprint() == fp  # same stripped line text
        new, accepted = partition_new(violations, Counter({fp: 1}))
        assert len(new) == 1 and len(accepted) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == Counter()

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_baseline_file_is_deterministic(self, tmp_path):
        violations = analyze_source(BAD_ENGINE, rel_path="src/repro/mod.py")
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_baseline(a, violations)
        write_baseline(b, sorted(violations, reverse=True))
        assert a.read_text() == b.read_text()


class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = make_tree(tmp_path, CLEAN_ENGINE)
        assert main(["--root", str(root)]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_reintroduced_patterns_exit_nonzero_with_codes(self, tmp_path, capsys):
        # The issue's acceptance probe: bare np.random + the PR 6
        # aliased-write pattern must fail the gate with RL101 and RL302.
        root = make_tree(tmp_path, BAD_ENGINE)
        assert main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "RL101" in out and "RL302" in out

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        root = make_tree(tmp_path, BAD_ENGINE)
        assert main(["--root", str(root), "--write-baseline"]) == 0
        assert main(["--root", str(root)]) == 0
        # A *new* hit on top of the baselined ones still fails.
        mod = root / "src" / "repro" / "mod.py"
        mod.write_text(BAD_ENGINE + "\nimport random\n", encoding="utf-8")
        assert main(["--root", str(root)]) == 1
        assert "RL102" in capsys.readouterr().out

    def test_no_baseline_flag_ignores_baseline(self, tmp_path, capsys):
        root = make_tree(tmp_path, BAD_ENGINE)
        assert main(["--root", str(root), "--write-baseline"]) == 0
        assert main(["--root", str(root), "--no-baseline"]) == 1
        capsys.readouterr()

    def test_json_report_schema(self, tmp_path, capsys):
        root = make_tree(tmp_path, BAD_ENGINE)
        assert main(["--root", str(root), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro-lint/v1"
        assert report["counts"]["new"] == report["counts"]["total"] >= 2
        assert {"RL101", "RL302"} <= set(report["counts"]["by_code"])
        assert all({"path", "line", "code", "message"} <= set(v) for v in report["violations"])

    def test_json_output_file(self, tmp_path, capsys):
        root = make_tree(tmp_path, BAD_ENGINE)
        out = tmp_path / "report.json"
        main(["--root", str(root), "--format", "json", "--output", str(out)])
        capsys.readouterr()
        assert json.loads(out.read_text())["schema"] == "repro-lint/v1"

    def test_select_filters_rules(self, tmp_path, capsys):
        root = make_tree(tmp_path, BAD_ENGINE)
        assert main(["--root", str(root), "--select", "RL302"]) == 1
        out = capsys.readouterr().out
        assert "RL302" in out and "RL101" not in out

    def test_unknown_select_code_is_usage_error(self, tmp_path):
        root = make_tree(tmp_path, CLEAN_ENGINE)
        with pytest.raises(SystemExit) as exc:
            main(["--root", str(root), "--select", "RL999"])
        assert exc.value.code == 2

    def test_syntax_error_fails_gate(self, tmp_path, capsys):
        root = make_tree(tmp_path, "def f(:\n")
        assert main(["--root", str(root)]) == 1
        assert "RL000" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL101", "RL201", "RL301", "RL401"):
            assert code in out


class TestRepoTreeIsClean:
    def test_committed_baseline_gates_the_repo(self):
        # The real tree against the real committed baseline: exit 0.
        repo_root = Path(__file__).resolve().parents[2]
        assert main(["--root", str(repo_root)]) == 0
