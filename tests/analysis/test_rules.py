"""repro-lint rule tests: fixture pairs, suppressions, and registry meta.

Every registered rule must have a good/bad snippet pair in
``lint_fixtures.py``: the bad spelling triggers the rule's code, the
good spelling of the same intent lints clean.  The meta-test makes the
pairing a CI obligation for future rules.
"""

import pytest

from lint_fixtures import ENGINE_PATH, RULE_FIXTURES
from repro.analysis import all_rules, analyze_source

CODES = sorted(RULE_FIXTURES)


def codes_of(source, rel_path):
    return {v.code for v in analyze_source(source, rel_path=rel_path)}


class TestFixturePairs:
    @pytest.mark.parametrize("code", CODES)
    def test_bad_triggers_code(self, code):
        fx = RULE_FIXTURES[code]
        assert code in codes_of(fx["bad"], fx["rel_path"]), (
            f"bad fixture for {code} did not trigger it"
        )

    @pytest.mark.parametrize("code", CODES)
    def test_good_is_clean(self, code):
        fx = RULE_FIXTURES[code]
        violations = analyze_source(fx["good"], rel_path=fx["rel_path"])
        assert violations == [], (
            f"good fixture for {code} is not clean: {violations}"
        )

    def test_meta_every_rule_has_a_fixture(self):
        registered = {cls.code for cls in all_rules()}
        # RL000 (syntax error) is emitted by the engine, not a rule class.
        assert set(RULE_FIXTURES) == registered | {"RL000"}


class TestModuleKinds:
    def test_wall_clock_allowed_in_benchmarks(self):
        bad = RULE_FIXTURES["RL202"]["bad"]
        assert "RL202" not in codes_of(bad, "benchmarks/bench_fixture.py")

    def test_set_iteration_allowed_in_tests(self):
        bad = RULE_FIXTURES["RL201"]["bad"]
        assert "RL201" not in codes_of(bad, "tests/test_fixture.py")

    def test_dtype_narrowing_allowed_outside_engine(self):
        bad = RULE_FIXTURES["RL303"]["bad"]
        assert "RL303" not in codes_of(bad, "examples/example_fixture.py")

    def test_rng_rules_apply_everywhere(self):
        bad = RULE_FIXTURES["RL101"]["bad"]
        for rel in ("benchmarks/bench_fixture.py", "tests/test_fixture.py"):
            assert "RL101" in codes_of(bad, rel)


class TestProbeScope:
    """RL5xx fires only inside telemetry code: ``src/repro/obs/`` files,
    or functions named ``probe_*`` / ``on_trace_*`` elsewhere."""

    OBS_PATH = "src/repro/obs/fixture_mod.py"

    def test_rng_draw_outside_probe_scope_is_clean(self):
        src = (
            "def sample(rcv, rng):\n"
            "    if rng.random() < 0.5:\n"
            "        return None\n"
            "    return len(rcv)\n"
        )
        assert "RL501" not in codes_of(src, ENGINE_PATH)

    def test_param_store_outside_probe_scope_is_clean(self):
        src = (
            "def fold(counts):\n"
            "    counts[0] = -1\n"
            "    return counts\n"
        )
        assert "RL502" not in codes_of(src, ENGINE_PATH)

    def test_obs_module_is_probe_scope_everywhere(self):
        src = (
            "def summarize(counts):\n"
            "    counts[0] = -1\n"
            "    return counts\n"
        )
        assert "RL502" in codes_of(src, self.OBS_PATH)

    def test_on_trace_prefix_is_probe_scope(self):
        src = (
            "def on_trace_round(rcv, rng):\n"
            "    return rng.integers(10)\n"
        )
        assert "RL501" in codes_of(src, ENGINE_PATH)

    def test_spawn_is_not_a_draw(self):
        src = (
            "def probe_round(rcv, rng):\n"
            "    child = rng.spawn(1)[0]\n"
            "    return child\n"
        )
        assert "RL501" not in codes_of(src, ENGINE_PATH)

    def test_self_store_is_not_a_mutation(self):
        src = (
            "class Probe:\n"
            "    def probe_round(self, rcv):\n"
            "        self.last = len(rcv)\n"
        )
        assert "RL502" not in codes_of(src, self.OBS_PATH)

    def test_attribute_chain_store_is_flagged(self):
        src = (
            "def probe_round(batch):\n"
            "    batch.meta.kind = 'net'\n"
        )
        assert "RL502" in codes_of(src, ENGINE_PATH)

    def test_probe_rules_apply_in_tests_and_benchmarks(self):
        bad = RULE_FIXTURES["RL501"]["bad"]
        for rel in ("benchmarks/bench_fixture.py", "tests/test_fixture.py"):
            assert "RL501" in codes_of(bad, rel)


class TestSuppressions:
    def test_inline_disable_silences_one_line(self):
        src = (
            "import numpy as np\n"
            "\n"
            "def noise(n):\n"
            "    return np.random.rand(n)  # repro-lint: disable=RL101\n"
        )
        assert codes_of(src, ENGINE_PATH) == set()

    def test_inline_disable_is_code_specific(self):
        src = (
            "import numpy as np\n"
            "\n"
            "def noise(n):\n"
            "    return np.random.rand(n)  # repro-lint: disable=RL202\n"
        )
        assert "RL101" in codes_of(src, ENGINE_PATH)

    def test_inline_disable_all(self):
        src = (
            "import numpy as np\n"
            "\n"
            "def noise(n):\n"
            "    return np.random.rand(n)  # repro-lint: disable=all\n"
        )
        assert codes_of(src, ENGINE_PATH) == set()

    def test_file_level_disable(self):
        src = (
            "# repro-lint: disable-file=RL101\n"
            "import numpy as np\n"
            "\n"
            "def noise(n):\n"
            "    return np.random.rand(n)\n"
        )
        assert codes_of(src, ENGINE_PATH) == set()

    def test_multiline_statement_suppressed_from_first_line(self):
        # The directive sits on the statement's first physical line; the
        # violation may anchor to a node spanning several lines.
        src = (
            "import numpy as np\n"
            "\n"
            "def noise(n):\n"
            "    return np.random.rand(  # repro-lint: disable=RL101\n"
            "        n,\n"
            "    )\n"
        )
        assert codes_of(src, ENGINE_PATH) == set()


class TestViolationShape:
    def test_sorted_and_fingerprinted(self):
        src = RULE_FIXTURES["RL302"]["bad"]
        violations = analyze_source(src, rel_path=ENGINE_PATH)
        assert violations == sorted(violations)
        v = violations[0]
        assert v.fingerprint() == f"{ENGINE_PATH}::{v.code}::{v.line_text}"
        d = v.as_dict()
        assert d["code"] == "RL302"
        assert d["path"] == ENGINE_PATH

    def test_syntax_error_reports_rl000_only(self):
        violations = analyze_source("def f(:\n", rel_path=ENGINE_PATH)
        assert [v.code for v in violations] == ["RL000"]

    def test_select_restricts_codes(self):
        src = (
            "import random\n"
            "import numpy as np\n"
            "\n"
            "def noise(n):\n"
            "    return np.random.rand(n)\n"
        )
        violations = analyze_source(src, rel_path=ENGINE_PATH, select={"RL102"})
        assert {v.code for v in violations} == {"RL102"}
