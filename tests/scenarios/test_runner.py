"""ScenarioRunner: cross-tier differential grids and JSON output."""

import json

import pytest

from repro.graphs.portgraph import PortGraph
from repro.scenarios import (
    SCENARIO_GRIDS,
    CrashWave,
    LinkDelay,
    MessageDrop,
    ScenarioRunner,
    ScenarioSpec,
    run_rooting_scenario,
)
from repro.scenarios.runner import delay_drop_churn_grid, tier_invariant_view

COMPOSITE = ScenarioSpec(
    name="test/composite",
    delay=LinkDelay(3),
    drop=MessageDrop(0.05),
    crashes=(CrashWave(round_no=2, fraction=0.1, rejoin_round=7),),
    fault_seed=11,
)


class TestGridDifferential:
    """ISSUE 4 acceptance: a named delay x drop x churn grid runs on all
    three tiers with identical fault streams per seed."""

    def test_three_tiers_identical_rows(self):
        runner = ScenarioRunner(
            sizes=(128,), seeds=(0, 1), tiers=("object", "batch", "soa")
        )
        payload = runner.run_grid((COMPOSITE, ScenarioSpec(name="test/clean")))
        cells = {}
        for row in payload["rows"]:
            key = (row["scenario"]["name"], row["seed"])
            cells.setdefault(key, []).append(row)
        assert len(cells) == 4
        for key, rows in cells.items():
            assert len(rows) == 3, key
            views = [tier_invariant_view(r) for r in rows]
            assert views[1] == views[0], key
            assert views[2] == views[0], key

    def test_named_delay_drop_churn_grid_runs(self):
        runner = ScenarioRunner(sizes=(96,), seeds=(0,), tiers=("batch", "soa"))
        grid = delay_drop_churn_grid(delays=(1, 3), drops=(0.0, 0.05), crash_fractions=(0.0, 0.2))
        payload = runner.run_grid(grid)
        assert len(payload["rows"]) == 8 * 2
        names = {r["scenario"]["name"] for r in payload["rows"]}
        assert len(names) == 8
        for row in payload["rows"]:
            assert row["rounds"] > 0
            assert row["elapsed_time_units"] == row["rounds"] * row["scenario"]["max_delay"]


class TestRows:
    def test_clean_cell_converges_and_spans(self):
        graph = PortGraph.ring_with_chords(128, delta=16, chords=2, seed=1)
        row = run_rooting_scenario(graph, ScenarioSpec(name="clean"), seed=0, tier="soa")
        assert row["converged"] and row["spanned"]
        assert row["num_roots"] == 1
        assert row["assigned_fraction"] == 1.0
        assert row["fault_drops"] == 0
        assert len(row["tree_sha"]) == 16

    def test_crash_at_start_partitions_into_a_forest(self):
        # Nodes isolated from round 0 never hear a smaller id, so they
        # root *themselves*: the run quiesces as a forest — converged,
        # but not spanned by one tree.
        graph = PortGraph.ring_with_chords(128, delta=16, chords=2, seed=1)
        spec = ScenarioSpec(
            name="crash0", crashes=(CrashWave(round_no=0, fraction=0.3),)
        )
        row = run_rooting_scenario(graph, spec, seed=0, tier="soa")
        assert row["converged"]
        assert not row["spanned"]
        assert row["num_roots"] > 1
        assert row["assigned_fraction"] == 1.0
        assert row["fault_drops"] > 0

    def test_mid_flood_crash_starves_convergence(self):
        # Nodes crashed *after* hearing a smaller id know they are not
        # roots but can never adopt a parent (isolated), so the network
        # never quiesces: the require_quiescence=False path flags it.
        graph = PortGraph.ring_with_chords(128, delta=16, chords=2, seed=1)
        spec = ScenarioSpec(
            name="crash3", crashes=(CrashWave(round_no=3, fraction=0.3),)
        )
        row = run_rooting_scenario(graph, spec, seed=0, tier="soa")
        assert not row["converged"]
        assert not row["spanned"]
        assert row["assigned_fraction"] < 1.0
        assert row["fault_drops"] > 0

    def test_payload_is_jsonable(self):
        runner = ScenarioRunner(sizes=(64,), seeds=(0,), tiers=("soa",))
        payload = runner.run_grid((COMPOSITE,))
        text = json.dumps(payload)
        assert json.loads(text)["rows"][0]["n"] == 64

    def test_write_json_roundtrip(self, tmp_path):
        runner = ScenarioRunner(sizes=(64,), seeds=(0,), tiers=("soa",))
        payload = runner.run_grid("partition")
        path = tmp_path / "rows.json"
        ScenarioRunner.write_json(payload, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(payload))


class TestValidation:
    def test_unknown_grid_raises(self):
        with pytest.raises(ValueError, match="unknown grid"):
            ScenarioRunner().run_grid("nope")

    def test_unknown_tier_raises(self):
        with pytest.raises(ValueError, match="tier"):
            ScenarioRunner(tiers=("hyperdrive",))

    def test_known_grids_registered(self):
        assert {"smoke", "delay_drop_churn", "partition"} <= set(SCENARIO_GRIDS)


class TestGraphCache:
    def test_graphs_are_reused_across_specs(self):
        runner = ScenarioRunner(sizes=(64,), seeds=(0,), tiers=("soa",))
        g1 = runner.graph_for(64)
        g2 = runner.graph_for(64)
        assert g1 is g2


class TestChurnRebuildWorkload:
    """The scenario-driven churn-rebuild workload (ISSUE 5): crash waves
    kill for good, the §4 hybrid pipeline rebuilds per-component trees
    over the survivors, identically on both hybrid tiers."""

    SPEC = ScenarioSpec(
        name="rebuild/churn20",
        crashes=(CrashWave(round_no=2, fraction=0.2),),
        fault_seed=6,
    )

    def test_cell_is_tier_invariant(self):
        from repro.scenarios.runner import run_churn_rebuild_scenario

        graph = PortGraph.ring_with_chords(256, delta=16, chords=2, seed=1)
        rows = [
            run_churn_rebuild_scenario(graph, self.SPEC, seed=0, tier=tier)
            for tier in ("object", "soa")
        ]
        assert tier_invariant_view(rows[0]) == tier_invariant_view(rows[1])
        assert rows[0]["workload"] == "churn-rebuild"
        assert rows[0]["survivors"] < 256
        assert rows[0]["labels_match_ground_truth"]

    def test_kill_set_is_a_function_of_the_spec(self):
        from repro.scenarios.runner import run_churn_rebuild_scenario

        graph = PortGraph.ring_with_chords(200, delta=16, chords=2, seed=2)
        a = run_churn_rebuild_scenario(graph, self.SPEC, seed=0, tier="soa")
        b = run_churn_rebuild_scenario(graph, self.SPEC, seed=1, tier="soa")
        # Different delivery seeds, same fault_seed: same survivors.
        assert a["survivors"] == b["survivors"]

    def test_rejoined_waves_count_as_alive(self):
        from repro.scenarios.runner import run_churn_rebuild_scenario

        graph = PortGraph.ring_with_chords(128, delta=16, chords=2, seed=3)
        rejoined = ScenarioSpec(
            name="rebuild/rejoined",
            crashes=(
                CrashWave(round_no=0, fraction=0.3, rejoin_round=2),
                CrashWave(round_no=2, fraction=0.1),
            ),
            fault_seed=9,
        )
        row = run_churn_rebuild_scenario(graph, rejoined, seed=0, tier="soa")
        # Only the second (never-rejoining) wave is down at the reference
        # round, so strictly fewer than 30% + 10% of nodes are missing.
        assert row["survivors"] > 128 * 0.75

    def test_runner_grid_dispatches_by_workload(self):
        runner = ScenarioRunner(
            sizes=(96,), seeds=(0,), tiers=("object", "soa"),
            workload="churn-rebuild",
        )
        payload = runner.run_grid((self.SPEC,))
        assert len(payload["rows"]) == 2
        views = [tier_invariant_view(r) for r in payload["rows"]]
        assert views[0] == views[1]

    def test_workload_validates_tiers(self):
        with pytest.raises(ValueError, match="churn-rebuild"):
            ScenarioRunner(tiers=("batch",), workload="churn-rebuild")
        with pytest.raises(ValueError, match="rooting"):
            ScenarioRunner(tiers=("walks",), workload="rooting")
        with pytest.raises(ValueError, match="workload must be"):
            ScenarioRunner(workload="mining")

    def test_invalid_tier_in_cell(self):
        from repro.scenarios.runner import run_churn_rebuild_scenario

        graph = PortGraph.ring_with_chords(64, delta=16, chords=2, seed=0)
        with pytest.raises(ValueError, match="tier must be one of"):
            run_churn_rebuild_scenario(graph, self.SPEC, seed=0, tier="batch")
