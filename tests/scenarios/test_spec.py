"""ScenarioSpec grammar + FaultInjector semantics and tier identity."""

import numpy as np
import pytest

from repro.graphs.churn import fail_mask
from repro.net.message import Message
from repro.net.network import CapacityPolicy, ProtocolNode, SyncNetwork
from repro.scenarios import (
    CrashWave,
    LinkDelay,
    MessageDrop,
    Partition,
    ScenarioSpec,
)


class TestSpecValidation:
    def test_delay_must_be_positive(self):
        with pytest.raises(ValueError):
            LinkDelay(0)

    def test_drop_probability_bounds(self):
        with pytest.raises(ValueError):
            MessageDrop(-0.1)
        with pytest.raises(ValueError):
            MessageDrop(1.5)

    def test_crash_wave_bounds(self):
        with pytest.raises(ValueError):
            CrashWave(round_no=-1, fraction=0.1)
        with pytest.raises(ValueError):
            CrashWave(round_no=2, fraction=2.0)
        with pytest.raises(ValueError):
            CrashWave(round_no=4, fraction=0.1, rejoin_round=4)

    def test_partition_bounds(self):
        with pytest.raises(ValueError):
            Partition(start=3, stop=3)
        with pytest.raises(ValueError):
            Partition(start=0, stop=5, blocks=1)

    def test_empty_spec_compiles_to_none(self):
        assert ScenarioSpec(name="clean").compile(10) is None
        assert ScenarioSpec(name="delay-only", delay=LinkDelay(5)).compile(10) is None
        assert ScenarioSpec(name="p0", drop=MessageDrop(0.0)).compile(10) is None

    def test_max_delay_defaults_to_synchronous(self):
        assert ScenarioSpec(name="clean").max_delay == 1
        assert ScenarioSpec(name="d", delay=LinkDelay(6)).max_delay == 6

    def test_describe_is_jsonable(self):
        import json

        spec = ScenarioSpec(
            name="x",
            delay=LinkDelay(3),
            drop=MessageDrop(0.1),
            crashes=(CrashWave(1, 0.2, 5),),
            partition=Partition(0, 4, 2),
        )
        payload = json.dumps(spec.describe())
        assert "crashes" in payload


class TestInjectorDeterminism:
    SPEC = ScenarioSpec(
        name="det",
        drop=MessageDrop(0.3),
        crashes=(CrashWave(round_no=1, fraction=0.2, rejoin_round=4),),
        partition=Partition(start=2, stop=5, blocks=2),
        fault_seed=9,
    )

    def test_same_spec_compiles_identically(self):
        a = self.SPEC.compile(64)
        b = self.SPEC.compile(64)
        senders = np.arange(64, dtype=np.int64)
        receivers = np.roll(senders, -1)
        for round_no in range(8):
            ka = a(round_no, senders, receivers)
            kb = b(round_no, senders, receivers)
            assert (ka is None) == (kb is None)
            if ka is not None:
                assert np.array_equal(ka, kb)

    def test_masks_are_oblivious_to_call_order(self):
        # Asking for round 5 before round 0 must not change any answer.
        a = self.SPEC.compile(64)
        b = self.SPEC.compile(64)
        senders = np.arange(64, dtype=np.int64)
        receivers = np.roll(senders, -1)
        forward = [a(r, senders, receivers) for r in range(6)]
        backward = [b(r, senders, receivers) for r in reversed(range(6))][::-1]
        for ka, kb in zip(forward, backward):
            assert np.array_equal(ka, kb) or (ka is None and kb is None)

    def test_crash_membership_matches_churn_draw(self):
        spec = ScenarioSpec(
            name="c", crashes=(CrashWave(round_no=0, fraction=0.4),), fault_seed=3
        )
        injector = spec.compile(50)
        expected_down = ~fail_mask(50, 0.4, np.random.default_rng([3, 101, 0]))
        assert np.array_equal(injector.down_mask(0), expected_down)


class TestAdversarySemantics:
    def test_crash_isolates_both_directions_until_rejoin(self):
        spec = ScenarioSpec(
            name="c", crashes=(CrashWave(round_no=2, fraction=0.5, rejoin_round=5),)
        )
        injector = spec.compile(20)
        down = injector.down_mask(2)
        crashed = int(np.flatnonzero(down)[0])
        alive = int(np.flatnonzero(~down)[0])
        senders = np.array([crashed, alive], dtype=np.int64)
        receivers = np.array([alive, crashed], dtype=np.int64)
        # Before the wave and after rejoin: no faults at all.
        assert injector(1, senders, receivers) is None
        assert injector(5, senders, receivers) is None
        # During: both directions die.
        keep = injector(2, senders, receivers)
        assert not keep.any()

    def test_partition_drops_cross_block_only_during_interval(self):
        spec = ScenarioSpec(name="p", partition=Partition(start=1, stop=3, blocks=2))
        injector = spec.compile(40)
        blocks = injector._blocks
        a = int(np.flatnonzero(blocks == 0)[0])
        b = int(np.flatnonzero(blocks == 1)[0])
        a2 = int(np.flatnonzero(blocks == 0)[1])
        senders = np.array([a, a], dtype=np.int64)
        receivers = np.array([b, a2], dtype=np.int64)
        assert injector(0, senders, receivers) is None
        keep = injector(1, senders, receivers)
        assert keep.tolist() == [False, True]
        assert injector(3, senders, receivers) is None

    def test_drop_rate_is_roughly_p(self):
        spec = ScenarioSpec(name="d", drop=MessageDrop(0.25), fault_seed=1)
        injector = spec.compile(10)
        senders = np.zeros(20_000, dtype=np.int64)
        receivers = np.ones(20_000, dtype=np.int64)
        keep = injector(0, senders, receivers)
        rate = 1.0 - keep.mean()
        assert 0.22 < rate < 0.28


class _Pinger(ProtocolNode):
    """Sends one message per round around a ring; logs every inbox."""

    def __init__(self, node_id, n, rounds):
        super().__init__(node_id)
        self.n = n
        self.rounds = rounds
        self.log = []

    def on_round(self, round_no, inbox):
        self.log.append(sorted((m.sender, m.payload) for m in inbox))
        if round_no >= self.rounds:
            return []
        return [
            Message(self.node_id, (self.node_id + 1) % self.n, "ping", round_no)
        ]

    def is_idle(self):
        return True


class TestFaultHookOnNetwork:
    SPEC = ScenarioSpec(
        name="hook", drop=MessageDrop(0.3), fault_seed=5
    )

    def _run(self, engine, n=12, rounds=5):
        nodes = {v: _Pinger(v, n, rounds) for v in range(n)}
        net = SyncNetwork(
            nodes,
            CapacityPolicy.unbounded(),
            np.random.default_rng(0),
            engine=engine,
            fault_hook=self.SPEC.compile(n),
        )
        for _ in range(rounds + 1):
            net.run_round()
        return {v: nodes[v].log for v in nodes}, net.metrics.as_dict()

    def test_fault_drops_counted_and_engines_identical(self):
        logs_l, metrics_l = self._run("legacy")
        logs_v, metrics_v = self._run("vectorized")
        assert metrics_l == metrics_v
        assert logs_l == logs_v
        assert metrics_l["fault_drops"] > 0
        # Faulted messages never reach metrics' totals as capacity drops.
        assert metrics_l["send_drops"] == 0
        assert metrics_l["receive_drops"] == 0

    def test_self_messages_immune_to_faults(self):
        class SelfLooper(ProtocolNode):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.heard = 0

            def on_round(self, round_no, inbox):
                self.heard += len(inbox)
                if round_no < 4:
                    return [Message(self.node_id, self.node_id, "loop", round_no)]
                return []

        spec = ScenarioSpec(name="all-drop", drop=MessageDrop(1.0))
        nodes = {0: SelfLooper(0)}
        net = SyncNetwork(
            nodes,
            CapacityPolicy.unbounded(),
            np.random.default_rng(0),
            fault_hook=spec.compile(1),
        )
        for _ in range(6):
            net.run_round()
        assert nodes[0].heard == 4
        assert net.metrics.fault_drops == 0


class TestRejoinBoundarySemantics:
    """The half-open, send-round crash interval (ISSUE 5 audit).

    A message is subject to the fault state of the round it was *sent*
    in: a node crashed over ``[round_no, rejoin_round)`` loses every
    message sent to or by it in those rounds — so a node rejoining in
    round ``r`` does **not** receive messages sent in round ``r − 1``,
    and the first traffic it exchanges is sent in round ``r`` (arriving
    ``r + 1``).  Pinned on both delivery engines.
    """

    CRASH, REJOIN = 2, 5
    SPEC = ScenarioSpec(
        name="rejoin",
        crashes=(CrashWave(round_no=CRASH, fraction=1.0, rejoin_round=REJOIN),),
        fault_seed=1,
    )

    def _run(self, engine, rounds=8, n=3):
        nodes = {v: _Pinger(v, n, rounds) for v in range(n)}
        net = SyncNetwork(
            nodes,
            CapacityPolicy.unbounded(),
            np.random.default_rng(0),
            engine=engine,
            fault_hook=self.SPEC.compile(n),
        )
        for _ in range(rounds + 1):
            net.run_round()
        return {v: nodes[v].log for v in nodes}, net.metrics.as_dict()

    @pytest.mark.parametrize("engine", ["legacy", "vectorized"])
    def test_rejoiner_misses_round_r_minus_1_traffic(self, engine):
        logs, metrics = self._run(engine)
        # Node 1's inbox at round k holds the round-(k-1) send of node 0.
        received_send_rounds = {
            payload for entries in logs[1] for (_s, payload) in entries
        }
        # Sends of rounds [CRASH, REJOIN) are dropped — including the
        # round immediately before the rejoin.
        assert received_send_rounds == {0, 1, 5, 6, 7}
        assert self.REJOIN - 1 not in received_send_rounds
        # First post-rejoin message was sent in the rejoin round itself
        # and arrived one round later.
        assert (0, self.REJOIN) in logs[1][self.REJOIN + 1]
        # fraction=1.0 isolates everyone: every send of the crash window
        # is a fault drop (3 senders × 3 rounds).
        assert metrics["fault_drops"] == 3 * (self.REJOIN - self.CRASH)

    def test_engines_agree_on_the_boundary(self):
        assert self._run("legacy") == self._run("vectorized")

    def test_down_mask_interval_is_half_open(self):
        injector = self.SPEC.compile(4)
        assert injector.down_mask(self.CRASH - 1) is None
        assert injector.down_mask(self.CRASH).all()
        assert injector.down_mask(self.REJOIN - 1).all()
        # round_no == end: the wave no longer applies at the rejoin round.
        assert injector.down_mask(self.REJOIN) is None
        # Never-rejoining waves stay down arbitrarily far out.
        forever = ScenarioSpec(
            name="forever", crashes=(CrashWave(round_no=1, fraction=1.0),)
        ).compile(4)
        assert forever.down_mask(10**6).all()

    def test_down_mask_cache_survives_boundary_recrossing(self):
        injector = self.SPEC.compile(4)
        a = injector.down_mask(self.CRASH)
        assert injector.down_mask(self.REJOIN) is None
        b = injector.down_mask(self.CRASH)
        assert np.array_equal(a, b)


class TestPartitionBoundarySemantics:
    """Partition rounds are the same half-open, send-round interval."""

    START, STOP = 1, 3
    # fault_seed=1 places nodes 0 and 1 in different blocks (guarded
    # below), so the 2-node ping ring crosses the cut every round.
    SPEC = ScenarioSpec(
        name="split", partition=Partition(start=START, stop=STOP), fault_seed=1
    )

    def test_seed_really_splits_the_pair(self):
        injector = self.SPEC.compile(2)
        assert injector._blocks[0] != injector._blocks[1]

    @pytest.mark.parametrize("engine", ["legacy", "vectorized"])
    def test_heal_round_send_crosses(self, engine):
        n, rounds = 2, 6
        nodes = {v: _Pinger(v, n, rounds) for v in range(n)}
        net = SyncNetwork(
            nodes,
            CapacityPolicy.unbounded(),
            np.random.default_rng(0),
            engine=engine,
            fault_hook=self.SPEC.compile(n),
        )
        for _ in range(rounds + 1):
            net.run_round()
        received_send_rounds = {
            payload for entries in nodes[1].log for (_s, payload) in entries
        }
        # Sends of rounds [START, STOP) dropped; the STOP-round send (the
        # heal round) crosses and arrives at STOP + 1.
        assert received_send_rounds == {0, 3, 4, 5}
        assert (0, self.STOP) in nodes[1].log[self.STOP + 1]
        assert net.metrics.fault_drops == 2 * (self.STOP - self.START)
