"""The columnar synchroniser: bit-for-bit equivalence + queue mechanics."""

import math

import numpy as np
import pytest

from repro.core.protocol_tree import run_rooting_under_asynchrony
from repro.core.soa_rooting import run_soa_rooting
from repro.graphs.portgraph import PortGraph
from repro.net.asynchrony import run_with_asynchrony
from repro.net.batch import KINDS, MessageBatch
from repro.net.network import CapacityPolicy, SoAProtocolClass
from repro.net.soa import SoAInbox
from repro.scenarios.soa_sync import SoADelayQueue

SEEDS = range(12)


def overlay_like(n: int, seed: int) -> PortGraph:
    return PortGraph.ring_with_chords(n, delta=16, chords=2, seed=seed)


def _flood_rounds(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n)))) + 4


class TestBitForBitMatrix:
    """ISSUE 4 acceptance: the SoA synchroniser equals the per-node
    synchroniser *and* the synchronous execution under the same seed —
    round ledger and final overlay — over a >= 10-seed matrix."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_soa_sync_equals_per_node_and_synchronous(self, seed):
        n = 64 + 16 * (seed % 3)
        graph = overlay_like(n, seed=n + seed)
        fr = _flood_rounds(n)
        sync = run_soa_rooting(graph, fr, rng=np.random.default_rng(seed))
        per_node, rep_b = run_rooting_under_asynchrony(
            graph, fr, max_delay=5, rng=np.random.default_rng(seed), tier="batch"
        )
        soa, rep_s = run_rooting_under_asynchrony(
            graph, fr, max_delay=5, rng=np.random.default_rng(seed), tier="soa"
        )
        for run in (per_node, soa):
            assert run.root == sync.root
            assert np.array_equal(run.parent, sync.parent)
            assert np.array_equal(run.depth, sync.depth)
            assert run.metrics.as_dict() == sync.metrics.as_dict()
            assert run.rounds == sync.rounds
        # The synchronisers also agree on the asynchronous accounting:
        # same per-delivered-message delay stream, same barrier clock.
        assert rep_s.logical_rounds == rep_b.logical_rounds
        assert rep_s.elapsed_time_units == rep_b.elapsed_time_units
        assert rep_s.observed_max_delay == rep_b.observed_max_delay
        assert rep_s.converged and rep_b.converged

    def test_dilation_accounting(self):
        graph = overlay_like(80, seed=1)
        _, report = run_rooting_under_asynchrony(
            graph, _flood_rounds(80), max_delay=7,
            rng=np.random.default_rng(0), tier="soa",
        )
        assert report.elapsed_time_units == report.logical_rounds * 7
        assert report.dilation == 7.0
        assert 1 <= report.observed_max_delay <= 7


class _SoABabbler(SoAProtocolClass):
    """Never quiesces: node 0 pings node 1 every round."""

    def on_round_soa(self, round_no, inbox):
        return MessageBatch(
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.int64),
            "babble",
            np.array([round_no], dtype=np.int64),
        )

    def is_idle(self):
        return True  # quiescence still blocked by in-flight messages


class TestNonConvergence:
    def test_soa_run_raises_by_default(self):
        with pytest.raises(RuntimeError, match="did not quiesce"):
            run_with_asynchrony(
                _SoABabbler(4), CapacityPolicy.unbounded(),
                np.random.default_rng(0), max_delay=3, max_rounds=5,
            )

    def test_soa_run_flagged_when_opted_out(self):
        report, _ = run_with_asynchrony(
            _SoABabbler(4), CapacityPolicy.unbounded(),
            np.random.default_rng(0), max_delay=3, max_rounds=5,
            require_quiescence=False,
        )
        assert not report.converged
        assert report.logical_rounds == 5


class TestDelayQueue:
    KIND = KINDS.code("q")

    def _inbox(self, receivers, payloads, senders=None, payloads2=None):
        receivers = np.asarray(receivers, dtype=np.int64)
        if senders is None:
            senders = np.zeros_like(receivers)
        return SoAInbox(
            np.asarray(senders, dtype=np.int64),
            receivers,
            self.KIND,
            np.asarray(payloads, dtype=np.int64),
            None if payloads2 is None else np.asarray(payloads2, dtype=np.int64),
        )

    def test_release_preserves_receiver_sorted_order(self):
        queue = SoADelayQueue(8)
        inbox = self._inbox([1, 1, 3, 5], [10, 11, 12, 13], senders=[0, 2, 0, 4])
        queue.push(inbox, np.array([2, 2, 2, 2], dtype=np.int64))
        out = queue.release_until(2)
        assert len(queue) == 0
        assert out.receivers.tolist() == [1, 1, 3, 5]
        assert out.senders.tolist() == [0, 2, 0, 4]
        assert out.payloads.tolist() == [10, 11, 12, 13]
        assert out.kinds == self.KIND  # scalar fast path preserved

    def test_partial_release_by_time(self):
        queue = SoADelayQueue(8)
        queue.push(self._inbox([2, 4], [1, 2]), np.array([1, 5], dtype=np.int64))
        early = queue.release_until(1)
        assert early.receivers.tolist() == [2]
        assert len(queue) == 1
        late = queue.release_until(5)
        assert late.receivers.tolist() == [4]
        assert len(queue) == 0
        assert len(queue.release_until(100)) == 0

    def test_multi_push_interleaves_by_receiver(self):
        queue = SoADelayQueue(8)
        queue.push(self._inbox([1, 5], [10, 11]), np.array([3, 3], dtype=np.int64))
        queue.push(self._inbox([1, 3], [20, 21], senders=[7, 7]), np.array([3, 3], dtype=np.int64))
        out = queue.release_until(3)
        assert out.receivers.tolist() == [1, 1, 3, 5]
        # Stable: first push's receiver-1 message precedes the second's.
        assert out.payloads.tolist() == [10, 20, 21, 11]

    def test_second_lane_zero_fills_on_mix(self):
        queue = SoADelayQueue(8)
        queue.push(self._inbox([1], [10]), np.array([1], dtype=np.int64))
        queue.push(
            self._inbox([2], [20], payloads2=[99]), np.array([1], dtype=np.int64)
        )
        out = queue.release_until(1)
        assert out.payloads2.tolist() == [0, 99]

    def test_mixed_kinds_materialise(self):
        queue = SoADelayQueue(8)
        queue.push(self._inbox([1], [10]), np.array([1], dtype=np.int64))
        other = SoAInbox(
            np.array([0], dtype=np.int64),
            np.array([2], dtype=np.int64),
            KINDS.code("other"),
            np.array([20], dtype=np.int64),
        )
        queue.push(other, np.array([1], dtype=np.int64))
        out = queue.release_until(1)
        assert type(out.kinds) is np.ndarray
        assert out.kinds.tolist() == [self.KIND, KINDS.code("other")]

    def test_release_length_mismatch_raises(self):
        queue = SoADelayQueue(8)
        with pytest.raises(ValueError, match="release-time"):
            queue.push(self._inbox([1, 2], [1, 2]), np.array([1], dtype=np.int64))


class TestBarrierBoundary:
    """ISSUE 5 satellite: ``LinkDelay == barrier length`` is the inclusive
    boundary — released at exactly that barrier, never held or dropped —
    and anything *beyond* the barrier fails loudly under
    ``require_drain`` instead of starving the run."""

    KIND = KINDS.code("q")

    def _inbox(self, receivers, payloads):
        receivers = np.asarray(receivers, dtype=np.int64)
        return SoAInbox(
            np.zeros_like(receivers),
            receivers,
            self.KIND,
            np.asarray(payloads, dtype=np.int64),
        )

    def test_release_boundary_is_inclusive(self):
        queue = SoADelayQueue(4)
        queue.push(self._inbox([1, 2], [7, 8]), np.array([3, 3], dtype=np.int64))
        # A message whose release time equals the barrier goes out with it.
        out = queue.release_until(3, require_drain=True)
        assert out.payloads.tolist() == [7, 8]
        assert len(queue) == 0

    def test_delay_beyond_barrier_raises_clearly(self):
        queue = SoADelayQueue(4)
        queue.push(self._inbox([1, 2], [7, 8]), np.array([3, 4], dtype=np.int64))
        with pytest.raises(RuntimeError, match="beyond the synchroniser barrier"):
            queue.release_until(3, require_drain=True)

    def test_without_drain_requirement_messages_are_held_not_dropped(self):
        queue = SoADelayQueue(4)
        queue.push(self._inbox([1], [7]), np.array([5], dtype=np.int64))
        assert len(queue.release_until(4)) == 0
        assert len(queue) == 1
        assert queue.release_until(5).payloads.tolist() == [7]

    @pytest.mark.parametrize("max_delay", [1, 2, 7])
    def test_full_run_at_exact_barrier_matches_synchronous(self, max_delay):
        """End-to-end boundary value: every delay drawn equals at most the
        barrier (inclusive), so delayed rooting runs stay bit-for-bit the
        synchronous execution on both synchronisers for every barrier
        width — including 1, where *all* delays hit the boundary."""
        n = 96
        graph = overlay_like(n, seed=5)
        fr = _flood_rounds(n)
        sync = run_soa_rooting(graph, fr, rng=np.random.default_rng(3))
        for tier in ("batch", "soa"):
            run, report = run_rooting_under_asynchrony(
                graph,
                fr,
                max_delay=max_delay,
                rng=np.random.default_rng(3),
                tier=tier,
            )
            assert np.array_equal(run.parent, sync.parent)
            assert run.metrics.as_dict() == sync.metrics.as_dict()
            assert report.observed_max_delay <= max_delay
            if max_delay == 1:
                assert report.observed_max_delay == 1


class TestDebugValidate:
    """ISSUE 6 satellite: ``REPRO_DEBUG_SOA`` turns the documented
    "concat never re-sorts" precondition into a checked assert — and the
    delay queue, whose internal buffer is legitimately segment-ordered,
    still works under it because only the *release* re-sorts."""

    KIND = KINDS.code("q")

    def _inbox(self, receivers, payloads):
        receivers = np.asarray(receivers, dtype=np.int64)
        return SoAInbox(
            np.zeros_like(receivers),
            receivers,
            self.KIND,
            np.asarray(payloads, dtype=np.int64),
        )

    def test_concat_rejects_unsorted_input_in_debug_mode(self, monkeypatch):
        import repro.net.soa as soa_mod

        monkeypatch.setattr(soa_mod, "DEBUG_VALIDATE", True)
        bad = self._inbox([5, 1], [1, 2])
        ok = self._inbox([1, 5], [1, 2])
        with pytest.raises(ValueError, match="not receiver-sorted"):
            SoAInbox.concat([ok, bad])
        out = SoAInbox.concat([ok, ok])
        assert out.receivers.tolist() == [1, 5, 1, 5]

    def test_concat_check_override_beats_module_flag(self, monkeypatch):
        import repro.net.soa as soa_mod

        bad = self._inbox([5, 1], [1, 2])
        monkeypatch.setattr(soa_mod, "DEBUG_VALIDATE", False)
        with pytest.raises(ValueError, match="not receiver-sorted"):
            SoAInbox.concat([bad], check=True)
        monkeypatch.setattr(soa_mod, "DEBUG_VALIDATE", True)
        assert SoAInbox.concat([bad], check=False).receivers.tolist() == [5, 1]

    def test_queue_rejects_unsorted_push_in_debug_mode(self, monkeypatch):
        import repro.net.soa as soa_mod

        monkeypatch.setattr(soa_mod, "DEBUG_VALIDATE", True)
        queue = SoADelayQueue(8)
        with pytest.raises(ValueError, match="push input is not receiver-sorted"):
            queue.push(self._inbox([5, 1], [1, 2]), np.array([1, 1], dtype=np.int64))

    def test_multi_push_release_still_resorts_under_debug(self, monkeypatch):
        # Three sorted pushes accumulate an internal buffer that is NOT
        # globally sorted ([1,5,1,3,0,2]); the queue's check=False opt-out
        # keeps debug mode from misfiring on it, and release re-sorts.
        import repro.net.soa as soa_mod

        monkeypatch.setattr(soa_mod, "DEBUG_VALIDATE", True)
        queue = SoADelayQueue(8)
        t = np.array([3, 3], dtype=np.int64)
        queue.push(self._inbox([1, 5], [10, 11]), t)
        queue.push(self._inbox([1, 3], [20, 21]), t)
        queue.push(self._inbox([0, 2], [30, 31]), t)
        out = queue.release_until(3, require_drain=True)
        assert out.receivers.tolist() == [0, 1, 1, 2, 3, 5]
        # Stable: push order preserved within the receiver-1 group.
        assert out.payloads.tolist() == [30, 10, 20, 31, 21, 11]

    def test_full_synchronised_run_passes_debug_validation(self, monkeypatch):
        import repro.net.soa as soa_mod

        monkeypatch.setattr(soa_mod, "DEBUG_VALIDATE", True)
        graph = overlay_like(64, seed=2)
        fr = _flood_rounds(64)
        sync = run_soa_rooting(graph, fr, rng=np.random.default_rng(1))
        run, report = run_rooting_under_asynchrony(
            graph, fr, max_delay=3, rng=np.random.default_rng(1), tier="soa"
        )
        assert np.array_equal(run.parent, sync.parent)
        assert report.converged
