"""Experiment harness tests (tables, scaling fits, tier selection)."""

import numpy as np
import pytest

from repro.experiments.harness import (
    ENGINE_CHOICES,
    EXPANDER_CHOICES,
    ROOTING_CHOICES,
    TIER_CHOICES,
    Table,
    fit_vs_logn,
    geometric_sizes,
    loglog_slope,
    select_engine,
    select_rooting,
    select_tier,
    tier_filter,
)


class TestSelectTier:
    """One resolver for every benchmark-selectable stack dimension."""

    def test_kind_defaults(self, monkeypatch):
        for var in ("REPRO_ENGINE", "REPRO_ROOTING", "REPRO_EXPANDER"):
            monkeypatch.delenv(var, raising=False)
        assert select_tier("engine") == "vectorized"
        assert select_tier("rooting") == "reference"
        assert select_tier("expander") == "walks"

    def test_cli_beats_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROOTING", "batch")
        assert select_tier("rooting") == "batch"
        assert select_tier("rooting", "soa") == "soa"
        assert select_tier("rooting", default="protocol") == "batch"

    def test_env_vars_are_per_kind(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPANDER", "soa")
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert select_tier("expander") == "soa"
        assert select_tier("engine") == "vectorized"

    def test_typos_fail_loudly(self, monkeypatch):
        with pytest.raises(ValueError, match="kind"):
            select_tier("warp-drive")
        with pytest.raises(ValueError, match="engine must be one of"):
            select_tier("engine", "hyperdrive")
        monkeypatch.setenv("REPRO_ROOTING", "nope")
        with pytest.raises(ValueError, match="rooting must be one of"):
            select_tier("rooting")

    def test_choices_restriction(self):
        with pytest.raises(ValueError):
            select_tier("engine", "soa", choices=ENGINE_CHOICES)
        assert select_tier("engine", "soa", choices=TIER_CHOICES) == "soa"

    def test_filter_is_none_when_nothing_chosen(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert tier_filter("engine") is None
        assert tier_filter("engine", "legacy") == "legacy"
        monkeypatch.setenv("REPRO_ENGINE", "soa")
        assert tier_filter("engine") == "soa"

    def test_back_compat_wrappers(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        monkeypatch.delenv("REPRO_ROOTING", raising=False)
        assert select_engine() == "vectorized"
        assert select_rooting(default="batch") == "batch"
        with pytest.raises(ValueError):
            select_engine("soa")  # engine-only choices by default

    def test_choice_tuples_cover_the_stack(self):
        assert set(ENGINE_CHOICES) == {"legacy", "vectorized"}
        assert "soa" in TIER_CHOICES
        assert "soa" in ROOTING_CHOICES and "walks" in EXPANDER_CHOICES


class TestTable:
    def test_add_and_render(self):
        t = Table("demo", ["n", "rounds", "ok"])
        t.add(64, 31.5, True)
        t.add(128, 36.0, False)
        out = t.render()
        assert "demo" in out
        assert "64" in out and "yes" in out and "no" in out

    def test_wrong_arity_rejected(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_float_formatting(self):
        t = Table("demo", ["x"])
        t.add(0.123456789)
        assert "0.1235" in t.render()


class TestFits:
    def test_fit_recovers_logarithmic_law(self):
        ns = [64, 128, 256, 512, 1024]
        ys = [5 + 3 * np.log2(n) for n in ns]
        a, b, r2 = fit_vs_logn(ns, ys)
        assert a == pytest.approx(5, abs=1e-9)
        assert b == pytest.approx(3, abs=1e-9)
        assert r2 == pytest.approx(1.0)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_vs_logn([64], [1.0])

    def test_loglog_slope_power_law(self):
        xs = [10, 100, 1000]
        ys = [2 * x**1.5 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(1.5, abs=1e-9)

    def test_loglog_requires_positive(self):
        with pytest.raises(ValueError):
            loglog_slope([1, 2], [0, 1])


class TestSizes:
    def test_geometric(self):
        assert geometric_sizes(16, 128) == [16, 32, 64, 128]

    def test_non_integer_factor(self):
        sizes = geometric_sizes(10, 30, factor=1.5)
        assert sizes == [10, 15, 22, 34][:3] or sizes == [10, 15, 23]

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_sizes(10, 5)
        with pytest.raises(ValueError):
            geometric_sizes(1, 10, factor=1.0)


class TestEnvPlumbingMatrix:
    """ISSUE 5 satellite: every stack dimension's env variable fails
    loudly on invalid values (message lists the valid choices) and loses
    to an explicit CLI value."""

    KINDS = {
        "engine": ("REPRO_ENGINE", "vectorized"),
        "rooting": ("REPRO_ROOTING", "reference"),
        "expander": ("REPRO_EXPANDER", "walks"),
        "hybrid": ("REPRO_HYBRID", "object"),
    }

    @pytest.mark.parametrize("kind", sorted(KINDS))
    def test_invalid_env_value_lists_choices(self, kind, monkeypatch):
        env_var, _default = self.KINDS[kind]
        monkeypatch.setenv(env_var, "warp-drive")
        with pytest.raises(ValueError) as excinfo:
            select_tier(kind)
        message = str(excinfo.value)
        assert f"{kind} must be one of" in message
        assert "warp-drive" in message
        # Every valid choice is named, so the fix is copy-pasteable.
        from repro.experiments.harness import _TIER_KINDS

        for choice in _TIER_KINDS[kind][2]:
            assert choice in message

    @pytest.mark.parametrize("kind", sorted(KINDS))
    def test_cli_beats_env(self, kind, monkeypatch):
        env_var, default = self.KINDS[kind]
        from repro.experiments.harness import _TIER_KINDS

        choices = _TIER_KINDS[kind][2]
        other = next(c for c in choices if c != default)
        monkeypatch.setenv(env_var, default)
        assert select_tier(kind, cli_value=other) == other
        # And an invalid env value is *still* overridden by a valid CLI
        # value (the CLI is resolved first).
        monkeypatch.setenv(env_var, "bogus")
        assert select_tier(kind, cli_value=other) == other

    @pytest.mark.parametrize("kind", sorted(KINDS))
    def test_defaults_without_env(self, kind, monkeypatch):
        env_var, default = self.KINDS[kind]
        monkeypatch.delenv(env_var, raising=False)
        assert select_tier(kind) == default
        assert tier_filter(kind) is None

    def test_invalid_cli_value_lists_choices(self):
        with pytest.raises(ValueError, match="hybrid must be one of"):
            select_tier("hybrid", cli_value="nope")

    def test_hybrid_choices_exported(self):
        from repro.experiments.harness import HYBRID_CHOICES
        from repro.hybrid.components import HYBRID_TIERS

        assert HYBRID_CHOICES == HYBRID_TIERS == ("object", "soa")

    def test_tier_filter_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HYBRID", "soa")
        assert tier_filter("hybrid") == "soa"
        monkeypatch.setenv("REPRO_HYBRID", "typo")
        with pytest.raises(ValueError, match="hybrid must be one of"):
            tier_filter("hybrid")


class TestSelectWorkers:
    """The worker-count resolver shares one source of truth with the
    network (``repro.net.shard.resolve_workers``), CLI > env > 1."""

    def test_default_and_env(self, monkeypatch):
        from repro.experiments.harness import select_workers

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert select_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert select_workers() == 3

    def test_cli_beats_env(self, monkeypatch):
        from repro.experiments.harness import select_workers

        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert select_workers(2) == 2

    def test_garbage_raises(self, monkeypatch):
        from repro.experiments.harness import select_workers

        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            select_workers()
        monkeypatch.delenv("REPRO_WORKERS")
        with pytest.raises(ValueError, match=">= 1"):
            select_workers(-1)

    def test_argparse_plumbing(self):
        import argparse

        from repro.experiments.harness import add_workers_argument

        parser = argparse.ArgumentParser()
        add_workers_argument(parser)
        assert parser.parse_args([]).workers is None
        assert parser.parse_args(["--workers", "4"]).workers == 4
