"""Experiment harness tests (tables and scaling fits)."""

import numpy as np
import pytest

from repro.experiments.harness import Table, fit_vs_logn, geometric_sizes, loglog_slope


class TestTable:
    def test_add_and_render(self):
        t = Table("demo", ["n", "rounds", "ok"])
        t.add(64, 31.5, True)
        t.add(128, 36.0, False)
        out = t.render()
        assert "demo" in out
        assert "64" in out and "yes" in out and "no" in out

    def test_wrong_arity_rejected(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_float_formatting(self):
        t = Table("demo", ["x"])
        t.add(0.123456789)
        assert "0.1235" in t.render()


class TestFits:
    def test_fit_recovers_logarithmic_law(self):
        ns = [64, 128, 256, 512, 1024]
        ys = [5 + 3 * np.log2(n) for n in ns]
        a, b, r2 = fit_vs_logn(ns, ys)
        assert a == pytest.approx(5, abs=1e-9)
        assert b == pytest.approx(3, abs=1e-9)
        assert r2 == pytest.approx(1.0)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_vs_logn([64], [1.0])

    def test_loglog_slope_power_law(self):
        xs = [10, 100, 1000]
        ys = [2 * x**1.5 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(1.5, abs=1e-9)

    def test_loglog_requires_positive(self):
        with pytest.raises(ValueError):
            loglog_slope([1, 2], [0, 1])


class TestSizes:
    def test_geometric(self):
        assert geometric_sizes(16, 128) == [16, 32, 64, 128]

    def test_non_integer_factor(self):
        sizes = geometric_sizes(10, 30, factor=1.5)
        assert sizes == [10, 15, 22, 34][:3] or sizes == [10, 15, 23]

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_sizes(10, 5)
        with pytest.raises(ValueError):
            geometric_sizes(1, 10, factor=1.0)
