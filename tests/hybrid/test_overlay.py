"""Hybrid overlay (Theorem 4.1) tests."""

import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.analysis import (
    adjacency_sets,
    connected_components,
    diameter,
    is_connected,
)
from repro.graphs.spectral import spectral_gap
from repro.hybrid.overlay import (
    HybridOverlayParams,
    build_hybrid_overlay,
)


class TestParams:
    def test_stitched_ell_must_be_power_structure(self):
        with pytest.raises(ValueError):
            HybridOverlayParams(delta=32, ell=24, num_evolutions=3)
        HybridOverlayParams(delta=32, ell=16, num_evolutions=3)  # ok

    def test_plain_ell_free(self):
        HybridOverlayParams(delta=32, ell=24, num_evolutions=3, use_stitching=False)

    def test_recommended_fits_input_degree(self):
        p = HybridOverlayParams.recommended(100, max_degree=30)
        assert p.delta >= 60
        assert p.delta % 8 == 0

    def test_oversample(self):
        p = HybridOverlayParams(delta=32, ell=16, num_evolutions=2)
        assert p.oversample == 8


class TestConstruction:
    def test_connected_overlay_from_line(self):
        res = build_hybrid_overlay(
            G.line_graph(80), rng=np.random.default_rng(0)
        )
        adj = res.final_graph.neighbor_sets()
        assert is_connected(adj)
        assert res.final_graph.is_lazy()
        assert res.final_graph.is_symmetric()

    def test_gap_grows(self):
        res = build_hybrid_overlay(
            G.line_graph(100), rng=np.random.default_rng(1), track_gap=True
        )
        gaps = [s.spectral_gap for s in res.history]
        assert gaps[-1] > 0.04

    def test_diameter_logarithmic(self):
        res = build_hybrid_overlay(G.line_graph(128), rng=np.random.default_rng(2))
        assert diameter(res.final_graph.neighbor_sets()) <= 14

    def test_adaptive_stop_with_long_walks_is_fast(self):
        res = build_hybrid_overlay(
            G.cycle_graph(128), rng=np.random.default_rng(3), gap_threshold=0.04
        )
        # Long (ell=64) walks gain conductance fast: few evolutions.
        assert len(res.history) <= 6

    def test_degree_too_high_rejected(self):
        params = HybridOverlayParams(delta=32, ell=16, num_evolutions=2)
        with pytest.raises(ValueError, match="degree"):
            build_hybrid_overlay(G.star_graph(64), rng=np.random.default_rng(4), params=params)

    def test_plain_walk_mode(self):
        params = HybridOverlayParams(
            delta=48, ell=32, num_evolutions=8, use_stitching=False
        )
        res = build_hybrid_overlay(
            G.cycle_graph(64), rng=np.random.default_rng(5), params=params
        )
        assert is_connected(res.final_graph.neighbor_sets())


class TestMultiComponent:
    def test_walks_never_cross_components(self):
        mix, members = G.component_mixture([G.line_graph(40), G.cycle_graph(40)])
        res = build_hybrid_overlay(mix, rng=np.random.default_rng(6))
        comps = connected_components(res.final_graph.neighbor_sets())
        assert sorted(map(tuple, comps)) == sorted(map(tuple, members))

    def test_each_component_becomes_expander(self):
        mix, members = G.component_mixture([G.cycle_graph(48), G.cycle_graph(48)])
        res = build_hybrid_overlay(mix, rng=np.random.default_rng(7))
        adj = res.final_graph.neighbor_sets()
        for member in members:
            sub = {v: adj[v] & set(member) for v in member}
            index = {v: i for i, v in enumerate(member)}
            local = [set(index[u] for u in sub[v]) for v in member]
            assert is_connected(local)
            assert diameter(local) <= 10


class TestLedger:
    def test_rounds_per_evolution_logarithmic_in_ell(self):
        res = build_hybrid_overlay(G.cycle_graph(64), rng=np.random.default_rng(8))
        for name, lr, gr, gc in res.ledger.phases:
            # Stitched walks: 2 + log2(ell/2) + 2 rounds per evolution.
            assert gr <= 2 + int(np.log2(res.params.ell)) + 2

    def test_traces_roundtrip(self):
        res = build_hybrid_overlay(
            G.cycle_graph(48), rng=np.random.default_rng(9), record_traces=True
        )
        for level, registry in enumerate(res.level_registries):
            for edge in registry[:5]:
                assert edge.node_trace is not None
                assert edge.node_trace[0] == edge.origin
                assert edge.node_trace[-1] == edge.endpoint
