"""MIS via shattering (Theorem 1.5) tests."""

import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets
from repro.hybrid.mis import (
    DOMINATED,
    IN_MIS,
    UNDECIDED,
    ghaffari_stage,
    metivier_mis,
    mis_hybrid,
    verify_mis,
)


class TestVerifyMIS:
    def test_accepts_valid(self):
        adj = adjacency_sets(G.line_graph(5))
        assert verify_mis(adj, {0, 2, 4})

    def test_rejects_dependent(self):
        adj = adjacency_sets(G.line_graph(5))
        assert not verify_mis(adj, {0, 1, 4})

    def test_rejects_non_maximal(self):
        adj = adjacency_sets(G.line_graph(5))
        assert not verify_mis(adj, {0})


class TestGhaffari:
    def test_states_partition(self, rng):
        adj = adjacency_sets(G.cycle_graph(30))
        res = ghaffari_stage(adj, 10, rng)
        states = set(res.state.tolist())
        assert states <= {UNDECIDED, IN_MIS, DOMINATED}

    def test_mis_nodes_independent(self, rng):
        adj = adjacency_sets(G.erdos_renyi_connected(80, 6.0, rng))
        res = ghaffari_stage(adj, 12, rng)
        mis = {v for v, s in enumerate(res.state.tolist()) if s == IN_MIS}
        for v in mis:
            assert not any(u in mis for u in adj[v])

    def test_dominated_have_mis_neighbor(self, rng):
        adj = adjacency_sets(G.grid_2d(8, 8))
        res = ghaffari_stage(adj, 12, rng)
        mis = {v for v, s in enumerate(res.state.tolist()) if s == IN_MIS}
        for v, s in enumerate(res.state.tolist()):
            if s == DOMINATED:
                assert any(u in mis for u in adj[v])

    def test_shattering_leaves_few_undecided(self, rng):
        adj = adjacency_sets(G.erdos_renyi_connected(200, 8.0, rng))
        res = ghaffari_stage(adj, 16, rng)
        assert len(res.undecided()) <= 20  # most nodes decided w.h.p.


class TestMetivier:
    def test_produces_valid_mis(self, rng):
        adj = adjacency_sets(G.cycle_graph(25))
        res = metivier_mis(adj, list(range(25)), rng)
        assert verify_mis(adj, res.in_mis)

    def test_respects_subset(self, rng):
        adj = adjacency_sets(G.line_graph(10))
        subset = [0, 1, 2, 3, 4]
        res = metivier_mis(adj, subset, rng)
        assert res.in_mis <= set(subset)
        # Valid MIS of the induced subgraph.
        sub = [adj[v] & set(subset) if v in subset else set() for v in range(10)]
        for v in res.in_mis:
            assert not any(u in res.in_mis for u in sub[v])

    def test_rounds_logarithmic_ish(self, rng):
        adj = adjacency_sets(G.erdos_renyi_connected(150, 6.0, rng))
        res = metivier_mis(adj, list(range(150)), rng)
        assert res.rounds <= 30

    def test_empty_subset(self, rng):
        adj = adjacency_sets(G.line_graph(4))
        res = metivier_mis(adj, [], rng)
        assert res.in_mis == set()
        assert res.rounds == 0


class TestHybridMIS:
    @pytest.mark.parametrize(
        "make,seed",
        [
            (lambda r: G.line_graph(120), 0),
            (lambda r: G.cycle_graph(90), 1),
            (lambda r: G.grid_2d(10, 10), 2),
            (lambda r: G.star_graph(40), 3),
            (lambda r: G.erdos_renyi_connected(150, 10.0, r), 4),
            (lambda r: G.random_regular(100, 6, r), 5),
        ],
        ids=["line", "cycle", "grid", "star", "er", "regular"],
    )
    def test_valid_mis(self, make, seed):
        g = make(np.random.default_rng(seed))
        res = mis_hybrid(g, rng=np.random.default_rng(seed + 10))
        assert verify_mis(adjacency_sets(g), res.in_mis)

    def test_forced_shattering_residue(self):
        # Few Ghaffari rounds leave undecided components for stage 3.
        g = G.erdos_renyi_connected(200, 8.0, np.random.default_rng(0))
        res = mis_hybrid(
            g, rng=np.random.default_rng(1), shatter_rounds=2
        )
        assert verify_mis(adjacency_sets(g), res.in_mis)
        assert len(res.component_sizes) > 0
        assert all(r >= 1 for r in res.winner_rounds.values())

    def test_overlay_backed_mode(self):
        g = G.erdos_renyi_connected(120, 8.0, np.random.default_rng(2))
        res = mis_hybrid(
            g,
            rng=np.random.default_rng(3),
            shatter_rounds=2,
            build_overlays=True,
        )
        assert verify_mis(adjacency_sets(g), res.in_mis)
        names = [name for name, *_ in res.ledger.phases]
        assert any(name.startswith("component_overlays/") for name in names)

    def test_rounds_scale_with_degree_not_n(self):
        rng = np.random.default_rng(4)
        low_d = mis_hybrid(G.cycle_graph(400), rng=rng)
        high_d = mis_hybrid(
            G.erdos_renyi_connected(100, 30.0, rng), rng=rng
        )
        assert low_d.shattering_rounds < high_d.shattering_rounds

    def test_multi_component_input(self):
        mix, _ = G.component_mixture([G.line_graph(30), G.cycle_graph(30)])
        res = mis_hybrid(mix, rng=np.random.default_rng(5))
        assert verify_mis(adjacency_sets(mix), res.in_mis)

    def test_empty_graph(self):
        import networkx as nx

        res = mis_hybrid(nx.Graph())
        assert res.in_mis == set()


class TestMetivierDeterminism:
    """Pinned regression: rank draws follow ascending node order.

    ``rank = {v: rng.random() for v in undecided}`` used to draw in set
    iteration order, coupling the RNG stream to hash order — invisible
    for small dense ids (CPython iterates those ascending) and wrong the
    moment ids are gappy or large.  Draws are now made over
    ``sorted(undecided)``.
    """

    GAPPY = [3, 1 << 40, 5, (1 << 40) + 3, 977]

    @staticmethod
    def _gappy_adj():
        adj = {v: set() for v in TestMetivierDeterminism.GAPPY}
        for a, b in [(3, 5), (5, 977), (977, 1 << 40), (1 << 40, (1 << 40) + 3)]:
            adj[a].add(b)
            adj[b].add(a)
        return adj

    def test_gappy_ids_pinned(self):
        # Hash order of this id set differs from sorted order, so the
        # pre-fix code would hand different nodes different draws.
        nodes = self.GAPPY
        assert list(set(nodes)) != sorted(nodes)
        res = metivier_mis(self._gappy_adj(), nodes, np.random.default_rng(11))
        assert sorted(res.in_mis) == [3, 1 << 40]
        assert res.rounds == 1

    def test_rank_draws_ascend_node_order(self):
        # A counting stub exposes the draw order directly: the node with
        # the smallest id must receive the first (smallest) draw.
        class CountingRNG:
            def __init__(self):
                self.t = 0.0

            def random(self):
                self.t += 1.0
                return self.t

        nodes = self.GAPPY
        res = metivier_mis(self._gappy_adj(), nodes, CountingRNG())
        # Ascending draws over sorted nodes: node 3 gets rank 1.0 (a
        # local minimum), 977 gets 3.0 < its neighbours' 2.0? no — 5
        # gets 2.0 so 977 is not minimal; 2**40 gets 4.0, 2**40+3 gets
        # 5.0.  Joiners round 1: {3}; then 5 eliminated; next round the
        # remaining path 977-2**40-2**40+3 draws 6.0,7.0,8.0 -> 977
        # joins, eliminating 2**40; finally 2**40+3 joins.
        assert sorted(res.in_mis) == [3, 977, (1 << 40) + 3]
