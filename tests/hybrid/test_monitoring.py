"""Network monitoring tests (§1.4 corollary via [27])."""

import math

import numpy as np
import pytest

from repro.core.pipeline import build_well_formed_tree
from repro.graphs import generators as G
from repro.hybrid.monitoring import NetworkMonitor


class TestCounts:
    def test_node_count(self):
        mon = NetworkMonitor(G.grid_2d(6, 7))
        assert mon.node_count().value == 42

    def test_edge_count(self):
        g = G.grid_2d(6, 7)
        mon = NetworkMonitor(g)
        assert mon.edge_count().value == g.number_of_edges()

    def test_degree_extremes(self):
        mon = NetworkMonitor(G.star_graph(12))
        assert mon.max_degree().value == 11
        assert mon.min_degree().value == 1


class TestBipartiteness:
    @pytest.mark.parametrize(
        "make,expected",
        [
            (lambda: G.cycle_graph(8), True),
            (lambda: G.cycle_graph(9), False),
            (lambda: G.grid_2d(5, 5), True),
            (lambda: G.complete_graph(4), False),
            (lambda: G.binary_tree(15), True),
            (lambda: G.lollipop(4, 5), False),
        ],
        ids=["even_cycle", "odd_cycle", "grid", "clique", "tree", "lollipop"],
    )
    def test_matches_truth(self, make, expected):
        import networkx as nx

        g = make()
        mon = NetworkMonitor(g)
        assert mon.is_bipartite().value == nx.is_bipartite(g)
        assert mon.is_bipartite().value is expected


class TestRoundCharges:
    def test_aggregations_cost_tree_height(self):
        g = G.cycle_graph(32)
        result = build_well_formed_tree(g, rng=np.random.default_rng(0))
        mon = NetworkMonitor(g, tree=result.tree)
        report = mon.node_count()
        # Well-formed tree: O(log n) rounds per monitor.
        assert report.rounds <= math.ceil(math.log2(32)) + 1

    def test_wft_monitor_beats_bfs_tree_on_line(self):
        g = G.line_graph(128)
        result = build_well_formed_tree(g, rng=np.random.default_rng(1))
        fast = NetworkMonitor(g, tree=result.tree)
        slow = NetworkMonitor(g)  # BFS tree of the line: depth 127
        assert fast.node_count().rounds < slow.node_count().rounds

    def test_all_monitors_battery(self):
        g = G.torus_2d(5, 5)
        mon = NetworkMonitor(g)
        battery = mon.all_monitors()
        assert set(battery) == {
            "node_count",
            "edge_count",
            "max_degree",
            "min_degree",
            "is_bipartite",
        }
        assert battery["node_count"].value == 25


class TestEngineSelection:
    """Smoke: the monitor's tree construction runs on any execution tier
    and every tier yields the identical monitors (same values, same
    round charges) — the bench_x2 path no longer needs object-level
    rooting."""

    @pytest.mark.parametrize("rooting", ["protocol", "batch", "soa"])
    def test_tiers_match_reference_monitor(self, rooting):
        g = G.torus_2d(4, 4)
        ref = NetworkMonitor(g).all_monitors()
        got = NetworkMonitor(g, rooting=rooting).all_monitors()
        for query, report in ref.items():
            assert got[query].value == report.value, query
            assert got[query].rounds == report.rounds, query

    def test_unknown_rooting_rejected(self):
        with pytest.raises(ValueError, match="rooting"):
            NetworkMonitor(G.cycle_graph(6), rooting="warp-drive")

    def test_disconnected_rejected_on_message_tier(self):
        mix, _ = G.component_mixture([G.line_graph(4), G.line_graph(4)])
        with pytest.raises(ValueError, match="connected"):
            NetworkMonitor(mix, rooting="batch")


class TestValidation:
    def test_disconnected_rejected(self):
        mix, _ = G.component_mixture([G.line_graph(4), G.line_graph(4)])
        with pytest.raises(ValueError):
            NetworkMonitor(mix)

    def test_mismatched_tree_rejected(self):
        from repro.core.child_sibling import RootedTree

        tree = RootedTree(root=0, parent=np.array([0, 0]))
        with pytest.raises(ValueError):
            NetworkMonitor(G.cycle_graph(5), tree=tree)
