"""Elkin–Neiman spanner tests: connectivity, degree, subgraph property."""

import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets, connected_components, is_connected
from repro.hybrid.spanner import build_spanner


class TestSubgraphProperty:
    @pytest.mark.parametrize("seed", range(3))
    def test_spanner_edges_exist_in_input(self, seed):
        rng = np.random.default_rng(seed)
        g = G.erdos_renyi_connected(120, 10.0, rng)
        adj = adjacency_sets(g)
        sp = build_spanner(g, rng)
        for v, targets in enumerate(sp.out_edges):
            for u in targets:
                assert u in adj[v]


class TestConnectivity:
    @pytest.mark.parametrize("seed", range(6))
    def test_connected_inputs_stay_connected(self, seed):
        rng = np.random.default_rng(seed)
        g = G.erdos_renyi_connected(150, 12.0, rng)
        sp = build_spanner(g, rng)
        assert is_connected(sp.undirected_adjacency())

    def test_component_structure_preserved(self, rng):
        mix, members = G.component_mixture(
            [G.star_graph(40), G.erdos_renyi_connected(60, 8.0, rng), G.cycle_graph(30)]
        )
        sp = build_spanner(mix, rng)
        comps = connected_components(sp.undirected_adjacency())
        assert sorted(map(tuple, comps)) == sorted(map(tuple, members))

    def test_dense_graph_connected(self, rng):
        g = G.complete_graph(60)
        sp = build_spanner(g, rng)
        assert is_connected(sp.undirected_adjacency())


class TestDegreeBounds:
    @pytest.mark.parametrize("seed", range(4))
    def test_outdegree_logarithmic(self, seed):
        rng = np.random.default_rng(seed)
        n = 250
        g = G.erdos_renyi_connected(n, 24.0, rng)
        sp = build_spanner(g, rng)
        # O(log n) with the calibrated threshold: allow 6x log2(n).
        assert sp.max_outdegree() <= 6 * np.log2(n)

    def test_edge_count_near_linear(self, rng):
        n = 250
        g = G.erdos_renyi_connected(n, 24.0, rng)
        sp = build_spanner(g, rng)
        assert sp.num_directed_edges() <= 6 * n * np.log2(n)


class TestMechanics:
    def test_low_degree_nodes_add_all(self, rng):
        g = G.star_graph(40)  # leaves have degree 1 < threshold
        sp = build_spanner(g, rng)
        for leaf in range(1, 40):
            assert sp.added_all[leaf]
            assert 0 in sp.out_edges[leaf]

    def test_inactive_fallback_engages(self, rng):
        # With discarded shifts (very small component bound), inactive
        # nodes must still add their edges (documented deviation).
        g = G.cycle_graph(30)
        sp = build_spanner(g, rng, component_bound=2)
        assert is_connected(sp.undirected_adjacency())

    def test_rounds_scale_with_component_bound(self, rng):
        g = G.cycle_graph(64)
        small = build_spanner(g, rng, component_bound=8)
        large = build_spanner(g, rng, component_bound=64)
        assert small.rounds < large.rounds

    def test_empty_graph(self, rng):
        import networkx as nx

        sp = build_spanner(nx.Graph(), rng)
        assert sp.out_edges == []
        assert sp.rounds == 0

    def test_shifts_truncated(self, rng):
        g = G.cycle_graph(40)
        sp = build_spanner(g, rng)
        finite = sp.shifts[np.isfinite(sp.shifts)]
        assert (finite <= 2 * np.log(40) + 1e-9).all()
