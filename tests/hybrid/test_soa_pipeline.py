"""Columnar §4 pipeline: bit-for-bit equivalence with the per-node path.

The ISSUE 5 acceptance matrix: the SoA spanner → degree-reduction →
overlay → components pipeline must reproduce the per-node implementations
exactly (edge sets, degrees, forests, labels, token-congestion ledger
totals) over a ≥ 12-seed matrix, plus unit coverage for the columnar
building blocks (CSR adjacency, ledger, flood/BFS tails).
"""

import numpy as np
import pytest

from repro.core.bfs import build_bfs_forest, distributed_bfs, flood_min_ids
from repro.core.pipeline import HYBRID_MODES
from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets, connected_components
from repro.graphs.portgraph import PortGraph
from repro.hybrid.components import (
    HYBRID_TIERS,
    connected_components_hybrid,
)
from repro.hybrid.degree_reduction import reduce_degree
from repro.hybrid.overlay import HybridOverlayParams, build_hybrid_overlay
from repro.hybrid.soa_pipeline import (
    CSRAdjacency,
    SoAHybridLedger,
    SpannerColumns,
    build_bfs_forest_soa,
    build_hybrid_overlay_soa,
    build_spanner_soa,
    connected_components_hybrid_soa,
    distributed_bfs_columns,
    flood_min_ids_columns,
    reduce_degree_soa,
)
from repro.hybrid.spanner import build_spanner
from repro.net.hybrid import HybridLedger

MATRIX_SEEDS = range(12)


def mixture(seed: int):
    rng = np.random.default_rng(seed)
    mix, _ = G.component_mixture(
        [
            G.line_graph(20 + seed),
            G.cycle_graph(15 + (seed % 5)),
            G.star_graph(25),
            G.erdos_renyi_connected(30, 5.0, rng),
        ]
    )
    return mix


class TestCSRAdjacency:
    def test_from_graph_matches_adjacency_sets(self, rng):
        g = G.erdos_renyi_connected(60, 6.0, rng)
        csr = CSRAdjacency.from_graph(g)
        assert csr.to_sets() == adjacency_sets(g)

    def test_portgraph_fast_path(self):
        graph = PortGraph.ring_with_chords(200, delta=16, chords=2, seed=3)
        csr = CSRAdjacency.from_graph(graph)
        assert csr.to_sets() == graph.neighbor_sets()
        assert csr.max_degree() == max(len(s) for s in graph.neighbor_sets())

    def test_from_edges_dedups_and_drops_self_loops(self):
        csr = CSRAdjacency.from_edges(
            4, np.array([0, 0, 1, 2, 2]), np.array([1, 1, 0, 2, 3])
        )
        assert csr.to_sets() == [{1}, {0}, {3}, {2}]

    def test_neighbor_gather_preserves_order(self):
        csr = CSRAdjacency.from_edges(5, np.array([0, 0, 3]), np.array([2, 4, 4]))
        senders, targets = csr.neighbor_gather(np.array([0, 4], dtype=np.int64))
        assert senders.tolist() == [0, 0, 4, 4]
        assert targets.tolist() == [2, 4, 0, 3]

    def test_adjacency_sets_accepts_csr(self):
        csr = CSRAdjacency.from_edges(3, np.array([0]), np.array([2]))
        assert adjacency_sets(csr) == [{2}, set(), {0}]


class TestSoAHybridLedger:
    def test_matches_hybrid_ledger(self):
        a, b = HybridLedger(), SoAHybridLedger()
        for ledger in (a, b):
            ledger.charge("x", local_rounds=3, global_rounds=1, global_capacity=9)
            ledger.charge("y", global_rounds=7)
        sub = HybridLedger()
        sub.charge("inner", local_rounds=2, global_capacity=30)
        a.merge(sub, prefix="p/")
        b.merge(sub, prefix="p/")
        assert a.phases == b.phases
        assert a.summary() == b.summary()
        assert a.total_rounds == b.total_rounds == 3 + 7 + 2
        assert a.max_global_capacity == b.max_global_capacity == 30

    def test_growth_beyond_initial_capacity(self):
        ledger = SoAHybridLedger()
        for i in range(40):
            ledger.charge(f"p{i}", global_rounds=i)
        assert len(ledger) == 40
        assert ledger.phases[39] == ("p39", 0, 39, 0)
        assert ledger.total_rounds == sum(range(40))

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SoAHybridLedger().charge("bad", local_rounds=-1)

    def test_to_ledger_and_reverse_merge(self):
        col = SoAHybridLedger()
        col.charge("a", local_rounds=5)
        plain = col.to_ledger()
        assert isinstance(plain, HybridLedger)
        assert plain.phases == col.phases
        # A per-node ledger can absorb a columnar one and vice versa.
        other = HybridLedger()
        other.merge(col)
        assert other.phases == col.phases

    def test_empty_totals(self):
        ledger = SoAHybridLedger()
        assert ledger.total_rounds == 0
        assert ledger.max_global_capacity == 0
        assert ledger.summary() == {
            "phases": 0,
            "total_rounds": 0,
            "max_global_capacity": 0,
        }


class TestSpannerEquivalence:
    @pytest.mark.parametrize("seed", MATRIX_SEEDS)
    def test_spanner_bit_for_bit(self, seed):
        g = mixture(seed)
        per_node = build_spanner(g, np.random.default_rng(seed))
        columnar = build_spanner_soa(g, np.random.default_rng(seed))
        as_result = columnar.to_result()
        assert [set(s) for s in as_result.out_edges] == [
            set(s) for s in per_node.out_edges
        ]
        assert np.array_equal(as_result.active, per_node.active)
        assert np.array_equal(as_result.added_all, per_node.added_all)
        assert np.array_equal(as_result.shifts, per_node.shifts)
        assert as_result.rounds == per_node.rounds
        assert columnar.max_outdegree() == per_node.max_outdegree()
        assert columnar.num_directed_edges() == per_node.num_directed_edges()

    def test_dense_and_star_shapes(self, rng):
        mix, _ = G.component_mixture([G.star_graph(40), G.complete_graph(25)])
        per_node = build_spanner(mix, np.random.default_rng(5))
        columnar = build_spanner_soa(mix, np.random.default_rng(5))
        assert [set(s) for s in columnar.to_result().out_edges] == [
            set(s) for s in per_node.out_edges
        ]

    def test_component_bound_matches(self):
        g = mixture(3)
        per_node = build_spanner(g, np.random.default_rng(3), component_bound=32)
        columnar = build_spanner_soa(g, np.random.default_rng(3), component_bound=32)
        assert columnar.rounds == per_node.rounds
        assert [set(s) for s in columnar.to_result().out_edges] == [
            set(s) for s in per_node.out_edges
        ]

    def test_empty_graph(self):
        import networkx as nx

        columnar = build_spanner_soa(nx.Graph(), np.random.default_rng(0))
        assert columnar.n == 0 and columnar.num_directed_edges() == 0


class TestReductionEquivalence:
    @pytest.mark.parametrize("seed", MATRIX_SEEDS)
    def test_reduction_bit_for_bit(self, seed):
        g = mixture(seed)
        per_node = reduce_degree(build_spanner(g, np.random.default_rng(seed)))
        columnar = reduce_degree_soa(build_spanner_soa(g, np.random.default_rng(seed)))
        as_reduced = columnar.to_reduced()
        assert as_reduced.adj == per_node.adj
        assert as_reduced.delegation == per_node.delegation
        assert columnar.max_degree() == per_node.max_degree()
        assert as_reduced.rounds == per_node.rounds

    def test_expand_edge_matches(self):
        g = mixture(1)
        per_node = reduce_degree(build_spanner(g, np.random.default_rng(1)))
        columnar = reduce_degree_soa(build_spanner_soa(g, np.random.default_rng(1)))
        for a, b in zip(
            columnar.edge_a.tolist()[:50], columnar.edge_b.tolist()[:50]
        ):
            assert columnar.expand_edge(a, b) == per_node.expand_edge(a, b)
            assert columnar.expand_edge(b, a) == per_node.expand_edge(b, a)


class TestOverlayEquivalence:
    @pytest.mark.parametrize("seed", MATRIX_SEEDS)
    def test_overlay_bit_for_bit(self, seed):
        g = mixture(seed)
        per_spanner = build_spanner(g, np.random.default_rng(seed))
        per_node = build_hybrid_overlay(
            reduce_degree(per_spanner).adj, rng=np.random.default_rng(seed + 50)
        )
        columnar = build_hybrid_overlay_soa(
            reduce_degree_soa(build_spanner_soa(g, np.random.default_rng(seed))),
            rng=np.random.default_rng(seed + 50),
        )
        assert np.array_equal(
            per_node.final_graph.ports, columnar.final_graph.ports
        )
        assert per_node.final_graph.unique_edges() == columnar.final_graph.unique_edges()
        assert np.array_equal(
            per_node.final_graph.real_degree(), columnar.final_graph.real_degree()
        )
        assert list(per_node.base_registry) == list(columnar.base_registry)
        assert per_node.ledger.phases == columnar.ledger.phases
        assert per_node.ledger.summary() == columnar.ledger.summary()
        assert [s.__dict__ for s in per_node.history] == [
            s.__dict__ for s in columnar.history
        ]

    def test_degree_guard_matches_per_node(self):
        columnar = reduce_degree_soa(build_spanner_soa(mixture(2), np.random.default_rng(2)))
        tight = HybridOverlayParams(delta=8, ell=16, num_evolutions=1)
        with pytest.raises(ValueError, match="reduce the degree first"):
            build_hybrid_overlay_soa(columnar, params=tight)

    def test_base_registry_lazy_view(self):
        columnar = reduce_degree_soa(build_spanner_soa(mixture(0), np.random.default_rng(0)))
        overlay = build_hybrid_overlay_soa(columnar, rng=np.random.default_rng(1))
        registry = overlay.base_registry
        assert len(registry) > 0
        first = registry[0]
        assert first.source == (first.u, first.v)
        assert registry[-1].u == registry[len(registry) - 1].u
        with pytest.raises(IndexError):
            registry[len(registry)]
        assert [e.u for e in registry[:3]] == [registry[i].u for i in range(3)]


class TestFloodAndBFS:
    @pytest.mark.parametrize("seed", range(6))
    def test_flood_matches_reference(self, seed):
        g = mixture(seed)
        reference, ref_rounds = flood_min_ids(adjacency_sets(g))
        columnar, col_rounds = flood_min_ids_columns(CSRAdjacency.from_graph(g))
        assert np.array_equal(reference, columnar)
        assert ref_rounds == col_rounds

    @pytest.mark.parametrize("seed", range(6))
    def test_bfs_matches_reference(self, seed):
        g = mixture(seed)
        adj = adjacency_sets(g)
        roots = sorted({min(c) for c in connected_components(adj)})
        p1, d1, r1 = distributed_bfs(adj, roots)
        p2, d2, r2 = distributed_bfs_columns(CSRAdjacency.from_graph(g), roots)
        assert np.array_equal(p1, p2) and np.array_equal(d1, d2) and r1 == r2

    def test_forest_matches_reference(self):
        graph = PortGraph.ring_with_chords(300, delta=16, chords=2, seed=9)
        reference = build_bfs_forest(graph)
        columnar = build_bfs_forest_soa(graph)
        assert np.array_equal(reference.parent, columnar.parent)
        assert np.array_equal(reference.depth, columnar.depth)
        assert np.array_equal(reference.root_of, columnar.root_of)
        assert reference.roots == columnar.roots
        assert reference.rounds == columnar.rounds

    def test_isolated_nodes(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(4))
        g.add_edge(1, 3)
        reference = build_bfs_forest(adjacency_sets(g))
        columnar = build_bfs_forest_soa(CSRAdjacency.from_graph(g))
        assert np.array_equal(reference.parent, columnar.parent)
        assert reference.roots == columnar.roots
        assert reference.rounds == columnar.rounds


class TestComponentsEquivalence:
    @pytest.mark.parametrize("seed", MATRIX_SEEDS)
    def test_components_bit_for_bit(self, seed):
        g = mixture(seed)
        per_node = connected_components_hybrid(
            g, rng=np.random.default_rng(seed), m_bound=64
        )
        columnar = connected_components_hybrid(
            g, rng=np.random.default_rng(seed), m_bound=64, tier="soa"
        )
        assert np.array_equal(per_node.labels, columnar.labels)
        assert np.array_equal(per_node.forest.parent, columnar.forest.parent)
        assert np.array_equal(per_node.forest.root_of, columnar.forest.root_of)
        assert np.array_equal(per_node.bfs.parent, columnar.bfs.parent)
        assert np.array_equal(per_node.bfs.depth, columnar.bfs.depth)
        assert per_node.ledger.phases == columnar.ledger.phases
        assert per_node.ledger.summary() == columnar.ledger.summary()
        assert np.array_equal(
            per_node.overlay.final_graph.ports, columnar.overlay.final_graph.ports
        )
        assert per_node.components() == columnar.components()

    def test_selected_tier_labels_ground_truth(self):
        """Runs under whichever REPRO_HYBRID the environment selects —
        the CI tier-matrix job exercises both values so neither path can
        silently rot."""
        from repro.experiments.harness import select_tier

        tier = select_tier("hybrid")
        g = mixture(7)
        result = connected_components_hybrid(
            g, rng=np.random.default_rng(7), m_bound=64, tier=tier
        )
        truth = {
            min(c): sorted(c) for c in connected_components(adjacency_sets(g))
        }
        assert {k: sorted(v) for k, v in result.components().items()} == truth

    def test_invalid_tier_rejected(self):
        with pytest.raises(ValueError, match="tier must be one of"):
            connected_components_hybrid(mixture(0), tier="warp")

    def test_hybrid_modes_mirror_is_in_sync(self):
        assert HYBRID_MODES == HYBRID_TIERS

    def test_columnar_results_carry_columns(self):
        result = connected_components_hybrid(
            mixture(0), rng=np.random.default_rng(0), tier="soa"
        )
        assert isinstance(result.spanner, SpannerColumns)
        assert isinstance(result.ledger, SoAHybridLedger)
        # The columnar spanner still interops with set-based consumers.
        assert result.spanner.to_result().max_outdegree() >= 0


class TestDirtyBitBroadcast:
    def test_message_volume_collapses_but_result_matches(self):
        """The SoA broadcast suppresses unchanged re-sends (idempotent
        merges); the spanner must still equal the plainly re-sending
        per-node oracle."""
        graph = PortGraph.ring_with_chords(400, delta=16, chords=2, seed=11)
        per_node = build_spanner(graph, np.random.default_rng(4))
        columnar = build_spanner_soa(graph, np.random.default_rng(4))
        assert [set(s) for s in columnar.to_result().out_edges] == [
            set(s) for s in per_node.out_edges
        ]
