"""Hybrid overlay edge cases and engine-agreement checks."""

import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.analysis import diameter, is_connected
from repro.graphs.spectral import spectral_gap
from repro.hybrid.overlay import HybridOverlayParams, build_hybrid_overlay


class TestTinyInputs:
    def test_two_nodes(self):
        res = build_hybrid_overlay(G.line_graph(2), rng=np.random.default_rng(0))
        assert is_connected(res.final_graph.neighbor_sets())

    def test_three_node_path(self):
        res = build_hybrid_overlay(G.line_graph(3), rng=np.random.default_rng(1))
        assert is_connected(res.final_graph.neighbor_sets())

    def test_single_edge_pair_components(self):
        mix, _ = G.component_mixture([G.line_graph(2), G.line_graph(2)])
        res = build_hybrid_overlay(mix, rng=np.random.default_rng(2))
        from repro.graphs.analysis import connected_components

        comps = connected_components(res.final_graph.neighbor_sets())
        assert sorted(map(tuple, comps)) == [(0, 1), (2, 3)]


class TestEngineAgreement:
    def test_stitched_and_plain_reach_same_regime(self):
        """Both walk engines drive the same conductance growth."""
        n = 80
        stitched_params = HybridOverlayParams(
            delta=48, ell=32, num_evolutions=8, use_stitching=True
        )
        plain_params = HybridOverlayParams(
            delta=48, ell=32, num_evolutions=8, use_stitching=False
        )
        gaps = {}
        for name, params in [("stitched", stitched_params), ("plain", plain_params)]:
            res = build_hybrid_overlay(
                G.cycle_graph(n), rng=np.random.default_rng(3), params=params
            )
            gaps[name] = spectral_gap(res.final_graph)
        assert gaps["stitched"] > 0.03
        assert gaps["plain"] > 0.03
        assert 0.3 < gaps["stitched"] / gaps["plain"] < 3.0

    def test_edge_copies_fill_port_slack(self):
        """Sparse inputs get their edges copied into idle ports."""
        res = build_hybrid_overlay(G.line_graph(20), rng=np.random.default_rng(4))
        base = res.levels[0]
        # An interior line node has 2 distinct neighbours but many more
        # real ports (the copies), strengthening sparse cuts.
        assert base.real_degree()[10] > 2
        assert base.is_lazy()

    def test_dense_input_single_copies(self):
        params = HybridOverlayParams(delta=32, ell=16, num_evolutions=2)
        g = G.random_regular(24, 8, np.random.default_rng(5))
        res = build_hybrid_overlay(g, rng=np.random.default_rng(6), params=params)
        base = res.levels[0]
        # delta/(4*dmax) = 1: exactly one port per incident edge.
        assert (base.real_degree() == 8).all()


class TestQualityAcrossWorkloads:
    @pytest.mark.parametrize(
        "name", ["line", "cycle", "binary_tree", "caterpillar", "double_star"]
    )
    def test_overlay_diameter_small(self, name):
        g = G.make_workload(name, 96, np.random.default_rng(7))
        res = build_hybrid_overlay(g, rng=np.random.default_rng(8))
        adj = res.final_graph.neighbor_sets()
        assert is_connected(adj)
        assert diameter(adj) <= 12
