"""Biconnectivity (Theorem 1.4) tests — differential against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import generators as G
from repro.hybrid.biconnectivity import biconnected_components_hybrid


def nx_truth(graph):
    comps = {
        frozenset(frozenset(e) for e in ({tuple(sorted(e)) for e in c}))
        for c in nx.biconnected_component_edges(graph)
    }
    arts = set(nx.articulation_points(graph))
    bridges = {tuple(sorted(e)) for e in nx.bridges(graph)}
    return comps, arts, bridges


def ours(result):
    comps = {
        frozenset(frozenset(e) for e in comp)
        for comp in result.components.values()
    }
    return comps, result.cut_vertices, result.bridges


CASES = [
    ("barbell", lambda r: G.barbell(8, 3)),
    ("lollipop", lambda r: G.lollipop(7, 8)),
    ("cycle", lambda r: G.cycle_graph(17)),
    ("line", lambda r: G.line_graph(12)),
    ("grid", lambda r: G.grid_2d(5, 5)),
    ("ring_cliques", lambda r: G.ring_of_cliques(4, 5)),
    ("double_star", lambda r: G.double_star(24)),
    ("er", lambda r: G.erdos_renyi_connected(60, 4.5, r)),
    ("er_dense", lambda r: G.erdos_renyi_connected(50, 10.0, r)),
    ("caterpillar", lambda r: G.caterpillar(25)),
]


class TestDifferential:
    @pytest.mark.parametrize("name,make", CASES, ids=[c[0] for c in CASES])
    def test_matches_networkx_bfs_tree(self, name, make):
        g = make(np.random.default_rng(3))
        res = biconnected_components_hybrid(
            g, rng=np.random.default_rng(0), tree_source="bfs"
        )
        assert ours(res) == nx_truth(g)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx_walk_tree(self, seed):
        g = G.erdos_renyi_connected(50, 5.0, np.random.default_rng(seed))
        res = biconnected_components_hybrid(
            g, rng=np.random.default_rng(seed), tree_source="walk"
        )
        assert ours(res) == nx_truth(g)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_many_seeds(self, seed):
        g = G.erdos_renyi_connected(40, 3.5, np.random.default_rng(seed + 50))
        res = biconnected_components_hybrid(
            g, rng=np.random.default_rng(seed), tree_source="bfs"
        )
        assert ours(res) == nx_truth(g)


class TestStructure:
    def test_biconnected_flag(self):
        res = biconnected_components_hybrid(
            G.cycle_graph(12), rng=np.random.default_rng(0), tree_source="bfs"
        )
        assert res.is_biconnected
        res2 = biconnected_components_hybrid(
            G.barbell(5, 2), rng=np.random.default_rng(0), tree_source="bfs"
        )
        assert not res2.is_biconnected

    def test_every_edge_labelled(self):
        g = G.grid_2d(4, 6)
        res = biconnected_components_hybrid(
            g, rng=np.random.default_rng(0), tree_source="bfs"
        )
        assert set(res.edge_component) == {
            (min(a, b), max(a, b)) for a, b in g.edges
        }

    def test_single_edge_graph(self):
        g = G.line_graph(2)
        res = biconnected_components_hybrid(
            g, rng=np.random.default_rng(0), tree_source="bfs"
        )
        assert res.bridges == {(0, 1)}
        assert res.cut_vertices == set()

    def test_disconnected_rejected(self):
        mix, _ = G.component_mixture([G.line_graph(4), G.line_graph(4)])
        with pytest.raises(ValueError):
            biconnected_components_hybrid(mix, tree_source="bfs")

    def test_precomputed_tree_accepted(self):
        from repro.core.bfs import build_bfs_forest
        from repro.core.child_sibling import RootedTree
        from repro.graphs.analysis import adjacency_sets

        g = G.barbell(6, 2)
        bfs = build_bfs_forest(adjacency_sets(g))
        tree = RootedTree(root=bfs.roots[0], parent=bfs.parent.copy())
        res = biconnected_components_hybrid(g, tree=tree)
        assert ours(res) == nx_truth(g)

    def test_bad_tree_source_rejected(self):
        with pytest.raises(ValueError):
            biconnected_components_hybrid(
                G.cycle_graph(6), tree_source="magic"
            )


class TestTarjanVishkinInternals:
    def test_low_high_bounds(self):
        g = G.cycle_graph(10)
        res = biconnected_components_hybrid(
            g, rng=np.random.default_rng(0), tree_source="bfs"
        )
        # low <= label <= high for every node.
        assert (res.low <= res.labels).all()
        assert (res.high >= res.labels).all()

    def test_labels_are_preorder(self):
        g = G.line_graph(8)
        res = biconnected_components_hybrid(
            g, rng=np.random.default_rng(0), tree_source="bfs"
        )
        assert sorted(res.labels.tolist()) == list(range(1, 9))
