"""Degree reduction (edge delegation) tests."""

import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets, connected_components, is_connected
from repro.hybrid.degree_reduction import reduce_degree
from repro.hybrid.spanner import SpannerResult, build_spanner


def spanner_of(graph, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    return build_spanner(graph, rng, **kwargs)


def manual_spanner(out_edges):
    n = len(out_edges)
    return SpannerResult(
        out_edges=[set(t) for t in out_edges],
        active=np.ones(n, dtype=bool),
        added_all=np.zeros(n, dtype=bool),
        shifts=np.zeros(n),
        rounds=0,
    )


class TestDelegationMechanics:
    def test_star_center_delegates(self):
        # Everyone points at node 0: 0 keeps only {0,1}; others chain.
        sp = manual_spanner([set()] + [{0}] * 5)
        red = reduce_degree(sp)
        assert red.adj[0] == {1}
        assert red.adj[3] == {2, 4}
        # Chain edges remember centre 0.
        assert red.delegation[frozenset((2, 3))] == 0
        assert red.delegation[frozenset((1, 2))] == 0
        assert red.delegation[frozenset((0, 1))] is None

    def test_expand_edge(self):
        sp = manual_spanner([set()] + [{0}] * 4)
        red = reduce_degree(sp)
        assert red.expand_edge(2, 3) == [(2, 0), (0, 3)]
        assert red.expand_edge(0, 1) == [(0, 1)]

    def test_genuine_edge_wins_over_delegated(self):
        # Edge {1,2} exists in the spanner AND arises as a chain edge.
        sp = manual_spanner([set(), {2}, set(), {1, 2}])
        # Node 1 -> 2 genuine; node 3 -> {1, 2}; incoming of 2 = {1, 3}.
        red = reduce_degree(sp)
        assert red.delegation[frozenset((1, 2))] is None

    def test_rounds_constant(self):
        sp = manual_spanner([{1}, set()])
        assert reduce_degree(sp).rounds == 2


class TestStructurePreservation:
    @pytest.mark.parametrize("seed", range(4))
    def test_components_preserved(self, seed):
        rng = np.random.default_rng(seed)
        mix, members = G.component_mixture(
            [G.star_graph(30), G.erdos_renyi_connected(50, 8.0, rng)]
        )
        red = reduce_degree(spanner_of(mix, seed))
        comps = connected_components(red.adj)
        assert sorted(map(tuple, comps)) == sorted(map(tuple, members))

    @pytest.mark.parametrize("seed", range(4))
    def test_degree_bound(self, seed):
        n = 200
        g = G.erdos_renyi_connected(n, 20.0, np.random.default_rng(seed))
        red = reduce_degree(spanner_of(g, seed))
        # H degree = O(log n); calibrated allowance 8x log2 n.
        assert red.max_degree() <= 8 * np.log2(n)

    def test_star_degree_collapses(self):
        g = G.star_graph(300)
        red = reduce_degree(spanner_of(g))
        assert red.max_degree() <= 4  # hub degree 299 -> small constant

    @pytest.mark.parametrize("seed", range(4))
    def test_expansions_are_input_edges(self, seed):
        g = G.erdos_renyi_connected(80, 12.0, np.random.default_rng(seed))
        adj = adjacency_sets(g)
        red = reduce_degree(spanner_of(g, seed))
        for key in red.delegation:
            a, b = tuple(key)
            for x, y in red.expand_edge(a, b):
                assert y in adj[x]
