"""Connected components (Theorem 1.2) tests."""

import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets, connected_components
from repro.hybrid.components import (
    ComponentsResult,
    connected_components_hybrid,
    well_formed_forest,
)
from repro.core.bfs import build_bfs_forest


def ground_truth(graph):
    return {
        min(c): sorted(c) for c in connected_components(adjacency_sets(graph))
    }


class TestLabels:
    @pytest.mark.parametrize("seed", range(3))
    def test_mixture_labels_exact(self, seed):
        rng = np.random.default_rng(seed)
        mix, _ = G.component_mixture(
            [
                G.line_graph(30),
                G.cycle_graph(25),
                G.star_graph(40),
                G.erdos_renyi_connected(35, 6.0, rng),
            ]
        )
        res = connected_components_hybrid(mix, rng=rng, m_bound=64)
        assert {k: sorted(v) for k, v in res.components().items()} == ground_truth(mix)

    def test_single_component(self, rng):
        g = G.cycle_graph(50)
        res = connected_components_hybrid(g, rng=rng)
        assert list(res.components()) == [0]

    def test_high_degree_components(self, rng):
        mix, _ = G.component_mixture([G.star_graph(60), G.complete_graph(20)])
        res = connected_components_hybrid(mix, rng=rng)
        assert {k: sorted(v) for k, v in res.components().items()} == ground_truth(mix)

    def test_singleton_components(self, rng):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(5))
        g.add_edge(0, 1)
        res = connected_components_hybrid(g, rng=rng)
        assert set(res.components()) == {0, 2, 3, 4}


def split_only(labels: np.ndarray) -> ComponentsResult:
    """A result carrying just ``labels`` — enough for ``components()``."""
    res = ComponentsResult.__new__(ComponentsResult)
    res.labels = labels
    return res


class TestComponentsSplit:
    """ISSUE 8 satellite: the columnar ``components()`` grouping sort
    replaced a per-element Python loop; its output — values *and* key
    insertion order — is pinned against the legacy loop here."""

    def test_gappy_labels_identical_to_legacy_loop(self):
        # Component-like (label = min member id) but gappy: labels
        # 0, 1, 4, 7 with nothing in between.
        labels = np.array([0, 1, 1, 0, 4, 4, 0, 7, 7, 4], dtype=np.int64)
        legacy: dict[int, list[int]] = {}
        for v, label in enumerate(labels.tolist()):
            legacy.setdefault(label, []).append(v)
        got = split_only(labels).components()
        assert got == legacy
        assert list(got) == list(legacy)  # ascending == first-occurrence order

    def test_arbitrary_labels_values_match_legacy(self):
        # Not component-like: key order differs (ascending vs first
        # occurrence) but memberships are still identical — dict
        # equality ignores order, which is all non-pipeline callers get.
        labels = np.array([7, 3, 3, 7, 0, 11, 0, 7, 11, 0], dtype=np.int64)
        legacy: dict[int, list[int]] = {}
        for v, label in enumerate(labels.tolist()):
            legacy.setdefault(label, []).append(v)
        got = split_only(labels).components()
        assert got == legacy
        assert list(got) == sorted(legacy)

    def test_noncontiguous_single_member_labels(self):
        labels = np.array([2, 0, 2, 5], dtype=np.int64)
        assert split_only(labels).components() == {0: [1], 2: [0, 2], 5: [3]}

    def test_empty_labels(self):
        assert split_only(np.empty(0, dtype=np.int64)).components() == {}

    @pytest.mark.parametrize("seed", range(3))
    def test_random_labels_differential(self, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 9, size=60).astype(np.int64)
        # Legacy key order was first occurrence, not ascending — make the
        # labels "component-like" (label = min member id) as the pipeline
        # guarantees, by remapping each group's label to its first index.
        first = {}
        for v, label in enumerate(labels.tolist()):
            first.setdefault(label, v)
        labels = np.array([first[label] for label in labels.tolist()])
        legacy: dict[int, list[int]] = {}
        for v, label in enumerate(labels.tolist()):
            legacy.setdefault(label, []).append(v)
        got = split_only(labels).components()
        assert got == legacy
        assert list(got) == list(legacy)


class TestForest:
    def test_trees_are_well_formed(self, rng):
        mix, members = G.component_mixture([G.line_graph(40), G.cycle_graph(33)])
        res = connected_components_hybrid(mix, rng=rng)
        assert res.forest.max_degree() <= 3
        for root, wft in res.forest.trees.items():
            size = len([v for v in range(73) if res.forest.root_of[v] == root])
            assert wft.depth() <= int(np.ceil(np.log2(max(2, size)))) + 1

    def test_forest_parent_arrays_consistent(self, rng):
        mix, members = G.component_mixture([G.line_graph(20), G.star_graph(15)])
        res = connected_components_hybrid(mix, rng=rng)
        for v in range(35):
            p = int(res.forest.parent[v])
            # Parent stays within the component.
            assert res.forest.root_of[p] == res.forest.root_of[v]

    def test_well_formed_forest_helper(self):
        mix, _ = G.component_mixture([G.line_graph(10), G.line_graph(12)])
        bfs = build_bfs_forest(adjacency_sets(mix))
        forest = well_formed_forest(bfs)
        assert set(forest.trees) == {0, 10}
        assert forest.max_degree() <= 3


class TestLedger:
    def test_m_bound_shortens_broadcast(self, rng):
        mix, _ = G.component_mixture([G.line_graph(32)] * 4)
        wide = connected_components_hybrid(mix, rng=np.random.default_rng(0))
        tight = connected_components_hybrid(
            mix, rng=np.random.default_rng(0), m_bound=32
        )
        assert tight.spanner.rounds <= wide.spanner.rounds

    def test_ledger_phases_cover_pipeline(self, rng):
        res = connected_components_hybrid(G.cycle_graph(40), rng=rng)
        names = [name for name, *_ in res.ledger.phases]
        assert names[0] == "spanner_broadcast"
        assert "degree_reduction" in names
        assert any(name.startswith("overlay/") for name in names)
        assert "well_forming" in names
