"""Columnar well-formed forest (ISSUE 8): the SoA §4 tail end-to-end.

The acceptance matrix for the columnar well-forming port
(:func:`repro.hybrid.components.well_formed_forest_columns`): bit-for-bit
equality with the per-tree object oracle over ≥ 12 seeds — parents,
roots, per-component trees, Euler tour entry/exit indices, and round
counts — plus the operational coverage the port must not regress:
shard-invariance of the rebuilt forest at ``REPRO_WORKERS`` 1/2/4, the
armed ``REPRO_SANITIZE`` sanitizer, and an engine-identical fault-matrix
row with a crash wave landing mid-rebuild.
"""

import hashlib

import numpy as np
import pytest

from repro import sanitize
from repro.core.bfs import build_bfs_forest
from repro.core.child_sibling import (
    RootedTree,
    to_child_sibling,
    to_child_sibling_columns,
)
from repro.core.euler import (
    euler_tour,
    euler_tour_forest,
    list_rank,
    list_rank_with_finish,
)
from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets
from repro.graphs.portgraph import PortGraph
from repro.hybrid.components import (
    connected_components_hybrid,
    well_formed_forest,
    well_formed_forest_columns,
)
from repro.scenarios import CrashWave, ScenarioSpec
from repro.scenarios.runner import run_churn_rebuild_scenario, tier_invariant_view

MATRIX_SEEDS = range(12)


def mixture(seed: int):
    rng = np.random.default_rng(seed)
    mix, _ = G.component_mixture(
        [
            G.line_graph(20 + seed),
            G.cycle_graph(15 + (seed % 5)),
            G.star_graph(25),
            G.erdos_renyi_connected(30, 5.0, rng),
        ]
    )
    return mix


def forest_input(seed: int):
    return build_bfs_forest(adjacency_sets(mixture(seed)))


class TestChildSiblingColumns:
    @pytest.mark.parametrize("seed", MATRIX_SEEDS)
    def test_matches_per_tree_oracle(self, seed):
        bfs = forest_input(seed)
        cs_parent = to_child_sibling_columns(bfs.parent)
        n = bfs.parent.shape[0]
        for root in sorted(set(bfs.root_of.tolist())):
            nodes = sorted(v for v in range(n) if bfs.root_of[v] == root)
            index = {v: i for i, v in enumerate(nodes)}
            local = RootedTree(
                root=index[root],
                parent=np.array(
                    [index[int(bfs.parent[v])] for v in nodes], dtype=np.int64
                ),
            )
            oracle = to_child_sibling(local)
            for v in nodes:
                assert cs_parent[v] == nodes[int(oracle.parent[index[v]])]

    def test_identity_forest_unchanged(self):
        parent = np.arange(7, dtype=np.int64)
        assert np.array_equal(to_child_sibling_columns(parent), parent)


class TestEulerTourForest:
    @pytest.mark.parametrize("seed", MATRIX_SEEDS)
    def test_entry_exit_match_per_tree_tours(self, seed):
        bfs = forest_input(seed)
        cs_parent = to_child_sibling_columns(bfs.parent)
        tour = euler_tour_forest(cs_parent, bfs.root_of)
        n = cs_parent.shape[0]
        for root in sorted(set(bfs.root_of.tolist())):
            nodes = sorted(v for v in range(n) if bfs.root_of[v] == root)
            index = {v: i for i, v in enumerate(nodes)}
            local = RootedTree(
                root=index[root],
                parent=np.array(
                    [index[int(cs_parent[v])] for v in nodes], dtype=np.int64
                ),
            )
            oracle = euler_tour(local)
            for v in nodes:
                assert tour.first_entry[v] == oracle.first_entry[index[v]]
                assert tour.exit_entry[v] == oracle.exit_entry[index[v]]

    @pytest.mark.parametrize("seed", MATRIX_SEEDS)
    def test_rank_rounds_match_standalone_list_rank(self, seed):
        """One combined Wyllie pass must report, per component, the round
        count the component's standalone tour ranking would have used."""
        bfs = forest_input(seed)
        cs_parent = to_child_sibling_columns(bfs.parent)
        tour = euler_tour_forest(cs_parent, bfs.root_of)
        n = cs_parent.shape[0]
        for root in sorted(set(bfs.root_of.tolist())):
            nodes = [v for v in range(n) if bfs.root_of[v] == root]
            if len(nodes) == 1:
                assert tour.rank_rounds[nodes[0]] == 0
                continue
            m = 2 * (len(nodes) - 1)
            succ = np.arange(1, m + 1, dtype=np.int64)
            succ[-1] = -1
            _, standalone = list_rank(succ)
            assert int(tour.rank_rounds[nodes].max()) == standalone

    def test_single_node_forest_all_sentinels(self):
        parent = np.arange(3, dtype=np.int64)
        tour = euler_tour_forest(parent, np.arange(3, dtype=np.int64))
        assert tour.first_entry.tolist() == [-1, -1, -1]
        assert tour.exit_entry.tolist() == [-1, -1, -1]
        assert tour.rounds == 0

    def test_path_and_star(self):
        # Path 0-1-2-3 (already degree ≤ 3): tour (0,1)(1,2)(2,3)(3,2)(2,1)(1,0).
        path = np.array([0, 0, 1, 2], dtype=np.int64)
        tour = euler_tour_forest(path, np.zeros(4, dtype=np.int64))
        assert tour.first_entry.tolist() == [-1, 0, 1, 2]
        assert tour.exit_entry.tolist() == [-1, 5, 4, 3]
        # Star centred at 0: children visited ascending, each a leaf.
        star = np.zeros(5, dtype=np.int64)
        tour = euler_tour_forest(star, np.zeros(5, dtype=np.int64))
        assert tour.first_entry.tolist() == [-1, 0, 2, 4, 6]
        assert tour.exit_entry.tolist() == [-1, 1, 3, 5, 7]

    def test_root_sentinel_contract(self):
        """``first_entry[root] == exit_entry[root] == -1`` — consumers
        must mask roots out before indexing (docs/contracts.md C6): -1
        silently aliases the last tour position under numpy indexing."""
        parent = np.array([0, 0, 1], dtype=np.int64)
        tour = euler_tour_forest(parent, np.zeros(3, dtype=np.int64))
        assert tour.first_entry[0] == -1 and tour.exit_entry[0] == -1
        positions = np.concatenate([tour.first_entry[1:], tour.exit_entry[1:]])
        assert sorted(positions.tolist()) == list(range(4))


class TestListRankWithFinish:
    def test_finish_rounds_per_element(self):
        succ = np.array([1, 2, 3, -1], dtype=np.int64)
        dist, finish, rounds = list_rank_with_finish(succ)
        plain_dist, plain_rounds = list_rank(succ)
        assert np.array_equal(dist, plain_dist)
        assert rounds == plain_rounds
        assert int(finish.max()) == rounds

    def test_two_lists_finish_independently(self):
        # A 2-chain finishes in round 1; an 8-chain needs 3 rounds.
        succ = np.array([1, -1, 3, 4, 5, 6, 7, 8, 9, -1], dtype=np.int64)
        _, finish, rounds = list_rank_with_finish(succ)
        assert rounds == 3
        assert int(finish[:2].max()) == 1
        assert int(finish[2:].max()) == 3


class TestForestDifferential:
    @pytest.mark.parametrize("seed", MATRIX_SEEDS)
    def test_bit_for_bit_vs_object_oracle(self, seed):
        bfs = forest_input(seed)
        oracle = well_formed_forest(bfs)
        columnar = well_formed_forest_columns(bfs)
        assert np.array_equal(oracle.parent, columnar.parent)
        assert np.array_equal(oracle.root_of, columnar.root_of)
        assert oracle.rounds == columnar.rounds
        assert list(oracle.trees) == list(columnar.trees)
        for root in oracle.trees:
            a, b = oracle.trees[root], columnar.trees[root]
            assert a.tree.root == b.tree.root
            assert np.array_equal(a.tree.parent, b.tree.parent)
            assert a.rounds == b.rounds

    def test_well_formed_properties_hold(self):
        forest = well_formed_forest_columns(forest_input(3))
        assert forest.max_degree() <= 3
        for root, wft in forest.trees.items():
            size = wft.tree.parent.shape[0]
            assert wft.depth() <= int(np.ceil(np.log2(max(2, size)))) + 1
            wft.tree.validate()

    def test_empty_and_singleton_forests(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(4))
        bfs = build_bfs_forest(adjacency_sets(g))
        oracle = well_formed_forest(bfs)
        columnar = well_formed_forest_columns(bfs)
        assert np.array_equal(oracle.parent, columnar.parent)
        assert oracle.rounds == columnar.rounds == 0
        assert list(columnar.trees) == [0, 1, 2, 3]

    def test_lazy_trees_unknown_root_raises(self):
        forest = well_formed_forest_columns(forest_input(0))
        with pytest.raises(KeyError):
            forest.trees[10**9]


def rebuild_sha(workers, monkeypatch) -> str:
    monkeypatch.setenv("REPRO_WORKERS", str(workers))
    graph = PortGraph.ring_with_chords(512, delta=16, chords=2, seed=21)
    result = connected_components_hybrid(
        graph, rng=np.random.default_rng(21), tier="soa"
    )
    return hashlib.sha1(
        result.forest.parent.tobytes() + result.forest.root_of.tobytes()
    ).hexdigest()


class TestOperationalCoverage:
    def test_rebuilt_forest_shard_invariant(self, monkeypatch):
        """The rebuilt-tree SHA is identical at REPRO_WORKERS 1/2/4 —
        sharding the delivery tail must not leak into the forest."""
        shas = {w: rebuild_sha(w, monkeypatch) for w in (1, 2, 4)}
        assert shas[2] == shas[1]
        assert shas[4] == shas[1]

    def test_runs_under_armed_sanitizer(self, monkeypatch):
        """The columnar well-forming feeds sanitized delivery lanes; an
        armed sanitizer must stay silent on the happy path."""
        monkeypatch.setattr(sanitize, "ENABLED", True)
        bfs = forest_input(5)
        oracle = well_formed_forest(bfs)
        columnar = well_formed_forest_columns(bfs)
        assert np.array_equal(oracle.parent, columnar.parent)
        per_node = connected_components_hybrid(
            mixture(5), rng=np.random.default_rng(5), m_bound=64
        )
        sanitized = connected_components_hybrid(
            mixture(5), rng=np.random.default_rng(5), m_bound=64, tier="soa"
        )
        assert np.array_equal(per_node.labels, sanitized.labels)
        assert np.array_equal(per_node.forest.parent, sanitized.forest.parent)

    def test_fault_matrix_row_engine_identical(self):
        """Crash wave mid-rebuild: the churn-rebuild scenario row (minus
        tier/wall-clock) is identical across hybrid tiers."""
        graph = PortGraph.ring_with_chords(256, delta=16, chords=2, seed=13)
        spec = ScenarioSpec(
            name="rebuild/churn10",
            crashes=(CrashWave(round_no=2, fraction=0.1),),
            fault_seed=1,
        )
        rows = {
            tier: run_churn_rebuild_scenario(graph, spec, seed=0, tier=tier)
            for tier in ("object", "soa")
        }
        assert tier_invariant_view(rows["object"]) == tier_invariant_view(rows["soa"])
        for row in rows.values():
            assert row["labels_match_ground_truth"]
