"""Spanning tree via walk unwinding (Theorem 1.3) tests."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets
from repro.hybrid.spanning_tree import spanning_tree_hybrid


def assert_valid_spanning_tree(graph, result):
    n = graph.number_of_nodes()
    gadj = adjacency_sets(graph)
    # Every tree edge is a G edge.
    for a, b in result.tree_edges:
        assert b in gadj[a], f"edge ({a},{b}) not in G"
    # n-1 edges forming a connected acyclic graph on all nodes.
    t = nx.Graph()
    t.add_nodes_from(range(n))
    t.add_edges_from(result.tree_edges)
    assert t.number_of_edges() == n - 1
    assert nx.is_tree(t)
    # Parent array consistent with the edge set.
    for v in range(n):
        p = int(result.parent[v])
        if v == result.root:
            assert p == v
        else:
            assert (min(v, p), max(v, p)) in result.tree_edges


class TestCorrectness:
    @pytest.mark.parametrize(
        "make,seed",
        [
            (lambda r: G.line_graph(60), 0),
            (lambda r: G.cycle_graph(48), 1),
            (lambda r: G.grid_2d(7, 7), 2),
            (lambda r: G.barbell(15, 4), 3),
            (lambda r: G.erdos_renyi_connected(80, 8.0, r), 4),
            (lambda r: G.random_tree(70, r), 5),
        ],
        ids=["line", "cycle", "grid", "barbell", "er", "tree"],
    )
    def test_valid_spanning_tree(self, make, seed):
        rng = np.random.default_rng(seed)
        g = make(rng)
        result = spanning_tree_hybrid(g, rng=np.random.default_rng(seed + 100))
        assert_valid_spanning_tree(g, result)

    def test_high_degree_uses_spanner_route(self):
        g = G.star_graph(120)
        result = spanning_tree_hybrid(g, rng=np.random.default_rng(6))
        assert_valid_spanning_tree(g, result)
        names = [name for name, *_ in result.ledger.phases]
        assert "spanner_broadcast" in names

    def test_low_degree_skips_spanner(self):
        g = G.cycle_graph(32)
        result = spanning_tree_hybrid(g, rng=np.random.default_rng(7))
        names = [name for name, *_ in result.ledger.phases]
        assert "spanner_broadcast" not in names

    def test_force_spanner_flag(self):
        g = G.cycle_graph(32)
        result = spanning_tree_hybrid(
            g, rng=np.random.default_rng(8), force_spanner=True
        )
        assert_valid_spanning_tree(g, result)

    def test_disconnected_rejected(self):
        mix, _ = G.component_mixture([G.line_graph(5), G.line_graph(5)])
        with pytest.raises(ValueError, match="connected"):
            spanning_tree_hybrid(mix, rng=np.random.default_rng(9))


class TestStreamBehaviour:
    def test_occurrence_counts_cover_all_nodes(self):
        g = G.cycle_graph(40)
        result = spanning_tree_hybrid(g, rng=np.random.default_rng(10))
        assert (result.occurrences >= 1).all()
        assert result.stream_steps >= 40 - 1

    def test_budget_exceeded_raises(self):
        from repro.hybrid.spanning_tree import UnwindBudgetExceeded

        g = G.line_graph(60)
        with pytest.raises(UnwindBudgetExceeded):
            spanning_tree_hybrid(
                g, rng=np.random.default_rng(11), max_stream_steps=10
            )

    def test_deterministic_given_seed(self):
        g = G.grid_2d(6, 6)
        r1 = spanning_tree_hybrid(g, rng=np.random.default_rng(12))
        r2 = spanning_tree_hybrid(g, rng=np.random.default_rng(12))
        assert r1.tree_edges == r2.tree_edges


class TestLedger:
    def test_capacity_reflects_trace_annotation(self):
        g = G.cycle_graph(40)
        result = spanning_tree_hybrid(g, rng=np.random.default_rng(13))
        # Theorem 1.3 charges O(log^5 n)-scale capacity for traces; it
        # must dominate the plain overlay capacity.
        assert result.ledger.max_global_capacity >= (
            result.overlay.params.delta * result.overlay.params.ell
        )
