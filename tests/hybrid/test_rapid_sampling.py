"""Rapid sampling (Lemma 4.2) tests: stitching mechanics and distribution."""

import numpy as np
import pytest

from repro.core.benign import make_benign
from repro.core.params import ExpanderParams
from repro.core.walks import run_token_walks
from repro.graphs import generators as G
from repro.graphs.portgraph import SELF_LOOP
from repro.hybrid.rapid_sampling import _pair_tokens, stitched_walks


PARAMS = ExpanderParams(delta=32, lam=2, ell=8, num_evolutions=1)


@pytest.fixture
def cycle_pg():
    pg, _ = make_benign(G.cycle_graph(10), PARAMS)
    return pg


class TestPairing:
    def test_pairs_are_at_same_node(self, rng):
        positions = np.array([0, 0, 0, 0, 1, 1, 2])
        reds, blues = _pair_tokens(positions, rng)
        assert len(reds) == len(blues) == 3  # two pairs at 0, one at 1
        for r, b in zip(reds, blues):
            assert positions[r] == positions[b]

    def test_odd_token_dropped(self, rng):
        positions = np.array([5, 5, 5])
        reds, blues = _pair_tokens(positions, rng)
        assert len(reds) == 1

    def test_red_blue_disjoint(self, rng):
        positions = np.zeros(20, dtype=np.int64)
        reds, blues = _pair_tokens(positions, rng)
        assert len(set(reds.tolist()) & set(blues.tolist())) == 0

    def test_empty(self, rng):
        reds, blues = _pair_tokens(np.empty(0, dtype=np.int64), rng)
        assert reds.size == 0 and blues.size == 0


class TestStitching:
    def test_target_length_validation(self, cycle_pg, rng):
        with pytest.raises(ValueError):
            stitched_walks(cycle_pg, 4, target_length=6, rng=rng)  # 6 != 2*2^k
        with pytest.raises(ValueError):
            stitched_walks(cycle_pg, 4, target_length=1, rng=rng)

    def test_rounds_logarithmic_in_length(self, cycle_pg, rng):
        res = stitched_walks(cycle_pg, 64, target_length=32, rng=rng)
        assert res.rounds == 2 + 4  # 2 plain steps + log2(16) stitches
        assert res.length == 32

    def test_survivor_count_scales(self, cycle_pg, rng):
        tokens = 40
        res = stitched_walks(cycle_pg, tokens, target_length=16, rng=rng)
        expected = 10 * tokens * 2 // 16  # n * tokens * s0 / ell
        assert res.num_tokens == pytest.approx(expected, rel=0.4)

    def test_traces_consistent(self, cycle_pg, rng):
        res = stitched_walks(
            cycle_pg, 32, target_length=8, rng=rng, record_traces=True
        )
        assert res.node_traces.shape == (res.num_tokens, 9)
        assert res.edge_traces.shape == (res.num_tokens, 8)
        assert (res.node_traces[:, 0] == res.origins).all()
        assert (res.node_traces[:, -1] == res.endpoints).all()

    def test_trace_steps_are_graph_moves(self, cycle_pg, rng):
        res = stitched_walks(
            cycle_pg, 32, target_length=8, rng=rng, record_traces=True
        )
        for k in range(min(res.num_tokens, 50)):
            for step in range(8):
                a = int(res.node_traces[k, step])
                b = int(res.node_traces[k, step + 1])
                eid = int(res.edge_traces[k, step])
                if eid == SELF_LOOP:
                    assert a == b
                else:
                    # Edge id must connect a and b on the base graph.
                    found = False
                    for i in range(cycle_pg.delta):
                        if (
                            cycle_pg.port_edge_ids[a, i] == eid
                            and cycle_pg.ports[a, i] == b
                        ):
                            found = True
                    assert found


class TestDistributionEquivalence:
    def test_stitched_matches_plain_walks(self, rng):
        # Lemma 4.2: stitched endpoints follow the plain ell-step walk
        # distribution.  Compare conditional on one origin by TV distance.
        pg, _ = make_benign(G.cycle_graph(12), PARAMS)
        ell = 8
        samples = 50_000
        plain = run_token_walks(
            pg,
            tokens_per_node=0,
            length=ell,
            rng=rng,
            starts=np.zeros(samples, dtype=np.int64),
        )
        # Survival is ~2/ell per token: 8000 tokens -> ~2000 survivors
        # per origin.
        stitched = stitched_walks(pg, 8000, target_length=ell, rng=rng)
        mask = stitched.origins == 0
        assert mask.sum() > 1200
        p = np.bincount(plain.endpoints, minlength=12) / samples
        q = np.bincount(stitched.endpoints[mask], minlength=12) / mask.sum()
        tv = 0.5 * np.abs(p - q).sum()
        assert tv < 0.05
