"""E10 — Theorem 1.4: biconnected components, cut vertices, bridges.

Paper claim: the Tarjan–Vishkin adaptation computes the biconnected
components (plus articulation points and bridges) of any connected graph
in ``O(log n)`` hybrid rounds.

Measured here: exact agreement with networkx ground truth across a
workload battery, and ledger round totals scaling logarithmically.
"""

import math

import networkx as nx

from _common import run_once, seeded
from repro.experiments.harness import Table
from repro.graphs import generators as G
from repro.hybrid.biconnectivity import biconnected_components_hybrid


CASES = [
    ("barbell", lambda r: G.barbell(12, 4)),
    ("lollipop", lambda r: G.lollipop(10, 14)),
    ("ring_cliques", lambda r: G.ring_of_cliques(6, 6)),
    ("grid", lambda r: G.grid_2d(8, 8)),
    ("er_sparse", lambda r: G.erdos_renyi_connected(100, 4.0, r)),
    ("er_dense", lambda r: G.erdos_renyi_connected(100, 12.0, r)),
    ("double_star", lambda r: G.double_star(60)),
]


def bench_e10_differential(benchmark):
    def experiment():
        table = Table(
            "E10: biconnectivity vs networkx (Theorem 1.4)",
            ["workload", "n", "#bcc", "#cuts", "#bridges", "match", "rounds"],
        )
        rows = []
        for name, make in CASES:
            g = make(seeded(1))
            res = biconnected_components_hybrid(
                g, rng=seeded(2), tree_source="bfs"
            )
            truth_comps = {
                frozenset(frozenset(tuple(sorted(e))) for e in comp)
                for comp in nx.biconnected_component_edges(g)
            }
            ours_comps = {
                frozenset(frozenset(e) for e in comp)
                for comp in res.components.values()
            }
            match = (
                ours_comps == truth_comps
                and res.cut_vertices == set(nx.articulation_points(g))
                and res.bridges == {tuple(sorted(e)) for e in nx.bridges(g)}
            )
            table.add(
                name,
                g.number_of_nodes(),
                len(res.components),
                len(res.cut_vertices),
                len(res.bridges),
                match,
                res.ledger.total_rounds,
            )
            rows.append((name, match))
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    assert all(match for _name, match in rows)


def bench_e10_rounds_scale(benchmark):
    def experiment():
        table = Table(
            "E10b: hybrid rounds vs n (walk-based spanning tree)",
            ["n", "rounds", "rounds/log2n"],
        )
        data = []
        for n in (48, 96, 192):
            g = G.erdos_renyi_connected(n, 6.0, seeded(n))
            res = biconnected_components_hybrid(
                g, rng=seeded(n + 1), tree_source="walk"
            )
            rounds = res.ledger.total_rounds
            table.add(n, rounds, rounds / math.log2(n))
            data.append((n, rounds))
        table.show()
        return data

    data = run_once(benchmark, experiment)
    ratios = [r / math.log2(n) for n, r in data]
    assert max(ratios) <= 3 * min(ratios)
