"""E4 — Theorem 1.1: O(log n) messages/round/node, O(log² n) total/node.

Paper claim: in the NCC0 model each node sends and receives at most
``O(log n)`` messages per round, and over the whole construction each
node sends ``O(log² n)`` messages, w.h.p.

Measured here: the message-level protocol engine under real capacity
enforcement — peak per-round loads, whole-run per-node totals (normalised
by ``log² n``), and the drop counter (zero ⇒ the w.h.p. congestion bound
held in vivo).
"""

import math

from _common import run_once, seeded
from repro.core.params import ExpanderParams
from repro.core.protocol import run_protocol_expander
from repro.experiments.harness import Table
from repro.graphs import generators as G


def bench_e4_message_bounds(benchmark):
    def experiment():
        table = Table(
            "E4: NCC0 message complexity (Theorem 1.1)",
            ["n", "delta", "peak/round", "total/node", "total/log2^2(n)", "drops"],
        )
        rows = []
        for n in (32, 64, 128):
            params = ExpanderParams.recommended(n, ell=16).with_evolutions(
                math.ceil(math.log2(n)) + 2
            )
            result = run_protocol_expander(
                G.line_graph(n), params=params, rng=seeded(n)
            )
            metrics = result.metrics
            peak = max(
                metrics.max_sent_per_round, metrics.max_received_per_round
            )
            total = metrics.max_total_sent_by_any_node()
            norm = total / math.log2(n) ** 2
            table.add(n, params.delta, peak, total, norm, metrics.total_drops)
            rows.append((n, params.delta, peak, total, norm, metrics.total_drops))
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    norms = []
    for n, delta, peak, total, norm, drops in rows:
        assert peak <= delta, "per-round load exceeded Theta(log n) capacity"
        assert drops == 0, "network dropped messages at calibrated parameters"
        norms.append(norm)
    # O(log^2 n) totals: normalised values bounded across the sweep.
    assert max(norms) <= 3 * min(norms)
