"""S4 — adversarial scenario scaling: the columnar synchroniser story.

ISSUE 4's acceptance bar.  The footnote-2 synchroniser used to be the
last per-node-only surface of the stack: delay/churn experiments paid one
Python call per node per round, capping adversarial sweeps at batch
scale.  The SoA synchroniser (`repro.scenarios.soa_sync`) holds the whole
population's in-flight traffic in one flat delay queue (release-time
column + stable bucketing), so a delayed round costs the same one call as
a synchronous SoA round.

Measured here, on the ring-plus-chords stand-in shared with S2/S3:

- an exact **≥ 12-seed equivalence matrix** before anything is timed:
  the SoA synchroniser is bit-for-bit equal to the per-node synchroniser
  *and* to the synchronous execution under the same seed (tree, metrics,
  rounds, delay observations);
- wall-clock of the per-node synchroniser (batch nodes through
  ``run_with_asynchrony``) vs. the SoA synchroniser on the same delayed
  rooting workload — both on vectorized delivery, so the synchroniser
  is the only variable — with a **hard assert**: SoA ≥ 5× at
  ``n = 10⁴``;
- a delay-scenario run completing at ``n = 10⁵`` on the SoA tier (a
  scale the per-node synchroniser cannot reach in reasonable time);
- a named delay × drop × churn scenario grid executed on **all three
  tiers** with identical fault streams per seed (differential check via
  ``tier_invariant_view``), written as machine-readable JSON.

Run standalone:
``PYTHONPATH=src python benchmarks/bench_s4_scenario_scaling.py``
(``--smoke`` for the ~60 s CI variant — same hard assert; ``--engine``
restricts the timed stacks; ``--json PATH`` sets the result file).
"""

import argparse
import math
import sys
import time

import numpy as np

from repro.core.protocol_tree import run_rooting_under_asynchrony
from repro.core.soa_rooting import run_soa_rooting
from repro.experiments.harness import Table, add_engine_argument, tier_filter
from repro.graphs.portgraph import PortGraph
from repro.scenarios import SCENARIO_GRIDS, ScenarioRunner
from repro.scenarios.runner import tier_invariant_view

#: The synchronisers this bench times — there is no legacy-engine stack
#: here (the SoA tier requires vectorized delivery), so the restriction
#: flag rejects ``legacy`` loudly instead of silently timing nothing.
SYNCHRONISER_CHOICES = ("vectorized", "soa")
FULL_SIZES = (2_000, 10_000, 30_000)
SMOKE_SIZES = (2_000, 10_000)
SOA_ONLY_DELAY_N = 100_000
ASSERT_N = 10_000
ASSERT_FACTOR = 5.0
MAX_DELAY = 4
DELTA = 16
NUM_CHORD_SETS = 2
EQUIVALENCE_SEEDS = 12
GRID_N = 512
GRID_SEEDS = (0, 1)


def overlay_like_graph(n: int, seed: int) -> PortGraph:
    """The S2/S3 ring-plus-chords family (shared in PortGraph)."""
    return PortGraph.ring_with_chords(n, delta=DELTA, chords=NUM_CHORD_SETS, seed=seed)


def _flood_rounds(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n)))) + 8


def _time(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_equivalence(seeds: int = EQUIVALENCE_SEEDS) -> None:
    """SoA synchroniser ≡ per-node synchroniser ≡ synchronous run,
    bit-for-bit, over a seed matrix (the ISSUE 4 acceptance equality)."""
    for seed in range(seeds):
        n = 96 + 16 * (seed % 4)
        graph = overlay_like_graph(n, seed=n + seed)
        fr = _flood_rounds(n)
        sync = run_soa_rooting(graph, fr, rng=np.random.default_rng(seed))
        per_node, rep_b = run_rooting_under_asynchrony(
            graph, fr, max_delay=MAX_DELAY, rng=np.random.default_rng(seed), tier="batch"
        )
        soa, rep_s = run_rooting_under_asynchrony(
            graph, fr, max_delay=MAX_DELAY, rng=np.random.default_rng(seed), tier="soa"
        )
        for name, run in (("per-node-sync", per_node), ("soa-sync", soa)):
            assert run.root == sync.root, f"{name} disagrees on the root (seed {seed})"
            assert np.array_equal(run.parent, sync.parent), f"{name} parents (seed {seed})"
            assert np.array_equal(run.depth, sync.depth), f"{name} depths (seed {seed})"
            assert run.metrics.as_dict() == sync.metrics.as_dict(), (
                f"{name} metrics (seed {seed})"
            )
            assert run.rounds == sync.rounds, f"{name} rounds (seed {seed})"
        # The two synchronisers must also agree on the asynchronous story.
        assert (rep_b.logical_rounds, rep_b.elapsed_time_units, rep_b.observed_max_delay, rep_b.converged) == (
            rep_s.logical_rounds, rep_s.elapsed_time_units, rep_s.observed_max_delay, rep_s.converged,
        ), f"synchroniser reports diverge (seed {seed})"


def run_experiment(smoke: bool, engine_filter: str | None = None):
    check_equivalence()
    sizes = SMOKE_SIZES if smoke else FULL_SIZES

    table = Table(
        "S4: synchroniser scaling (delayed min-id flooding + BFS, max_delay=4)",
        ["n", "flood_rounds", "synchroniser", "seconds", "msgs/sec", "dilation"],
    )
    rows = {}

    def record(n, stack, seconds, result, report):
        rate = result.metrics.total_messages / seconds if seconds > 0 else float("inf")
        table.add(n, _flood_rounds(n), stack, round(seconds, 3), int(rate), report.dilation)
        rows[(n, stack)] = seconds

    for n in sizes:
        graph = overlay_like_graph(n, seed=n)
        fr = _flood_rounds(n)
        repeats = 1 if smoke else 2

        if engine_filter in (None, "soa"):
            result, report = run_rooting_under_asynchrony(
                graph, fr, max_delay=MAX_DELAY, rng=np.random.default_rng(1), tier="soa"
            )
            seconds = _time(
                lambda: run_rooting_under_asynchrony(
                    graph, fr, max_delay=MAX_DELAY, rng=np.random.default_rng(1), tier="soa"
                ),
                repeats,
            )
            record(n, "soa", seconds, result, report)

        if engine_filter in (None, "vectorized"):
            result, report = run_rooting_under_asynchrony(
                graph, fr, max_delay=MAX_DELAY, rng=np.random.default_rng(1), tier="batch"
            )
            # Same best-of-N as the SoA stack: the asserted ratio stays an
            # engine-controlled comparison, not best-of-2 vs best-of-1.
            seconds = _time(
                lambda: run_rooting_under_asynchrony(
                    graph, fr, max_delay=MAX_DELAY, rng=np.random.default_rng(1), tier="batch"
                ),
                repeats,
            )
            record(n, "per-node", seconds, result, report)

    # The n = 10⁵ delay-scenario demonstration: completing IS the check
    # (the runner validates the tree spans with a unique root).
    if engine_filter in (None, "soa"):
        n = SOA_ONLY_DELAY_N
        graph = overlay_like_graph(n, seed=n)
        fr = _flood_rounds(n)
        start = time.perf_counter()
        result, report = run_rooting_under_asynchrony(
            graph, fr, max_delay=MAX_DELAY, rng=np.random.default_rng(1), tier="soa"
        )
        record(n, "soa", time.perf_counter() - start, result, report)
        assert result.metrics.total_drops == 0
        assert report.converged

    table.show()

    speedup = None
    if engine_filter is None:
        t_soa = rows[(ASSERT_N, "soa")]
        t_per_node = rows[(ASSERT_N, "per-node")]
        speedup = t_per_node / t_soa
        print(
            f"n={ASSERT_N}: SoA-synchroniser (engine-controlled) speedup {speedup:.1f}x"
        )
        assert speedup >= ASSERT_FACTOR, (
            f"SoA synchroniser only {speedup:.1f}x faster than the per-node "
            f"synchroniser at n={ASSERT_N} (need >= {ASSERT_FACTOR}x)"
        )
    return rows, speedup


def run_scenario_grid(grid: str = "smoke") -> dict:
    """The named grid on all three tiers + the identical-fault-stream
    differential check (ISSUE 4's ScenarioRunner acceptance)."""
    runner = ScenarioRunner(
        sizes=(GRID_N,), seeds=GRID_SEEDS, tiers=("object", "batch", "soa")
    )
    payload = runner.run_grid(grid)
    cells: dict[tuple, list[dict]] = {}
    for row in payload["rows"]:
        key = (row["scenario"]["name"], row["n"], row["seed"])
        cells.setdefault(key, []).append(row)
    for key, tier_rows in cells.items():
        views = [tier_invariant_view(r) for r in tier_rows]
        assert all(v == views[0] for v in views[1:]), (
            f"tiers diverge under identical fault streams: {key}"
        )
    converged = sum(r["converged"] for r in payload["rows"])
    print(
        f"scenario grid '{payload['grid']}': {len(payload['rows'])} cells on "
        f"{len(payload['tiers'])} tiers, {converged} converged, "
        f"tier-differential check passed"
    )
    return payload


def bench_s4_scenario_scaling(benchmark):
    from _common import run_once

    run_once(benchmark, lambda: run_experiment(smoke=False))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="~60s CI variant (same 5x hard assert)"
    )
    parser.add_argument(
        "--grid",
        default="smoke",
        choices=sorted(SCENARIO_GRIDS),
        help="named scenario grid to execute",
    )
    parser.add_argument(
        "--json",
        default="bench_s4_results.json",
        help="path for the machine-readable results payload",
    )
    add_engine_argument(parser, choices=SYNCHRONISER_CHOICES)
    args = parser.parse_args(argv)
    engine_filter = tier_filter("engine", args.engine, choices=SYNCHRONISER_CHOICES)
    rows, speedup = run_experiment(smoke=args.smoke, engine_filter=engine_filter)
    grid_payload = run_scenario_grid(args.grid)
    from _common import bench_payload, write_bench_json

    payload = bench_payload(
        "s4_scenario_scaling",
        config={
            "smoke": args.smoke,
            "engine_filter": engine_filter,
            "max_delay": MAX_DELAY,
        },
        rows=[
            {"n": n, "synchroniser": stack, "seconds": round(secs, 4)}
            for (n, stack), secs in sorted(rows.items())
        ],
        checks={
            "soa_speedup_at_assert_n": round(speedup, 2) if speedup else None,
        },
        extra={"grid": grid_payload},
    )
    write_bench_json(args.json, payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
