"""S5 — columnar hybrid §4 pipeline scaling: the SoA spanner story.

ISSUE 5's acceptance bar.  The §4 pipeline (Elkin–Neiman spanner → edge
delegation → hybrid ``CreateExpander`` → flood/BFS/well-forming) used to
run on per-node ``list[set]``/``dict`` structures, capping churn-rebuild
loops at small ``n``.  The columnar port (`repro.hybrid.soa_pipeline`)
runs the spanner broadcast as a real :class:`SoAProtocolClass` population
through the shared ``_deliver_flat`` delivery tail and everything else as
flat column transforms — bit-for-bit equal to the per-node path.

Measured here, on a ring-plus-chords family dense enough that the
broadcast dominates:

- an exact **≥ 12-seed equivalence matrix** before anything is timed:
  labels, forests, overlay port arrays, and token-congestion ledger
  phases identical across tiers;
- wall-clock of the **ported stages** (spanner, degree reduction,
  flood + BFS tail) per tier — the hybrid evolutions in between run the
  identical array builder on both tiers, so the ported stages are the
  engine-controlled comparison — with a **hard assert**: SoA ≥ 10× at
  ``n = 10⁴`` (≥ 5× in ``--smoke``, same shape as S3's smoke relief);
- wall-clock of the **well-forming tail** (ISSUE 8: child–sibling →
  Euler tour → heap rebuild, per-tree objects vs
  :func:`~repro.hybrid.components.well_formed_forest_columns`) with its
  own hard assert: SoA ≥ 5× at ``n = 10⁴`` in smoke and full alike;
- a scenario-driven churn-rebuild sweep through
  :class:`~repro.scenarios.runner.ScenarioRunner`'s ``churn-rebuild``
  workload, completing at ``n = 10⁶`` on the SoA tier (``n = 2·10⁴`` in
  smoke) with ground-truth label verification per cell.

Run standalone:
``PYTHONPATH=src python benchmarks/bench_s5_hybrid_scaling.py``
(``--smoke`` for the ~60 s CI variant; ``--hybrid`` restricts the timed
tiers, also via ``REPRO_HYBRID``; ``--workers N`` shards the SoA delivery
tail of the pipeline networks via ``REPRO_WORKERS`` — bit-for-bit
identical results at every count; ``--json PATH`` sets the result file;
``--trace PATH`` runs the ISSUE 9 satellite: a traced/untraced pipeline
pair plus a traced churn-rebuild cell, invariance-checked, with the
``trace/v1`` artifact path and overhead recorded in the JSON checks).
"""

import argparse
import sys
import time

import numpy as np

from repro.core.bfs import build_bfs_forest
from repro.experiments.harness import (
    HYBRID_CHOICES,
    Table,
    add_workers_argument,
    select_workers,
    tier_filter,
)
from repro.net.shard import effective_workers
from repro.runtime import RunContext
from repro.graphs import generators as G
from repro.graphs.portgraph import PortGraph
from repro.hybrid.components import (
    connected_components_hybrid,
    well_formed_forest,
    well_formed_forest_columns,
)
from repro.hybrid.degree_reduction import reduce_degree
from repro.hybrid.overlay import HybridOverlayParams, build_hybrid_overlay
from repro.hybrid.soa_pipeline import (
    build_bfs_forest_soa,
    build_hybrid_overlay_soa,
    build_spanner_soa,
    reduce_degree_soa,
)
from repro.hybrid.spanner import build_spanner
from repro.scenarios import CrashWave, ScenarioSpec
from repro.scenarios.runner import ScenarioRunner

FULL_SIZES = (2_000, 10_000, 30_000)
SMOKE_SIZES = (2_000, 10_000)
ASSERT_N = 10_000
ASSERT_FACTOR = 10.0
SMOKE_ASSERT_FACTOR = 5.0
#: ISSUE 8 acceptance: columnar well-forming (child–sibling → Euler tour
#: → heap rebuild) ≥ 5× the per-tree object path at n = 10⁴, in smoke
#: and full alike — the stage is engine-controlled (same BFS forest in).
WELLFORM_ASSERT_FACTOR = 5.0
REBUILD_N_FULL = 1_000_000
REBUILD_N_SMOKE = 20_000
EQUIVALENCE_SEEDS = 12
DELTA = 16
NUM_CHORD_SETS = 4
#: Calibrated light overlay (bit-for-bit identical across tiers like any
#: other params): enough evolutions to keep ring-with-chords survivor
#: components connected at n = 10⁵, cheap enough for a sweep.
OVERLAY_PARAMS = HybridOverlayParams(delta=64, ell=16, num_evolutions=3)


def hybrid_input_graph(n: int, seed: int) -> PortGraph:
    """Ring plus four chord sets (degree ≈ 10): dense enough that the
    spanner broadcast — the per-node hot spot — dominates the stages."""
    return PortGraph.ring_with_chords(
        n, delta=DELTA, chords=NUM_CHORD_SETS, seed=seed
    )


def check_equivalence(seeds: int = EQUIVALENCE_SEEDS) -> None:
    """Columnar ≡ per-node over component mixtures (the ISSUE 5
    acceptance equality: edge sets, degrees, ledger totals)."""
    for seed in range(seeds):
        rng = np.random.default_rng(seed)
        mix, _ = G.component_mixture(
            [
                G.line_graph(20 + seed),
                G.cycle_graph(17),
                G.star_graph(24),
                G.erdos_renyi_connected(30, 5.0, rng),
            ]
        )
        per_node = connected_components_hybrid(
            mix, rng=np.random.default_rng(seed), m_bound=64
        )
        columnar = connected_components_hybrid(
            mix, rng=np.random.default_rng(seed), m_bound=64, tier="soa"
        )
        assert np.array_equal(per_node.labels, columnar.labels), f"labels (seed {seed})"
        assert np.array_equal(
            per_node.forest.parent, columnar.forest.parent
        ), f"forest (seed {seed})"
        assert np.array_equal(
            per_node.overlay.final_graph.ports, columnar.overlay.final_graph.ports
        ), f"overlay ports (seed {seed})"
        assert np.array_equal(
            per_node.overlay.final_graph.real_degree(),
            columnar.overlay.final_graph.real_degree(),
        ), f"overlay degrees (seed {seed})"
        assert per_node.ledger.phases == columnar.ledger.phases, f"ledger (seed {seed})"
    print(f"equivalence matrix: {seeds} seeds bit-for-bit across hybrid tiers")


def run_stages(tier: str, graph: PortGraph, seed: int, ctx: RunContext | None = None):
    """One pipeline run with per-stage wall clock.

    Returns ``(stage_seconds, shared_seconds, wellform_seconds,
    fingerprint)`` where ``stage_seconds`` covers the *ported* stages
    (spanner, reduction, flood + BFS), ``shared_seconds`` the hybrid
    evolutions (the identical array builder on both tiers), and
    ``wellform_seconds`` the §4 well-forming tail (child–sibling →
    Euler tour → heap rebuild) on the tier's own forest path.
    """
    rng = np.random.default_rng(seed)
    t0 = time.perf_counter()
    if tier == "object":
        spanner = build_spanner(graph, rng)
        t1 = time.perf_counter()
        reduced = reduce_degree(spanner)
        t2 = time.perf_counter()
        overlay = build_hybrid_overlay(reduced.adj, rng=rng, params=OVERLAY_PARAMS)
        t3 = time.perf_counter()
        bfs = build_bfs_forest(overlay.final_graph)
        t4 = time.perf_counter()
        forest = well_formed_forest(bfs)
    else:
        spanner = build_spanner_soa(graph, rng, ctx=ctx)
        t1 = time.perf_counter()
        reduced = reduce_degree_soa(spanner)
        t2 = time.perf_counter()
        overlay = build_hybrid_overlay_soa(reduced, rng=rng, params=OVERLAY_PARAMS)
        t3 = time.perf_counter()
        bfs = build_bfs_forest_soa(overlay.final_graph)
        t4 = time.perf_counter()
        forest = well_formed_forest_columns(bfs)
    t5 = time.perf_counter()
    stage_seconds = (t1 - t0) + (t2 - t1) + (t4 - t3)
    fingerprint = (
        overlay.final_graph.ports.tobytes(),
        bfs.parent.tobytes(),
        forest.parent.tobytes(),
        forest.rounds,
        tuple(overlay.ledger.phases),
    )
    return stage_seconds, t3 - t2, t5 - t4, fingerprint


def run_experiment(
    smoke: bool,
    hybrid_filter: str | None = None,
    ctx: RunContext | None = None,
):
    check_equivalence()
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    repeats = 1 if smoke else 2

    table = Table(
        "S5: hybrid §4 pipeline — ported stages (spanner + reduction + BFS tail)",
        ["n", "tier", "stage_seconds", "shared_evolutions", "wellform_seconds"],
    )
    rows = {}
    wellform_rows = {}
    for n in sizes:
        graph = hybrid_input_graph(n, seed=n)
        fingerprints = {}
        for tier in HYBRID_CHOICES:
            if hybrid_filter is not None and tier != hybrid_filter:
                continue
            best = None
            for _ in range(repeats):
                stage_s, shared_s, wellform_s, fp = run_stages(
                    tier, graph, seed=1, ctx=ctx
                )
                if best is None or stage_s < best[0]:
                    best = (stage_s, shared_s, wellform_s, fp)
            stage_s, shared_s, wellform_s, fp = best
            rows[(n, tier)] = stage_s
            wellform_rows[(n, tier)] = wellform_s
            fingerprints[tier] = fp
            table.add(
                n, tier, round(stage_s, 3), round(shared_s, 3), round(wellform_s, 3)
            )
        if len(fingerprints) == 2:
            assert fingerprints["object"] == fingerprints["soa"], (
                f"tiers diverged at n={n} — the timing is not engine-controlled"
            )
    table.show()

    speedup = None
    wellform_speedup = None
    if hybrid_filter is None:
        t_object = rows[(ASSERT_N, "object")]
        t_soa = rows[(ASSERT_N, "soa")]
        speedup = t_object / t_soa
        factor = SMOKE_ASSERT_FACTOR if smoke else ASSERT_FACTOR
        print(
            f"n={ASSERT_N}: columnar hybrid stages (engine-controlled) "
            f"speedup {speedup:.1f}x"
        )
        assert speedup >= factor, (
            f"columnar hybrid stages only {speedup:.1f}x faster than per-node "
            f"at n={ASSERT_N} (need >= {factor}x)"
        )
        wellform_speedup = (
            wellform_rows[(ASSERT_N, "object")] / wellform_rows[(ASSERT_N, "soa")]
        )
        print(
            f"n={ASSERT_N}: columnar well-forming (engine-controlled) "
            f"speedup {wellform_speedup:.1f}x"
        )
        assert wellform_speedup >= WELLFORM_ASSERT_FACTOR, (
            f"columnar well-forming only {wellform_speedup:.1f}x faster than "
            f"per-tree at n={ASSERT_N} (need >= {WELLFORM_ASSERT_FACTOR}x)"
        )
    return rows, wellform_rows, speedup, wellform_speedup


def run_churn_rebuild_sweep(smoke: bool, ctx: RunContext | None = None) -> list[dict]:
    """Scenario-driven churn-rebuild at scale on the SoA tier — the
    regime the port exists for.  Completing with ground-truth-correct
    labels IS the check."""
    n = REBUILD_N_SMOKE if smoke else REBUILD_N_FULL
    runner = ScenarioRunner(
        sizes=(n,),
        seeds=(0,),
        tiers=("soa",),
        workload="churn-rebuild",
        overlay_params=OVERLAY_PARAMS,
        chords=NUM_CHORD_SETS,
        ctx=ctx,
    )
    grid = (
        ScenarioSpec(name="rebuild/baseline"),
        ScenarioSpec(
            name="rebuild/churn10",
            crashes=(CrashWave(round_no=2, fraction=0.1),),
            fault_seed=1,
        ),
    )
    payload = runner.run_grid(grid)
    for row in payload["rows"]:
        assert row["labels_match_ground_truth"], (
            f"rebuild labels diverge from ground truth: {row['scenario']['name']}"
        )
        print(
            f"churn-rebuild n={row['n']}: {row['scenario']['name']} -> "
            f"{row['survivors']} survivors, {row['components']} component(s), "
            f"{row['wall_seconds']:.1f}s on tier {row['tier']}"
        )
    return payload["rows"]


def run_trace_check(trace_path: str, ctx: RunContext | None = None) -> dict:
    """ISSUE 9 trace satellite: one traced/untraced hybrid pipeline pair
    at the assert size (fingerprint equality + overhead) plus a traced
    churn-rebuild scenario cell whose rows must match the untraced cell
    under :func:`tier_invariant_view` — all captured as one ``trace/v1``
    artifact with per-stage spans and per-round tables."""
    from _common import overhead_pct
    from repro.obs import capture
    from repro.scenarios.runner import tier_invariant_view

    n = ASSERT_N
    graph = hybrid_input_graph(n, seed=n)

    def rebuild_cell():
        runner = ScenarioRunner(
            sizes=(REBUILD_N_SMOKE,),
            seeds=(0,),
            tiers=("soa",),
            workload="churn-rebuild",
            overlay_params=OVERLAY_PARAMS,
            chords=NUM_CHORD_SETS,
            ctx=ctx,
        )
        spec = ScenarioSpec(
            name="rebuild/churn10",
            crashes=(CrashWave(round_no=2, fraction=0.1),),
            fault_seed=1,
        )
        return runner.run_grid((spec,))["rows"]

    t0 = time.perf_counter()
    base = run_stages("soa", graph, seed=1, ctx=ctx)
    base_seconds = time.perf_counter() - t0
    untraced_rows = rebuild_cell()

    with capture(trace_path, meta={"bench": "s5_hybrid_scaling", "n": n}) as tracer:
        # The context is frozen — the traced arm carries the session
        # tracer explicitly instead of relying on ambient resolution.
        traced_ctx = ctx.with_overrides(tracer=tracer) if ctx is not None else None
        t0 = time.perf_counter()
        traced = run_stages("soa", graph, seed=1, ctx=traced_ctx)
        traced_seconds = time.perf_counter() - t0
        traced_rows = rebuild_cell()

    assert traced[3] == base[3], "tracing changed the hybrid pipeline output"
    assert [tier_invariant_view(r) for r in traced_rows] == [
        tier_invariant_view(r) for r in untraced_rows
    ], "tracing changed the churn-rebuild scenario rows"
    pct = overhead_pct(base_seconds, traced_seconds)
    print(f"trace: n={n} traced pipeline overhead {pct:+.1f}% -> {trace_path}")
    return {
        "trace_path": trace_path,
        "n": n,
        "rebuild_n": REBUILD_N_SMOKE,
        "untraced_seconds": round(base_seconds, 4),
        "traced_seconds": round(traced_seconds, 4),
        "trace_overhead_pct": round(pct, 1),
        "rebuild_rows_invariant": True,
    }


def bench_s5_hybrid_scaling(benchmark):
    from _common import run_once

    run_once(benchmark, lambda: run_experiment(smoke=False))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="~60s CI variant (5x hard assert, smaller rebuild sweep)",
    )
    parser.add_argument(
        "--hybrid",
        choices=HYBRID_CHOICES,
        default=None,
        help="restrict the timed tiers (default: REPRO_HYBRID env var or both)",
    )
    add_workers_argument(parser)
    from _common import add_trace_argument

    add_trace_argument(parser)
    parser.add_argument(
        "--json",
        default="bench_s5_results.json",
        help="path for the machine-readable results payload",
    )
    args = parser.parse_args(argv)
    hybrid_filter = tier_filter("hybrid", args.hybrid)
    workers = select_workers(args.workers)
    # One resolved context shards every network the pipeline constructs
    # internally — no more mutating REPRO_WORKERS for child code to
    # re-sniff (results are bit-for-bit identical at every count).
    ctx = RunContext.resolve(workers=workers)
    rows, wellform_rows, speedup, wellform_speedup = run_experiment(
        smoke=args.smoke, hybrid_filter=hybrid_filter, ctx=ctx
    )
    rebuild_rows = []
    if hybrid_filter in (None, "soa"):
        rebuild_rows = run_churn_rebuild_sweep(smoke=args.smoke, ctx=ctx)
    trace_check = None
    if args.trace:
        trace_check = run_trace_check(args.trace, ctx=ctx)
    from _common import bench_payload, write_bench_json

    payload = bench_payload(
        "s5_hybrid_scaling",
        config={
            "smoke": args.smoke,
            "hybrid_filter": hybrid_filter,
            "workers": workers,
            "workers_effective": effective_workers(workers),
            "overlay_params": {
                "delta": OVERLAY_PARAMS.delta,
                "ell": OVERLAY_PARAMS.ell,
                "num_evolutions": OVERLAY_PARAMS.num_evolutions,
            },
        },
        ctx=ctx,
        rows=[
            {
                "n": n,
                "tier": tier,
                "stage_seconds": round(secs, 4),
                "wellform_seconds": round(wellform_rows[(n, tier)], 4),
            }
            for (n, tier), secs in sorted(rows.items())
        ],
        checks={
            "stage_speedup_at_assert_n": round(speedup, 2) if speedup else None,
            "wellform_speedup_at_assert_n": (
                round(wellform_speedup, 2) if wellform_speedup else None
            ),
            "trace": trace_check,
        },
        extra={"churn_rebuild": rebuild_rows},
    )
    write_bench_json(args.json, payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
