"""E2 — Lemma 3.1(1): every evolution graph is benign (Definition 2.1).

Paper claim: all graphs ``G_i`` produced by ``CreateExpander`` are
``Δ``-regular, lazy (``≥ Δ/2`` self-loops), and keep an ``Ω(log n)``
minimum cut, w.h.p.

Measured here: regularity and laziness structurally, the minimum cut with
Stoer–Wagner, across workloads and seeds at the calibrated parameters.
The cut floor is ``max(2, Λ/2)`` (DESIGN.md §5 — the paper's face-value
constants assume ``ℓ > 10⁶``).
"""

from _common import run_once, seeded
from repro.core.benign import check_benign, make_benign
from repro.core.expander import ExpanderBuilder
from repro.core.params import ExpanderParams
from repro.experiments.harness import Table
from repro.graphs import generators as G
from repro.graphs.mincut import min_cut_of_portgraph


def bench_e2_invariants(benchmark):
    def experiment():
        table = Table(
            "E2: benignness per evolution (Definition 2.1)",
            ["workload", "n", "seed", "lazy_all", "min_cut_dip", "floor", "cut_ok"],
        )
        rows = []
        for name in ("line", "cycle", "double_star"):
            for seed in (0, 1):
                graph = G.make_workload(name, 96, seeded(seed))
                n = graph.number_of_nodes()
                dmax = max(d for _, d in graph.degree)
                params = ExpanderParams.recommended(n, max_degree=dmax)
                base, _ = make_benign(graph, params)
                builder = ExpanderBuilder(base, params, seeded(seed + 10))
                lazy_all = True
                dip = min_cut_of_portgraph(base)
                for _ in range(params.num_evolutions):
                    builder.step()
                    report = check_benign(builder.current, params, check_cut=False)
                    lazy_all &= report.is_lazy and report.is_regular
                    dip = min(dip, min_cut_of_portgraph(builder.current))
                floor = params.maintained_cut_floor
                ok = dip >= floor
                table.add(name, n, seed, lazy_all, dip, floor, ok)
                rows.append((name, lazy_all, dip, floor))
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    for name, lazy_all, dip, floor in rows:
        assert lazy_all, f"{name}: regularity/laziness violated"
        assert dip >= floor, f"{name}: cut dipped to {dip} below floor {floor}"
