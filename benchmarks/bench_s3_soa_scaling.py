"""S3 — SoA-tier scaling: one Python call per round vs. per-node calls.

ISSUE 3's acceptance bar, extended by ISSUE 6 with the sharded round
loop.  The rooting phase (§2.1, footnote 8) is the most
call-overhead-bound phase of the Theorem 1.1 pipeline: per-node work is
a couple of integer compares, so at ``n ≥ 10⁵`` the batch tier's one
Python call per node per round dominates everything.  The SoA tier
(`repro.core.soa_rooting`) advances *all* nodes with one call over
shared numpy columns, through the identical vectorized delivery path.

Measured here, on the same ring-plus-chords stand-in for evolution
output as S2:

- wall-clock of the batch tier vs. the SoA tier across sizes (both on
  vectorized delivery — the node *representation* is the only variable,
  so the comparison is engine-controlled);
- a **hard speedup assert**: SoA ≥ 20× over batch nodes at ``n = 10⁵``
  (full mode), ≥ 6× at ``n = 2·10⁴`` (smoke mode, run in CI);
- the SoA tier across a **worker-count sweep** (``--workers`` /
  ``REPRO_WORKERS`` restricts it to one count): every count must produce
  the identical tree, asserted in-bench via the ``tree_sha`` column that
  also lands in the JSON artifact (the CI shard-invariance job compares
  the SHAs *across processes*);
- the **layout-reuse check** (ISSUE 6 acceptance): the same run with
  ``REPRO_SOA_LAYOUT_REUSE=0`` (the pre-shard per-round re-sort) must be
  ≥ 2× slower at ``n = 10⁶`` in full mode — the measured win of the
  persistent receiver-sorted layout; smoke mode records the ratio at its
  top size without asserting (the win needs big rounds to dominate);
- a demonstrated ``n = 10⁶`` rooting run on the SoA tier — a scale no
  per-node tier reaches in reasonable time — validated to span with a
  unique root (``run_soa_rooting`` raises otherwise);
- an exact three-tier equivalence check (object vs. batch vs. SoA:
  identical trees, metrics, rounds) before anything is timed.

Run standalone:  ``PYTHONPATH=src python benchmarks/bench_s3_soa_scaling.py``
(``--smoke`` for the ~30 s CI variant, ``--engine legacy|vectorized|soa``
to restrict the stacks timed, ``--workers N`` to pin the shard count,
``--json PATH`` for the machine-readable ``repro-bench/v1`` payload,
``--trace PATH`` for the ISSUE 9 satellite: a traced-vs-untraced
invariance run whose ``trace/v1`` artifact and overhead percentages land
in the JSON ``checks``).
"""

import argparse
import hashlib
import math
import sys
import time

import numpy as np

from repro.core.protocol_tree import run_batch_rooting, run_protocol_rooting
from repro.core.soa_rooting import run_soa_rooting
from repro.experiments.harness import (
    TIER_CHOICES,
    Table,
    add_engine_argument,
    add_workers_argument,
    select_workers,
    tier_filter,
)
from repro.graphs.portgraph import PortGraph
from repro.net.shard import effective_workers
from repro.runtime import RunContext, workers_specified

FULL_SIZES = (10_000, 100_000)
FULL_SOA_ONLY = (1_000_000,)
SMOKE_SIZES = (2_000, 20_000)
FULL_ASSERT = (100_000, 20.0)
SMOKE_ASSERT = (20_000, 6.0)
FULL_WORKER_SWEEP = (1, 2, 4)
SMOKE_WORKER_SWEEP = (1, 2)
TRACE_N_FULL = 100_000
TRACE_N_SMOKE = 20_000
LAYOUT_REUSE_FACTOR = 2.0
DELTA = 16
NUM_CHORD_SETS = 2


def overlay_like_graph(n: int, seed: int) -> PortGraph:
    """Connected Δ=16 multigraph with ``O(log n)`` diameter (the same
    ring-plus-chords family as S2; construction shared in PortGraph)."""
    return PortGraph.ring_with_chords(n, delta=DELTA, chords=NUM_CHORD_SETS, seed=seed)


def _flood_rounds(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n)))) + 8


def _time(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _tree_sha(result) -> str:
    """Stable fingerprint of the built tree (the cross-process equality
    token of the CI shard-invariance job)."""
    return hashlib.sha1(
        result.parent.tobytes() + result.depth.tobytes()
    ).hexdigest()[:16]


def _worker_counts(smoke: bool, cli_value: int | None) -> tuple[int, ...]:
    """The sweep — or the single pinned count when the user chose one."""
    if workers_specified(cli_value):
        return (select_workers(cli_value),)
    return SMOKE_WORKER_SWEEP if smoke else FULL_WORKER_SWEEP


def _soa_run_seconds(graph, fr, workers: int, repeats: int, reuse: bool = True):
    """Best-of-``repeats`` wall clock of one SoA rooting configuration.

    The re-sort control arm is a context with ``layout_reuse=False`` —
    no more mutating ``REPRO_SOA_LAYOUT_REUSE`` around the call.
    """
    ctx = RunContext.resolve(workers=workers, layout_reuse=reuse)
    result = run_soa_rooting(graph, fr, rng=np.random.default_rng(1), ctx=ctx)
    seconds = _time(
        lambda: run_soa_rooting(graph, fr, rng=np.random.default_rng(1), ctx=ctx),
        repeats,
    )
    return seconds, result


def check_equivalence(n: int = 400) -> None:
    """Bit-for-bit three-tier agreement before timing anything."""
    graph = overlay_like_graph(n, seed=n)
    fr = _flood_rounds(n)
    obj = run_protocol_rooting(graph, fr, rng=np.random.default_rng(n), engine="legacy")
    bat = run_batch_rooting(graph, fr, rng=np.random.default_rng(n))
    soa = run_soa_rooting(graph, fr, rng=np.random.default_rng(n))
    for name, other in (("batch", bat), ("soa", soa)):
        assert other.root == obj.root, f"{name} disagrees on the root"
        assert np.array_equal(other.parent, obj.parent), f"{name} disagrees on parents"
        assert np.array_equal(other.depth, obj.depth), f"{name} disagrees on depths"
        assert other.metrics.as_dict() == obj.metrics.as_dict(), (
            f"{name} disagrees on metrics"
        )


def run_experiment(
    smoke: bool,
    engine_filter: str | None = None,
    workers_cli: int | None = None,
):
    check_equivalence()
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    soa_only = () if smoke else FULL_SOA_ONLY
    assert_n, assert_factor = SMOKE_ASSERT if smoke else FULL_ASSERT
    worker_counts = _worker_counts(smoke, workers_cli)

    table = Table(
        "S3: SoA-tier rooting scaling (min-id flooding + BFS)",
        ["n", "flood_rounds", "stack", "workers", "seconds", "msgs/sec", "tree_sha"],
    )
    rows = {}
    json_rows = []
    checks = {}

    def record(n, stack, workers, seconds, total_messages, sha):
        rate = total_messages / seconds if seconds > 0 else float("inf")
        table.add(
            n, _flood_rounds(n), stack, workers or "-", round(seconds, 3),
            int(rate), sha or "-",
        )
        rows[(n, stack, workers)] = seconds
        json_rows.append(
            {
                "n": n,
                "flood_rounds": _flood_rounds(n),
                "stack": stack,
                "workers": workers,
                "workers_effective": (
                    effective_workers(workers) if workers else workers
                ),
                "seconds": round(seconds, 4),
                "msgs_per_sec": int(rate),
                "tree_sha": sha,
            }
        )

    for n in sizes:
        graph = overlay_like_graph(n, seed=n)
        fr = _flood_rounds(n)
        repeats = 1 if smoke else 2

        if engine_filter in (None, "soa"):
            shas = {}
            for workers in worker_counts:
                seconds, result = _soa_run_seconds(graph, fr, workers, repeats)
                sha = _tree_sha(result)
                shas[workers] = sha
                record(n, "soa", workers, seconds, result.metrics.total_messages, sha)
            assert len(set(shas.values())) == 1, (
                f"worker counts disagree on the tree at n={n}: {shas}"
            )

        if engine_filter in (None, "vectorized"):
            result = run_batch_rooting(graph, fr, rng=np.random.default_rng(1))
            seconds = _time(
                lambda: run_batch_rooting(graph, fr, rng=np.random.default_rng(1)),
                repeats=1,
            )
            record(
                n, "batch-nodes", None, seconds,
                result.metrics.total_messages, _tree_sha(result),
            )

        if engine_filter == "legacy":
            result = run_protocol_rooting(
                graph, fr, rng=np.random.default_rng(1), engine="legacy"
            )
            seconds = _time(
                lambda: run_protocol_rooting(
                    graph, fr, rng=np.random.default_rng(1), engine="legacy"
                ),
                repeats=1,
            )
            record(
                n, "object-nodes", None, seconds,
                result.metrics.total_messages, _tree_sha(result),
            )

    if engine_filter in (None, "soa"):
        # The layout-reuse check: the persistent receiver-sorted layout
        # vs. the pre-shard per-round re-sort (REPRO_SOA_LAYOUT_REUSE=0)
        # on the identical run.  Full mode measures at n = 10⁶ where the
        # sort dominates and enforces the ISSUE 6 ≥ 2× acceptance bar;
        # smoke records the ratio at its top size without asserting.
        reuse_n = soa_only[0] if soa_only else max(sizes)
        graph = overlay_like_graph(reuse_n, seed=reuse_n)
        fr = _flood_rounds(reuse_n)
        with_reuse, result = _soa_run_seconds(graph, fr, workers=1, repeats=1)
        record(
            reuse_n, "soa", 1, with_reuse,
            result.metrics.total_messages, _tree_sha(result),
        )
        assert result.metrics.total_drops == 0
        without_reuse, control = _soa_run_seconds(
            graph, fr, workers=1, repeats=1, reuse=False
        )
        record(
            reuse_n, "soa-resort-every-round", 1, without_reuse,
            control.metrics.total_messages, _tree_sha(control),
        )
        assert _tree_sha(control) == _tree_sha(result), (
            "layout reuse changed the tree — the toggle must be timing-only"
        )
        ratio = without_reuse / with_reuse
        checks["layout_reuse_speedup"] = {
            "n": reuse_n,
            "seconds_with_reuse": round(with_reuse, 4),
            "seconds_without_reuse": round(without_reuse, 4),
            "speedup": round(ratio, 2),
            "threshold": None if smoke else LAYOUT_REUSE_FACTOR,
        }
        print(
            f"n={reuse_n}: persistent layout vs per-round re-sort "
            f"speedup {ratio:.2f}x"
        )
        if not smoke:
            assert ratio >= LAYOUT_REUSE_FACTOR, (
                f"layout reuse only {ratio:.2f}x over per-round re-sort at "
                f"n={reuse_n} (need >= {LAYOUT_REUSE_FACTOR}x)"
            )

    table.show()

    if engine_filter is None and 1 in worker_counts:
        t_soa = rows[(assert_n, "soa", 1)]
        t_batch = rows[(assert_n, "batch-nodes", None)]
        speedup = t_batch / t_soa
        checks["soa_over_batch_speedup"] = {
            "n": assert_n,
            "speedup": round(speedup, 2),
            "threshold": assert_factor,
        }
        print(f"n={assert_n}: SoA-over-batch (engine-controlled) speedup {speedup:.1f}x")
        assert speedup >= assert_factor, (
            f"SoA tier only {speedup:.1f}x faster than batch nodes at "
            f"n={assert_n} (need >= {assert_factor}x)"
        )
    return rows, json_rows, checks, worker_counts


def run_trace_check(smoke: bool, trace_path: str, worker_counts) -> dict:
    """ISSUE 9 trace satellite: every traced run must build the identical
    tree as the untraced baseline, the enabled overhead is recorded, and
    the *disabled* path — a run after the ``capture()`` session exits —
    must stay within the regression bar (zero-overhead-when-off)."""
    from _common import (
        DISABLED_OVERHEAD_LIMIT,
        DISABLED_OVERHEAD_SLACK_S,
        overhead_pct,
    )
    from repro.obs import capture

    n = TRACE_N_SMOKE if smoke else TRACE_N_FULL
    graph = overlay_like_graph(n, seed=n)
    fr = _flood_rounds(n)
    workers = worker_counts[0]

    base_seconds, base = _soa_run_seconds(graph, fr, workers=workers, repeats=2)
    base_sha = _tree_sha(base)

    traced_seconds = None
    with capture(trace_path, meta={"bench": "s3_soa_scaling", "n": n}):
        for w in worker_counts:
            start = time.perf_counter()
            result = run_soa_rooting(
                graph, fr, rng=np.random.default_rng(1), workers=w
            )
            elapsed = time.perf_counter() - start
            assert _tree_sha(result) == base_sha, (
                f"traced run diverged from the untraced tree at workers={w}"
            )
            if w == workers:
                traced_seconds = elapsed
    disabled_seconds, again = _soa_run_seconds(graph, fr, workers=workers, repeats=2)
    assert _tree_sha(again) == base_sha

    traced_pct = overhead_pct(base_seconds, traced_seconds)
    disabled_pct = overhead_pct(base_seconds, disabled_seconds)
    limit = base_seconds * (1.0 + DISABLED_OVERHEAD_LIMIT) + DISABLED_OVERHEAD_SLACK_S
    print(
        f"trace: n={n} traced overhead {traced_pct:+.1f}%, disabled overhead "
        f"{disabled_pct:+.1f}% (bar {DISABLED_OVERHEAD_LIMIT:.0%}) -> {trace_path}"
    )
    assert disabled_seconds <= limit, (
        f"disabled-tracer run regressed: {disabled_seconds:.3f}s vs untraced "
        f"{base_seconds:.3f}s (bar {DISABLED_OVERHEAD_LIMIT:.0%} + "
        f"{DISABLED_OVERHEAD_SLACK_S}s slack)"
    )
    return {
        "trace_path": trace_path,
        "n": n,
        "workers_traced": list(worker_counts),
        "tree_sha": base_sha,
        "untraced_seconds": round(base_seconds, 4),
        "traced_seconds": round(traced_seconds, 4),
        "trace_overhead_pct": round(traced_pct, 1),
        "disabled_overhead_pct": round(disabled_pct, 1),
        "disabled_limit_pct": DISABLED_OVERHEAD_LIMIT * 100,
    }


def bench_s3_soa_scaling(benchmark):
    from _common import run_once

    run_once(benchmark, lambda: run_experiment(smoke=False))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="~30s CI variant: small sizes, 6x assert"
    )
    add_engine_argument(parser, choices=TIER_CHOICES)
    add_workers_argument(parser)
    from _common import add_trace_argument

    add_trace_argument(parser)
    parser.add_argument(
        "--json",
        default=None,
        help="write the machine-readable repro-bench/v1 payload here",
    )
    args = parser.parse_args(argv)
    engine_filter = tier_filter("engine", args.engine)
    rows, json_rows, checks, worker_counts = run_experiment(
        smoke=args.smoke, engine_filter=engine_filter, workers_cli=args.workers
    )
    if args.trace:
        checks["trace"] = run_trace_check(args.smoke, args.trace, worker_counts)
    if args.json:
        from _common import bench_payload, write_bench_json

        payload = bench_payload(
            "s3_soa_scaling",
            config={
                "smoke": args.smoke,
                "engine_filter": engine_filter,
                "worker_counts": list(worker_counts),
                "delta": DELTA,
                "chords": NUM_CHORD_SETS,
            },
            rows=json_rows,
            checks=checks,
            ctx=RunContext.resolve(workers=worker_counts[0]),
        )
        write_bench_json(args.json, payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
