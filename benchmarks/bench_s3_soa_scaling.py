"""S3 — SoA-tier scaling: one Python call per round vs. per-node calls.

ISSUE 3's acceptance bar.  The rooting phase (§2.1, footnote 8) is the
most call-overhead-bound phase of the Theorem 1.1 pipeline: per-node work
is a couple of integer compares, so at ``n ≥ 10⁵`` the batch tier's one
Python call per node per round dominates everything.  The SoA tier
(`repro.core.soa_rooting`) advances *all* nodes with one call over shared
numpy columns, through the identical vectorized delivery path.

Measured here, on the same ring-plus-chords stand-in for evolution output
as S2:

- wall-clock of the batch tier vs. the SoA tier across sizes (both on
  vectorized delivery — the node *representation* is the only variable,
  so the comparison is engine-controlled);
- a **hard speedup assert**: SoA ≥ 20× over batch nodes at ``n = 10⁵``
  (full mode), ≥ 6× at ``n = 2·10⁴`` (smoke mode, run in CI);
- a demonstrated ``n = 10⁶`` rooting run on the SoA tier — a scale no
  per-node tier reaches in reasonable time — validated to span with a
  unique root (``run_soa_rooting`` raises otherwise);
- an exact three-tier equivalence check (object vs. batch vs. SoA:
  identical trees, metrics, rounds) before anything is timed.

Run standalone:  ``PYTHONPATH=src python benchmarks/bench_s3_soa_scaling.py``
(``--smoke`` for the ~30 s CI variant, ``--engine legacy|vectorized|soa``
to restrict the stacks timed).
"""

import argparse
import math
import sys
import time

import numpy as np

from repro.core.protocol_tree import run_batch_rooting, run_protocol_rooting
from repro.core.soa_rooting import run_soa_rooting
from repro.experiments.harness import TIER_CHOICES, Table, add_engine_argument, tier_filter
from repro.graphs.portgraph import PortGraph

FULL_SIZES = (10_000, 100_000)
FULL_SOA_ONLY = (1_000_000,)
SMOKE_SIZES = (2_000, 20_000)
FULL_ASSERT = (100_000, 20.0)
SMOKE_ASSERT = (20_000, 6.0)
DELTA = 16
NUM_CHORD_SETS = 2


def overlay_like_graph(n: int, seed: int) -> PortGraph:
    """Connected Δ=16 multigraph with ``O(log n)`` diameter (the same
    ring-plus-chords family as S2; construction shared in PortGraph)."""
    return PortGraph.ring_with_chords(n, delta=DELTA, chords=NUM_CHORD_SETS, seed=seed)


def _flood_rounds(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n)))) + 8


def _time(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_equivalence(n: int = 400) -> None:
    """Bit-for-bit three-tier agreement before timing anything."""
    graph = overlay_like_graph(n, seed=n)
    fr = _flood_rounds(n)
    obj = run_protocol_rooting(graph, fr, rng=np.random.default_rng(n), engine="legacy")
    bat = run_batch_rooting(graph, fr, rng=np.random.default_rng(n))
    soa = run_soa_rooting(graph, fr, rng=np.random.default_rng(n))
    for name, other in (("batch", bat), ("soa", soa)):
        assert other.root == obj.root, f"{name} disagrees on the root"
        assert np.array_equal(other.parent, obj.parent), f"{name} disagrees on parents"
        assert np.array_equal(other.depth, obj.depth), f"{name} disagrees on depths"
        assert other.metrics.as_dict() == obj.metrics.as_dict(), (
            f"{name} disagrees on metrics"
        )


def run_experiment(smoke: bool, engine_filter: str | None = None):
    check_equivalence()
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    soa_only = () if smoke else FULL_SOA_ONLY
    assert_n, assert_factor = SMOKE_ASSERT if smoke else FULL_ASSERT

    table = Table(
        "S3: SoA-tier rooting scaling (min-id flooding + BFS)",
        ["n", "flood_rounds", "stack", "seconds", "msgs/sec"],
    )
    rows = {}

    def record(n, stack, seconds, total_messages):
        rate = total_messages / seconds if seconds > 0 else float("inf")
        table.add(n, _flood_rounds(n), stack, round(seconds, 3), int(rate))
        rows[(n, stack)] = seconds

    for n in sizes:
        graph = overlay_like_graph(n, seed=n)
        fr = _flood_rounds(n)
        repeats = 1 if smoke else 2

        if engine_filter in (None, "soa"):
            result = run_soa_rooting(graph, fr, rng=np.random.default_rng(1))
            seconds = _time(
                lambda: run_soa_rooting(graph, fr, rng=np.random.default_rng(1)),
                repeats,
            )
            record(n, "soa", seconds, result.metrics.total_messages)

        if engine_filter in (None, "vectorized"):
            result = run_batch_rooting(graph, fr, rng=np.random.default_rng(1))
            seconds = _time(
                lambda: run_batch_rooting(graph, fr, rng=np.random.default_rng(1)),
                repeats=1,
            )
            record(n, "batch-nodes", seconds, result.metrics.total_messages)

        if engine_filter == "legacy":
            result = run_protocol_rooting(
                graph, fr, rng=np.random.default_rng(1), engine="legacy"
            )
            seconds = _time(
                lambda: run_protocol_rooting(
                    graph, fr, rng=np.random.default_rng(1), engine="legacy"
                ),
                repeats=1,
            )
            record(n, "object-nodes", seconds, result.metrics.total_messages)

    for n in soa_only:
        # The n = 10⁶ demonstration: a scale the per-node tiers cannot
        # reach in reasonable time.  The runner validates the tree spans
        # with a unique root, so completing IS the correctness check.
        graph = overlay_like_graph(n, seed=n)
        fr = _flood_rounds(n)
        start = time.perf_counter()
        result = run_soa_rooting(graph, fr, rng=np.random.default_rng(1))
        record(n, "soa", time.perf_counter() - start, result.metrics.total_messages)
        assert result.metrics.total_drops == 0

    table.show()

    if engine_filter is None:
        t_soa = rows[(assert_n, "soa")]
        t_batch = rows[(assert_n, "batch-nodes")]
        speedup = t_batch / t_soa
        print(f"n={assert_n}: SoA-over-batch (engine-controlled) speedup {speedup:.1f}x")
        assert speedup >= assert_factor, (
            f"SoA tier only {speedup:.1f}x faster than batch nodes at "
            f"n={assert_n} (need >= {assert_factor}x)"
        )
    return rows


def bench_s3_soa_scaling(benchmark):
    from _common import run_once

    run_once(benchmark, lambda: run_experiment(smoke=False))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="~30s CI variant: small sizes, 6x assert"
    )
    add_engine_argument(parser, choices=TIER_CHOICES)
    args = parser.parse_args(argv)
    engine_filter = tier_filter("engine", args.engine)
    run_experiment(smoke=args.smoke, engine_filter=engine_filter)
    return 0


if __name__ == "__main__":
    sys.exit(main())
