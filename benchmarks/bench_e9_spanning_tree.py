"""E9 — Theorem 1.3 + Lemma 4.11: spanning trees by walk unwinding.

Paper claims: (a) a spanning tree of ``G`` is recovered from the walk
provenance in ``O(log n)`` rounds; (b) Lemma 4.11: the fully expanded
path ``P_0`` contains each node ``O(log⁴ n)`` times.

Measured here: (a) tree validity and the covering-stream cost across an
``n`` sweep; (b) the *full* per-level expansion sizes on a small
instance.  Finding (documented in EXPERIMENTS.md): the full ``|P_i|``
grows **multiplicatively** per level — each level multiplies path length
by the non-lazy trace length, which Lemma 4.11's additive accounting
understates.  The lazy covering stream (what the implementation uses)
stays near-linear, so the *algorithm* is fine; the lemma's bound is the
part that does not reproduce.
"""

import math

import networkx as nx

from _common import run_once, seeded
from repro.experiments.harness import Table
from repro.graphs import generators as G
from repro.graphs.portgraph import SELF_LOOP
from repro.hybrid.overlay import build_hybrid_overlay
from repro.hybrid.spanning_tree import spanning_tree_hybrid


def bench_e9_tree_validity_and_stream(benchmark):
    def experiment():
        table = Table(
            "E9: spanning tree via unwinding (Theorem 1.3)",
            ["n", "valid", "stream_steps", "steps/n", "max_node_occurrences", "log4_n"],
        )
        rows = []
        for n in (64, 128, 256):
            g = G.grid_2d(int(math.isqrt(n)), int(math.isqrt(n)))
            n_actual = g.number_of_nodes()
            res = spanning_tree_hybrid(g, rng=seeded(n))
            t = nx.Graph()
            t.add_nodes_from(range(n_actual))
            t.add_edges_from(res.tree_edges)
            valid = nx.is_tree(t)
            table.add(
                n_actual,
                valid,
                res.stream_steps,
                res.stream_steps / n_actual,
                int(res.occurrences.max()),
                round(math.log2(n_actual) ** 4),
            )
            rows.append((n_actual, valid, res.stream_steps))
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    for n, valid, steps in rows:
        assert valid, f"n={n}: not a spanning tree"
        # Covering stream stays polynomial-free: at most ~n polylog.
        assert steps <= 512 * n * math.log2(n) ** 2


def bench_e9_full_expansion_growth(benchmark):
    """Lemma 4.11 finding: full |P_i| growth is multiplicative per level."""

    def experiment():
        overlay = build_hybrid_overlay(
            G.line_graph(64), rng=seeded(5), record_traces=True, gap_threshold=0.1
        )
        # Count non-lazy steps per level: expanding one level-i edge costs
        # its trace's real steps, so level sizes multiply by the mean.
        table = Table(
            "E9b: per-level trace sizes (Lemma 4.11 accounting)",
            ["level", "edges", "mean_real_steps_per_trace"],
        )
        factors = []
        for level, registry in enumerate(overlay.level_registries, start=1):
            real = [
                int((edge.edge_trace != SELF_LOOP).sum()) for edge in registry
            ]
            mean = sum(real) / max(1, len(real))
            factors.append(mean)
            table.add(level, len(registry), mean)
        table.show()
        return factors

    factors = run_once(benchmark, experiment)
    # The multiplicative expansion factor per level is >> 1: the full
    # P_0 is exponential in the level count, contradicting an additive
    # O(log^4 n) bound at these parameters.
    assert all(f > 2 for f in factors)
