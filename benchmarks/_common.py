"""Shared helpers for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one experiment from the index in
DESIGN.md §3 (the paper has no measurement tables, so the reproduction
targets are the theorem statements).  Conventions:

- every bench prints a paper-style table (via
  :class:`repro.experiments.harness.Table`) with the measured rows;
- the *shape* assertions (who wins, what scales how) are hard asserts —
  a bench failing means the reproduction claim broke;
- ``benchmark.pedantic(fn, rounds=1, iterations=1)`` wraps the experiment
  so pytest-benchmark records wall-clock without re-running heavy sweeps.
"""

from __future__ import annotations

import numpy as np


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def seeded(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)
