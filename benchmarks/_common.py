"""Shared helpers for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one experiment from the index in
DESIGN.md §3 (the paper has no measurement tables, so the reproduction
targets are the theorem statements).  Conventions:

- every bench prints a paper-style table (via
  :class:`repro.experiments.harness.Table`) with the measured rows;
- the *shape* assertions (who wins, what scales how) are hard asserts —
  a bench failing means the reproduction claim broke;
- ``benchmark.pedantic(fn, rounds=1, iterations=1)`` wraps the experiment
  so pytest-benchmark records wall-clock without re-running heavy sweeps.
"""

from __future__ import annotations

import json

import numpy as np

#: Version tag of the machine-readable bench artifact layout.  Every
#: ``BENCH_S*.json`` produced by ``--json`` carries this under
#: ``"schema"`` so CI consumers (the shard-invariance job, dashboards)
#: can hard-fail on layout drift instead of mis-parsing.
BENCH_SCHEMA = "repro-bench/v1"


def bench_payload(
    bench: str,
    config: dict,
    rows: list[dict],
    checks: dict | None = None,
    extra: dict | None = None,
    ctx=None,
) -> dict:
    """Assemble one bench result in the stable ``repro-bench/v1`` shape.

    ``bench`` names the experiment (``"s3_soa_scaling"``), ``config``
    captures everything that selected the run (sizes, filters, worker
    counts, smoke flag), ``rows`` is the flat list of measured rows
    (plain scalars only — one dict per table row), and ``checks`` holds
    the hard-assert outcomes (speedup ratios, equality SHAs) so a JSON
    consumer sees what was *verified*, not just what was measured.
    ``extra`` merges additional top-level sections (e.g. a nested grid
    payload) without loosening the core shape.

    ``ctx`` (a resolved :class:`repro.runtime.context.RunContext`, or
    ``None`` to resolve one from the environment here) lands under
    ``"run_context"`` — the full resolved execution configuration
    (contract C8), so every artifact names the exact stack that produced
    it even when the bench only plumbed a subset of the knobs.
    """
    from repro.runtime import RunContext

    if ctx is None:
        ctx = RunContext.resolve()
    payload = {
        "schema": BENCH_SCHEMA,
        "bench": bench,
        "config": config,
        "rows": rows,
        "checks": checks or {},
        "run_context": ctx.as_dict(),
    }
    if extra:
        for key in extra:
            if key in payload:
                raise ValueError(f"extra section {key!r} collides with a core field")
        payload.update(extra)
    return payload


def write_bench_json(path: str, payload: dict) -> None:
    """Write a bench payload deterministically (sorted keys, newline)."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


#: Disabled-tracer regression bar (docs/observability.md): after a
#: ``capture()`` session exits, an untraced run must stay within this
#: fraction of a run that never saw a tracer, plus an absolute slack for
#: timer noise on small shapes.
DISABLED_OVERHEAD_LIMIT = 0.03
DISABLED_OVERHEAD_SLACK_S = 0.05


def add_trace_argument(parser) -> None:
    """Standard ``--trace PATH`` flag for the benches that support the
    ISSUE 9 trace satellite: capture a ``trace/v1`` round trace
    (:mod:`repro.obs`) of an extra traced-vs-untraced invariance run and
    record the overhead percentages in the JSON ``checks``."""
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "capture a trace/v1 round trace (repro.obs) of a "
            "traced-vs-untraced invariance run to PATH and record the "
            "trace overhead in the JSON checks"
        ),
    )


def overhead_pct(base_seconds: float, other_seconds: float) -> float:
    """Relative wall-clock overhead of ``other`` over ``base``, percent."""
    if base_seconds <= 0:
        return 0.0
    return (other_seconds - base_seconds) / base_seconds * 100.0


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def seeded(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)
