"""X3 — §1.4: churn robustness of the constructed overlays.

Paper claim: *"if the nodes fail independently and random with a certain
probability, say p, a logarithmic sized minimum cut … is enough to keep
the network connected w.h.p."* — the expander overlays should tolerate
heavy oblivious churn, unlike the sparse inputs they were built from.

Measured here: survival curves (largest surviving component fraction,
connected-trial rate) for the input ring vs. its expander overlay across
churn levels.
"""

from _common import run_once, seeded
from repro.core.pipeline import build_well_formed_tree
from repro.experiments.harness import Table, select_tier
from repro.graphs.churn import survival_curve
from repro.graphs.generators import cycle_graph
from repro.runtime import RunContext


def bench_x3_survival_curves(benchmark):
    # Identical overlay on every rooting tier; REPRO_ROOTING selects the
    # execution path under measurement — one resolved context carries it
    # into every network the build constructs.
    ctx = RunContext.resolve(rooting=select_tier("rooting", default="batch"))

    def experiment():
        n = 256
        ring = cycle_graph(n)
        overlay = build_well_formed_tree(ring, rng=seeded(0), ctx=ctx).final_graph()
        probs = [0.05, 0.15, 0.30, 0.50]
        rng = seeded(1)
        ring_rows = survival_curve(ring, probs, rng, trials=6)
        overlay_rows = survival_curve(overlay.neighbor_sets(), probs, rng, trials=6)

        table = Table(
            "X3: churn survival, ring vs expander overlay (n = 256)",
            [
                "p",
                "ring_largest_frac",
                "ring_connected",
                "overlay_largest_frac",
                "overlay_connected",
            ],
        )
        for r_row, o_row in zip(ring_rows, overlay_rows):
            table.add(
                r_row["p"],
                r_row["mean_largest_fraction"],
                r_row["connected_rate"],
                o_row["mean_largest_fraction"],
                o_row["connected_rate"],
            )
        table.show()
        return ring_rows, overlay_rows

    ring_rows, overlay_rows = run_once(benchmark, experiment)
    # The overlay stays one component through 30% churn in every trial;
    # the ring is long gone.
    for row in overlay_rows[:3]:
        assert row["connected_rate"] == 1.0
    assert ring_rows[1]["connected_rate"] == 0.0
    # Even at 50% churn the overlay keeps a dominant component.
    assert overlay_rows[-1]["mean_largest_fraction"] > 0.9
