"""E13 — §4.2: spanner outdegree O(log n), connectivity, near-linear size.

Paper claim (via Elkin–Neiman / Miller et al.): the exponential-shift
spanner has ``O(log n)`` outdegree per node and preserves connectivity;
the subsequent delegation step yields a graph ``H`` of degree
``O(log n)`` on which the overlay construction can run.

Measured here: outdegree / edge-count / connectivity across an ``n``
sweep on dense inputs, plus the degree of ``H`` after reduction.
"""

import math

from _common import run_once, seeded
from repro.experiments.harness import Table
from repro.graphs import generators as G
from repro.graphs.analysis import is_connected
from repro.hybrid.degree_reduction import reduce_degree
from repro.hybrid.spanner import build_spanner


def bench_e13_spanner_quality(benchmark):
    def experiment():
        table = Table(
            "E13: spanner + degree reduction (§4.2)",
            [
                "n",
                "input_dmax",
                "connected",
                "outdeg_max",
                "outdeg/log2n",
                "edges/nlog2n",
                "H_degree",
            ],
        )
        rows = []
        for n in (128, 256, 512):
            g = G.erdos_renyi_connected(n, 3 * math.log2(n), seeded(n))
            rng = seeded(n + 1)
            sp = build_spanner(g, rng)
            red = reduce_degree(sp)
            log_n = math.log2(n)
            dmax_in = max(d for _, d in g.degree)
            connected = is_connected(sp.undirected_adjacency())
            table.add(
                n,
                dmax_in,
                connected,
                sp.max_outdegree(),
                sp.max_outdegree() / log_n,
                sp.num_directed_edges() / (n * log_n),
                red.max_degree(),
            )
            rows.append(
                (n, connected, sp.max_outdegree(), red.max_degree(), log_n)
            )
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    for n, connected, outdeg, h_deg, log_n in rows:
        assert connected
        assert outdeg <= 6 * log_n, f"n={n}: outdegree superlogarithmic"
        assert h_deg <= 10 * log_n, f"n={n}: H degree superlogarithmic"


def bench_e13_star_collapse(benchmark):
    def experiment():
        table = Table(
            "E13b: hub-degree collapse (star input)",
            ["n", "hub_degree_before", "hub_degree_after_H"],
        )
        rows = []
        for n in (256, 1024):
            g = G.star_graph(n)
            red = reduce_degree(build_spanner(g, seeded(n)))
            after = len(red.adj[0])
            table.add(n, n - 1, after)
            rows.append(after)
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    # The Θ(n) hub degree collapses to a small constant.
    assert all(after <= 8 for after in rows)
