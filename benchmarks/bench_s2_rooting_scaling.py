"""S2 — Rooting-phase scaling: object vs. batched min-id flooding + BFS.

The rooting phase of Theorem 1.1 (§2.1, footnote 8) runs here in its two
message representations over the same NCC0 network:

- **object-nodes / legacy**: per-:class:`Message` Python loops — the
  seed's path, kept as the differential oracle;
- **batch-nodes / vectorized**: :class:`BatchRootingNode` int64 columns
  (BFS offers ride the two payload lanes as ``(depth, offerer)`` pairs)
  through the flat-buffer delivery engine.

The subject graph is a ring plus two random permutation chord sets — a
stand-in for the evolution phase's output: connected, ``O(log n)``
diameter, degree ≤ 6 — so the benchmark isolates the *rooting* phase
instead of re-timing ``CreateExpander`` (that is S1's job).

Measured: wall-clock per stack across sizes (vectorized-only at sizes the
object path cannot reach in reasonable time), the speedup, and an exact
object-vs-batch equivalence check — identical ``(root, parent, depth)``
and metrics — before anything is timed.

Shape assertion (full mode): at ``n = 10⁴`` the vectorized engine is
≥ 4× faster than the legacy engine on the *same batch nodes* (the
engine-controlled comparison, per ISSUE 2's acceptance bar).

Run standalone:  ``PYTHONPATH=src python benchmarks/bench_s2_rooting_scaling.py``
(``--smoke`` for the ~30 s CI variant, ``--engine`` to restrict scaling rows).
"""

import argparse
import math
import sys
import time

import numpy as np

from repro.core.protocol_tree import run_batch_rooting, run_protocol_rooting
from repro.core.soa_rooting import run_soa_rooting
from repro.experiments.harness import (
    TIER_CHOICES,
    Table,
    add_engine_argument,
    tier_filter,
)
from repro.graphs.portgraph import PortGraph

FULL_SIZES = (1_000, 5_000, 10_000)
FULL_VECTORIZED_ONLY = (50_000,)
SMOKE_SIZES = (500, 2_000)
ASSERT_N = 10_000
DELTA = 16
NUM_CHORD_SETS = 2


def overlay_like_graph(n: int, seed: int) -> PortGraph:
    """Connected Δ=16 multigraph with ``O(log n)`` diameter (the
    ring-plus-chords family; construction shared in PortGraph)."""
    return PortGraph.ring_with_chords(n, delta=DELTA, chords=NUM_CHORD_SETS, seed=seed)


def _flood_rounds(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n)))) + 8


def _time(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_equivalence(n: int = 400) -> None:
    """Bit-for-bit object-vs-batch agreement before timing anything."""
    graph = overlay_like_graph(n, seed=n)
    fr = _flood_rounds(n)
    obj = run_protocol_rooting(graph, fr, rng=np.random.default_rng(n), engine="legacy")
    bat = run_batch_rooting(graph, fr, rng=np.random.default_rng(n))
    assert obj.root == bat.root, "stacks disagree on the root"
    assert np.array_equal(obj.parent, bat.parent), "stacks disagree on parents"
    assert np.array_equal(obj.depth, bat.depth), "stacks disagree on depths"
    assert obj.metrics.as_dict() == bat.metrics.as_dict(), "stacks disagree on metrics"


def run_experiment(smoke: bool, engine_filter: str | None = None):
    check_equivalence()
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    vec_only = () if smoke else FULL_VECTORIZED_ONLY

    table = Table(
        "S2: rooting-phase scaling (min-id flooding + BFS)",
        ["n", "flood_rounds", "stack", "engine", "seconds", "msgs/sec"],
    )
    rows = {}

    def record(n, stack, engine, seconds, total_messages):
        rate = total_messages / seconds if seconds > 0 else float("inf")
        table.add(n, _flood_rounds(n), stack, engine, round(seconds, 3), int(rate))
        rows[(n, stack, engine)] = seconds

    for n in sizes:
        graph = overlay_like_graph(n, seed=n)
        fr = _flood_rounds(n)
        repeats = 1 if smoke else 2

        if engine_filter in (None, "vectorized"):
            result = run_batch_rooting(graph, fr, rng=np.random.default_rng(1))
            seconds = _time(
                lambda: run_batch_rooting(graph, fr, rng=np.random.default_rng(1)),
                repeats,
            )
            record(n, "batch-nodes", "vectorized", seconds, result.metrics.total_messages)

        if engine_filter == "soa":
            # The SoA tier rides the same graphs on request (its dedicated
            # scaling story, 20x assert and all, lives in bench_s3).
            result = run_soa_rooting(graph, fr, rng=np.random.default_rng(1))
            seconds = _time(
                lambda: run_soa_rooting(graph, fr, rng=np.random.default_rng(1)),
                repeats,
            )
            record(n, "soa", "vectorized", seconds, result.metrics.total_messages)

        if engine_filter in (None, "legacy"):
            result = run_protocol_rooting(
                graph, fr, rng=np.random.default_rng(1), engine="legacy"
            )
            seconds = _time(
                lambda: run_protocol_rooting(
                    graph, fr, rng=np.random.default_rng(1), engine="legacy"
                ),
                repeats=1,
            )
            record(n, "object-nodes", "legacy", seconds, result.metrics.total_messages)

            if n == ASSERT_N:
                # Engine-controlled comparison: identical batch nodes, only
                # the delivery engine differs.
                result = run_batch_rooting(
                    graph, fr, rng=np.random.default_rng(1), engine="legacy"
                )
                seconds = _time(
                    lambda: run_batch_rooting(
                        graph, fr, rng=np.random.default_rng(1), engine="legacy"
                    ),
                    repeats=1,
                )
                record(n, "batch-nodes", "legacy", seconds, result.metrics.total_messages)

    for n in vec_only:
        graph = overlay_like_graph(n, seed=n)
        fr = _flood_rounds(n)
        result = run_batch_rooting(graph, fr, rng=np.random.default_rng(1))
        seconds = _time(
            lambda: run_batch_rooting(graph, fr, rng=np.random.default_rng(1)),
            repeats=1,
        )
        record(n, "batch-nodes", "vectorized", seconds, result.metrics.total_messages)

    table.show()

    if not smoke and engine_filter is None:
        t_vec = rows[(ASSERT_N, "batch-nodes", "vectorized")]
        t_leg_same_nodes = rows[(ASSERT_N, "batch-nodes", "legacy")]
        t_leg_seed_stack = rows[(ASSERT_N, "object-nodes", "legacy")]
        engine_speedup = t_leg_same_nodes / t_vec
        stack_speedup = t_leg_seed_stack / t_vec
        print(
            f"n={ASSERT_N}: engine-controlled speedup {engine_speedup:.1f}x, "
            f"full-stack speedup {stack_speedup:.1f}x"
        )
        assert engine_speedup >= 4.0, (
            f"vectorized engine only {engine_speedup:.1f}x faster than legacy "
            f"on identical rooting nodes at n={ASSERT_N} (need >= 4x)"
        )
    return rows


def bench_s2_rooting_scaling(benchmark):
    from _common import run_once

    run_once(benchmark, lambda: run_experiment(smoke=False))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="~30s CI variant: small sizes, no asserts"
    )
    add_engine_argument(parser, choices=TIER_CHOICES)
    parser.add_argument(
        "--json",
        default=None,
        help="write the machine-readable repro-bench/v1 payload here",
    )
    args = parser.parse_args(argv)
    engine_filter = tier_filter("engine", args.engine)
    rows = run_experiment(smoke=args.smoke, engine_filter=engine_filter)
    if args.json:
        from _common import bench_payload, write_bench_json

        write_bench_json(
            args.json,
            bench_payload(
                "s2_rooting_scaling",
                config={"smoke": args.smoke, "engine_filter": engine_filter},
                rows=[
                    {"n": n, "stack": stack, "engine": engine, "seconds": round(s, 4)}
                    for (n, stack, engine), s in sorted(rows.items())
                ],
            ),
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
