"""E7 — §1: the paper's algorithm beats prior work and the strawmen.

Paper claims compared:

- prior supernode-merging constructions need ``Θ(log² n)`` rounds;
- pointer jumping achieves ``O(log n)`` rounds only with ``Θ(n)``
  messages per node;
- this paper: ``O(log n)`` rounds *and* ``O(log n)`` messages per node
  per round.

Measured here: rounds and peak per-node message loads for all four
approaches on the worst-case line input.  The shape to reproduce: ours
wins on rounds asymptotically (crossover vs the merging baseline) while
keeping polylogarithmic communication.
"""

import math

from _common import run_once, seeded
from repro.baselines import flooding, pointer_jumping, supernode_merge
from repro.core.pipeline import build_well_formed_tree
from repro.experiments.harness import Table, loglog_slope
from repro.graphs import generators as G


def bench_e7_rounds_comparison(benchmark):
    def experiment():
        table = Table(
            "E7: rounds vs n (line input)",
            ["n", "ours", "supernode_merge", "pointer_jump", "flooding"],
        )
        ours_rounds, merge_rounds, ns = [], [], []
        for n in (64, 256, 1024):
            ours = build_well_formed_tree(G.line_graph(n), rng=seeded(n))
            merge = supernode_merge(G.line_graph(n))
            pj = pointer_jumping(G.line_graph(min(n, 256)))
            fl = flooding(G.line_graph(n))
            table.add(n, ours.total_rounds, merge.total_rounds, pj.rounds, fl.rounds)
            ns.append(n)
            ours_rounds.append(ours.total_rounds)
            merge_rounds.append(merge.total_rounds)
        table.show()
        return ns, ours_rounds, merge_rounds

    ns, ours_rounds, merge_rounds = run_once(benchmark, experiment)
    # Ours grows like log n, the baseline like log^2 n: the ratio
    # baseline/ours must grow across the sweep.
    ratios = [m / o for m, o in zip(merge_rounds, ours_rounds)]
    assert ratios[-1] > ratios[0]
    # Ours stays within a constant of log2 n.
    for n, r in zip(ns, ours_rounds):
        assert r <= 40 * math.log2(n)


def bench_e7_message_comparison(benchmark):
    def experiment():
        table = Table(
            "E7b: peak per-node messages (the communication trade-off)",
            ["n", "ours(=Delta)", "pointer_jumping", "flooding_total"],
        )
        pj_peaks, ns = [], []
        for n in (64, 128, 256):
            from repro.core.params import ExpanderParams

            params = ExpanderParams.recommended(n)
            pj = pointer_jumping(G.line_graph(n))
            fl = flooding(G.line_graph(n))
            table.add(n, params.delta, pj.peak_messages, fl.total_messages)
            pj_peaks.append(pj.peak_messages)
            ns.append(n)
        table.show()
        return ns, pj_peaks

    ns, pj_peaks = run_once(benchmark, experiment)
    # Pointer jumping's peak load grows polynomially (≈ n^2 here),
    # vs our Θ(log n): slope ≥ 1.5 on the log-log fit.
    assert loglog_slope(ns, pj_peaks) > 1.5
