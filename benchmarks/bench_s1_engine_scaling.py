"""S1 — Engine scaling: legacy per-message vs. vectorized batched delivery.

The two network stacks run the *same* NCC0 protocol (one ``CreateExpander``
evolution, calibrated parameters):

- **legacy**: object messages through per-message Python loops — the
  seed's engine, kept as the differential-testing oracle;
- **vectorized**: :class:`BatchProtocolNode` arrays through the flat-buffer
  delivery core of ``SyncNetwork(engine="vectorized")``.

Measured here: wall-clock per engine across sizes (vectorized-only at the
largest sizes the legacy engine cannot reach in reasonable time), the
speedup, and — because speed without semantics is meaningless — an exact
cross-engine equivalence check at a differential-testable size.

Shape assertions (full mode): at ``n = 10⁴`` the vectorized engine is
≥ 5× faster than the legacy engine on the same batch nodes (the
engine-controlled comparison), and ≥ 3× faster than the full seed stack
(object nodes + legacy delivery).

Run standalone:  ``PYTHONPATH=src python benchmarks/bench_s1_engine_scaling.py``
(``--smoke`` for the ~30 s CI variant, ``--engine`` to restrict scaling rows).
"""

import argparse
import sys
import time

import numpy as np

from repro.core.batch_protocol import run_batch_expander
from repro.core.params import ExpanderParams
from repro.core.protocol import run_protocol_expander
from repro.experiments.harness import (
    ENGINE_CHOICES,
    Table,
    add_engine_argument,
    tier_filter,
)
from repro.graphs import generators as G

FULL_SIZES = (1_000, 5_000, 10_000)
FULL_VECTORIZED_ONLY = (50_000,)
SMOKE_SIZES = (500, 2_000)
ASSERT_N = 10_000


def _params(n: int) -> ExpanderParams:
    return ExpanderParams.recommended(n, ell=16).with_evolutions(1)


def _time(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_equivalence(n: int = 200) -> None:
    """Exact cross-engine agreement on a differential-testable size."""
    params = _params(n)
    g = G.line_graph(n)
    vec = run_batch_expander(g, params=params, rng=np.random.default_rng(n))
    leg = run_batch_expander(
        g, params=params, rng=np.random.default_rng(n), engine="legacy"
    )
    assert np.array_equal(vec.final_graph.ports, leg.final_graph.ports), (
        "engines disagree on the final graph"
    )
    assert vec.metrics.as_dict() == leg.metrics.as_dict(), "engines disagree on metrics"


def run_experiment(smoke: bool, engine_filter: str | None = None):
    check_equivalence()
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    vec_only = () if smoke else FULL_VECTORIZED_ONLY

    table = Table(
        "S1: round-engine scaling (one CreateExpander evolution)",
        ["n", "delta", "stack", "engine", "seconds", "msgs/sec"],
    )
    rows = {}

    def record(n, stack, engine, seconds, total_messages):
        params = _params(n)
        rate = total_messages / seconds if seconds > 0 else float("inf")
        table.add(n, params.delta, stack, engine, round(seconds, 3), int(rate))
        rows[(n, stack, engine)] = seconds

    for n in sizes:
        params = _params(n)
        g = G.line_graph(n)
        repeats = 1 if smoke else 2

        if engine_filter in (None, "vectorized"):
            result = run_batch_expander(g, params=params, rng=np.random.default_rng(1))
            seconds = _time(
                lambda: run_batch_expander(g, params=params, rng=np.random.default_rng(1)),
                repeats,
            )
            record(n, "batch-nodes", "vectorized", seconds, result.metrics.total_messages)

        if engine_filter in (None, "legacy"):
            result = run_protocol_expander(
                g, params=params, rng=np.random.default_rng(1), engine="legacy"
            )
            seconds = _time(
                lambda: run_protocol_expander(
                    g, params=params, rng=np.random.default_rng(1), engine="legacy"
                ),
                repeats,
            )
            record(n, "object-nodes", "legacy", seconds, result.metrics.total_messages)

            if n == ASSERT_N:
                # Engine-controlled comparison: identical batch nodes, only
                # the delivery engine differs.
                result = run_batch_expander(
                    g, params=params, rng=np.random.default_rng(1), engine="legacy"
                )
                seconds = _time(
                    lambda: run_batch_expander(
                        g, params=params, rng=np.random.default_rng(1), engine="legacy"
                    ),
                    repeats,
                )
                record(n, "batch-nodes", "legacy", seconds, result.metrics.total_messages)

    for n in vec_only:
        params = _params(n)
        g = G.line_graph(n)
        result = run_batch_expander(g, params=params, rng=np.random.default_rng(1))
        seconds = _time(
            lambda: run_batch_expander(g, params=params, rng=np.random.default_rng(1)),
            repeats=1,
        )
        record(n, "batch-nodes", "vectorized", seconds, result.metrics.total_messages)

    table.show()

    if not smoke and engine_filter is None:
        t_vec = rows[(ASSERT_N, "batch-nodes", "vectorized")]
        t_leg_same_nodes = rows[(ASSERT_N, "batch-nodes", "legacy")]
        t_leg_seed_stack = rows[(ASSERT_N, "object-nodes", "legacy")]
        engine_speedup = t_leg_same_nodes / t_vec
        stack_speedup = t_leg_seed_stack / t_vec
        print(
            f"n={ASSERT_N}: engine-controlled speedup {engine_speedup:.1f}x, "
            f"full-stack speedup {stack_speedup:.1f}x"
        )
        assert engine_speedup >= 5.0, (
            f"vectorized engine only {engine_speedup:.1f}x faster than legacy "
            f"on identical nodes at n={ASSERT_N} (need >= 5x)"
        )
        assert stack_speedup >= 3.0, (
            f"batched stack only {stack_speedup:.1f}x faster than the seed "
            f"stack at n={ASSERT_N} (need >= 3x)"
        )
    return rows


def bench_s1_engine_scaling(benchmark):
    from _common import run_once

    run_once(benchmark, lambda: run_experiment(smoke=False))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="~30s CI variant: small sizes, no asserts"
    )
    add_engine_argument(parser)
    parser.add_argument(
        "--json",
        default=None,
        help="write the machine-readable repro-bench/v1 payload here",
    )
    args = parser.parse_args(argv)
    # Filter only when the user chose an engine (CLI flag or REPRO_ENGINE
    # env var — tier_filter validates both and fails loudly on typos).
    engine_filter = tier_filter("engine", args.engine, choices=ENGINE_CHOICES)
    rows = run_experiment(smoke=args.smoke, engine_filter=engine_filter)
    if args.json:
        from _common import bench_payload, write_bench_json

        write_bench_json(
            args.json,
            bench_payload(
                "s1_engine_scaling",
                config={"smoke": args.smoke, "engine_filter": engine_filter},
                rows=[
                    {"n": n, "stack": stack, "engine": engine, "seconds": round(s, 4)}
                    for (n, stack, engine), s in sorted(rows.items())
                ],
            ),
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
