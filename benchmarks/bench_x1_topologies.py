"""X1 — §1.4 corollary: any well-behaved overlay in O(log n) rounds.

Paper claim: *"any 'well-behaved' overlay of logarithmic degree and
diameter (e.g., butterfly networks, path graphs, sorted rings, trees,
regular expanders, DeBruijn graphs, etc.) can be constructed in O(log n)
rounds, w.h.p."*

Measured here: all five implemented target topologies built on the
well-formed tree from a line input — degree, diameter, and construction
rounds per family.
"""

import math

from _common import run_once, seeded
from repro.core.pipeline import build_well_formed_tree
from repro.core.topologies import (
    build_butterfly,
    build_debruijn,
    build_hypercube,
    build_sorted_path,
    build_sorted_ring,
)
from repro.experiments.harness import Table, select_tier
from repro.graphs.generators import line_graph
from repro.runtime import RunContext


def bench_x1_structured_overlays(benchmark):
    # Every rooting tier builds the identical tree; REPRO_ROOTING selects
    # the execution path under measurement — one resolved context carries
    # it into every network the build constructs.
    ctx = RunContext.resolve(rooting=select_tier("rooting", default="batch"))

    def experiment():
        n = 256
        result = build_well_formed_tree(line_graph(n), rng=seeded(4), ctx=ctx)
        tree = result.tree
        builders = {
            "sorted_path": build_sorted_path,
            "sorted_ring": build_sorted_ring,
            "hypercube": build_hypercube,
            "butterfly": build_butterfly,
            "debruijn": build_debruijn,
        }
        table = Table(
            "X1: structured overlays from the well-formed tree (n = 256)",
            ["topology", "degree", "diameter", "connected", "total_rounds"],
        )
        rows = []
        base_rounds = result.total_rounds
        for name, build in builders.items():
            topo = build(tree)
            total = base_rounds + topo.rounds
            table.add(name, topo.max_degree(), topo.overlay_diameter(),
                      topo.is_connected(), total)
            rows.append((name, topo, total))
        table.show()
        return n, rows

    n, rows = run_once(benchmark, experiment)
    log_n = math.log2(n)
    for name, topo, total in rows:
        assert topo.is_connected(), name
        assert total <= 45 * log_n, f"{name}: construction not O(log n)"
        if name in ("sorted_path", "sorted_ring"):
            assert topo.max_degree() <= 2
        else:
            assert topo.max_degree() <= 2 * log_n + 2
            assert topo.overlay_diameter() <= 2 * log_n + 2
