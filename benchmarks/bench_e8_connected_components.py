"""E8 — Theorem 1.2: connected components in O(log m + log log n).

Paper claim: well-formed trees on every connected component; with a known
component bound ``m``, the runtime drops from ``O(log n)`` to
``O(log m + log log n)`` — smaller components should cost fewer rounds.

Measured here: correctness of the labels against ground truth, and the
hybrid-ledger round totals as the component bound ``m`` shrinks at fixed
total ``n``.
"""

from _common import run_once, seeded
from repro.experiments.harness import Table
from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets, connected_components
from repro.hybrid.components import connected_components_hybrid


def _mixture(num_components: int, comp_size: int, rng):
    parts = []
    for k in range(num_components):
        if k % 3 == 0:
            parts.append(G.line_graph(comp_size))
        elif k % 3 == 1:
            parts.append(G.cycle_graph(comp_size))
        else:
            parts.append(G.star_graph(comp_size))
    mix, _ = G.component_mixture(parts)
    return mix


def bench_e8_component_scaling(benchmark):
    def experiment():
        table = Table(
            "E8: rounds vs component bound m (n = 512 total)",
            ["m", "#comps", "correct", "total_rounds", "max_capacity"],
        )
        rows = []
        total = 512
        for m in (16, 64, 256):
            mix = _mixture(total // m, m, seeded(0))
            res = connected_components_hybrid(mix, rng=seeded(m), m_bound=m)
            truth = {
                min(c): sorted(c)
                for c in connected_components(adjacency_sets(mix))
            }
            got = {k: sorted(v) for k, v in res.components().items()}
            correct = got == truth
            rounds = res.ledger.total_rounds
            table.add(m, len(truth), correct, rounds, res.ledger.max_global_capacity)
            rows.append((m, correct, rounds))
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    for m, correct, rounds in rows:
        assert correct, f"m={m}: wrong component labels"
    # O(log m + log log n): smaller components finish in fewer rounds.
    assert rows[0][2] < rows[-1][2]
