"""A3 — Ablation: the Λ-sized minimum cut requirement (Definition 2.1).

Paper rationale: the ``Λ = Ω(log n)`` cut is what lets Karger's
cut-counting argument turn per-set Chernoff bounds into a w.h.p.
statement; *"with constant sized cuts, we cannot easily ensure this
property"*.  With ``Λ`` too small, evolutions lose cut edges faster than
concentration can protect them and the graph risks disconnecting.

Measured here: across seeds on the line input, the minimum-cut dip and
the disconnection rate as ``Λ`` shrinks from the calibrated value to 1.
"""

from _common import run_once, seeded
from repro.core.benign import make_benign
from repro.core.expander import ExpanderBuilder
from repro.core.params import ExpanderParams
from repro.experiments.harness import Table
from repro.graphs import generators as G
from repro.graphs.analysis import is_connected
from repro.graphs.mincut import min_cut_of_portgraph


def bench_a3_cut_parameter(benchmark):
    def experiment():
        n = 96
        seeds = 6
        table = Table(
            "A3: min-cut dip and disconnections vs Λ (line 96)",
            ["lam", "worst_dip", "mean_dip", "disconnections"],
        )
        rows = []
        for lam in (1, 2, 4, 7):
            dips = []
            disconnections = 0
            for seed in range(seeds):
                params = ExpanderParams(
                    delta=80, lam=lam, ell=16, num_evolutions=8
                )
                base, _ = make_benign(G.line_graph(n), params)
                builder = ExpanderBuilder(base, params, seeded(seed * 31 + lam))
                dip = min_cut_of_portgraph(base)
                alive = True
                for _ in range(params.num_evolutions):
                    builder.step()
                    if not is_connected(builder.current.neighbor_sets()):
                        alive = False
                        break
                    dip = min(dip, min_cut_of_portgraph(builder.current))
                if not alive:
                    disconnections += 1
                    dip = 0
                dips.append(dip)
            table.add(lam, min(dips), sum(dips) / len(dips), disconnections)
            rows.append((lam, sum(dips) / len(dips), disconnections))
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    by_lam = {lam: (mean_dip, disc) for lam, mean_dip, disc in rows}
    # The calibrated Λ keeps every run connected; Λ = 1 disconnects.
    assert by_lam[7][1] == 0
    assert by_lam[4][1] == 0
    assert by_lam[1][1] > 0
    # Larger Λ maintains larger cuts on average.
    assert by_lam[7][0] > by_lam[1][0]
