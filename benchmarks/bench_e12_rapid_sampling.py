"""E12 — Lemma 4.2: stitched walks ≡ plain walks, in O(log ℓ) rounds.

Paper claim: walks of length ``ℓ`` can be sampled in ``O(log ℓ)`` rounds
by red/blue stitching, with the surviving walks independent and correctly
distributed.

Measured here: total-variation distance between stitched and plain
endpoint distributions on a small benign graph (per walk length), plus
the round count and survivor yield per length.
"""

import math

import numpy as np

from _common import run_once, seeded
from repro.core.benign import make_benign
from repro.core.params import ExpanderParams
from repro.core.walks import run_token_walks
from repro.experiments.harness import Table
from repro.graphs import generators as G
from repro.hybrid.rapid_sampling import stitched_walks


def bench_e12_distribution_and_rounds(benchmark):
    def experiment():
        params = ExpanderParams(delta=32, lam=2, ell=8, num_evolutions=1)
        base, _ = make_benign(G.cycle_graph(12), params)
        table = Table(
            "E12: stitched vs plain walks (Lemma 4.2)",
            ["ell", "rounds", "rounds_bound", "survivors_from_0", "tv_distance"],
        )
        rows = []
        samples = 40_000
        for ell in (4, 8, 16, 32):
            plain = run_token_walks(
                base,
                tokens_per_node=0,
                length=ell,
                rng=seeded(1),
                starts=np.zeros(samples, dtype=np.int64),
            )
            # Scale the oversampling with ell so ~2000 walks survive per
            # origin regardless of length (keeps TV sampling noise flat).
            stitched = stitched_walks(
                base, tokens_per_node=1000 * ell, target_length=ell, rng=seeded(2)
            )
            mask = stitched.origins == 0
            p = np.bincount(plain.endpoints, minlength=12) / samples
            q = np.bincount(stitched.endpoints[mask], minlength=12) / max(
                1, mask.sum()
            )
            tv = 0.5 * float(np.abs(p - q).sum())
            bound = 2 + math.ceil(math.log2(ell / 2))
            table.add(ell, stitched.rounds, bound, int(mask.sum()), tv)
            rows.append((ell, stitched.rounds, bound, tv))
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    for ell, rounds, bound, tv in rows:
        assert rounds <= bound, f"ell={ell}: stitching used too many rounds"
        assert tv < 0.05, f"ell={ell}: stitched distribution off (TV={tv})"
