"""E3 — Theorem 1.1: O(log n) rounds, O(log n) final diameter.

Paper claim: from any weakly connected constant-degree graph, a
well-formed tree is built in ``O(log n)`` rounds w.h.p., and the final
expander graph ``G_L`` has diameter ``O(log n)``.

Measured here: total pipeline rounds and final-overlay diameter on the
worst-case line input across an ``n`` sweep, with the ``y ≈ a + b·log₂ n``
fit.  The reproduction claim holds when the fit is tight (R² high) and
the per-``log n`` ratio stays bounded.
"""

import math

from _common import run_once, seeded
from repro.core.pipeline import build_well_formed_tree
from repro.experiments.harness import Table, fit_vs_logn
from repro.graphs import generators as G
from repro.graphs.analysis import diameter


def bench_e3_rounds_and_diameter(benchmark):
    def experiment():
        table = Table(
            "E3: rounds and diameter vs n (Theorem 1.1, line input)",
            ["n", "rounds", "rounds/log2n", "overlay_diam", "wft_depth", "wft_degree"],
        )
        ns, rounds, diams = [], [], []
        for n in (64, 128, 256, 512, 1024):
            result = build_well_formed_tree(G.line_graph(n), rng=seeded(n))
            adj = result.final_graph().neighbor_sets()
            diam = diameter(adj, exact_threshold=300)
            log_n = math.log2(n)
            table.add(
                n,
                result.total_rounds,
                result.total_rounds / log_n,
                diam,
                result.well_formed.depth(),
                result.well_formed.max_degree(),
            )
            ns.append(n)
            rounds.append(result.total_rounds)
            diams.append(diam)
        a, b, r2 = fit_vs_logn(ns, rounds)
        print(f"rounds fit: {a:.1f} + {b:.1f} * log2(n), R^2 = {r2:.4f}")
        table.show()
        return ns, rounds, diams, r2

    ns, rounds, diams, r2 = run_once(benchmark, experiment)
    # O(log n) rounds: excellent linear fit in log n.
    assert r2 > 0.98
    # Bounded rounds-per-log ratio (within 2x across the sweep).
    ratios = [r / math.log2(n) for n, r in zip(ns, rounds)]
    assert max(ratios) <= 2 * min(ratios)
    # O(log n) diameter with small constant.
    for n, d in zip(ns, diams):
        assert d <= 2 * math.log2(n)
