"""E11 — Theorem 1.5: MIS in O(log d + log log n) rounds.

Paper claim: shattering (Ghaffari, ``O(log d)`` rounds) leaves small
undecided components; per-component overlays + parallel Métivier
executions finish in ``O(log d + log log n)`` total.  The round count
scales with the *degree*, not with ``n``.

Measured here: validity of the MIS across a degree sweep at fixed ``n``,
shattered-component sizes, and the round ledger as a function of ``d``
(with an n-sweep control at fixed degree showing near-flat rounds).
"""

import math

from _common import run_once, seeded
from repro.experiments.harness import Table
from repro.graphs import generators as G
from repro.graphs.analysis import adjacency_sets
from repro.hybrid.mis import mis_hybrid, verify_mis


def bench_e11_degree_sweep(benchmark):
    def experiment():
        table = Table(
            "E11: MIS rounds vs degree d (n = 600; Theorem 1.5)",
            ["d", "valid", "shatter_rounds", "max_undecided_comp", "total_rounds"],
        )
        rows = []
        n = 600
        for d in (4, 8, 16, 32):
            g = G.random_regular(n, d, seeded(d))
            res = mis_hybrid(g, rng=seeded(d + 100))
            valid = verify_mis(adjacency_sets(g), res.in_mis)
            max_comp = max(res.component_sizes, default=0)
            table.add(
                d, valid, res.shattering_rounds, max_comp, res.ledger.total_rounds
            )
            rows.append((d, valid, res.ledger.total_rounds))
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    assert all(valid for _d, valid, _r in rows)
    # O(log d): rounds grow with log d, not d — going 4 -> 32 (8x degree)
    # should cost ~3 extra log-units, far below 8x.
    r4 = rows[0][2]
    r32 = rows[-1][2]
    assert r32 <= 3 * r4


def bench_e11_n_independence(benchmark):
    def experiment():
        table = Table(
            "E11b: MIS rounds vs n at fixed degree (d = 6)",
            ["n", "valid", "total_rounds"],
        )
        rows = []
        for n in (200, 400, 800):
            g = G.random_regular(n, 6, seeded(n))
            res = mis_hybrid(g, rng=seeded(n + 5))
            valid = verify_mis(adjacency_sets(g), res.in_mis)
            table.add(n, valid, res.ledger.total_rounds)
            rows.append((n, valid, res.ledger.total_rounds))
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    assert all(valid for _n, valid, _r in rows)
    # Rounds nearly flat in n (only a log log n term may move).
    rounds = [r for _n, _v, r in rows]
    assert max(rounds) - min(rounds) <= 6
