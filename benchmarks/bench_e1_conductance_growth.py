"""E1 — Lemma 3.1(2): conductance grows per evolution until constant.

Paper claim: ``Φ(G_{i+1}) ≥ (√ℓ/640)·Φ(G_i)`` until a universal constant
is reached; consequently the spectral gap of the evolution graphs rises
monotonically (up to noise) from the input's ``Θ(1/n²)``-scale value to a
constant plateau independent of ``n``.

Measured here: the spectral-gap trajectory of ``CreateExpander`` on the
adversarial workloads (line / cycle / grid / tree), and the plateau's
independence of ``n``.
"""

import numpy as np

from _common import run_once, seeded
from repro.core.benign import make_benign
from repro.core.expander import ExpanderBuilder
from repro.core.params import ExpanderParams
from repro.experiments.harness import Table
from repro.graphs import generators as G
from repro.graphs.spectral import spectral_gap


WORKLOADS = ["line", "cycle", "grid", "binary_tree"]


def _trajectory(name: str, n: int, seed: int) -> list[float]:
    graph = G.make_workload(name, n, seeded(seed))
    params = ExpanderParams.recommended(graph.number_of_nodes())
    base, _ = make_benign(graph, params)
    builder = ExpanderBuilder(base, params, seeded(seed))
    gaps = [spectral_gap(base)]
    for _ in range(params.num_evolutions):
        builder.step()
        gaps.append(spectral_gap(builder.current))
    return gaps


def bench_e1_gap_trajectories(benchmark):
    def experiment():
        table = Table(
            "E1: spectral gap per evolution (Lemma 3.1)",
            ["workload", "n", "gap_0", "gap_mid", "gap_final", "monotone_rises"],
        )
        results = {}
        for name in WORKLOADS:
            gaps = _trajectory(name, 128, seed=1)
            mid = gaps[len(gaps) // 2]
            rises = gaps[-1] > 10 * gaps[0] + 1e-12
            table.add(name, 128, gaps[0], mid, gaps[-1], rises)
            results[name] = gaps
        table.show()
        return results

    results = run_once(benchmark, experiment)
    for name, gaps in results.items():
        assert gaps[-1] > 0.05, f"{name}: no constant-conductance plateau"
        assert gaps[-1] > 10 * gaps[0], f"{name}: gap did not grow"


def bench_e1_plateau_independent_of_n(benchmark):
    def experiment():
        table = Table(
            "E1b: plateau gap vs n (line input)",
            ["n", "final_gap", "evolutions"],
        )
        finals = []
        for n in (64, 128, 256):
            gaps = _trajectory("line", n, seed=2)
            finals.append(gaps[-1])
            table.add(n, gaps[-1], len(gaps) - 1)
        table.show()
        return finals

    finals = run_once(benchmark, experiment)
    # Constant conductance: final gaps within a 3x band across sizes.
    assert max(finals) <= 3 * min(finals)
    assert min(finals) > 0.05
