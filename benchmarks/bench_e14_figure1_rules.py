"""E14 — Figure 1: the Tarjan–Vishkin edge-grouping rules.

The paper's only figure illustrates the three rules that build the helper
graph ``G''`` (§4.4).  This bench reconstructs each panel as a concrete
gadget graph and checks the rules produce exactly the depicted
connections:

- *left panel* (rule 1): a non-tree edge ``{v, w}`` between different
  subtrees joins the parent edges of ``v`` and ``w``;
- *centre panel* (rule 2): a non-tree edge escaping ``v``'s subtree joins
  the parent edges along the two tree paths to the lowest common
  ancestor;
- *right panel* (rule 3): the non-tree edge ``{v, w}`` itself is attached
  to the component of ``w``'s parent edge (``l(v) < l(w)``).
"""

import networkx as nx
import numpy as np

from _common import run_once, seeded
from repro.core.child_sibling import RootedTree
from repro.core.euler import preorder_and_sizes
from repro.experiments.harness import Table
from repro.graphs.analysis import adjacency_sets
from repro.hybrid.biconnectivity import (
    biconnected_components_hybrid,
    tarjan_vishkin_rules,
)


def _rules_for(graph: nx.Graph, parent: list[int], root: int):
    tree = RootedTree(root=root, parent=np.array(parent))
    labels, nd, _ = preorder_and_sizes(tree)
    adj = adjacency_sets(graph)
    from repro.hybrid.biconnectivity import _subtree_aggregates

    low, high = _subtree_aggregates(tree, labels, nd, adj)
    pairs = tarjan_vishkin_rules(tree, labels, nd, low, high, adj)
    return {tuple(sorted(p)) for p in pairs}, labels


def bench_e14_rules(benchmark):
    def experiment():
        table = Table(
            "E14: Figure 1 rule gadgets",
            ["panel", "expected_join", "produced", "match"],
        )
        results = []

        # Left panel (rule 1): root 0, children 1 (u) and 2 (x);
        # v = 3 under u, w = 4 under x; non-tree edge {3, 4}.
        g1 = nx.Graph([(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)])
        pairs1, _ = _rules_for(g1, parent=[0, 0, 0, 1, 2], root=0)
        match1 = (3, 4) in pairs1
        table.add("rule1", "(v,w)=(3,4)", sorted(pairs1), match1)
        results.append(match1)

        # Centre panel (rule 2): chain 0 (u) - 1 (v) - 2 (w) - 3 with a
        # non-tree edge {3, 0}: w's subtree escapes v's subtree, so the
        # parent edges of v and w join.
        g2 = nx.Graph([(0, 1), (1, 2), (2, 3), (3, 0)])
        pairs2, _ = _rules_for(g2, parent=[0, 0, 1, 2], root=0)
        match2 = (1, 2) in pairs2 and (2, 3) in pairs2
        table.add("rule2", "(v,w)=(1,2)+(2,3)", sorted(pairs2), match2)
        results.append(match2)

        # Right panel (rule 3): triangle 0-1-2 plus tail; the non-tree
        # edge {0, 2} must land in the component of 2's parent edge.
        g3 = nx.Graph([(0, 1), (1, 2), (0, 2)])
        res = biconnected_components_hybrid(g3, rng=seeded(0), tree_source="bfs")
        comp_of_nontree = res.edge_component[(0, 2)]
        comp_of_parent_edge = res.edge_component[(1, 2)]
        match3 = comp_of_nontree == comp_of_parent_edge
        table.add("rule3", "component({0,2}) == component({1,2})", comp_of_nontree, match3)
        results.append(match3)

        table.show()
        return results

    results = run_once(benchmark, experiment)
    assert all(results), "a Figure 1 rule gadget did not reproduce"


def bench_e14_cycle_is_one_component(benchmark):
    def experiment():
        from repro.graphs.generators import cycle_graph

        res = biconnected_components_hybrid(
            cycle_graph(9), rng=seeded(1), tree_source="bfs"
        )
        return len(res.components), res.is_biconnected

    ncomp, bicon = run_once(benchmark, experiment)
    assert ncomp == 1 and bicon
