"""E5 — Lemma 3.2: token congestion stays below 3Δ/8, w.h.p.

Paper claim: during the random-walk rounds, the number of tokens resident
at any node exceeds ``3Δ/8`` with probability at most ``e^{-Δ}`` — this
is what keeps every message within the NCC0 budget and lets every walk
create its edge.

Measured here: the maximum per-round token load across many seeds and a
large vectorised instance (n = 4096), reported against the ``3Δ/8`` cap.
"""

from _common import run_once, seeded
from repro.core.benign import make_benign
from repro.core.params import ExpanderParams
from repro.core.walks import run_token_walks
from repro.experiments.harness import Table
from repro.graphs import generators as G


def bench_e5_congestion(benchmark):
    def experiment():
        table = Table(
            "E5: max token load vs the 3Δ/8 cap (Lemma 3.2)",
            ["n", "delta", "cap", "max_load", "seeds", "violations"],
        )
        rows = []
        for n in (256, 1024, 4096):
            params = ExpanderParams.recommended(n)
            base, _ = make_benign(G.line_graph(n), params)
            worst = 0
            violations = 0
            seeds = 8 if n <= 1024 else 3
            for seed in range(seeds):
                walk = run_token_walks(
                    base,
                    tokens_per_node=params.tokens_per_node,
                    length=params.ell,
                    rng=seeded(seed),
                )
                peak = int(walk.max_load_per_round.max())
                worst = max(worst, peak)
                if peak > params.accept_cap:
                    violations += 1
            table.add(n, params.delta, params.accept_cap, worst, seeds, violations)
            rows.append((n, params.accept_cap, worst, violations))
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    for n, cap, worst, violations in rows:
        assert violations == 0, f"n={n}: congestion exceeded 3Δ/8"
        assert worst <= cap
