"""X2 — §1.4 corollary: monitoring in O(log n) instead of O(log² n).

Paper claim: *"Every monitoring problem presented in [27] can be solved
in time O(log n), w.h.p., instead of O(log² n) deterministically"* —
node/edge counts and bipartiteness become single aggregations once a
well-formed tree exists.

Measured here: per-query round costs over the well-formed tree vs. the
``Θ(log² n)`` supernode machinery of [27] (whose round cost the E7
baseline measures), plus correctness of every monitor.

The overlay construction's rooting phase (and hence the whole path into
the monitors) runs on the execution tier selected by the ``REPRO_ROOTING``
environment variable (``reference`` / ``protocol`` / ``batch`` / ``soa``)
— every tier builds the identical tree, so the measured rounds are
tier-independent.
"""

import math

import networkx as nx

from _common import run_once, seeded
from repro.baselines import supernode_merge
from repro.core.pipeline import build_well_formed_tree
from repro.experiments.harness import Table, select_tier
from repro.graphs import generators as G
from repro.hybrid.monitoring import NetworkMonitor
from repro.runtime import RunContext


def bench_x2_monitor_battery(benchmark):
    rooting = select_tier("rooting", default="batch")
    # One resolved context carries the tier into every network the
    # builds below construct.
    ctx = RunContext.resolve(rooting=rooting)

    def experiment():
        table = Table(
            f"X2: monitoring query rounds (rooting={rooting} tree vs [27] machinery)",
            ["n", "query", "value", "correct", "rounds", "log2n", "merge_rounds(log^2)"],
        )
        rows = []
        for n in (128, 512):
            g = G.torus_2d(int(math.isqrt(n)), int(math.isqrt(n)))
            n_actual = g.number_of_nodes()
            overlay = build_well_formed_tree(g, rng=seeded(n), ctx=ctx)
            monitor = NetworkMonitor(g, tree=overlay.tree)
            merge_rounds = supernode_merge(g).total_rounds
            truth = {
                "node_count": n_actual,
                "edge_count": g.number_of_edges(),
                "max_degree": max(d for _, d in g.degree),
                "is_bipartite": nx.is_bipartite(g),
            }
            for query, expected in truth.items():
                report = getattr(monitor, query)()
                correct = report.value == expected
                table.add(
                    n_actual,
                    query,
                    report.value,
                    correct,
                    report.rounds,
                    round(math.log2(n_actual), 1),
                    merge_rounds,
                )
                rows.append((n_actual, query, correct, report.rounds, merge_rounds))
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    for n, query, correct, rounds, merge_rounds in rows:
        assert correct, f"{query} wrong at n={n}"
        if query != "is_bipartite":  # bipartiteness also pays the BFS
            assert rounds <= 2 * math.log2(n) + 2
        assert rounds < merge_rounds
