"""A2 — Ablation: why benign graphs must be lazy (Definition 2.1).

Paper rationale: *"If the graphs were not lazy, many theorems from the
analysis of Markov chains would not hold as the graph could be
bipartite."*  On a bipartite graph, non-lazy walks of even length ``ℓ``
can only end on the starting side — every sampled edge stays within one
parity class and the evolution disconnects the two sides from each other.

Measured here: one evolution on an even cycle, with and without self-
loops, using even-length walks.  The fraction of created edges that cross
the parity classes collapses to 0 without laziness and stays ~1/2 with
it.
"""

import numpy as np

from _common import run_once, seeded
from repro.core.expander import ExpanderBuilder
from repro.core.params import ExpanderParams
from repro.experiments.harness import Table
from repro.graphs.portgraph import PortGraph


def _even_cycle_ports(n: int, delta: int, lazy: bool) -> PortGraph:
    """Even cycle with every edge copied to fill delta (lazy=False) or
    half of delta (lazy=True, rest self-loops)."""
    copies = (delta // 2) // 2 if lazy else delta // 2
    ends_a = np.repeat(np.arange(n), copies)
    ends_b = np.repeat((np.arange(n) + 1) % n, copies)
    return PortGraph.from_edge_multiset(
        n=n, delta=delta, endpoints_a=ends_a, endpoints_b=ends_b
    )


def _parity_crossing_fraction(graph: PortGraph) -> float:
    total = 0
    crossing = 0
    for v, u in graph.edge_multiset():
        total += 1
        if (v % 2) != (u % 2):
            crossing += 1
    return crossing / max(1, total)


def bench_a2_laziness(benchmark):
    def experiment():
        n, delta = 32, 32
        params = ExpanderParams(delta=delta, lam=2, ell=8, num_evolutions=1)
        table = Table(
            "A2: parity-crossing edges after one evolution (even cycle)",
            ["variant", "self_loops_min", "crossing_fraction"],
        )
        results = {}
        for lazy in (True, False):
            base = _even_cycle_ports(n, delta, lazy)
            builder = ExpanderBuilder(base, params, seeded(3))
            builder.step()
            frac = _parity_crossing_fraction(builder.current)
            label = "lazy" if lazy else "non-lazy"
            table.add(label, int(base.self_loop_counts().min()), frac)
            results[label] = frac
        table.show()
        return results

    results = run_once(benchmark, experiment)
    # Even-length walks on the bipartite cycle never change parity.
    assert results["non-lazy"] == 0.0
    # Lazy walks mix parities (roughly half the edges cross).
    assert results["lazy"] > 0.25
