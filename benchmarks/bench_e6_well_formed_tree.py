"""E6 — §1.2/§2.1: the output is a well-formed tree.

Paper claim: the final structure is a rooted tree containing all nodes,
with constant degree (≤ 3 after the child–sibling + Euler rebalancing)
and depth ``O(log n)``.

Measured here: degree and depth of the output tree across every workload
in the registry, against the ``⌈log₂ n⌉ + 1`` depth bound the binary-heap
rebalancing guarantees.
"""

import math

from _common import run_once, seeded
from repro.core.pipeline import build_well_formed_tree
from repro.experiments.harness import Table
from repro.graphs import generators as G


def bench_e6_tree_quality(benchmark):
    def experiment():
        table = Table(
            "E6: well-formed tree quality across workloads",
            ["workload", "n", "degree", "depth", "depth_bound", "rounds"],
        )
        rows = []
        for name in sorted(G.WORKLOADS):
            graph = G.make_workload(name, 96, seeded(3))
            n = graph.number_of_nodes()
            dmax = max(d for _, d in graph.degree)
            if dmax * 4 > 200:  # high-degree workloads go through Section 4
                continue
            result = build_well_formed_tree(graph, rng=seeded(7))
            depth_bound = math.ceil(math.log2(n)) + 1
            table.add(
                name,
                n,
                result.well_formed.max_degree(),
                result.well_formed.depth(),
                depth_bound,
                result.total_rounds,
            )
            rows.append(
                (name, result.well_formed.max_degree(), result.well_formed.depth(), depth_bound)
            )
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    assert len(rows) >= 8
    for name, degree, depth, bound in rows:
        assert degree <= 3, f"{name}: degree {degree} > 3"
        assert depth <= bound, f"{name}: depth {depth} > {bound}"
