"""A1 — Ablation: the √ℓ speed-up of longer walks (Kwok–Lau, Lemma 2.2).

Paper mechanism: each evolution multiplies the conductance by
``Ω(√ℓ)``, so the number of evolutions to reach constant conductance
should *decrease* as the walk length ``ℓ`` grows (the reason the hybrid
variant's ``ℓ = Θ(Λ²)`` yields ``O(log m / log log n)`` evolutions).

Measured here: evolutions until the spectral gap reaches a fixed
threshold on a fixed line input, for ``ℓ ∈ {2, 4, 8, 16, 32}``.
"""

from _common import run_once, seeded
from repro.core.benign import make_benign
from repro.core.expander import ExpanderBuilder
from repro.core.params import ExpanderParams
from repro.experiments.harness import Table
from repro.graphs import generators as G
from repro.graphs.spectral import spectral_gap


def bench_a1_evolutions_vs_ell(benchmark):
    def experiment():
        n = 256
        threshold = 0.05
        table = Table(
            "A1: evolutions to reach gap 0.05 vs walk length (line 256)",
            ["ell", "evolutions", "final_gap", "walk_rounds_total"],
        )
        rows = []
        for ell in (2, 4, 8, 16, 32):
            params = ExpanderParams.recommended(n, ell=ell)
            base, _ = make_benign(G.line_graph(n), params)
            builder = ExpanderBuilder(base, params, seeded(ell))
            evolutions = 0
            gap = spectral_gap(base)
            while gap < threshold and evolutions < 60:
                builder.step()
                evolutions += 1
                gap = spectral_gap(builder.current)
            table.add(ell, evolutions, gap, evolutions * (ell + 1))
            rows.append((ell, evolutions))
        table.show()
        return rows

    rows = run_once(benchmark, experiment)
    evolutions = [e for _ell, e in rows]
    # Longer walks need fewer evolutions, monotonically (up to one
    # plateau step of noise).
    assert evolutions[0] > evolutions[-1]
    for a, b in zip(evolutions, evolutions[1:]):
        assert b <= a + 1
