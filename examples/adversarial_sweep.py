"""Adversarial sweep: rooting under simultaneous delays, drops and churn.

Real overlays do not fail one adversary at a time — footnote 2's message
delays, §1.1's capacity drops, and §1.4's churn act together.  The
scenario engine (`repro.scenarios`) composes them declaratively: a
:class:`ScenarioSpec` stacks link delays, oblivious message drops, and
crash waves; the compiled fault streams are applied inside the delivery
tail, so the same spec + seed hits every execution tier identically.

This example drives a small delay × churn grid through
:class:`ScenarioRunner` on the SoA tier (delay sweeps are columnar end to
end — a flat release-time queue instead of per-node message holding) and
prints a survival/convergence table: how often rooting still quiesces,
and how much of the population the BFS tree reaches, as the adversary
stack grows.

Run:  PYTHONPATH=src python examples/adversarial_sweep.py
"""

import numpy as np

from repro.experiments.harness import Table
from repro.scenarios import CrashWave, LinkDelay, MessageDrop, ScenarioRunner, ScenarioSpec


def main() -> None:
    n = 1024
    seeds = tuple(range(5))
    delays = (1, 4, 8)
    crash_fractions = (0.0, 0.1, 0.25)

    specs = []
    for d in delays:
        for c in crash_fractions:
            specs.append(
                ScenarioSpec(
                    name=f"sweep/d{d}-c{c:g}",
                    delay=LinkDelay(d) if d > 1 else None,
                    drop=MessageDrop(0.01),  # a whiff of link loss throughout
                    crashes=(CrashWave(round_no=3, fraction=c),) if c > 0 else (),
                    fault_seed=42,
                )
            )

    runner = ScenarioRunner(sizes=(n,), seeds=seeds, tiers=("soa",))
    print(
        f"rooting n={n} under {len(specs)} adversary stacks x {len(seeds)} seeds "
        "(SoA tier, columnar synchroniser) ..."
    )
    payload = runner.run_grid(tuple(specs))

    table = Table(
        f"adversarial sweep: delay x churn at n = {n} (drop p = 0.01)",
        [
            "max_delay",
            "crash_frac",
            "converged",
            "spanned",
            "mean_assigned",
            "mean_dilation",
            "fault_drops",
        ],
    )
    for spec in specs:
        rows = [r for r in payload["rows"] if r["scenario"]["name"] == spec.name]
        dilations = [
            r["elapsed_time_units"] / r["rounds"] for r in rows if r["rounds"]
        ]
        crash_frac = rows[0]["scenario"]["crashes"][0]["fraction"] if rows[0]["scenario"]["crashes"] else 0.0
        table.add(
            rows[0]["scenario"]["max_delay"],
            crash_frac,
            f"{sum(r['converged'] for r in rows)}/{len(rows)}",
            f"{sum(r['spanned'] for r in rows)}/{len(rows)}",
            float(np.mean([r["assigned_fraction"] for r in rows])),
            float(np.mean(dilations)) if dilations else 0.0,
            sum(r["fault_drops"] for r in rows),
        )
    table.show()

    print(
        "reading: with no churn the delayed runs still build the full tree\n"
        "(the synchroniser barrier makes delays a pure wall-clock dilation);\n"
        "crash waves isolate nodes mid-flood, so the tree only reaches the\n"
        "surviving fraction and heavy churn costs convergence entirely."
    )


if __name__ == "__main__":
    main()
