"""Tracing an adversarial run: watch the crash wave round by round.

The round-trace layer (``repro.obs``, docs/observability.md) records a
run without changing it — contract C7 guarantees a traced execution is
bit-for-bit the untraced one.  This example traces two scenario cells
through the ambient ``capture()`` scope:

1. **rooting under a crash wave** — 20% of the nodes die at round 3;
   the per-round timeline shows the wave as a ``!faults`` round and the
   flood shrinking afterwards;
2. **churn-rebuild** — the same adversary, then the §4 hybrid pipeline
   rebuilds a well-formed forest over the survivors; the span table
   shows where the rebuild's time actually goes, stage by stage.

It then demonstrates the invariance claim directly (traced vs untraced
rows are equal) and prints the timeline and summary the way
``python -m repro.obs timeline|summary trace_round_timeline.jsonl``
would.

Run:  PYTHONPATH=src python examples/trace_round_timeline.py
"""

from repro.graphs.portgraph import PortGraph
from repro.obs import capture
from repro.obs.cli import main as obs_cli
from repro.scenarios import CrashWave, ScenarioSpec
from repro.scenarios.runner import (
    run_churn_rebuild_scenario,
    run_rooting_scenario,
    tier_invariant_view,
)

TRACE_PATH = "trace_round_timeline.jsonl"
N = 1024


def run_cells() -> list[dict]:
    """Both scenario cells; inside ``capture()`` they trace themselves."""
    graph = PortGraph.ring_with_chords(N, delta=8, chords=1, seed=7)
    spec = ScenarioSpec(
        name="example/crash20",
        crashes=(CrashWave(round_no=3, fraction=0.2),),
        fault_seed=11,
    )
    rows = [run_rooting_scenario(graph, spec, seed=0, tier="soa")]
    rows.append(run_churn_rebuild_scenario(graph, spec, seed=0, tier="soa"))
    return rows


def main() -> None:
    print(f"untraced baseline over n={N} ...")
    baseline = run_cells()

    print(f"traced run -> {TRACE_PATH}")
    with capture(TRACE_PATH, meta={"example": "trace_round_timeline", "n": N}):
        traced = run_cells()

    # The C7 claim, demonstrated: tracing changed nothing but wall time.
    assert [tier_invariant_view(r) for r in traced] == [
        tier_invariant_view(r) for r in baseline
    ], "tracing perturbed the run — contract C7 violated"
    print("traced == untraced (tier-invariant rows identical)\n")

    print("=== per-round timeline (crash wave = the !faults round) ===")
    obs_cli(["timeline", TRACE_PATH, "--width", "32"])

    print("\n=== summary (rebuild stages in the span table) ===")
    obs_cli(["summary", TRACE_PATH, "--top", "3"])

    rooting = traced[0]
    rebuild = traced[1]
    print(
        f"\nrooting converged={rooting['converged']} in "
        f"{rooting['rounds']} rounds with {rooting['fault_drops']} "
        f"fault-dropped messages; rebuild kept {rebuild['survivors']} "
        f"survivors in {rebuild['components']} component(s)."
    )


if __name__ == "__main__":
    main()
