"""P2P bootstrap: building a structured overlay from stale peer caches.

Scenario (the paper's §1 motivation): peers of a P2P system come back
online knowing only a few stale addresses — a sparse, *directed*, weakly
connected knowledge graph.  Before any DHT or broadcast tree can work,
the system needs a low-diameter overlay, and it needs it fast.

This example:

1. models the stale caches as a randomly oriented sparse graph (a random
   tree plus a few shortcut edges — weakly connected, low conductance);
2. runs ``CreateExpander`` and shows the network becoming usable
   (diameter / conductance per evolution);
3. uses the final well-formed tree for the bread-and-butter P2P
   primitives the paper lists: aggregation (count peers) and broadcast,
   both in ``O(log n)`` hops.

Run:  python examples/p2p_bootstrap.py
"""

import math

import numpy as np

from repro import build_well_formed_tree
from repro.graphs.analysis import adjacency_sets, diameter
from repro.graphs.generators import random_orientation, random_tree
from repro.graphs.spectral import spectral_gap


def stale_peer_caches(n: int, rng: np.random.Generator):
    """A weakly connected directed knowledge graph: every peer knows its
    inviter (random tree) and a couple of random old contacts."""
    base = random_tree(n, rng)
    extra = 0
    nodes = np.arange(n)
    for _ in range(n // 4):
        a, b = rng.choice(nodes, size=2, replace=False)
        if not base.has_edge(int(a), int(b)):
            base.add_edge(int(a), int(b))
            extra += 1
    directed = random_orientation(base, rng)
    return directed, extra


def main() -> None:
    n = 512
    rng = np.random.default_rng(2024)
    knowledge, extra = stale_peer_caches(n, rng)
    degs = [d for _, d in knowledge.degree()]
    print(
        f"bootstrap state: {n} peers, {knowledge.number_of_edges()} stale "
        f"links ({extra} shortcuts), max cache size {max(degs)}"
    )
    print(f"initial diameter: {diameter(adjacency_sets(knowledge))}")

    result = build_well_formed_tree(knowledge, rng=rng, track_gap=True)

    print("\noverlay convergence (spectral gap per evolution):")
    for i, stats in enumerate(result.history, start=1):
        print(
            f"  evolution {i:2d}: gap={stats.spectral_gap:.4f} "
            f"tokens_accepted={stats.tokens_accepted}"
        )

    print(f"\noverlay ready after {result.total_rounds} rounds "
          f"({result.total_rounds / math.log2(n):.1f} x log2 n)")
    print(f"overlay diameter: {result.overlay_diameter()}")

    # --- P2P primitives on the well-formed tree -----------------------
    tree = result.tree
    children = tree.children_lists()
    depth = tree.depth_array()

    # Aggregation (convergecast): peer count, max staleness, etc. climb
    # the tree in depth() rounds.
    subtree_size = np.ones(n, dtype=np.int64)
    for v in sorted(range(n), key=lambda v: -int(depth[v])):
        for c in children[v]:
            subtree_size[v] += subtree_size[c]
    print("\naggregation demo (convergecast up the well-formed tree):")
    print(f"  root learns peer count = {subtree_size[tree.root]} "
          f"in {int(depth.max())} rounds")

    # Broadcast: one message down the tree reaches everyone.
    print("broadcast demo:")
    print(f"  a root announcement reaches all {n} peers in "
          f"{int(depth.max())} rounds (vs {diameter(adjacency_sets(knowledge))} "
          "hops on the stale graph)")


if __name__ == "__main__":
    main()
