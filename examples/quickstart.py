"""Quickstart: from a line network to a well-formed tree in O(log n) rounds.

The paper's headline result (Theorem 1.1): any weakly connected
constant-degree graph can be transformed into a *well-formed tree* —
rooted, degree ≤ 3, depth ``O(log n)`` — in ``O(log n)`` synchronous
rounds with ``O(log n)`` messages per node per round.

This script runs the full pipeline on the worst-case input (a line of
1024 nodes, diameter 1023) and prints what happened in each phase.

Run:  python examples/quickstart.py
"""

import math

import numpy as np

from repro import build_well_formed_tree
from repro.graphs.generators import line_graph


def main() -> None:
    n = 1024
    print(f"input: line of {n} nodes (diameter {n - 1}, conductance ~1/n)")

    result = build_well_formed_tree(
        line_graph(n),
        rng=np.random.default_rng(7),
        track_gap=True,
    )

    print("\nspectral gap per evolution (conductance rising to a constant):")
    gaps = [s.spectral_gap for s in result.history]
    bar_scale = 300
    for i, gap in enumerate(gaps, start=1):
        bar = "#" * max(1, int(gap * bar_scale))
        print(f"  evolution {i:2d}: {gap:.4f} {bar}")

    print("\nround ledger (Theorem 1.1 bounds the total by O(log n)):")
    for phase, rounds in result.round_ledger.items():
        print(f"  {phase:14s} {rounds:4d} rounds")
    print(f"  {'total':14s} {result.total_rounds:4d} rounds "
          f"(= {result.total_rounds / math.log2(n):.1f} x log2 n)")

    print("\nfinal overlay graph:")
    print(f"  diameter: {result.overlay_diameter()} (vs {n - 1} initially)")

    wft = result.well_formed
    print("\nwell-formed tree:")
    print(f"  root:   {wft.root}")
    print(f"  degree: {wft.max_degree()} (<= 3)")
    print(f"  depth:  {wft.depth()} (<= ceil(log2 n) + 1 = {math.ceil(math.log2(n)) + 1})")


if __name__ == "__main__":
    main()
