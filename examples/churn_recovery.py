"""Churn tolerance: random failures vs the expander overlay.

§1.4 of the paper: *"If the nodes fail independently and random with a
certain probability p, a logarithmic sized minimum cut is enough to keep
the network connected w.h.p."* — and the overlays built by
``CreateExpander`` have exactly such cuts, so they should survive heavy
random churn, unlike the sparse input topologies they were built from.

This example:

1. builds the expander overlay from a ring (the classic P2P bootstrap
   topology, which a single failure can already hurt and log n failures
   will shatter);
2. kills a random fraction ``p`` of the nodes at several churn levels
   and compares the surviving structure of ring vs overlay;
3. rebuilds a fresh well-formed tree on the survivors — the paper's
   "throw away and reconstruct" philosophy — and reports the cost.

Run:  python examples/churn_recovery.py
"""

import numpy as np

from repro import build_well_formed_tree
from repro.graphs.analysis import connected_components
from repro.graphs.generators import cycle_graph


def surviving_adjacency(adj, alive):
    """Induced adjacency on surviving nodes (original labels)."""
    return [
        {u for u in neigh if alive[u]} if alive[v] else set()
        for v, neigh in enumerate(adj)
    ]


def biggest_surviving_component(adj, alive):
    sub = surviving_adjacency(adj, alive)
    comps = [c for c in connected_components(sub) if alive[c[0]]]
    return max((len(c) for c in comps), default=0), len(comps)


def main() -> None:
    n = 512
    rng = np.random.default_rng(5)
    ring = cycle_graph(n)

    print(f"building the overlay from a ring of {n} nodes ...")
    result = build_well_formed_tree(ring, rng=rng)
    overlay_adj = result.final_graph().neighbor_sets()
    ring_adj = [set(ring.neighbors(v)) for v in range(n)]
    print(f"overlay ready: diameter {result.overlay_diameter()}, "
          f"~{int(np.mean([len(a) for a in overlay_adj]))} neighbours/node")

    print("\nchurn sweep (independent node failures):")
    print("  p     ring: big-comp / #comps     overlay: big-comp / #comps")
    for p in (0.05, 0.15, 0.30, 0.50):
        alive = rng.random(n) > p
        survivors = int(alive.sum())
        ring_big, ring_comps = biggest_surviving_component(ring_adj, alive)
        ov_big, ov_comps = biggest_surviving_component(overlay_adj, alive)
        print(
            f"  {p:.2f}  {ring_big:5d} / {ring_comps:4d}              "
            f"{ov_big:5d} / {ov_comps:4d}   ({survivors} survivors)"
        )

    # Heavy churn: rebuild from what remains of the *overlay*.
    p = 0.30
    alive = rng.random(n) > p
    survivors = sorted(np.nonzero(alive)[0].tolist())
    relabel = {v: i for i, v in enumerate(survivors)}
    import networkx as nx

    remnant = nx.Graph()
    remnant.add_nodes_from(range(len(survivors)))
    for v in survivors:
        for u in overlay_adj[v]:
            if alive[u] and u > v:
                remnant.add_edge(relabel[v], relabel[u])
    comps = connected_components([set(remnant.neighbors(v)) for v in remnant.nodes])
    print(f"\nafter 30% churn the overlay remnant has {len(comps)} component(s); "
          "rebuilding a fresh well-formed tree on the survivors ...")
    rebuilt = build_well_formed_tree(remnant, rng=np.random.default_rng(6))
    print(
        f"rebuilt in {rebuilt.total_rounds} rounds: depth "
        f"{rebuilt.well_formed.depth()}, degree {rebuilt.well_formed.max_degree()}"
    )


if __name__ == "__main__":
    main()
