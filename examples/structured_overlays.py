"""Structured overlays: sorted rings, hypercubes, and De Bruijn routing.

§1.4 of the paper: once a well-formed tree exists, *any* well-behaved
overlay of logarithmic degree and diameter can be constructed in
``O(log n)`` more rounds — the tree enumerates the nodes (Euler-tour
ranks) and the target topology is just rank arithmetic.

This example:

1. builds the well-formed tree from a weakly connected mess;
2. constructs all five implemented topology families on the rank space
   and prints their quality (degree / diameter / construction rounds);
3. demonstrates *greedy De Bruijn routing* — every hop shifts one bit of
   the destination rank in, reaching any node in ``≤ log₂ n`` hops
   without routing tables;
4. demonstrates ordered traversal on the sorted ring (the substrate for
   range queries and DHT-style key ownership).

Run:  python examples/structured_overlays.py
"""

import math

import numpy as np

from repro import build_well_formed_tree
from repro.core.topologies import (
    build_butterfly,
    build_debruijn,
    build_hypercube,
    build_sorted_path,
    build_sorted_ring,
)
from repro.graphs.generators import random_orientation, random_tree


def debruijn_route(topo, src_rank: int, dst_rank: int, n: int) -> list[int]:
    """Greedy bit-shift routing on the De Bruijn rank space.

    Each hop moves rank ``r`` to ``2r + b mod n`` where ``b`` is the next
    bit of the destination — after ``⌈log₂ n⌉`` hops the rank *is* the
    destination (mod n).  Falls back to the actual edge set for the final
    correction hops on non-power-of-two ``n``.
    """
    bits = max(1, math.ceil(math.log2(max(2, n))))
    path = [src_rank]
    r = src_rank
    for k in range(bits - 1, -1, -1):
        b = (dst_rank >> k) & 1
        r = (2 * r + b) % n
        path.append(r)
    return path


def main() -> None:
    rng = np.random.default_rng(11)
    n = 256
    knowledge = random_orientation(random_tree(n, rng), rng)
    print(f"input: weakly connected random knowledge graph, {n} nodes")

    result = build_well_formed_tree(knowledge, rng=rng)
    tree = result.tree
    print(f"well-formed tree ready in {result.total_rounds} rounds "
          f"(depth {result.well_formed.depth()})\n")

    builders = {
        "sorted_path": build_sorted_path,
        "sorted_ring": build_sorted_ring,
        "hypercube": build_hypercube,
        "butterfly": build_butterfly,
        "debruijn": build_debruijn,
    }
    print(f"{'topology':12s} {'degree':>6s} {'diameter':>8s} {'extra rounds':>12s}")
    topos = {}
    for name, build in builders.items():
        topo = build(tree)
        topos[name] = topo
        print(f"{name:12s} {topo.max_degree():6d} {topo.overlay_diameter():8d} "
              f"{topo.rounds:12d}")

    # --- De Bruijn greedy routing -------------------------------------
    topo = topos["debruijn"]
    node_of = {int(topo.ranks[v]): v for v in range(n)}
    src, dst = 3, 201
    path = debruijn_route(topo, src, dst, n)
    print(f"\nDe Bruijn greedy routing, rank {src} -> rank {dst}:")
    print(f"  rank path: {path}")
    print(f"  {len(path) - 1} hops (bound: ceil(log2 n) = {math.ceil(math.log2(n))})")
    print(f"  node path: {[node_of[r] for r in path]}")

    # --- Sorted ring traversal ----------------------------------------
    ring = topos["sorted_ring"]
    node_of_rank = {int(ring.ranks[v]): v for v in range(n)}
    window = [node_of_rank[r] for r in range(5)]
    print("\nsorted ring: the five smallest ranks are held by nodes "
          f"{window} — ordered traversal / range ownership comes for free.")


if __name__ == "__main__":
    main()
