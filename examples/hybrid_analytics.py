"""Hybrid-network analytics: components, spanning tree, biconnectivity, MIS.

Scenario: a federation of networks — some star-shaped hubs, some dense
meshes, some chains — must be analysed *in place* by a distributed
algorithm with CONGEST local links and a polylog global budget (the
hybrid model of Section 4).  This example runs all four of the paper's
applications on one composite topology:

- **Theorem 1.2** — find the connected components and build a
  well-formed coordination tree in each;
- **Theorem 1.3** — compute a spanning tree of the big component by
  unwinding the overlay's random walks;
- **Theorem 1.4** — find its cut vertices and bridges (failure-critical
  peers/links);
- **Theorem 1.5** — compute an MIS (e.g. cluster-head election).

Run:  python examples/hybrid_analytics.py
"""

import numpy as np

from repro import (
    biconnected_components_hybrid,
    connected_components_hybrid,
    mis_hybrid,
    spanning_tree_hybrid,
)
from repro.graphs.analysis import adjacency_sets
from repro.graphs.generators import (
    barbell,
    component_mixture,
    erdos_renyi_connected,
    star_graph,
)
from repro.hybrid.mis import verify_mis


def main() -> None:
    rng = np.random.default_rng(99)
    federation, members = component_mixture(
        [
            barbell(18, 4),                       # two meshes + a fragile bridge
            star_graph(50),                        # a hub-and-spoke site
            erdos_renyi_connected(60, 6.0, rng),   # an unstructured mesh
        ]
    )
    n = federation.number_of_nodes()
    print(f"federation: {n} nodes, {federation.number_of_edges()} links, "
          f"{len(members)} sites")

    # ------------------------------------------------------ components
    comp = connected_components_hybrid(federation, rng=np.random.default_rng(1))
    print("\nTheorem 1.2 — connected components:")
    for label, nodes in sorted(comp.components().items()):
        wft = comp.forest.trees[label]
        print(
            f"  site rooted at {label:3d}: {len(nodes):3d} nodes, "
            f"coordination tree depth {wft.depth()} (degree <= {wft.max_degree()})"
        )
    print(f"  hybrid rounds: {comp.ledger.total_rounds}, "
          f"global capacity: {comp.ledger.max_global_capacity}")

    # --------------------------------------------- spanning tree + BCC
    big = members[0]  # the barbell site
    sub = federation.subgraph(big)
    import networkx as nx

    relabel = {v: i for i, v in enumerate(sorted(big))}
    site = nx.relabel_nodes(sub, relabel)

    st = spanning_tree_hybrid(site, rng=np.random.default_rng(2))
    print("\nTheorem 1.3 — spanning tree of the barbell site:")
    print(f"  {len(st.tree_edges)} tree edges recovered from walk provenance "
          f"({st.stream_steps} stream steps)")

    bcc = biconnected_components_hybrid(site, rng=np.random.default_rng(3))
    print("\nTheorem 1.4 — failure analysis of the barbell site:")
    print(f"  biconnected components: {len(bcc.components)}")
    print(f"  cut vertices (single points of failure): {sorted(bcc.cut_vertices)}")
    print(f"  bridges (critical links): {sorted(bcc.bridges)}")

    # ------------------------------------------------------------- MIS
    mis = mis_hybrid(federation, rng=np.random.default_rng(4))
    ok = verify_mis(adjacency_sets(federation), mis.in_mis)
    print("\nTheorem 1.5 — cluster-head election (MIS):")
    print(f"  elected {len(mis.in_mis)} cluster heads (valid MIS: {ok})")
    print(f"  shattering rounds: {mis.shattering_rounds}, "
          f"total hybrid rounds: {mis.ledger.total_rounds}")


if __name__ == "__main__":
    main()
