"""repro — Time-Optimal Construction of Overlay Networks (PODC 2021).

A from-scratch Python reproduction of Götte, Hinnenthal, Scheideler and
Werthmann, *Time-Optimal Construction of Overlay Networks* (PODC 2021;
arXiv:2009.03987): transform any weakly connected constant-degree graph
into a well-formed tree (constant degree, ``O(log n)`` diameter) in
``O(log n)`` synchronous rounds with ``O(log n)`` messages per node per
round, w.h.p. — plus the paper's hybrid-network applications (connected
components, spanning trees, biconnected components, MIS).

Quick start::

    import numpy as np
    from repro import build_well_formed_tree
    from repro.graphs.generators import line_graph

    result = build_well_formed_tree(line_graph(1024), rng=np.random.default_rng(7))
    print(result.total_rounds)             # O(log n) rounds
    print(result.well_formed.depth())      # O(log n) depth
    print(result.well_formed.max_degree()) # <= 3

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — Sections 2–3: benign graphs, ``CreateExpander``,
  BFS, Euler-tour rebalancing, the Theorem 1.1 pipeline, and the
  message-level NCC0 protocol engine;
- :mod:`repro.net` — the synchronous capacity-limited network simulator;
- :mod:`repro.graphs` — workload generators and graph analysis
  (conductance, spectral gap, min cut, diameter);
- :mod:`repro.hybrid` — Section 4: Theorems 1.2–1.5 and their
  sub-algorithms;
- :mod:`repro.baselines` — prior-work comparison algorithms;
- :mod:`repro.experiments` — the table/fit harness behind ``benchmarks/``.
"""

from repro.core import (
    ExpanderParams,
    OverlayBuildResult,
    build_well_formed_tree,
    create_expander,
)
from repro.hybrid import (
    biconnected_components_hybrid,
    connected_components_hybrid,
    mis_hybrid,
    spanning_tree_hybrid,
)

__version__ = "1.0.0"

__all__ = [
    "ExpanderParams",
    "OverlayBuildResult",
    "build_well_formed_tree",
    "create_expander",
    "connected_components_hybrid",
    "spanning_tree_hybrid",
    "biconnected_components_hybrid",
    "mis_hybrid",
    "__version__",
]
