"""Round-trace telemetry core: spans, counters, columnar round tables.

The engine's only runtime window used to be the coarse
:class:`~repro.net.network.NetworkMetrics` totals — answering "which
round got slow" or "are the shard workers balanced" meant hand
instrumentation every time.  This module supplies the shared recorder
behind every probe point:

- :class:`Tracer` — nestable spans (``run > phase > round > stage``)
  with monotonic timestamps, plus low-frequency counter events;
- :class:`RoundTrace` — a columnar per-round recorder: preallocated
  ``int64``/``float64`` numpy columns with doubling growth, so the
  hot-path ``append`` is a handful of scalar array writes and **no**
  Python-object churn;
- ambient activation — an explicit ``tracer=`` kwarg beats the
  session-scoped :func:`activate`/:func:`capture` tracer, which beats
  the ``REPRO_TRACE=path`` environment singleton (flushed once at
  process exit).

The probe contract (C7 in ``docs/contracts.md``): tracing **observes,
never steers**.  No probe may consume an RNG stream or mutate the state
it is shown — which is what keeps a traced execution bit-for-bit the
untraced one (tree SHAs identical at every tier and worker count,
pinned by ``tests/obs/test_trace_invariance.py``).  Statically enforced
by the RL5xx repro-lint rules.  When no tracer is resolved every probe
site reduces to one ``is None`` check, so disabled runs pay nothing.
"""

from __future__ import annotations

import atexit
import os
import time
from contextlib import contextmanager, nullcontext

import numpy as np

__all__ = [
    "TRACE_ENV",
    "RoundTrace",
    "Span",
    "Tracer",
    "activate",
    "active_tracer",
    "capture",
    "maybe_span",
    "resolve_tracer",
]

#: Environment variable: a path here arms a process-wide tracer whose
#: trace/v1 artifact is written once at interpreter exit.
TRACE_ENV = "REPRO_TRACE"


class Span:
    """One timed, nestable region (``run > phase > round > stage``).

    ``attrs`` stays mutable after the span closes so callers can attach
    results computed later (a scenario row's ``tree_sha``, a stage's
    round count) without restructuring their control flow.
    """

    __slots__ = ("id", "parent", "name", "cat", "start", "end", "attrs")

    def __init__(
        self,
        span_id: int,
        parent: int,
        name: str,
        cat: str,
        start: float,
        attrs: dict,
    ) -> None:
        self.id = span_id
        self.parent = parent  # enclosing span id, -1 at top level
        self.name = name
        self.cat = cat
        self.start = start
        self.end = start  # patched on close
        self.attrs = attrs

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.cat}/{self.name}, {self.seconds:.6f}s, attrs={self.attrs!r})"


class RoundTrace:
    """Columnar per-round recorder (the hot-path half of the tracer).

    ``columns`` become ``int64`` lanes and ``float_columns`` ``float64``
    lanes, preallocated and grown by doubling; :meth:`append` takes one
    positional value per lane, int lanes first — a fixed number of
    scalar stores per round, no dicts, no tuples kept.  Column views are
    cut lazily (:meth:`column`), so untraced consumers never materialise
    anything.
    """

    __slots__ = (
        "name",
        "kind",
        "meta",
        "int_columns",
        "float_columns",
        "columns",
        "_arrays",
        "_len",
        "_cap",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        columns: tuple[str, ...],
        float_columns: tuple[str, ...] = ("seconds",),
        meta: dict | None = None,
        capacity: int = 256,
    ) -> None:
        self.name = name
        self.kind = kind
        self.meta = dict(meta or {})
        self.int_columns = tuple(columns)
        self.float_columns = tuple(float_columns)
        self.columns = self.int_columns + self.float_columns
        cap = max(int(capacity), 16)
        arrays = [np.empty(cap, dtype=np.int64) for _ in self.int_columns]
        arrays += [np.empty(cap, dtype=np.float64) for _ in self.float_columns]
        self._arrays = arrays
        self._len = 0
        self._cap = cap

    def __len__(self) -> int:
        return self._len

    def _grow(self) -> None:
        cap = self._cap * 2
        grown = []
        for old in self._arrays:
            new = np.empty(cap, dtype=old.dtype)
            new[: self._len] = old[: self._len]
            grown.append(new)
        self._arrays = grown
        self._cap = cap

    def append(self, *values) -> None:
        """Record one row: one value per column, int lanes first."""
        i = self._len
        if i == self._cap:
            self._grow()
        for arr, v in zip(self._arrays, values):
            arr[i] = v
        self._len = i + 1

    def column(self, name: str) -> np.ndarray:
        """View of one recorded column (length = rows appended so far)."""
        return self._arrays[self.columns.index(name)][: self._len]

    def rows(self) -> list[list]:
        """Row-major plain-scalar copy (the trace/v1 serialisation)."""
        out = []
        n_int = len(self.int_columns)
        for i in range(self._len):
            row = [int(self._arrays[j][i]) for j in range(n_int)]
            row += [
                float(self._arrays[j][i])
                for j in range(n_int, len(self._arrays))
            ]
            out.append(row)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoundTrace({self.name}, rows={self._len}, columns={self.columns})"


class Tracer:
    """Span/counter/table sink with a monotonic clock.

    ``clock`` is injectable (a fake clock makes CLI golden-output tests
    deterministic); it defaults to the perf counter.  All timestamps are
    relative to construction, so traces diff cleanly across runs.
    Recording methods are append-only — a tracer never reaches back into
    the execution it observes (the C7 probe contract).
    """

    __slots__ = ("clock", "meta", "spans", "counters", "tables", "_origin", "_stack", "_kind_counts")

    def __init__(self, clock=None, meta: dict | None = None) -> None:
        if clock is None:
            # Telemetry is the one engine component whose job IS wall
            # time; every simulated quantity stays seed-determined.
            clock = time.perf_counter  # repro-lint: disable=RL202
        self.clock = clock
        self._origin = clock()
        self.meta = dict(meta or {})
        self.spans: list[Span] = []
        self.counters: list[tuple] = []  # (name, ts, value, attrs|None)
        self.tables: list[RoundTrace] = []
        self._stack: list[int] = []
        self._kind_counts: dict[str, int] = {}

    def now(self) -> float:
        """Seconds since tracer construction (monotonic)."""
        return self.clock() - self._origin

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, cat: str = "span", **attrs):
        """Open a nestable timed region; yields the mutable :class:`Span`."""
        parent = self._stack[-1] if self._stack else -1
        sp = Span(len(self.spans), parent, name, cat, self.now(), attrs)
        self.spans.append(sp)
        self._stack.append(sp.id)
        try:
            yield sp
        finally:
            sp.end = self.now()
            self._stack.pop()

    def counter(self, name: str, value, attrs: dict | None = None) -> None:
        """Record one monotonically-timestamped counter event."""
        self.counters.append((name, self.now(), value, attrs))

    def table(
        self,
        kind: str,
        columns: tuple[str, ...],
        float_columns: tuple[str, ...] = ("seconds",),
        meta: dict | None = None,
        capacity: int = 256,
    ) -> RoundTrace:
        """Open a new columnar table named ``<kind>#<k>`` (unique per kind)."""
        k = self._kind_counts.get(kind, 0)
        self._kind_counts[kind] = k + 1
        rt = RoundTrace(
            f"{kind}#{k}", kind, columns, float_columns, meta, capacity
        )
        self.tables.append(rt)
        return rt

    def tables_of(self, kind: str) -> list[RoundTrace]:
        return [t for t in self.tables if t.kind == kind]


def maybe_span(tracer: Tracer | None, name: str, cat: str = "span", **attrs):
    """``tracer.span(...)`` or a no-op context yielding ``None``.

    The probe-site idiom: ``with maybe_span(tracer, "spanner",
    cat="stage") as sp:`` costs one ``is None`` check when disabled.
    """
    if tracer is None:
        return nullcontext(None)
    return tracer.span(name, cat=cat, **attrs)


# ----------------------------------------------------------------------
# Ambient activation: kwarg > session tracer > REPRO_TRACE singleton.
# ----------------------------------------------------------------------
_ACTIVE: Tracer | None = None
_ENV_TRACER: Tracer | None = None
_ENV_CHECKED = False
_ENV_PID: int | None = None


def _env_flush(path: str) -> None:
    # Forked shard workers inherit this atexit hook; only the creating
    # process may write the artifact, or children would clobber it.
    if _ENV_TRACER is None or os.getpid() != _ENV_PID:
        return
    from repro.obs.trace_io import write_trace

    write_trace(path, _ENV_TRACER)


def _env_tracer() -> Tracer | None:
    global _ENV_CHECKED, _ENV_TRACER, _ENV_PID
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        from repro.runtime.envsource import read_env

        path = read_env(TRACE_ENV)
        if path:
            _ENV_TRACER = Tracer(meta={"source": "env", "path": path})
            _ENV_PID = os.getpid()
            atexit.register(_env_flush, path)
    if _ENV_TRACER is not None and os.getpid() != _ENV_PID:
        # A fork-inherited singleton: the child must neither record into
        # nor flush the parent's buffers.
        return None
    return _ENV_TRACER


def active_tracer() -> Tracer | None:
    """The session tracer (:func:`activate`/:func:`capture`) if any,
    else the ``REPRO_TRACE`` environment singleton, else ``None``."""
    if _ACTIVE is not None:
        return _ACTIVE
    return _env_tracer()


def resolve_tracer(tracer: Tracer | None = None) -> Tracer | None:
    """Resolve a probe site's tracer: explicit kwarg wins, then the
    ambient session tracer, then ``REPRO_TRACE``.  ``None`` means
    tracing is off and every hook must stay un-entered."""
    if tracer is not None:
        return tracer
    return active_tracer()


def activate(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the ambient session tracer; returns the
    previous one (pass it back to restore — or use :func:`capture`)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def capture(path: str | None = None, meta: dict | None = None, clock=None):
    """Ambient tracing scope: every network/pipeline/scenario built
    inside resolves this tracer without any kwarg plumbing.  When
    ``path`` is given the trace/v1 artifact is written on exit (also on
    error — a partial trace beats none while debugging a crash)."""
    tracer = Tracer(clock=clock, meta=meta)
    previous = activate(tracer)
    try:
        yield tracer
    finally:
        activate(previous)
        if path is not None:
            from repro.obs.trace_io import write_trace

            write_trace(path, tracer)


def _reset_ambient_for_tests() -> None:
    """Drop all ambient state (session + env singleton); tests only."""
    global _ACTIVE, _ENV_TRACER, _ENV_CHECKED, _ENV_PID
    _ACTIVE = None
    _ENV_TRACER = None
    _ENV_CHECKED = False
    _ENV_PID = None
