"""Entry point: ``python -m repro.obs <summary|diff|timeline> ...``."""

from repro.obs.cli import main

raise SystemExit(main())
