"""Round-trace telemetry: spans, counters, columnar round tables.

Zero-overhead when disabled, bit-for-bit invariant when enabled (C7 in
``docs/contracts.md``).  See ``docs/observability.md`` for the span
model, the trace/v1 schema, and the ``python -m repro.obs`` CLI.

This package imports only numpy and the stdlib — never ``repro.net`` —
so the engine can import it from inside the package-init chain without
cycles (the same shape as ``repro.sanitize``).
"""

from repro.obs.trace_io import (
    TRACE_SCHEMA,
    TableData,
    TraceData,
    read_trace,
    write_trace,
)
from repro.obs.tracer import (
    TRACE_ENV,
    RoundTrace,
    Span,
    Tracer,
    activate,
    active_tracer,
    capture,
    maybe_span,
    resolve_tracer,
)

__all__ = [
    "TRACE_ENV",
    "TRACE_SCHEMA",
    "RoundTrace",
    "Span",
    "TableData",
    "TraceData",
    "Tracer",
    "activate",
    "active_tracer",
    "capture",
    "maybe_span",
    "read_trace",
    "resolve_tracer",
    "write_trace",
]
