"""trace/v1 JSON-lines serialisation for :mod:`repro.obs`.

One header line pins the schema, then one record per line:

- ``{"schema": "trace/v1", "meta": {...}}`` — header (always first);
- ``{"t": "span", "id", "parent", "name", "cat", "start", "end",
  "attrs"}`` — one per span, in open order;
- ``{"t": "counter", "name", "ts", "value", "attrs"}`` — counter
  events;
- ``{"t": "table", "name", "kind", "meta", "columns",
  "float_columns", "rows"}`` — one per columnar table, rows
  row-major in column order (int lanes first).

JSON-lines keeps the artifact greppable and streamable; the reader
(:func:`read_trace`) rebuilds numpy columns so the CLI aggregates
without row loops.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import Tracer

__all__ = [
    "TRACE_SCHEMA",
    "TableData",
    "TraceData",
    "read_trace",
    "write_trace",
]

TRACE_SCHEMA = "trace/v1"


def _jsonable(value):
    """JSON fallback for numpy scalars leaking into span attrs."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not trace/v1 serialisable: {type(value).__name__}")


def write_trace(path: str, tracer: Tracer) -> str:
    """Write ``tracer``'s spans, counters, and tables as trace/v1."""
    with open(path, "w", encoding="utf-8") as fh:
        header = {"schema": TRACE_SCHEMA, "meta": tracer.meta}
        fh.write(json.dumps(header, default=_jsonable) + "\n")
        for sp in tracer.spans:
            record = sp.as_dict()
            record["t"] = "span"
            fh.write(json.dumps(record, default=_jsonable) + "\n")
        for name, ts, value, attrs in tracer.counters:
            record = {
                "t": "counter",
                "name": name,
                "ts": ts,
                "value": value,
                "attrs": attrs or {},
            }
            fh.write(json.dumps(record, default=_jsonable) + "\n")
        for table in tracer.tables:
            record = {
                "t": "table",
                "name": table.name,
                "kind": table.kind,
                "meta": table.meta,
                "columns": list(table.int_columns),
                "float_columns": list(table.float_columns),
                "rows": table.rows(),
            }
            fh.write(json.dumps(record, default=_jsonable) + "\n")
    return path


@dataclass
class TableData:
    """One deserialised columnar table: ``data`` maps every column
    (int and float lanes alike) to a 1-D numpy array."""

    name: str
    kind: str
    meta: dict
    int_columns: tuple
    float_columns: tuple
    data: dict = field(default_factory=dict)

    @property
    def columns(self) -> tuple:
        return self.int_columns + self.float_columns

    def __len__(self) -> int:
        if not self.data:
            return 0
        return len(next(iter(self.data.values())))

    def column(self, name: str) -> np.ndarray:
        return self.data[name]


@dataclass
class TraceData:
    """A fully deserialised trace/v1 artifact."""

    meta: dict
    spans: list
    counters: list
    tables: list

    def tables_of(self, kind: str) -> list:
        return [t for t in self.tables if t.kind == kind]


def _parse_table(record: dict) -> TableData:
    int_columns = tuple(record["columns"])
    float_columns = tuple(record["float_columns"])
    columns = int_columns + float_columns
    rows = record["rows"]
    n_int = len(int_columns)
    data = {}
    for j, name in enumerate(columns):
        dtype = np.int64 if j < n_int else np.float64
        data[name] = np.array([row[j] for row in rows], dtype=dtype)
    return TableData(
        name=record["name"],
        kind=record["kind"],
        meta=record.get("meta") or {},
        int_columns=int_columns,
        float_columns=float_columns,
        data=data,
    )


def read_trace(path: str) -> TraceData:
    """Read a trace/v1 artifact back into numpy-columned tables."""
    with open(path, "r", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        schema = header.get("schema")
        if schema != TRACE_SCHEMA:
            raise ValueError(
                f"{path}: expected schema {TRACE_SCHEMA!r}, got {schema!r}"
            )
        spans: list = []
        counters: list = []
        tables: list = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            tag = record.get("t")
            if tag == "span":
                spans.append(record)
            elif tag == "counter":
                counters.append(record)
            elif tag == "table":
                tables.append(_parse_table(record))
            else:
                raise ValueError(f"{path}: unknown trace/v1 record {tag!r}")
    return TraceData(
        meta=header.get("meta") or {},
        spans=spans,
        counters=counters,
        tables=tables,
    )
