"""``python -m repro.obs`` — inspect trace/v1 artifacts.

Three subcommands, all read-only over the JSON-lines artifact:

- ``summary <trace>`` — per-(cat, name) span aggregates, per-tier
  round tables with the top-k slowest rounds, shard balance, and
  synchroniser queue depths;
- ``diff <a> <b>`` — regression deltas: span totals and table column
  sums side by side with absolute and percentage change;
- ``timeline <trace>`` — per-round ASCII timeline (messages + a time
  bar, fault rounds flagged) or ``--csv`` for machine consumption.

Formatting is plain fixed-width text built here (no external table
dependency) so golden-output tests can pin it exactly.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.obs.trace_io import TableData, TraceData, read_trace

__all__ = ["main"]


# ----------------------------------------------------------------------
# Rendering helpers
# ----------------------------------------------------------------------
def _render(headers, rows) -> str:
    """Fixed-width table: headers + stringified rows, right-aligned
    numerics are the caller's job (everything arrives as str)."""
    cells = [list(headers)] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[j]) for r in cells) for j in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        line = "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        lines.append(line)
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt_seconds(value: float) -> str:
    return f"{value:.6f}"


def _span_aggregates(trace: TraceData) -> dict:
    """(cat, name) -> dict(count, total, max) over span durations."""
    agg: dict = {}
    for sp in trace.spans:
        key = (sp["cat"], sp["name"])
        seconds = sp["end"] - sp["start"]
        entry = agg.setdefault(key, {"count": 0, "total": 0.0, "max": 0.0})
        entry["count"] += 1
        entry["total"] += seconds
        entry["max"] = max(entry["max"], seconds)
    return agg


def _table_totals(table: TableData) -> dict:
    """Column sums (per-round counters are deltas, so sums are run
    totals); ``layout_hit`` and ``round`` are reported specially."""
    totals = {}
    for name in table.columns:
        col = table.column(name)
        if len(col) == 0:
            totals[name] = 0
        elif name in table.float_columns:
            totals[name] = float(col.sum())
        else:
            totals[name] = int(col.sum())
    return totals


# ----------------------------------------------------------------------
# summary
# ----------------------------------------------------------------------
def _summarize_net_table(table: TableData, top: int, out) -> None:
    meta = table.meta
    label = " ".join(f"{k}={meta[k]}" for k in sorted(meta))
    print(f"[{table.name}] {label}".rstrip(), file=out)
    n = len(table)
    if n == 0:
        print("  (no rounds recorded)", file=out)
        return
    totals = _table_totals(table)
    hits = totals.get("layout_hit", 0)
    parts = [f"rounds={n}"]
    for name in ("sent", "delivered", "fault_drops", "send_drops", "receive_drops"):
        if name in table.columns:
            parts.append(f"{name}={totals[name]}")
    if "layout_hit" in table.columns:
        parts.append(f"layout_hits={hits}/{n}")
    if "seconds" in table.columns:
        parts.append(f"seconds={_fmt_seconds(totals['seconds'])}")
    print("  " + " ".join(parts), file=out)
    if "seconds" not in table.columns:
        return
    seconds = table.column("seconds")
    k = min(top, n)
    slowest = np.argsort(seconds, kind="stable")[::-1][:k]
    headers = list(table.columns)
    rows = []
    for i in slowest:
        row = []
        for name in headers:
            value = table.column(name)[i]
            row.append(
                _fmt_seconds(float(value))
                if name in table.float_columns
                else str(int(value))
            )
        rows.append(row)
    print(f"  top {k} slowest rounds:", file=out)
    body = _render(headers, rows)
    print("    " + body.replace("\n", "\n    "), file=out)


def _summarize_shard_table(table: TableData, out) -> None:
    meta = table.meta
    label = " ".join(f"{k}={meta[k]}" for k in sorted(meta))
    print(f"[{table.name}] {label}".rstrip(), file=out)
    if len(table) == 0:
        print("  (no shard ops recorded)", file=out)
        return
    shard = table.column("shard")
    headers = ["shard", "ops", "messages", "seconds"]
    rows = []
    for w in np.unique(shard):
        mask = shard == w
        rows.append(
            [
                str(int(w)),
                str(int(mask.sum())),
                str(int(table.column("messages")[mask].sum())),
                _fmt_seconds(float(table.column("seconds")[mask].sum())),
            ]
        )
    body = _render(headers, rows)
    print("  " + body.replace("\n", "\n  "), file=out)


def cmd_summary(args) -> int:
    trace = read_trace(args.trace)
    out = sys.stdout
    print(f"trace/v1 · {args.trace}", file=out)
    if trace.meta:
        meta = " ".join(f"{k}={trace.meta[k]}" for k in sorted(trace.meta))
        print(f"meta: {meta}", file=out)

    agg = _span_aggregates(trace)
    if agg:
        print(f"\nspans ({len(trace.spans)} total):", file=out)
        rows = []
        order = sorted(
            agg.items(), key=lambda item: item[1]["total"], reverse=True
        )
        for (cat, name), entry in order:
            rows.append(
                [
                    cat,
                    name,
                    str(entry["count"]),
                    _fmt_seconds(entry["total"]),
                    _fmt_seconds(entry["total"] / entry["count"]),
                    _fmt_seconds(entry["max"]),
                ]
            )
        print(
            _render(
                ["cat", "name", "count", "total_s", "mean_s", "max_s"], rows
            ),
            file=out,
        )

    if trace.counters:
        print(f"\ncounters: {len(trace.counters)} events", file=out)

    for kind, renderer in (
        ("net", lambda t: _summarize_net_table(t, args.top, out)),
        ("sync", lambda t: _summarize_net_table(t, args.top, out)),
        ("shard", lambda t: _summarize_shard_table(t, out)),
    ):
        tables = trace.tables_of(kind)
        if not tables:
            continue
        print(f"\n{kind} tables ({len(tables)}):", file=out)
        for table in tables:
            renderer(table)
    other = [
        t for t in trace.tables if t.kind not in ("net", "sync", "shard")
    ]
    if other:
        print(f"\nother tables ({len(other)}):", file=out)
        for table in other:
            _summarize_net_table(table, args.top, out)
    return 0


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def _delta_row(label, a, b, fmt):
    delta = b - a
    pct = (100.0 * delta / a) if a else (0.0 if delta == 0 else float("inf"))
    return [label, fmt(a), fmt(b), fmt(delta), f"{pct:+.1f}%"]


def cmd_diff(args) -> int:
    trace_a = read_trace(args.a)
    trace_b = read_trace(args.b)
    out = sys.stdout
    print(f"diff: a={args.a} b={args.b}", file=out)

    agg_a = _span_aggregates(trace_a)
    agg_b = _span_aggregates(trace_b)
    keys = sorted(set(agg_a) | set(agg_b))
    if keys:
        rows = []
        for key in keys:
            total_a = agg_a.get(key, {}).get("total", 0.0)
            total_b = agg_b.get(key, {}).get("total", 0.0)
            rows.append(
                _delta_row(f"{key[0]}/{key[1]}", total_a, total_b, _fmt_seconds)
            )
        print("\nspan totals (seconds):", file=out)
        print(_render(["span", "a", "b", "delta", "pct"], rows), file=out)

    kinds = sorted(
        {t.kind for t in trace_a.tables} | {t.kind for t in trace_b.tables}
    )
    for kind in kinds:
        sums_a: dict = {}
        sums_b: dict = {}
        for sums, trace in ((sums_a, trace_a), (sums_b, trace_b)):
            for table in trace.tables_of(kind):
                for name, value in _table_totals(table).items():
                    if name == "round":
                        continue
                    sums[name] = sums.get(name, 0) + value
        rows = []
        for name in sorted(set(sums_a) | set(sums_b)):
            a = sums_a.get(name, 0)
            b = sums_b.get(name, 0)
            fmt = (
                _fmt_seconds
                if isinstance(a, float) or isinstance(b, float)
                else str
            )
            rows.append(_delta_row(name, a, b, fmt))
        if rows:
            print(f"\n{kind} table totals:", file=out)
            print(_render(["column", "a", "b", "delta", "pct"], rows), file=out)
    return 0


# ----------------------------------------------------------------------
# timeline
# ----------------------------------------------------------------------
def cmd_timeline(args) -> int:
    trace = read_trace(args.trace)
    out = sys.stdout
    tables = trace.tables_of("net")
    if args.table is not None:
        tables = [t for t in trace.tables if t.name == args.table]
        if not tables:
            print(f"no table named {args.table!r}", file=sys.stderr)
            return 1
    if not tables:
        print("no net tables in trace", file=sys.stderr)
        return 1

    if args.csv:
        for table in tables:
            print("table," + ",".join(table.columns), file=out)
            for i in range(len(table)):
                cells = [table.name]
                for name in table.columns:
                    value = table.column(name)[i]
                    cells.append(
                        _fmt_seconds(float(value))
                        if name in table.float_columns
                        else str(int(value))
                    )
                print(",".join(cells), file=out)
        return 0

    for table in tables:
        meta = table.meta
        label = " ".join(f"{k}={meta[k]}" for k in sorted(meta))
        print(f"[{table.name}] {label}".rstrip(), file=out)
        n = len(table)
        if n == 0:
            print("  (no rounds recorded)", file=out)
            continue
        seconds = (
            table.column("seconds")
            if "seconds" in table.columns
            else np.zeros(n)
        )
        sent = (
            table.column("sent")
            if "sent" in table.columns
            else np.zeros(n, dtype=np.int64)
        )
        faults = (
            table.column("fault_drops")
            if "fault_drops" in table.columns
            else np.zeros(n, dtype=np.int64)
        )
        rounds = (
            table.column("round")
            if "round" in table.columns
            else np.arange(n)
        )
        peak = float(seconds.max()) if n else 0.0
        for i in range(n):
            width = (
                int(round(args.width * float(seconds[i]) / peak))
                if peak > 0
                else 0
            )
            bar = "#" * width
            flag = " !faults" if faults[i] > 0 else ""
            print(
                f"  r{int(rounds[i]):>4} sent={int(sent[i]):>8} "
                f"{_fmt_seconds(float(seconds[i]))} {bar}{flag}",
                file=out,
            )
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect trace/v1 artifacts written by repro.obs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser(
        "summary", help="span aggregates + per-tier round/stage tables"
    )
    p_summary.add_argument("trace")
    p_summary.add_argument(
        "--top", type=int, default=3, help="slowest rounds to list per table"
    )
    p_summary.set_defaults(func=cmd_summary)

    p_diff = sub.add_parser("diff", help="regression deltas between two traces")
    p_diff.add_argument("a")
    p_diff.add_argument("b")
    p_diff.set_defaults(func=cmd_diff)

    p_timeline = sub.add_parser(
        "timeline", help="per-round ASCII/CSV timeline of a trace"
    )
    p_timeline.add_argument("trace")
    p_timeline.add_argument(
        "--table", default=None, help="restrict to one table by name"
    )
    p_timeline.add_argument(
        "--csv", action="store_true", help="emit CSV instead of ASCII bars"
    )
    p_timeline.add_argument(
        "--width", type=int, default=40, help="ASCII bar width for the peak"
    )
    p_timeline.set_defaults(func=cmd_timeline)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream ``head``/pager closed the pipe — a clean exit, but
        # the interpreter would noisily re-raise on the final stdout
        # flush; point stdout at devnull first.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (OSError, ValueError) as exc:
        # A missing or malformed artifact is a user-input error, not a
        # bug — report it cleanly instead of dumping a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module entry
    raise SystemExit(main())
