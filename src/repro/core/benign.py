"""``MakeBenign`` — preparing an arbitrary input graph for CreateExpander.

Section 2.1 of the paper: given a weakly connected input graph of maximum
degree ``d = O(1)`` and parameters with ``2 d Λ ≤ Δ``, the graph is made
*benign* (Definition 2.1) in two steps:

1. every (bidirected) edge is copied ``Λ`` times, establishing the
   ``Λ``-sized minimum cut;
2. every node pads itself with self-loops up to degree exactly ``Δ``,
   which also makes the graph lazy (``≥ Δ/2`` self-loops) because the
   copied edges occupy at most ``Δ/2`` ports.

Directed inputs are bidirected first (each node "introduces itself" to its
out-neighbours — one extra round in the NCC0 model, charged by the
pipeline).

The module also provides :func:`check_benign`, the invariant oracle used by
the E2 experiment and throughout the tests: regularity and laziness are
read off the port array; the ``Λ``-cut is verified with Stoer–Wagner on
graphs small enough to afford it.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.params import ExpanderParams
from repro.graphs.portgraph import PortGraph
from repro.graphs.mincut import min_cut_of_portgraph

__all__ = ["BaseEdge", "BenignReport", "make_benign", "check_benign", "undirected_edge_list"]


@dataclass(frozen=True)
class BaseEdge:
    """Provenance record for a level-0 edge of the overlay hierarchy.

    ``u``/``v`` are the endpoints in the prepared graph; ``source`` is the
    undirected edge of the *original* input graph this copy descends from
    (identical for all ``Λ`` parallel copies).  The spanning-tree unwinding
    of Theorem 1.3 resolves level-0 edge ids through these records.
    """

    u: int
    v: int
    source: tuple[int, int]


@dataclass
class BenignReport:
    """Result of checking Definition 2.1 on a port graph."""

    is_regular: bool
    min_self_loops: int
    is_lazy: bool
    min_cut: int | None
    has_lambda_cut: bool | None

    def all_ok(self) -> bool:
        """True if every *checked* property holds (an unchecked cut — too
        large to verify — does not fail the report)."""
        cut_ok = self.has_lambda_cut is not False
        return self.is_regular and self.is_lazy and cut_ok


def undirected_edge_list(graph) -> tuple[int, list[tuple[int, int]]]:
    """Extract ``(n, edges)`` from a directed or undirected input graph.

    Directions are dropped (the paper treats the knowledge graph as
    undirected after the introduction round); self-loops and duplicate
    edges are removed.
    """
    if isinstance(graph, (nx.Graph, nx.DiGraph)):
        n = graph.number_of_nodes()
        edges = {
            (min(a, b), max(a, b))
            for a, b in graph.edges
            if a != b
        }
        return n, sorted(edges)
    raise TypeError(f"unsupported graph type: {type(graph)!r}")


def make_benign(
    graph,
    params: ExpanderParams,
) -> tuple[PortGraph, list[BaseEdge]]:
    """Prepare ``graph`` into a benign :class:`PortGraph` (§2.1 step 1).

    Returns the port graph and the level-0 edge registry (one entry per
    parallel copy; ``port_edge_ids`` of the result index into it).

    Raises
    ------
    ValueError
        If the copied edges would not fit lazily, i.e. some node has
        ``Λ · deg(v) > Δ/2`` — the caller should raise ``Δ`` (see
        :meth:`ExpanderParams.recommended`).
    """
    n, edges = undirected_edge_list(graph)
    if n < 2:
        raise ValueError("need at least 2 nodes")

    degree = np.zeros(n, dtype=np.int64)
    for a, b in edges:
        degree[a] += 1
        degree[b] += 1
    max_ports = int(degree.max(initial=0)) * params.lam
    if max_ports > params.delta // 2:
        raise ValueError(
            f"lam * max_degree = {max_ports} ports exceed delta/2 = "
            f"{params.delta // 2}; increase delta or reduce lam"
        )

    registry: list[BaseEdge] = []
    ends_a: list[int] = []
    ends_b: list[int] = []
    for a, b in edges:
        for _copy in range(params.lam):
            registry.append(BaseEdge(u=a, v=b, source=(a, b)))
            ends_a.append(a)
            ends_b.append(b)

    port_graph = PortGraph.from_edge_multiset(
        n=n,
        delta=params.delta,
        endpoints_a=np.array(ends_a, dtype=np.int64),
        endpoints_b=np.array(ends_b, dtype=np.int64),
    )
    return port_graph, registry


def check_benign(
    port_graph: PortGraph,
    params: ExpanderParams,
    check_cut: bool = True,
    cut_n_limit: int = 700,
    cut_target: int | None = None,
) -> BenignReport:
    """Verify Definition 2.1 on ``port_graph``.

    Regularity is structural (the port array is rectangular), so the check
    is that the array is well-formed and laziness holds.  The cut is
    verified with Stoer–Wagner when ``check_cut`` and ``n ≤ cut_n_limit``
    (cubic algorithm); otherwise ``min_cut``/``has_lambda_cut`` are None.

    ``cut_target`` defaults to ``params.maintained_cut_floor`` — the
    calibrated invariant for *evolution* graphs; pass ``params.lam`` when
    checking the freshly prepared ``G_0`` (whose cut is exactly the copy
    count).
    """
    if cut_target is None:
        cut_target = params.maintained_cut_floor
    loops = port_graph.self_loop_counts()
    min_loops = int(loops.min(initial=port_graph.delta))
    is_lazy = min_loops >= port_graph.delta // 2

    min_cut: int | None = None
    has_cut: bool | None = None
    if check_cut and port_graph.n <= cut_n_limit:
        min_cut = min_cut_of_portgraph(port_graph)
        has_cut = min_cut >= cut_target

    return BenignReport(
        is_regular=port_graph.delta == params.delta,
        min_self_loops=min_loops,
        is_lazy=is_lazy,
        min_cut=min_cut,
        has_lambda_cut=has_cut,
    )
