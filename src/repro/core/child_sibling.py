"""Child–sibling tree transformation (§2.1, after [4] and [27]).

A BFS tree of the final expander has degree ``O(log n)``; a well-formed
tree must have *constant* degree.  The classic fix is the child–sibling
representation: each node keeps an edge only to its **first child**, and
each child keeps an edge to its **next sibling**.  Every node then has at
most three tree neighbours (parent-or-previous-sibling, first child, next
sibling), at the cost of stretching the depth by up to the maximum degree —
which the Euler-tour rebalancing (:mod:`repro.core.euler`) subsequently
repairs.

The construction is purely local: a node orders its children by identifier
and sends each child the id of its successor — one communication round in
the overlay, charged by the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.vectorops import group_argsort

__all__ = ["RootedTree", "to_child_sibling", "to_child_sibling_columns"]


@dataclass
class RootedTree:
    """A rooted tree in parent-array form with derived children lists."""

    root: int
    parent: np.ndarray

    def __post_init__(self) -> None:
        self.parent = np.asarray(self.parent, dtype=np.int64)
        if self.parent[self.root] != self.root:
            raise ValueError("root must be its own parent")

    @property
    def n(self) -> int:
        return int(self.parent.shape[0])

    def children_lists(self) -> list[list[int]]:
        """Children of each node, sorted ascending."""
        children: list[list[int]] = [[] for _ in range(self.n)]
        for v, p in enumerate(self.parent.tolist()):
            if p != v:
                children[p].append(v)
        return children

    def max_degree(self) -> int:
        """Maximum tree degree (children + parent edge)."""
        counts = np.zeros(self.n, dtype=np.int64)
        for v, p in enumerate(self.parent.tolist()):
            if p != v:
                counts[p] += 1
                counts[v] += 1
        return int(counts.max(initial=0))

    def depth_array(self) -> np.ndarray:
        """Hop distance of every node from the root (iterative)."""
        depth = np.full(self.n, -1, dtype=np.int64)
        depth[self.root] = 0
        children = self.children_lists()
        stack = [self.root]
        while stack:
            v = stack.pop()
            for c in children[v]:
                depth[c] = depth[v] + 1
                stack.append(c)
        if (depth < 0).any():
            raise ValueError("parent array does not describe a single tree")
        return depth

    def validate(self) -> None:
        """Raise unless the parent array is a tree spanning all nodes."""
        self.depth_array()


def to_child_sibling(tree: RootedTree) -> RootedTree:
    """Rewrite ``tree`` in child–sibling form.

    For each node with children ``c₁ < c₂ < … < c_k`` (id order), the new
    tree keeps ``parent(c₁) = v`` and sets ``parent(c_{i+1}) = c_i``.  The
    result spans the same nodes with maximum degree ≤ 3.
    """
    children = tree.children_lists()
    parent = np.arange(tree.n, dtype=np.int64)
    for v, childs in enumerate(children):
        for i, c in enumerate(childs):
            parent[c] = v if i == 0 else childs[i - 1]
    cs_tree = RootedTree(root=tree.root, parent=parent)
    cs_tree.validate()
    return cs_tree


def to_child_sibling_columns(parent: np.ndarray) -> np.ndarray:
    """Batched child–sibling transform over a whole forest at once.

    ``parent`` is a global parent array describing any rooted forest
    (roots point to themselves).  Every tree is rewritten in
    child–sibling form in one vectorized pass — for each node with
    children ``c₁ < c₂ < … < c_k``, ``parent(c₁)`` stays put and
    ``parent(c_{i+1})`` becomes ``c_i`` — which is exactly
    :func:`to_child_sibling` applied to every component, without
    per-component relabelling (child order is by node id, and any
    monotone relabelling preserves it).

    Returns the new parent array; roots remain self-parented.
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = parent.shape[0]
    cs_parent = np.arange(n, dtype=np.int64)
    children = np.flatnonzero(parent != cs_parent)
    if children.shape[0] == 0:
        return cs_parent
    # ``children`` is ascending by id; the stable grouping sort yields
    # per-parent segments with children ascending inside each.
    parents_of = parent[children]
    order = group_argsort(parents_of, n)
    child = children[order]
    par = parents_of[order]
    first = np.concatenate([[True], par[1:] != par[:-1]])
    prev_sibling = np.concatenate([[0], child[:-1]])
    cs_parent[child] = np.where(first, par, prev_sibling)
    return cs_parent
