"""Vectorised random-walk token engine.

Every evolution of ``CreateExpander`` (§2.1) forwards ``Δ/8`` tokens per
node along uniformly random ports for ``ℓ`` rounds.  This module advances
*all* tokens of a round simultaneously with numpy gathers, making
``n ≈ 10⁵`` experiments practical.

Two optional instrumentation channels exist because two different parts of
the reproduction need them:

- **congestion counters** (Lemma 3.2): the per-round maximum number of
  tokens resident at any node, to verify the ``≤ 3Δ/8`` w.h.p. load bound
  that underpins the NCC0 message-capacity argument;
- **edge traces** (Theorem 1.3): the sequence of *edge ids* each token
  traverses, so the spanning-tree algorithm can unwind overlay edges back
  to base-graph edges.  Self-loop steps record ``SELF_LOOP`` (-1) and are
  skipped during unwinding (the token did not move).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.portgraph import SELF_LOOP, PortGraph

__all__ = ["WalkResult", "run_token_walks", "sample_port_targets"]


def sample_port_targets(
    ports: np.ndarray,
    rng: np.random.Generator,
    positions: np.ndarray | None = None,
    count: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One uniformly random port draw per token — the §2.1 forwarding step.

    Two call modes:

    - **matrix mode** (``positions`` given): ``ports`` is the full
      ``(n, Δ)`` port matrix and the draw advances every token in the
      system at once — the fast engine's inner loop.  Uses
      ``rng.integers`` (unchanged from the original engine, preserving
      seeded histories);
    - **row mode** (``count`` given): ``ports`` is a single node's
      ``(Δ,)`` port row and the draw forwards the ``count`` tokens
      currently resident at that node — the batch protocol node's inner
      loop.  Uses ``⌊uniform·Δ⌋`` instead: at per-node call granularity
      the ``Generator.integers`` wrapper overhead dominates the whole
      protocol run, and the scaled-uniform draw is equidistributed up to
      float rounding (≈``2⁻⁵³·Δ`` bias, far below anything the
      chi-square suites could detect).

    Returns ``(choices, targets)``: the port index each token picked and
    the node it lands on.
    """
    delta = ports.shape[-1]
    if positions is not None:
        choices = rng.integers(0, delta, size=positions.shape[0])
        return choices, ports[positions, choices]
    if count is None:
        raise ValueError("row mode requires count; matrix mode requires positions")
    choices = (rng.random(count) * delta).astype(np.int64)
    return choices, ports[choices]


@dataclass
class WalkResult:
    """Outcome of running a batch of token random walks.

    Attributes
    ----------
    origins:
        ``(m,)`` array — the node that started each token.
    endpoints:
        ``(m,)`` array — where each token is after ``length`` steps.
    max_load_per_round:
        ``(length,)`` array — the maximum number of tokens resident at a
        single node after each forwarding round (Lemma 3.2 check).
    node_traces:
        Optional ``(m, length + 1)`` array of the node sequence of each
        token (column 0 is the origin).
    edge_traces:
        Optional ``(m, length)`` array of the edge id used at each step
        (``SELF_LOOP`` where the token stayed put via a self-loop port).
    """

    origins: np.ndarray
    endpoints: np.ndarray
    max_load_per_round: np.ndarray
    node_traces: np.ndarray | None = field(default=None)
    edge_traces: np.ndarray | None = field(default=None)

    @property
    def num_tokens(self) -> int:
        return int(self.origins.shape[0])


def run_token_walks(
    graph: PortGraph,
    tokens_per_node: int,
    length: int,
    rng: np.random.Generator,
    record_traces: bool = False,
    starts: np.ndarray | None = None,
) -> WalkResult:
    """Run ``tokens_per_node`` independent ``length``-step walks per node.

    Parameters
    ----------
    graph:
        The benign :class:`PortGraph` to walk on.
    tokens_per_node:
        How many tokens each node launches (``Δ/8`` in the paper).  Ignored
        if ``starts`` is given.
    length:
        Walk length ``ℓ``.
    rng:
        Source of randomness; all port choices are drawn from it.
    record_traces:
        If True, record full node and edge-id traces (needed for
        Theorem 1.3's unwinding; costs ``O(m·ℓ)`` memory).
    starts:
        Optional explicit ``(m,)`` array of starting nodes, overriding the
        uniform ``tokens_per_node``-per-node launch (used by the stitching
        engine and by tests).

    Notes
    -----
    A walk step from node ``v`` picks one of ``v``'s ``Δ`` ports uniformly;
    self-loop ports leave the token in place, which is exactly the lazy
    walk the analysis assumes.
    """
    if length < 0:
        raise ValueError("length must be >= 0")
    ports = graph.ports
    n, delta = ports.shape
    if starts is None:
        if tokens_per_node < 0:
            raise ValueError("tokens_per_node must be >= 0")
        origins = np.repeat(np.arange(n, dtype=np.int64), tokens_per_node)
    else:
        origins = np.asarray(starts, dtype=np.int64)
    m = origins.shape[0]

    positions = origins.copy()
    max_load = np.zeros(length, dtype=np.int64)
    node_traces = None
    edge_traces = None
    if record_traces:
        node_traces = np.empty((m, length + 1), dtype=np.int64)
        node_traces[:, 0] = origins
        edge_traces = np.full((m, length), SELF_LOOP, dtype=np.int64)
        if graph.port_edge_ids is None:
            raise ValueError("record_traces requires port_edge_ids on the graph")

    for step in range(length):
        if m > 0:
            choices, targets = sample_port_targets(ports, rng, positions=positions)
            if record_traces:
                edge_traces[:, step] = graph.port_edge_ids[positions, choices]
            positions = targets
            max_load[step] = np.bincount(positions, minlength=n).max()
        if record_traces:
            node_traces[:, step + 1] = positions

    return WalkResult(
        origins=origins,
        endpoints=positions,
        max_load_per_round=max_load,
        node_traces=node_traces,
        edge_traces=edge_traces,
    )
