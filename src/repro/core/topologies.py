"""Structured overlay topologies from a well-formed tree (§1.4).

The paper's first corollary: *"any 'well-behaved' overlay of logarithmic
degree and diameter (e.g., butterfly networks, path graphs, sorted rings,
trees, regular expanders, DeBruijn graphs, etc.) can be constructed in
O(log n) rounds, w.h.p."*

The recipe: enumerate the nodes ``0 .. n-1`` over the well-formed tree
(Euler-tour ranks, ``O(log n)`` rounds), then realise the target
topology's *rank arithmetic* — each node must learn the identifiers of
the nodes holding its neighbouring ranks, which takes ``O(log n)`` rounds
of routing introductions through the tree (each rank-neighbour request
travels ``O(log n)`` hops; degree-``O(1)`` targets mean ``O(log n)``
messages per node in total).  This module builds:

- **sorted path / sorted ring** — ranks ``r ± 1`` (the classic base for
  Aspnes–Wu style structures);
- **hypercube** — ranks ``r XOR 2^k`` (padded to the next power of two);
- **wrapped butterfly** — ``(level, row)`` pairs with straight/cross
  edges;
- **De Bruijn graph** — binary shifts ``2r mod m``, ``2r+1 mod m``.

Every constructor returns an :class:`OverlayTopology` whose adjacency is
validated (degree / diameter) by the tests and the X1 bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.child_sibling import RootedTree
from repro.core.primitives import TreePrimitives
from repro.graphs.analysis import diameter, is_connected

__all__ = [
    "OverlayTopology",
    "build_sorted_path",
    "build_sorted_ring",
    "build_hypercube",
    "build_butterfly",
    "build_debruijn",
]


@dataclass
class OverlayTopology:
    """A structured overlay realised on the tree's rank space.

    Attributes
    ----------
    name:
        Topology family (``"sorted_ring"``, ``"butterfly"``, …).
    adj:
        Adjacency sets over the *original node identifiers*.
    ranks:
        ``ranks[v]`` is the rank node ``v`` holds in the construction.
    rounds:
        Charged construction rounds: enumeration + ``O(log n)`` routing
        of the rank-neighbour introductions.
    """

    name: str
    adj: list[set[int]]
    ranks: np.ndarray
    rounds: int

    @property
    def n(self) -> int:
        return len(self.adj)

    def max_degree(self) -> int:
        return max((len(a) for a in self.adj), default=0)

    def overlay_diameter(self) -> int:
        return diameter(self.adj)

    def is_connected(self) -> bool:
        return is_connected(self.adj)


def _start(tree: RootedTree) -> tuple[TreePrimitives, np.ndarray, np.ndarray, int]:
    prims = TreePrimitives(tree)
    ranks, enum_rounds = prims.enumerate_nodes()
    node_of = np.empty(tree.n, dtype=np.int64)
    node_of[ranks] = np.arange(tree.n)
    # Rank-neighbour introductions route through the tree: O(log n) hops
    # per request, O(1) requests per node for constant-degree targets.
    routing_rounds = 2 * max(1, prims.height)
    return prims, ranks, node_of, enum_rounds + routing_rounds


def _topology_from_rank_edges(
    name: str,
    tree: RootedTree,
    rank_edges,
) -> OverlayTopology:
    prims, ranks, node_of, rounds = _start(tree)
    n = tree.n
    adj: list[set[int]] = [set() for _ in range(n)]
    for ra, rb in rank_edges(n):
        a, b = int(node_of[ra]), int(node_of[rb])
        if a != b:
            adj[a].add(b)
            adj[b].add(a)
    return OverlayTopology(name=name, adj=adj, ranks=ranks, rounds=rounds)


def build_sorted_path(tree: RootedTree) -> OverlayTopology:
    """Path in rank order: degree ≤ 2, the substrate for [4]-style
    constructions."""
    return _topology_from_rank_edges(
        "sorted_path", tree, lambda n: ((r, r + 1) for r in range(n - 1))
    )


def build_sorted_ring(tree: RootedTree) -> OverlayTopology:
    """Sorted ring: ranks ``r`` and ``(r+1) mod n`` joined — the overlay
    the paper suggests building via a BFS + Aspnes–Wu pass."""

    def edges(n):
        for r in range(n):
            yield (r, (r + 1) % n)

    return _topology_from_rank_edges("sorted_ring", tree, edges)


def build_hypercube(tree: RootedTree) -> OverlayTopology:
    """Hypercube on the rank space, folded onto ``n`` nodes.

    Ranks connect to ``r XOR 2^k`` for every bit ``k``; when ``n`` is not
    a power of two, the partner rank is folded back modulo ``n`` (the
    standard incomplete-hypercube fix), preserving connectivity and
    ``O(log n)`` degree/diameter.
    """

    def edges(n):
        bits = max(1, math.ceil(math.log2(max(2, n))))
        for r in range(n):
            for k in range(bits):
                partner = r ^ (1 << k)
                if partner >= n:
                    partner %= n
                if partner != r:
                    yield (r, partner)

    return _topology_from_rank_edges("hypercube", tree, edges)


def build_butterfly(tree: RootedTree) -> OverlayTopology:
    """Wrapped butterfly on the rank space.

    A wrapped butterfly has ``k · 2^k`` positions ``(level, row)``; the
    smallest ``k`` with ``k · 2^k ≥ n`` is chosen and surplus positions
    are folded onto the ranks modulo ``n`` (a quotient of a connected
    graph stays connected).  Each position connects to the *straight* and
    *cross* neighbours on the next level; the cross edge at level ``i``
    flips row bit ``i``, so all ``k`` bits get flipped around the wrap —
    degree ``O(1)`` (plus folding) and diameter ``O(log n)``.
    """

    def edges(n):
        k = 2
        while k * (1 << k) < n:
            k += 1
        rows = 1 << k

        def rank_of(level, row):
            return (level * rows + row) % n

        for level in range(k):
            nxt = (level + 1) % k
            for row in range(rows):
                here = rank_of(level, row)
                yield (here, rank_of(nxt, row))
                yield (here, rank_of(nxt, row ^ (1 << level)))

    return _topology_from_rank_edges("butterfly", tree, edges)


def build_debruijn(tree: RootedTree) -> OverlayTopology:
    """Binary De Bruijn graph on the rank space: ``r → 2r mod n`` and
    ``r → (2r + 1) mod n``.  Degree ≤ 4, diameter ``O(log n)``."""

    def edges(n):
        for r in range(n):
            yield (r, (2 * r) % n)
            yield (r, (2 * r + 1) % n)

    return _topology_from_rank_edges("debruijn", tree, edges)
