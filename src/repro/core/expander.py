"""``CreateExpander`` — the paper's core algorithm (§2.1), vectorised.

Each *evolution* turns the current benign graph ``G_i`` into ``G_{i+1}``:

1. every node starts ``Δ/8`` tokens carrying its identifier;
2. tokens are forwarded along uniformly random ports for ``ℓ`` rounds;
3. every node answers up to ``3Δ/8`` of the tokens it holds (chosen
   uniformly without replacement; the rest are dropped), creating a
   bidirected edge ``{origin, endpoint}`` per answered token;
4. every node pads itself back to degree ``Δ`` with self-loops.

Token counts guarantee the new graph is again benign: a node's own tokens
contribute at most ``Δ/8`` edges, accepted tokens at most ``3Δ/8``, so at
least ``Δ/2`` ports remain self-loops (laziness), and Lemma 3.1 shows the
``Λ``-cut survives w.h.p.  Section 3 proves the conductance grows by
``Ω(√ℓ)`` per evolution until it is constant, at which point the diameter
is ``O(log n)``.

This module is the *fast engine*: it runs the identical random process on
numpy arrays.  The message-level engine in :mod:`repro.core.protocol`
executes the same protocol node-by-node under NCC0 capacity enforcement;
tests cross-validate the two.

When ``record_traces`` is enabled the builder retains, for every created
edge, the full walk that produced it (edge ids in the previous evolution
graph).  This is the provenance the spanning-tree algorithm of Theorem 1.3
unwinds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.benign import BaseEdge, make_benign
from repro.core.params import ExpanderParams
from repro.core.walks import run_token_walks
from repro.graphs.portgraph import PortGraph
from repro.net.vectorops import segmented_keep_indices
from repro.graphs.spectral import spectral_gap

__all__ = [
    "OverlayEdge",
    "EdgeRegistry",
    "EvolutionStats",
    "ExpanderBuilder",
    "ExpanderResult",
    "create_expander",
]


@dataclass
class OverlayEdge:
    """Provenance of one walk-created edge at evolution level ``≥ 1``.

    ``origin`` started the token, ``endpoint`` accepted it; the edge is
    undirected ``{origin, endpoint}``.  ``node_trace`` is the walk's node
    sequence (origin first) and ``edge_trace`` the ids of the level-below
    edges used per step (``-1`` for lazy self-loop steps).  Both are None
    unless trace recording was on.
    """

    origin: int
    endpoint: int
    node_trace: np.ndarray | None = None
    edge_trace: np.ndarray | None = None


class EdgeRegistry:
    """Columnar per-evolution edge registry.

    The batched counterpart of a ``list[OverlayEdge]``: the accepted
    tokens' ``(origin, endpoint)`` pairs live in two parallel ``int64``
    columns (plus an optional per-edge trace list), so the hot non-trace
    path of an evolution materialises **zero** per-token Python objects —
    previously ``n·Δ/8`` ``OverlayEdge`` instances per evolution.

    The sequence interface is preserved: indexing (and slicing/iteration)
    materialises :class:`OverlayEdge` views on demand, which is what the
    spanning-tree unwinding, the benchmarks, and the tests consume.
    """

    __slots__ = ("origins", "endpoints", "traces")

    def __init__(
        self,
        origins: np.ndarray | None = None,
        endpoints: np.ndarray | None = None,
        traces: list[tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> None:
        self.origins = np.asarray(
            origins if origins is not None else [], dtype=np.int64
        )
        self.endpoints = np.asarray(
            endpoints if endpoints is not None else [], dtype=np.int64
        )
        if self.origins.shape != self.endpoints.shape:
            raise ValueError("origin/endpoint columns must have equal length")
        if traces is not None and len(traces) != self.origins.shape[0]:
            raise ValueError("traces must match the column length")
        #: ``(node_trace, edge_trace)`` per edge, or None without recording.
        self.traces = traces

    def __len__(self) -> int:
        return int(self.origins.shape[0])

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return [self[i] for i in range(*idx.indices(len(self)))]
        i = int(idx)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"edge id {idx} out of range for {len(self)} edges")
        node_trace = edge_trace = None
        if self.traces is not None:
            node_trace, edge_trace = self.traces[i]
        return OverlayEdge(
            origin=int(self.origins[i]),
            endpoint=int(self.endpoints[i]),
            node_trace=node_trace,
            edge_trace=edge_trace,
        )

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def extend(self, edges) -> None:
        """Append :class:`OverlayEdge` entries (the rare rescue path)."""
        edges = list(edges)
        if not edges:
            return
        self.origins = np.concatenate(
            [self.origins, np.array([e.origin for e in edges], dtype=np.int64)]
        )
        self.endpoints = np.concatenate(
            [self.endpoints, np.array([e.endpoint for e in edges], dtype=np.int64)]
        )
        if self.traces is not None:
            self.traces.extend((e.node_trace, e.edge_trace) for e in edges)


@dataclass
class EvolutionStats:
    """Per-evolution measurements reported by the builder."""

    iteration: int
    tokens_started: int
    tokens_accepted: int
    tokens_dropped: int
    max_token_load: int
    distinct_edges: int
    spectral_gap: float | None = None


@dataclass
class ExpanderResult:
    """Everything produced by a full ``CreateExpander`` run."""

    final_graph: PortGraph
    history: list[EvolutionStats]
    levels: list[PortGraph]
    base_registry: list[BaseEdge]
    level_registries: list[EdgeRegistry]
    params: ExpanderParams
    rounds: int

    @property
    def num_evolutions(self) -> int:
        return len(self.history)


class ExpanderBuilder:
    """Stateful driver running evolutions on a benign port graph.

    Parameters
    ----------
    base_graph:
        The benign level-0 graph (output of
        :func:`repro.core.benign.make_benign` or any benign PortGraph).
    params:
        Algorithm parameters; ``params.delta`` must equal the graph degree.
    rng:
        Randomness source for all port choices and acceptance sampling.
    record_traces:
        Retain per-edge walk provenance (needed by Theorem 1.3).
    """

    def __init__(
        self,
        base_graph: PortGraph,
        params: ExpanderParams,
        rng: np.random.Generator,
        record_traces: bool = False,
    ) -> None:
        if base_graph.delta != params.delta:
            raise ValueError(
                f"graph degree {base_graph.delta} != params.delta {params.delta}"
            )
        self.params = params
        self.rng = rng
        self.record_traces = record_traces
        self.levels: list[PortGraph] = [base_graph]
        self.level_registries: list[EdgeRegistry] = []
        self.history: list[EvolutionStats] = []

    @property
    def current(self) -> PortGraph:
        """The most recent evolution graph ``G_i``."""
        return self.levels[-1]

    # ------------------------------------------------------------------
    def step(self) -> EvolutionStats:
        """Run one evolution ``G_i → G_{i+1}`` (algorithm box lines a–e)."""
        params = self.params
        graph = self.current
        n = graph.n

        walk = run_token_walks(
            graph,
            tokens_per_node=params.tokens_per_node,
            length=params.ell,
            rng=self.rng,
            record_traces=self.record_traces,
        )
        accepted = _accept_tokens(walk.endpoints, params.accept_cap, self.rng)

        origins_acc = walk.origins[accepted]
        endpoints_acc = walk.endpoints[accepted]

        traces = None
        if self.record_traces:
            traces = [
                (walk.node_traces[i].copy(), walk.edge_traces[i].copy())
                for i in accepted.tolist()
            ]
        registry = EdgeRegistry(origins_acc, endpoints_acc, traces)

        new_graph = PortGraph.from_edge_multiset(
            n=n,
            delta=params.delta,
            endpoints_a=origins_acc,
            endpoints_b=endpoints_acc,
            edge_ids=np.arange(len(registry), dtype=np.int64),
        )

        stats = EvolutionStats(
            iteration=len(self.history) + 1,
            tokens_started=walk.num_tokens,
            tokens_accepted=int(accepted.shape[0]),
            tokens_dropped=walk.num_tokens - int(accepted.shape[0]),
            max_token_load=int(walk.max_load_per_round.max(initial=0)),
            distinct_edges=new_graph.num_unique_edges(),
        )
        self.levels.append(new_graph)
        self.level_registries.append(registry)
        self.history.append(stats)
        return stats

    # ------------------------------------------------------------------
    def run(
        self,
        num_evolutions: int | None = None,
        gap_threshold: float | None = None,
        track_gap: bool = False,
        max_evolutions: int | None = None,
    ) -> PortGraph:
        """Run evolutions until the configured count or an adaptive stop.

        Parameters
        ----------
        num_evolutions:
            Fixed evolution count; defaults to ``params.num_evolutions``.
        gap_threshold:
            If given, stop early once the spectral gap of the current
            graph reaches the threshold (checked after each evolution;
            implies gap tracking).  The paper stops after ``L`` evolutions;
            the adaptive mode is how the experiments locate the *actual*
            number of evolutions needed, which should scale as
            ``O(log n / log ℓ)``.
        track_gap:
            Record the spectral gap in each :class:`EvolutionStats` (costs
            an eigensolve per evolution).
        max_evolutions:
            Safety cap for the adaptive mode.
        """
        if num_evolutions is None:
            num_evolutions = self.params.num_evolutions
        limit = num_evolutions if gap_threshold is None else (max_evolutions or 4 * num_evolutions)
        want_gap = track_gap or gap_threshold is not None
        for _ in range(limit):
            stats = self.step()
            if want_gap:
                stats.spectral_gap = spectral_gap(self.current)
            if gap_threshold is not None and stats.spectral_gap >= gap_threshold:
                break
        return self.current

    def rounds_used(self) -> int:
        """Synchronous rounds consumed so far: each evolution costs ``ℓ``
        forwarding rounds plus one answer round (§2.2 runtime argument)."""
        return len(self.history) * (self.params.ell + 1)


def _accept_tokens(
    endpoints: np.ndarray, cap: int, rng: np.random.Generator
) -> np.ndarray:
    """Indices of tokens accepted under the per-endpoint cap.

    Every endpoint keeps at most ``cap`` tokens, chosen uniformly without
    replacement among those it received.  Delegates to the shared
    segment-truncation primitive so the acceptance step and the network
    engines' capacity enforcement follow one RNG discipline.
    """
    return segmented_keep_indices(endpoints, cap, rng)


def create_expander(
    graph,
    params: ExpanderParams | None = None,
    rng: np.random.Generator | None = None,
    record_traces: bool = False,
    gap_threshold: float | None = None,
    track_gap: bool = False,
) -> ExpanderResult:
    """End-to-end ``CreateExpander``: prepare ``graph`` (MakeBenign) and run
    the configured evolutions.

    ``graph`` is a networkx (di)graph; parameters default to
    :meth:`ExpanderParams.recommended` for its size and degree.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if params is None:
        from repro.core.benign import undirected_edge_list

        n, edges = undirected_edge_list(graph)
        degree = np.zeros(n, dtype=np.int64)
        for a, b in edges:
            degree[a] += 1
            degree[b] += 1
        params = ExpanderParams.recommended(n, max_degree=int(degree.max(initial=1)))

    base, base_registry = make_benign(graph, params)
    builder = ExpanderBuilder(base, params, rng, record_traces=record_traces)
    builder.run(gap_threshold=gap_threshold, track_gap=track_gap)
    return ExpanderResult(
        final_graph=builder.current,
        history=builder.history,
        levels=builder.levels,
        base_registry=base_registry,
        level_registries=builder.level_registries,
        params=params,
        rounds=builder.rounds_used() + 2,  # +2: bidirect + copy preparation
    )
