"""End-to-end overlay construction pipeline (Theorem 1.1).

``build_well_formed_tree`` composes the full NCC0 algorithm:

1. **Preparation** (§2.1): bidirect the knowledge graph and make it benign
   (``MakeBenign`` — edge copying + self-loop padding) — 2 rounds;
2. **CreateExpander**: ``L`` evolutions of ``ℓ + 1`` rounds each, after
   which ``G_L`` has constant conductance and diameter ``O(log n)``
   w.h.p.;
3. **Rooting** (footnote 8): flood minimum ids and build a BFS tree;
4. **Well-forming**: child–sibling transformation + Euler-tour
   rebalancing into a degree-≤3, depth-``O(log n)`` tree.

The returned :class:`OverlayBuildResult` carries a per-phase round ledger —
the quantity Theorem 1.1 bounds by ``O(log n)`` — plus the evolution
history used by the conductance-growth experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.benign import check_benign
from repro.core.bfs import BFSForest, build_bfs_forest
from repro.core.child_sibling import RootedTree
from repro.core.euler import WellFormedTree, build_well_formed_from_tree
from repro.core.expander import EvolutionStats, ExpanderResult, create_expander
from repro.core.params import ExpanderParams
from repro.graphs.analysis import diameter
from repro.graphs.portgraph import PortGraph

__all__ = [
    "OverlayBuildResult",
    "build_well_formed_tree",
    "rooting_flood_rounds",
    "ROOTING_MODES",
    "EXPANDER_MODES",
    "HYBRID_MODES",
]


def rooting_flood_rounds(n: int) -> int:
    """The pipeline's flooding budget for the rooting phase.

    The paper's budget: ``L ≥ log n ≥ diameter`` rounds of flooding.  The
    final expander's diameter is ``O(log n)`` w.h.p.; the doubled budget
    absorbs the constant, and an insufficient flood surfaces as a
    multiple-root RuntimeError rather than a silently wrong tree.  Shared
    with the adversarial scenario runner
    (:mod:`repro.scenarios.runner`), whose rooting workloads must stay
    comparable with pipeline-built trees.
    """
    return 2 * max(1, math.ceil(math.log2(max(2, n)))) + 2

#: How step 3 (rooting) executes: ``"reference"`` runs the centralised
#: adjacency-loop oracle of :mod:`repro.core.bfs`; ``"protocol"``,
#: ``"batch"``, and ``"soa"`` run the real message-level protocol on the
#: NCC0 simulator (object nodes, batched int64 columns, or the
#: structure-of-arrays class of :mod:`repro.core.soa_rooting`).  All four
#: produce the identical tree; ``"soa"`` is what keeps the pipeline
#: practical at ``n ≥ 10⁶``.  Authoritative in
#: :mod:`repro.runtime.context` (a leaf package, so the old
#: cycle-avoiding mirror literal for the hybrid tuple is gone);
#: re-exported here for compatibility, alongside ``EXPANDER_MODES`` (how
#: step 2, ``CreateExpander``, executes: the fast ``"walks"`` array
#: engine or the message-level tiers) and ``HYBRID_MODES`` (the §4
#: hybrid pipeline tiers — the same tuple as
#: ``repro.hybrid.components.HYBRID_TIERS``).
from repro.runtime import EXPANDER_MODES, ROOTING_MODES, RunContext  # noqa: E402
from repro.runtime import HYBRID_TIERS as HYBRID_MODES  # noqa: E402


def _rooting_forest(
    graph: PortGraph,
    mode: str,
    rng: np.random.Generator,
    ctx: RunContext | None = None,
) -> BFSForest:
    """Run the message-level rooting phase and adapt it to a BFSForest."""
    from repro.core.protocol_tree import run_batch_rooting, run_protocol_rooting
    from repro.core.soa_rooting import run_soa_rooting

    n = graph.n
    flood_rounds = rooting_flood_rounds(n)
    runner = {
        "batch": run_batch_rooting,
        "soa": run_soa_rooting,
        "protocol": run_protocol_rooting,
    }[mode]
    try:
        result = runner(graph, flood_rounds=flood_rounds, rng=rng, ctx=ctx)
    except RuntimeError as exc:
        from repro.graphs.analysis import is_connected

        # Keep the pipeline's mode-independent contract for the common
        # failure — but only when the graph really is disconnected; a
        # connected graph that outran the flood/round budget keeps its
        # original diagnosis.
        if not is_connected(graph.neighbor_sets()):
            raise ValueError(
                "input graph is disconnected; use repro.hybrid.components for forests"
            ) from exc
        raise
    return BFSForest(
        parent=result.parent,
        depth=result.depth,
        root_of=np.full(n, result.root, dtype=np.int64),
        roots=[result.root],
        rounds=result.rounds,
    )


@dataclass
class OverlayBuildResult:
    """Everything produced by the Theorem 1.1 pipeline.

    Attributes
    ----------
    expander:
        The :class:`ExpanderResult` (final graph, evolution history,
        provenance registries).
    bfs:
        The BFS forest on the final expander graph (a single tree when the
        input was connected).
    well_formed:
        The final well-formed tree.
    round_ledger:
        Rounds consumed per phase (``prepare``, ``evolutions``, ``bfs``,
        ``well_forming``).
    """

    expander: ExpanderResult
    bfs: BFSForest
    well_formed: WellFormedTree
    round_ledger: dict[str, int] = field(default_factory=dict)

    @property
    def tree(self) -> RootedTree:
        return self.well_formed.tree

    @property
    def total_rounds(self) -> int:
        """Total synchronous rounds across all phases."""
        return sum(self.round_ledger.values())

    @property
    def history(self) -> list[EvolutionStats]:
        return self.expander.history

    def final_graph(self) -> PortGraph:
        return self.expander.final_graph

    def overlay_diameter(self) -> int:
        """Diameter of the final expander graph ``G_L``."""
        return diameter(self.expander.final_graph.neighbor_sets())


def _message_level_expander(graph, mode: str, params, rng) -> ExpanderResult:
    """Run ``CreateExpander`` message-by-message and adapt the outcome to
    the :class:`ExpanderResult` shape the rest of the pipeline consumes.

    Message-level runs carry no per-evolution history or provenance (the
    nodes only keep their final ports), so ``history`` is empty and the
    round charge comes from the metrics' actual NCC0 round count.
    """
    from repro.core.batch_protocol import run_batch_expander, run_soa_expander
    from repro.core.protocol import run_protocol_expander

    runner = {
        "protocol": run_protocol_expander,
        "batch": run_batch_expander,
        "soa": run_soa_expander,
    }[mode]
    result = runner(graph, params=params, rng=rng)
    return ExpanderResult(
        final_graph=result.final_graph,
        history=[],
        levels=[result.final_graph],
        base_registry=[],
        level_registries=[],
        params=result.params,
        rounds=result.rounds + 2,  # +2: bidirect + copy preparation
    )


def build_well_formed_tree(
    graph,
    params: ExpanderParams | None = None,
    rng: np.random.Generator | None = None,
    record_traces: bool = False,
    gap_threshold: float | None = None,
    track_gap: bool = False,
    verify_benign: bool = False,
    rooting: str | None = None,
    expander: str | None = None,
    *,
    ctx: RunContext | None = None,
) -> OverlayBuildResult:
    """Run the complete Theorem 1.1 construction on ``graph``.

    Parameters
    ----------
    graph:
        Weakly connected networkx (di)graph of bounded degree.
    params, rng:
        Algorithm parameters and randomness; both default sensibly
        (:meth:`ExpanderParams.recommended`, seed 0).
    record_traces:
        Keep walk provenance on every overlay edge (Theorem 1.3 input).
    gap_threshold:
        Stop evolutions adaptively once the spectral gap reaches this
        value instead of running the fixed ``L``.
    track_gap:
        Record the spectral gap after each evolution (costs eigensolves).
    verify_benign:
        Assert Definition 2.1 on every evolution graph (testing aid;
        raises on violation).
    rooting:
        One of :data:`ROOTING_MODES`: the centralised ``"reference"``
        oracle (default), or the message-level ``"protocol"`` /
        ``"batch"`` / ``"soa"`` executions on the NCC0 simulator.  All
        four build the identical tree; the SoA tier avoids per-node
        Python calls entirely at large ``n``.
    expander:
        One of :data:`EXPANDER_MODES`: the fast ``"walks"`` array engine
        (default), or the message-level tiers on the NCC0 simulator.
        The message-level tiers enforce real capacities but keep no
        evolution history/provenance, so they are incompatible with
        ``record_traces`` / ``gap_threshold`` / ``track_gap`` /
        ``verify_benign``.
    ctx:
        A resolved :class:`~repro.runtime.context.RunContext`.  Supplies
        ``rooting`` / ``expander`` when those kwargs are omitted (the
        kwargs win per the precedence chain) and is threaded into every
        network the message-level phases construct (workers, tracer,
        fault spec, layout reuse).  Without one, the kwargs default to
        ``"reference"`` / ``"walks"`` exactly as before — the pipeline
        itself never sniffs ``REPRO_*`` variables.

    Returns
    -------
    OverlayBuildResult
        With a round ledger satisfying, w.h.p.,
        ``total_rounds = O(log n)`` for constant-degree inputs.
    """
    if ctx is not None:
        ctx = ctx.with_overrides(rooting=rooting, expander=expander)
        rooting = ctx.rooting
        expander = ctx.expander
    else:
        rooting = rooting if rooting is not None else "reference"
        expander = expander if expander is not None else "walks"
    if rooting not in ROOTING_MODES:
        raise ValueError(f"rooting must be one of {ROOTING_MODES}, got {rooting!r}")
    if expander not in EXPANDER_MODES:
        raise ValueError(f"expander must be one of {EXPANDER_MODES}, got {expander!r}")
    if rng is None:
        rng = np.random.default_rng(0)

    if expander == "walks":
        expander_result = create_expander(
            graph,
            params=params,
            rng=rng,
            record_traces=record_traces,
            gap_threshold=gap_threshold,
            track_gap=track_gap,
        )
    else:
        if record_traces or track_gap or verify_benign or gap_threshold is not None:
            raise ValueError(
                "record_traces/gap_threshold/track_gap/verify_benign require "
                'the "walks" expander mode (message-level nodes keep no '
                "evolution history)"
            )
        expander_result = _message_level_expander(graph, expander, params, rng)
    message_level = expander != "walks"

    if verify_benign:
        for level, port_graph in enumerate(expander_result.levels):
            target = expander_result.params.lam if level == 0 else None
            report = check_benign(
                port_graph,
                expander_result.params,
                check_cut=port_graph.n <= 300,
                cut_target=target,
            )
            if not report.all_ok():
                raise AssertionError(
                    f"evolution graph at level {level} violates Definition 2.1: {report}"
                )

    if rooting == "reference":
        bfs = build_bfs_forest(expander_result.final_graph)
    else:
        bfs = _rooting_forest(expander_result.final_graph, rooting, rng, ctx)
    if len(bfs.roots) != 1:
        raise ValueError(
            "input graph is disconnected; use repro.hybrid.components for forests"
        )
    tree = RootedTree(root=bfs.roots[0], parent=bfs.parent.copy())
    well_formed = build_well_formed_from_tree(tree)

    ledger = {
        "prepare": 2,
        # Walk-engine evolutions are charged analytically (ℓ + 1 rounds
        # each); message-level runs charge the NCC0 rounds they actually
        # consumed (expander_result.rounds carries the +2 preparation).
        "evolutions": (
            expander_result.rounds - 2
            if message_level
            else len(expander_result.history) * (expander_result.params.ell + 1)
        ),
        "bfs": bfs.rounds,
        "well_forming": well_formed.rounds,
    }
    return OverlayBuildResult(
        expander=expander_result,
        bfs=bfs,
        well_formed=well_formed,
        round_ledger=ledger,
    )
