"""Tunable parameters of ``CreateExpander`` (§2.1 of the paper).

The algorithm takes four inputs besides the graph: the walk length ``ℓ``,
the target degree ``Δ``, the minimum-cut parameter ``Λ``, and the number of
evolutions ``L`` (an upper bound on ``log n``).  The theory requires
``Δ, Λ = Ω(log n)`` with "big enough" hidden constants and any constant
``ℓ``; :meth:`ExpanderParams.recommended` encodes the practical calibration
documented in ``DESIGN.md`` §5, under which all benignness and growth
invariants hold across the test matrix.

Structural constraints encoded here:

- ``Δ`` must be divisible by 8, so that each node starts exactly ``Δ/8``
  tokens and accepts at most ``3Δ/8`` (the algorithm box uses these
  fractions literally);
- ``2·Λ·d_max ≤ Δ/2`` for the NCC0 preparation step (copying every edge
  ``Λ`` times must leave at least ``Δ/2`` ports free for self-loops, i.e.
  preserve laziness).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["ExpanderParams"]


@dataclass(frozen=True)
class ExpanderParams:
    """Parameter bundle ``(ℓ, Δ, Λ, L)`` for the overlay construction.

    Attributes
    ----------
    delta:
        Uniform degree ``Δ`` of every benign evolution graph.  Must be a
        positive multiple of 8.
    lam:
        Minimum-cut parameter ``Λ``: the NCC0 preparation copies every
        initial edge ``Λ`` times; the invariant checks require every
        evolution graph to keep a cut of at least ``Λ``.
    ell:
        Random-walk length ``ℓ`` per evolution (a constant in the NCC0
        algorithm; ``Θ(Λ²)`` in the hybrid variant of Theorem 4.1).
    num_evolutions:
        Number of evolutions ``L`` (the paper's upper bound on ``log n``).
    """

    delta: int
    lam: int
    ell: int
    num_evolutions: int

    def __post_init__(self) -> None:
        if self.delta <= 0 or self.delta % 8 != 0:
            raise ValueError(f"delta must be a positive multiple of 8, got {self.delta}")
        if self.lam < 1:
            raise ValueError(f"lam must be >= 1, got {self.lam}")
        if self.ell < 1:
            raise ValueError(f"ell must be >= 1, got {self.ell}")
        if self.num_evolutions < 0:
            raise ValueError(f"num_evolutions must be >= 0, got {self.num_evolutions}")

    # ------------------------------------------------------------------
    # Derived quantities from the algorithm box (§2.1)
    # ------------------------------------------------------------------
    @property
    def tokens_per_node(self) -> int:
        """``Δ/8`` tokens started by each node per evolution."""
        return self.delta // 8

    @property
    def accept_cap(self) -> int:
        """``3Δ/8`` — the maximum number of foreign tokens a node answers."""
        return 3 * self.delta // 8

    @property
    def maintained_cut_floor(self) -> int:
        """Minimum cut every *evolution* graph must keep.

        The preparation step establishes a cut of exactly ``Λ``; the
        theory (Lemma 3.12) maintains an ``Ω(log n)`` cut thereafter but
        with a constant that, at the paper's face values (``ℓ > 10⁶``), is
        astronomically conservative.  The practical invariant — calibrated
        in DESIGN.md §5 and enforced by the E2 experiment — is that the
        cut never drops below ``max(2, Λ/2)`` and regrows once conductance
        rises.
        """
        return max(2, self.lam // 2)

    def max_copy_degree(self) -> int:
        """Largest input degree ``d`` such that copying each incident edge
        ``Λ`` times leaves ``≥ Δ/2`` self-loops (laziness)."""
        return self.delta // (2 * self.lam) // 2

    # ------------------------------------------------------------------
    # Calibrated defaults
    # ------------------------------------------------------------------
    @classmethod
    def recommended(
        cls,
        n: int,
        max_degree: int = 2,
        ell: int = 16,
        extra_evolutions: int = 4,
    ) -> "ExpanderParams":
        """Practical parameters for an ``n``-node input of degree
        ``max_degree`` (see DESIGN.md §5 for the calibration rationale).

        ``Λ = ⌈log₂ n⌉`` copies; ``Δ`` the smallest multiple of 8 that is
        at least ``max(32, 8·(log₂ n + 3))`` *and* large enough to hold
        the ``Λ``-fold copied edges with slack (``4·Λ·d ≤ Δ``, i.e. twice
        the laziness requirement); ``L = ⌈log₂ n⌉ + extra``.  Walks of
        length 16 keep the minimum cut comfortably above the maintained
        floor across the calibration matrix.
        """
        if n < 2:
            raise ValueError("need at least 2 nodes")
        log_n = max(1, math.ceil(math.log2(n)))
        lam = max(2, log_n)
        needed_for_copies = 4 * lam * max_degree
        delta = max(32, 8 * (log_n + 3), needed_for_copies)
        delta = ((delta + 7) // 8) * 8
        return cls(
            delta=delta,
            lam=lam,
            ell=ell,
            num_evolutions=log_n + extra_evolutions,
        )

    def with_evolutions(self, num_evolutions: int) -> "ExpanderParams":
        """Copy of these parameters with a different evolution count."""
        return replace(self, num_evolutions=num_evolutions)
