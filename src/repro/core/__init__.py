"""Core contribution of the paper (Sections 2–3).

The public surface:

- :class:`repro.core.params.ExpanderParams` — the ``(ℓ, Δ, Λ, L)`` bundle;
- :func:`repro.core.benign.make_benign` / :func:`check_benign` —
  Definition 2.1 preparation and invariant oracle;
- :class:`repro.core.expander.ExpanderBuilder` /
  :func:`create_expander` — the evolutions themselves (fast engine);
- :func:`repro.core.pipeline.build_well_formed_tree` — the full
  Theorem 1.1 pipeline (prepare → evolve → BFS → well-form);
- :mod:`repro.core.protocol` — the message-level NCC0 engine used to
  validate communication bounds.
"""

from repro.core.params import ExpanderParams
from repro.core.batch_protocol import (
    BatchExpanderNode,
    SoAExpanderClass,
    run_batch_expander,
    run_soa_expander,
)
from repro.core.benign import BenignReport, check_benign, make_benign
from repro.core.protocol import ExpanderNode, ProtocolRunResult, run_protocol_expander
from repro.core.walks import WalkResult, run_token_walks, sample_port_targets
from repro.core.expander import (
    EdgeRegistry,
    EvolutionStats,
    ExpanderBuilder,
    ExpanderResult,
    OverlayEdge,
    create_expander,
)
from repro.core.protocol_tree import (
    ROOTING_TIERS,
    BatchRootingNode,
    TreeProtocolResult,
    build_rooting_population,
    run_batch_rooting,
    run_protocol_rooting,
    run_rooting_under_asynchrony,
)
from repro.core.soa_rooting import SoARootingClass, csr_neighbors, run_soa_rooting
from repro.core.bfs import BFSForest, build_bfs_forest, distributed_bfs, flood_min_ids
from repro.core.child_sibling import RootedTree, to_child_sibling
from repro.core.euler import (
    EulerTour,
    WellFormedTree,
    build_well_formed_from_tree,
    euler_tour,
    heap_tree,
    list_rank,
    preorder_and_sizes,
)
from repro.core.pipeline import OverlayBuildResult, build_well_formed_tree
from repro.core.primitives import TreePrimitives
from repro.core.topologies import (
    OverlayTopology,
    build_butterfly,
    build_debruijn,
    build_hypercube,
    build_sorted_path,
    build_sorted_ring,
)

__all__ = [
    "ExpanderParams",
    "BatchExpanderNode",
    "SoAExpanderClass",
    "run_batch_expander",
    "run_soa_expander",
    "ExpanderNode",
    "ProtocolRunResult",
    "run_protocol_expander",
    "BenignReport",
    "check_benign",
    "make_benign",
    "WalkResult",
    "run_token_walks",
    "sample_port_targets",
    "EdgeRegistry",
    "EvolutionStats",
    "ExpanderBuilder",
    "ExpanderResult",
    "OverlayEdge",
    "create_expander",
    "BatchRootingNode",
    "TreeProtocolResult",
    "run_batch_rooting",
    "run_protocol_rooting",
    "run_rooting_under_asynchrony",
    "ROOTING_TIERS",
    "build_rooting_population",
    "SoARootingClass",
    "csr_neighbors",
    "run_soa_rooting",
    "BFSForest",
    "build_bfs_forest",
    "distributed_bfs",
    "flood_min_ids",
    "RootedTree",
    "to_child_sibling",
    "EulerTour",
    "WellFormedTree",
    "build_well_formed_from_tree",
    "euler_tour",
    "heap_tree",
    "list_rank",
    "preorder_and_sizes",
    "OverlayBuildResult",
    "build_well_formed_tree",
    "TreePrimitives",
    "OverlayTopology",
    "build_butterfly",
    "build_debruijn",
    "build_hypercube",
    "build_sorted_path",
    "build_sorted_ring",
]
