"""SoA rooting: min-id flooding + BFS with *one* Python call per round.

The third execution tier of the rooting phase (§2.1, footnote 8).  The
object (:class:`~repro.core.protocol_tree._RootingNode`) and batch
(:class:`~repro.core.protocol_tree.BatchRootingNode`) tiers pay one Python
call per node per round; at ``n ≥ 10⁵`` that call overhead — not message
work — dominates the simulation (rooting does almost no per-node compute,
making it the most call-bound phase of the pipeline).  Here the entire
population is one :class:`~repro.net.soa.SoAProtocolClass` whose state
lives in shared numpy columns:

- ``best``   — the smallest id heard so far (min-id flooding),
- ``parent`` / ``depth`` — the BFS tree under construction,
- ``announced`` — whether the node has broadcast its depth yet,
- a CSR adjacency (``indptr`` / ``flat``: sorted distinct neighbours),

and one :meth:`~SoARootingClass.on_round_soa` call advances all ``n``
nodes: the flooding fold is a ``minimum.reduceat`` over receiver
segments, parent adoption is a lexicographic ``(depth, offerer)`` segment
minimum, and the round's outgoing traffic is emitted as a single
:class:`~repro.net.batch.MessageBatch` in canonical order (ascending
sender, sorted-neighbour emission order — exactly the flat buffer the
per-node tiers produce).

Because rooting nodes draw no randomness of their own and the SoA batch
enters :class:`~repro.net.network.SyncNetwork`'s vectorized delivery in
the identical canonical order, :func:`run_soa_rooting` is **bit-for-bit**
equal to :func:`~repro.core.protocol_tree.run_batch_rooting` (and hence
to the object protocol and the reference BFS): same ``(root, parent,
depth)``, same metrics, same round count under the same seed — enforced
over a 20-seed matrix by ``tests/core/test_soa_engines.py``.  What
changes is the constant: ≥ 20× over the batch tier at ``n = 10⁵`` and a
practical ``n = 10⁶`` rooting run
(``benchmarks/bench_s3_soa_scaling.py``).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.portgraph import PortGraph
from repro.net.batch import MessageBatch
from repro.net.network import CapacityPolicy, SyncNetwork
from repro.net.soa import SoAInbox, SoAProtocolClass
from repro.runtime import RunContext

from repro.core.protocol_tree import (
    BFS_OFFER,
    MIN_ID,
    TreeProtocolResult,
    _resolve_defaults,
)

__all__ = [
    "SoARootingClass",
    "collect_soa_result",
    "csr_neighbors",
    "run_soa_rooting",
]


def csr_neighbors(graph: PortGraph) -> tuple[np.ndarray, np.ndarray]:
    """Distinct-neighbour adjacency of a port graph in CSR form.

    Returns ``(indptr, flat)`` with ``flat[indptr[v]:indptr[v+1]]`` the
    sorted distinct non-self neighbours of ``v`` — the vectorized
    equivalent of ``sorted(set(neighbors))`` that the per-node rooting
    tiers compute, built without any per-node Python loop (which is what
    keeps ``n = 10⁶`` setup times sane).
    """
    n = graph.n
    ports = graph.ports
    rows = np.repeat(np.arange(n, dtype=np.int64), graph.delta)
    cols = ports.ravel()
    mask = rows != cols
    # One sortable key per (node, neighbour) pair; sorting + adjacent-dedup
    # both removes parallel edges and yields the per-node sorted neighbour
    # order (cheaper than np.unique's hash path at this size).
    keys = np.sort(rows[mask] * n + cols[mask])
    if keys.shape[0]:
        keys = keys[np.concatenate([[True], keys[1:] != keys[:-1]])]
    owners = keys // n
    flat = keys % n
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(owners, minlength=n), out=indptr[1:])
    return indptr, flat


class SoARootingClass(SoAProtocolClass):
    """Every node of the flooding + BFS protocol, in columnar form.

    Mirrors :class:`~repro.core.protocol_tree.BatchRootingNode` exactly —
    same round schedule (flood through round ``flood_rounds`` with the
    final wave's inbox still folded in, then BFS), same ``(depth,
    offerer)`` offer packets on the two payload lanes, same lexicographic
    tie-break — just over all nodes at once.
    """

    def __init__(self, indptr: np.ndarray, flat: np.ndarray, flood_rounds: int) -> None:
        n = indptr.shape[0] - 1
        super().__init__(n)
        self.indptr = indptr
        self.flat = flat
        self.flood_rounds = flood_rounds
        self.degrees = np.diff(indptr)
        ids = np.arange(n, dtype=np.int64)
        self._ids = ids
        self.best = ids.copy()
        self.parent = np.full(n, -1, dtype=np.int64)
        self.depth = np.full(n, -1, dtype=np.int64)
        self.announced = np.zeros(n, dtype=bool)
        # The flooding batch's sender/receiver columns never change (node
        # v announces to its distinct neighbours every flood round); only
        # the payload gather ``best[senders]`` is per-round work.
        self._flood_senders = np.repeat(ids, self.degrees)
        self._done = False

    # ------------------------------------------------------------------
    def on_round_soa(self, round_no: int, inbox: SoAInbox) -> MessageBatch | None:
        parent = self.parent
        depth = self.depth
        n = self.n
        out: MessageBatch | None = None

        if round_no <= self.flood_rounds:
            # Flooding fold — the round-``flood_rounds`` inbox (the last
            # wave) is still processed, the same boundary rule as the
            # per-node tiers.
            heard = inbox.of_kind(MIN_ID)
            if len(heard):
                nodes, mins = heard.min_by_receiver(heard.payloads)
                improved = mins < self.best[nodes]
                if improved.any():
                    self.best[nodes[improved]] = mins[improved]
            if round_no < self.flood_rounds:
                senders = self._flood_senders
                return MessageBatch._raw(
                    senders, self.flat, MIN_ID, self.best[senders]
                )
            roots = self.best == self._ids
            parent[roots] = self._ids[roots]
            depth[roots] = 0

        offers = inbox.of_kind(BFS_OFFER)
        if len(offers):
            # Lexicographic (depth, offerer) minimum per receiver: one
            # combined key (offerer < n) reduces both lanes at once.
            keys = offers.payloads * n + offers.payloads2
            nodes, best_keys = offers.min_by_receiver(keys)
            adopt = parent[nodes] < 0
            if adopt.any():
                nodes = nodes[adopt]
                best_keys = best_keys[adopt]
                parent[nodes] = best_keys % n
                depth[nodes] = best_keys // n + 1

        announce = np.flatnonzero((parent >= 0) & ~self.announced)
        if announce.shape[0]:
            self.announced[announce] = True
            # Emit each announcer's row of the CSR (canonical order:
            # ascending announcer id, sorted neighbours), dropping the
            # port back to the parent.
            lengths = self.degrees[announce]
            total = int(lengths.sum())
            if total:
                seg_starts = np.zeros(announce.shape[0], dtype=np.int64)
                np.cumsum(lengths[:-1], out=seg_starts[1:])
                within = np.arange(total, dtype=np.int64) - np.repeat(
                    seg_starts, lengths
                )
                senders = np.repeat(announce, lengths)
                receivers = self.flat[np.repeat(self.indptr[announce], lengths) + within]
                keep = receivers != parent[senders]
                senders = senders[keep]
                receivers = receivers[keep]
                if senders.shape[0]:
                    out = MessageBatch._raw(
                        senders, receivers, BFS_OFFER, depth[senders], senders
                    )
        self._done = bool(self.announced.all())
        return out

    def is_idle(self) -> bool:
        return self._done


def run_soa_rooting(
    graph: PortGraph,
    flood_rounds: int,
    rng: np.random.Generator | None = None,
    capacity: CapacityPolicy | None = None,
    max_rounds: int | None = None,
    engine: str = "vectorized",
    workers: int | None = None,
    tracer=None,
    *,
    ctx: RunContext | None = None,
) -> TreeProtocolResult:
    """SoA counterpart of :func:`~repro.core.protocol_tree.run_batch_rooting`.

    Drop-in: same inputs, same :class:`TreeProtocolResult`, bit-for-bit
    identical ``(root, parent, depth)``, metrics, and round count under
    the same seed — only the execution tier (one call for all nodes over
    shared columns) differs.  The SoA tier runs exclusively on the
    vectorized delivery engine; ``engine`` is accepted for API symmetry
    and rejected for anything else.  ``workers`` shards the delivery
    tail's receiver sort (``None`` → ``REPRO_WORKERS``); every worker
    count produces the identical execution, fault streams included.
    ``tracer`` records a per-round trace (:mod:`repro.obs`) without
    perturbing the run.  A resolved ``ctx``
    (:class:`~repro.runtime.context.RunContext`) supplies all of the
    above at once; explicit kwargs still win.
    """
    if engine != "vectorized":
        raise ValueError(
            f"the SoA tier requires the vectorized engine, got {engine!r}"
        )
    rng, capacity, max_rounds = _resolve_defaults(
        graph, flood_rounds, rng, capacity, max_rounds
    )
    if ctx is None:
        ctx = RunContext.resolve(engine=engine, workers=workers, tracer=tracer)
    else:
        ctx = ctx.with_overrides(engine=engine, workers=workers, tracer=tracer)
    cls = SoARootingClass(*csr_neighbors(graph), flood_rounds)
    network = SyncNetwork(cls, capacity, rng, ctx=ctx)
    metrics = network.run(max_rounds=max_rounds)
    return collect_soa_result(cls, metrics)


def collect_soa_result(cls: SoARootingClass, metrics) -> TreeProtocolResult:
    """Columnar result validation (the per-node tiers' ``_collect_result``
    without the per-node loop); shared with the asynchrony path."""
    parent = cls.parent
    depth = cls.depth
    if (parent < 0).any():
        missing = int((parent < 0).sum())
        raise RuntimeError(f"BFS did not span: {missing} nodes unreached")
    roots = np.flatnonzero(parent == np.arange(cls.n, dtype=np.int64))
    if roots.shape[0] != 1:
        raise RuntimeError(f"expected a unique root, got {roots.tolist()}")
    return TreeProtocolResult(
        root=int(roots[0]),
        parent=parent,
        depth=depth,
        metrics=metrics,
        rounds=metrics.rounds,
    )
