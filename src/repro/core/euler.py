"""Euler tour technique: list ranking, preorder labels, and rebalancing.

The final step of the paper's pipeline (§2.1, following [53] and [27])
turns the constant-degree child–sibling tree into a **well-formed tree** —
rooted, constant degree, depth ``O(log n)``:

1. construct the Euler tour of the tree (every edge traversed once in each
   direction) via the purely local successor rule;
2. compute every tour element's *position* with pointer jumping
   (``O(log n)`` doubling rounds — implemented here as actual doubling on
   arrays, not a closed-form shortcut, so the round count is real);
3. label nodes by first visit (preorder) and rebuild the tree as a
   binary heap over that order: the node of rank ``r`` attaches to the node
   of rank ``⌊(r−1)/2⌋``.  Depth becomes ``⌊log₂ n⌋`` and degree ≤ 3.

The same tour machinery provides preorder labels ``l(v)`` and subtree
sizes ``nd(v)`` for the Tarjan–Vishkin biconnectivity algorithm
(Theorem 1.4), which consumes them directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.child_sibling import RootedTree, to_child_sibling
from repro.net.vectorops import group_argsort

__all__ = [
    "EulerTour",
    "EulerTourForest",
    "euler_tour",
    "euler_tour_forest",
    "list_rank",
    "list_rank_with_finish",
    "preorder_and_sizes",
    "heap_tree",
    "WellFormedTree",
    "build_well_formed_from_tree",
]


@dataclass
class EulerTour:
    """An Euler tour of a rooted tree.

    ``edges[k] = (u, v)`` is the ``k``-th directed traversal; the tour
    starts at the root and has exactly ``2(n-1)`` entries.  ``first_entry``
    and ``exit_entry`` give, for every non-root node, the indices of its
    ``(parent, v)`` and ``(v, parent)`` traversals.

    **Root-sentinel contract** (see ``docs/contracts.md``): the root has
    no parent edge, so ``first_entry[root] == exit_entry[root] == -1``;
    for a single-node tree *both arrays are entirely* ``-1`` (and
    ``edges`` is empty).  Consumers must branch on the root (or on
    ``entry >= 0``) before indexing with these values — ``-1`` silently
    aliases the *last* tour position under numpy indexing, which is a
    valid-looking wrong answer, not an error.
    """

    root: int
    edges: list[tuple[int, int]]
    first_entry: np.ndarray
    exit_entry: np.ndarray

    @property
    def length(self) -> int:
        return len(self.edges)


def euler_tour(tree: RootedTree) -> EulerTour:
    """Construct the Euler tour using the local successor rule.

    Each node orders its tree neighbours (parent last, children ascending);
    the successor of the traversal ``(u, v)`` is ``(v, w)`` where ``w`` is
    the neighbour of ``v`` that follows ``u`` cyclically in ``v``'s order.
    Every node can compute its successors locally, which is why this costs
    ``O(1)`` rounds in the overlay; here we build the successor map and
    walk it.
    """
    n = tree.n
    children = tree.children_lists()
    if n == 1:
        return EulerTour(
            root=tree.root,
            edges=[],
            first_entry=np.full(1, -1, dtype=np.int64),
            exit_entry=np.full(1, -1, dtype=np.int64),
        )

    # Neighbour ordering per node: children ascending, then parent.
    order: list[list[int]] = []
    for v in range(n):
        neigh = list(children[v])
        if v != tree.root:
            neigh.append(int(tree.parent[v]))
        order.append(neigh)

    index_of: list[dict[int, int]] = [
        {u: i for i, u in enumerate(neigh)} for neigh in order
    ]

    def successor(u: int, v: int) -> tuple[int, int]:
        neigh = order[v]
        k = index_of[v][u]
        w = neigh[(k + 1) % len(neigh)]
        return (v, w)

    start = (tree.root, order[tree.root][0])
    edges = [start]
    cur = start
    for _ in range(2 * (n - 1) - 1):
        cur = successor(*cur)
        edges.append(cur)

    first_entry = np.full(n, -1, dtype=np.int64)
    exit_entry = np.full(n, -1, dtype=np.int64)
    parent = tree.parent
    for k, (u, v) in enumerate(edges):
        if parent[v] == u and first_entry[v] < 0:
            first_entry[v] = k
        if parent[u] == v:
            exit_entry[u] = k
    return EulerTour(root=tree.root, edges=edges, first_entry=first_entry, exit_entry=exit_entry)


def list_rank(successor: np.ndarray) -> tuple[np.ndarray, int]:
    """List ranking by pointer jumping (Wyllie's algorithm).

    ``successor[k]`` is the next element of a linked list (``-1`` at the
    tail).  Returns ``(distance_to_tail, rounds)`` where ``rounds`` is the
    number of doubling rounds performed — the synchronous rounds a
    distributed implementation needs (``⌈log₂ m⌉``).
    """
    m = successor.shape[0]
    nxt = successor.copy()
    dist = (nxt >= 0).astype(np.int64)
    rounds = 0
    while (nxt >= 0).any():
        has_next = nxt >= 0
        targets = nxt[has_next]
        dist[has_next] += dist[targets]
        new_nxt = nxt.copy()
        new_nxt[has_next] = nxt[targets]
        nxt = new_nxt
        rounds += 1
    return dist, rounds


def list_rank_with_finish(
    successor: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """:func:`list_rank` that also records per-element finish rounds.

    ``finish[k]`` is the number of doubling rounds during which element
    ``k`` still held a live successor.  When several disjoint lists are
    ranked in one combined pass (the forest tours), pointer jumping
    evolves each element exactly as it would in a standalone run of its
    own list, so ``max(finish)`` over one list's elements equals the
    round count :func:`list_rank` would report for that list alone —
    which is how the columnar well-forming charges per-component rounds
    without falling back to a closed-form shortcut.
    """
    m = successor.shape[0]
    nxt = successor.copy()
    dist = (nxt >= 0).astype(np.int64)
    finish = np.zeros(m, dtype=np.int64)
    rounds = 0
    while True:
        has_next = np.flatnonzero(nxt >= 0)
        if has_next.shape[0] == 0:
            return dist, finish, rounds
        rounds += 1
        finish[has_next] = rounds
        targets = nxt[has_next]
        dist[has_next] += dist[targets]
        new_nxt = nxt.copy()
        new_nxt[has_next] = nxt[targets]
        nxt = new_nxt


@dataclass
class EulerTourForest:
    """Euler tours of every tree of a forest, as flat global columns.

    The columnar counterpart of running :func:`euler_tour` per
    component: ``first_entry[v]`` / ``exit_entry[v]`` are the indices of
    ``v``'s ``(parent, v)`` and ``(v, parent)`` traversals *within its
    own component's tour* (each tour starts at its root and has
    ``2(n_c - 1)`` entries), so the values coincide with the
    per-component :class:`EulerTour` after any monotone relabelling.

    **Root-sentinel contract**: exactly as for :class:`EulerTour`,
    ``first_entry`` and ``exit_entry`` are ``-1`` for every component
    root — and therefore for every singleton component's only node.
    ``rank_rounds`` charges, per node, the pointer-jumping rounds its
    tour edges stayed live in the combined list ranking (0 for roots);
    the per-component maximum is that component's :func:`list_rank`
    round count.
    """

    first_entry: np.ndarray
    exit_entry: np.ndarray
    rank_rounds: np.ndarray
    rounds: int


def euler_tour_forest(parent: np.ndarray, root_of: np.ndarray) -> EulerTourForest:
    """Vectorized Euler tours of a whole forest via the successor rule.

    ``parent`` is a global parent array (roots self-parented; constant
    degree is *not* required) and ``root_of[v]`` identifies ``v``'s
    component.  One pass builds the successor array of every directed
    tree edge — neighbour order at each node is children ascending,
    then parent, exactly :func:`euler_tour`'s local rule — and one
    combined pointer-jumping ranking positions all tours at once, so
    the cost is ``O(E log E)`` array work with no per-node Python.
    """
    parent = np.asarray(parent, dtype=np.int64)
    root_of = np.asarray(root_of, dtype=np.int64)
    n = parent.shape[0]
    first_entry = np.full(n, -1, dtype=np.int64)
    exit_entry = np.full(n, -1, dtype=np.int64)
    rank_rounds = np.zeros(n, dtype=np.int64)
    nonroot = np.flatnonzero(parent != np.arange(n, dtype=np.int64))
    k = nonroot.shape[0]
    if k == 0:
        return EulerTourForest(first_entry, exit_entry, rank_rounds, 0)

    # Children grouped by parent (ascending inside each group, since
    # ``nonroot`` is ascending and the grouping sort is stable).
    parents_of = parent[nonroot]
    order = group_argsort(parents_of, n)
    child = nonroot[order]
    par = parents_of[order]
    is_first = np.concatenate([[True], par[1:] != par[:-1]])
    is_last = np.concatenate([par[1:] != par[:-1], [True]])
    first_child = np.full(n, -1, dtype=np.int64)
    first_child[par[is_first]] = child[is_first]
    has_children = first_child >= 0
    # Down edge i traverses (par[i] -> child[i]); up edge k + i the
    # reverse.  ``slot[v]`` is v's down/up edge index.
    # Zero-init: ``slot`` is only meaningful for non-root nodes, but
    # masked ``np.where`` branches still gather through it.
    slot = np.zeros(n, dtype=np.int64)
    slot[child] = np.arange(k, dtype=np.int64)

    succ = np.empty(2 * k, dtype=np.int64)
    # Arriving at v from its parent: continue to v's first child, or
    # bounce straight back up if v is a leaf.
    succ[:k] = np.where(
        has_children[child],
        slot[np.maximum(first_child[child], 0)],
        np.arange(k, dtype=np.int64) + k,
    )
    # Arriving at p from child c: continue to c's next sibling (the
    # next grouped row), else climb to p's own up edge; the last child
    # of a root ends the tour (-1).
    parent_is_root = parent[par] == par
    succ[k:] = np.where(
        ~is_last,
        np.arange(1, k + 1, dtype=np.int64),
        np.where(parent_is_root, -1, k + slot[par]),
    )

    dist, finish, rounds = list_rank_with_finish(succ)
    # Position within the component tour: the tail edge of a tour of
    # length m sits at position m - 1 and has distance 0 to itself.
    comp_nonroot = np.bincount(root_of[nonroot], minlength=n)
    tour_len = 2 * comp_nonroot[root_of[child]]
    first_entry[child] = tour_len - 1 - dist[:k]
    exit_entry[child] = tour_len - 1 - dist[k:]
    rank_rounds[child] = np.maximum(finish[:k], finish[k:])
    return EulerTourForest(first_entry, exit_entry, rank_rounds, rounds)


def preorder_and_sizes(tree: RootedTree) -> tuple[np.ndarray, np.ndarray, int]:
    """Preorder labels ``l(v) ∈ {1..n}`` and subtree sizes ``nd(v)``.

    Computed from the Euler tour: ``l`` orders nodes by first visit and
    ``nd(v) = (exit(v) − enter(v) + 1) / 2`` counts tour edges inside the
    subtree (Tarjan–Vishkin Step 1/2).  Returns ``(labels, sizes, rounds)``
    with the list-ranking round count.
    """
    n = tree.n
    if n == 1:
        return np.array([1], dtype=np.int64), np.array([1], dtype=np.int64), 0
    tour = euler_tour(tree)
    m = tour.length
    succ = np.arange(1, m + 1, dtype=np.int64)
    succ[-1] = -1
    _dist, rounds = list_rank(succ)

    labels = np.zeros(n, dtype=np.int64)
    sizes = np.zeros(n, dtype=np.int64)
    labels[tree.root] = 1
    sizes[tree.root] = n
    # Nodes sorted by first entry give preorder positions 2..n.
    others = [v for v in range(n) if v != tree.root]
    others.sort(key=lambda v: int(tour.first_entry[v]))
    for i, v in enumerate(others):
        labels[v] = i + 2
        sizes[v] = (int(tour.exit_entry[v]) - int(tour.first_entry[v]) + 1) // 2
    return labels, sizes, rounds


def heap_tree(order: list[int]) -> RootedTree:
    """Binary-heap-shaped tree over ``order``: the node of rank ``r``
    attaches to the node of rank ``⌊(r−1)/2⌋``.  Depth ``⌊log₂ n⌋``,
    degree ≤ 3."""
    n = len(order)
    parent = np.arange(n, dtype=np.int64)
    for r in range(1, n):
        parent[order[r]] = order[(r - 1) // 2]
    return RootedTree(root=order[0], parent=parent)


@dataclass
class WellFormedTree:
    """A well-formed tree (§1.2): rooted, degree ≤ 3, depth ``O(log n)``.

    ``rounds`` charges the overlay rounds of the transformation: one round
    for the child–sibling rewiring, the pointer-jumping rounds of list
    ranking, and ``⌈log₂ n⌉`` rounds for routing the rank-to-parent
    introductions along the doubling shortcuts.
    """

    tree: RootedTree
    rounds: int

    @property
    def root(self) -> int:
        return self.tree.root

    def depth(self) -> int:
        return int(self.tree.depth_array().max(initial=0))

    def max_degree(self) -> int:
        return self.tree.max_degree()


def build_well_formed_from_tree(tree: RootedTree) -> WellFormedTree:
    """§2.1 final stage: BFS tree → child–sibling tree → Euler tour →
    preorder ranks → binary heap tree."""
    n = tree.n
    if n == 1:
        return WellFormedTree(tree=tree, rounds=0)
    cs_tree = to_child_sibling(tree)
    labels, _sizes, rank_rounds = preorder_and_sizes(cs_tree)
    order = [0] * n
    for v in range(n):
        order[labels[v] - 1] = v
    wft = heap_tree(order)
    wft.validate()
    routing_rounds = int(np.ceil(np.log2(max(2, n))))
    return WellFormedTree(tree=wft, rounds=1 + rank_rounds + routing_rounds)
