"""Euler tour technique: list ranking, preorder labels, and rebalancing.

The final step of the paper's pipeline (§2.1, following [53] and [27])
turns the constant-degree child–sibling tree into a **well-formed tree** —
rooted, constant degree, depth ``O(log n)``:

1. construct the Euler tour of the tree (every edge traversed once in each
   direction) via the purely local successor rule;
2. compute every tour element's *position* with pointer jumping
   (``O(log n)`` doubling rounds — implemented here as actual doubling on
   arrays, not a closed-form shortcut, so the round count is real);
3. label nodes by first visit (preorder) and rebuild the tree as a
   binary heap over that order: the node of rank ``r`` attaches to the node
   of rank ``⌊(r−1)/2⌋``.  Depth becomes ``⌊log₂ n⌋`` and degree ≤ 3.

The same tour machinery provides preorder labels ``l(v)`` and subtree
sizes ``nd(v)`` for the Tarjan–Vishkin biconnectivity algorithm
(Theorem 1.4), which consumes them directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.child_sibling import RootedTree, to_child_sibling

__all__ = [
    "EulerTour",
    "euler_tour",
    "list_rank",
    "preorder_and_sizes",
    "heap_tree",
    "WellFormedTree",
    "build_well_formed_from_tree",
]


@dataclass
class EulerTour:
    """An Euler tour of a rooted tree.

    ``edges[k] = (u, v)`` is the ``k``-th directed traversal; the tour
    starts at the root and has exactly ``2(n-1)`` entries.  ``first_entry``
    and ``exit_entry`` give, for every non-root node, the indices of its
    ``(parent, v)`` and ``(v, parent)`` traversals.
    """

    root: int
    edges: list[tuple[int, int]]
    first_entry: np.ndarray
    exit_entry: np.ndarray

    @property
    def length(self) -> int:
        return len(self.edges)


def euler_tour(tree: RootedTree) -> EulerTour:
    """Construct the Euler tour using the local successor rule.

    Each node orders its tree neighbours (parent last, children ascending);
    the successor of the traversal ``(u, v)`` is ``(v, w)`` where ``w`` is
    the neighbour of ``v`` that follows ``u`` cyclically in ``v``'s order.
    Every node can compute its successors locally, which is why this costs
    ``O(1)`` rounds in the overlay; here we build the successor map and
    walk it.
    """
    n = tree.n
    children = tree.children_lists()
    if n == 1:
        return EulerTour(
            root=tree.root,
            edges=[],
            first_entry=np.full(1, -1, dtype=np.int64),
            exit_entry=np.full(1, -1, dtype=np.int64),
        )

    # Neighbour ordering per node: children ascending, then parent.
    order: list[list[int]] = []
    for v in range(n):
        neigh = list(children[v])
        if v != tree.root:
            neigh.append(int(tree.parent[v]))
        order.append(neigh)

    index_of: list[dict[int, int]] = [
        {u: i for i, u in enumerate(neigh)} for neigh in order
    ]

    def successor(u: int, v: int) -> tuple[int, int]:
        neigh = order[v]
        k = index_of[v][u]
        w = neigh[(k + 1) % len(neigh)]
        return (v, w)

    start = (tree.root, order[tree.root][0])
    edges = [start]
    cur = start
    for _ in range(2 * (n - 1) - 1):
        cur = successor(*cur)
        edges.append(cur)

    first_entry = np.full(n, -1, dtype=np.int64)
    exit_entry = np.full(n, -1, dtype=np.int64)
    parent = tree.parent
    for k, (u, v) in enumerate(edges):
        if parent[v] == u and first_entry[v] < 0:
            first_entry[v] = k
        if parent[u] == v:
            exit_entry[u] = k
    return EulerTour(root=tree.root, edges=edges, first_entry=first_entry, exit_entry=exit_entry)


def list_rank(successor: np.ndarray) -> tuple[np.ndarray, int]:
    """List ranking by pointer jumping (Wyllie's algorithm).

    ``successor[k]`` is the next element of a linked list (``-1`` at the
    tail).  Returns ``(distance_to_tail, rounds)`` where ``rounds`` is the
    number of doubling rounds performed — the synchronous rounds a
    distributed implementation needs (``⌈log₂ m⌉``).
    """
    m = successor.shape[0]
    nxt = successor.copy()
    dist = (nxt >= 0).astype(np.int64)
    rounds = 0
    while (nxt >= 0).any():
        has_next = nxt >= 0
        targets = nxt[has_next]
        dist[has_next] += dist[targets]
        new_nxt = nxt.copy()
        new_nxt[has_next] = nxt[targets]
        nxt = new_nxt
        rounds += 1
    return dist, rounds


def preorder_and_sizes(tree: RootedTree) -> tuple[np.ndarray, np.ndarray, int]:
    """Preorder labels ``l(v) ∈ {1..n}`` and subtree sizes ``nd(v)``.

    Computed from the Euler tour: ``l`` orders nodes by first visit and
    ``nd(v) = (exit(v) − enter(v) + 1) / 2`` counts tour edges inside the
    subtree (Tarjan–Vishkin Step 1/2).  Returns ``(labels, sizes, rounds)``
    with the list-ranking round count.
    """
    n = tree.n
    if n == 1:
        return np.array([1], dtype=np.int64), np.array([1], dtype=np.int64), 0
    tour = euler_tour(tree)
    m = tour.length
    succ = np.arange(1, m + 1, dtype=np.int64)
    succ[-1] = -1
    _dist, rounds = list_rank(succ)

    labels = np.zeros(n, dtype=np.int64)
    sizes = np.zeros(n, dtype=np.int64)
    labels[tree.root] = 1
    sizes[tree.root] = n
    # Nodes sorted by first entry give preorder positions 2..n.
    others = [v for v in range(n) if v != tree.root]
    others.sort(key=lambda v: int(tour.first_entry[v]))
    for i, v in enumerate(others):
        labels[v] = i + 2
        sizes[v] = (int(tour.exit_entry[v]) - int(tour.first_entry[v]) + 1) // 2
    return labels, sizes, rounds


def heap_tree(order: list[int]) -> RootedTree:
    """Binary-heap-shaped tree over ``order``: the node of rank ``r``
    attaches to the node of rank ``⌊(r−1)/2⌋``.  Depth ``⌊log₂ n⌋``,
    degree ≤ 3."""
    n = len(order)
    parent = np.arange(n, dtype=np.int64)
    for r in range(1, n):
        parent[order[r]] = order[(r - 1) // 2]
    return RootedTree(root=order[0], parent=parent)


@dataclass
class WellFormedTree:
    """A well-formed tree (§1.2): rooted, degree ≤ 3, depth ``O(log n)``.

    ``rounds`` charges the overlay rounds of the transformation: one round
    for the child–sibling rewiring, the pointer-jumping rounds of list
    ranking, and ``⌈log₂ n⌉`` rounds for routing the rank-to-parent
    introductions along the doubling shortcuts.
    """

    tree: RootedTree
    rounds: int

    @property
    def root(self) -> int:
        return self.tree.root

    def depth(self) -> int:
        return int(self.tree.depth_array().max(initial=0))

    def max_degree(self) -> int:
        return self.tree.max_degree()


def build_well_formed_from_tree(tree: RootedTree) -> WellFormedTree:
    """§2.1 final stage: BFS tree → child–sibling tree → Euler tour →
    preorder ranks → binary heap tree."""
    n = tree.n
    if n == 1:
        return WellFormedTree(tree=tree, rounds=0)
    cs_tree = to_child_sibling(tree)
    labels, _sizes, rank_rounds = preorder_and_sizes(cs_tree)
    order = [0] * n
    for v in range(n):
        order[labels[v] - 1] = v
    wft = heap_tree(order)
    wft.validate()
    routing_rounds = int(np.ceil(np.log2(max(2, n))))
    return WellFormedTree(tree=wft, rounds=1 + rank_rounds + routing_rounds)
