"""Batched message-level ``CreateExpander`` — array nodes on the NCC0 net.

This is the same protocol as :mod:`repro.core.protocol` (§2.1 executed
message-by-message under real capacity enforcement), but every node is a
:class:`repro.net.network.BatchProtocolNode`: a round's tokens leave a
node as one :class:`repro.net.batch.MessageBatch` (receiver + origin
arrays) instead of per-token ``Message`` objects, and the vectorized
delivery engine moves the whole round through flat numpy buffers.

Semantics are identical to the object engine — same round schedule
(``ℓ`` forwarding rounds, one acceptance round, one reply/rebuild round
per evolution), same per-node randomness shape (one uniform port draw per
resident token, one uniform acceptance subset per over-full node), same
NCC0 drop behaviour.  What changes is the constant factor: no Python
object per message, which is what makes ``n ≈ 5·10⁴`` protocol runs
practical (see ``benchmarks/bench_s1_engine_scaling.py``).

The token-forwarding inner loop is shared with the fast engine:
:func:`repro.core.walks.sample_port_targets`, in row mode.  (Row mode
draws ``⌊uniform·Δ⌋`` rather than matrix mode's ``rng.integers`` — see
the function's docstring for why the streams intentionally differ.)
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ExpanderParams
from repro.core.protocol import ProtocolRunResult, run_expander_on_network
from repro.core.walks import sample_port_targets
from repro.net.batch import KINDS, MessageBatch
from repro.net.network import BatchProtocolNode, CapacityPolicy

__all__ = ["BatchExpanderNode", "run_batch_expander"]

TOKEN = KINDS.code("token")
ACCEPT = KINDS.code("accept")


class BatchExpanderNode(BatchProtocolNode):
    """One NCC0 node executing ``CreateExpander`` on message arrays.

    State per evolution: the node's current port row (partner ids, own id
    for self-loops) as an ``int64`` array, plus the partner ids recorded
    for the next evolution graph.
    """

    def __init__(
        self,
        node_id: int,
        neighbors: list[int],
        params: ExpanderParams,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(node_id)
        self.params = params
        self.rng = rng
        # MakeBenign, locally: copy each incident edge Λ times, pad with
        # self-loops to degree Δ (laziness follows from 2·Λ·d ≤ Δ).
        copied = np.repeat(np.sort(np.asarray(neighbors, dtype=np.int64)), params.lam)
        if copied.shape[0] > params.delta // 2:
            raise ValueError(
                f"node {node_id}: Λ·deg = {copied.shape[0]} exceeds "
                f"Δ/2 = {params.delta // 2}"
            )
        self.ports = np.concatenate(
            [copied, np.full(params.delta - copied.shape[0], node_id, dtype=np.int64)]
        )
        self._next_origin_edges: list[np.ndarray] = []  # via own accepted tokens
        self._next_accept_edges: list[np.ndarray] = []  # via accepted foreign tokens
        self.evolutions_done = 0
        self.accepted_origins: list[np.ndarray] = []  # per-acceptance log
        # Hot-path constants (attribute lookups beat property calls at
        # n·rounds call volume).
        self._span = params.ell + 2
        self._ell = params.ell
        self._delta = params.delta
        self._accept_cap = params.accept_cap
        self._num_evolutions = params.num_evolutions
        self._own_tokens = np.full(params.tokens_per_node, node_id, dtype=np.int64)

    # ------------------------------------------------------------------
    def _forward(self, origins: np.ndarray) -> MessageBatch | None:
        """Send each token along a uniformly random port (one batch)."""
        if origins.shape[0] == 0:
            return None
        _, targets = sample_port_targets(self.ports, self.rng, count=origins.shape[0])
        return MessageBatch._raw(self.node_id, targets, TOKEN, origins)

    def on_round_batch(self, round_no: int, inbox: MessageBatch) -> MessageBatch | None:
        evolution, step = divmod(round_no, self._span)
        if evolution >= self._num_evolutions:
            return None

        if step == 0:
            # Launch Δ/8 own tokens (a fresh evolution starts).
            return self._forward(self._own_tokens)

        if step < self._ell:
            return self._forward(inbox.payloads_of_kind(TOKEN))

        if step == self._ell:
            # Acceptance: answer up to 3Δ/8 tokens, chosen uniformly.
            tokens = inbox.payloads_of_kind(TOKEN)
            if tokens.shape[0] > self._accept_cap:
                chosen = self.rng.choice(
                    tokens.shape[0], size=self._accept_cap, replace=False
                )
                tokens = tokens[np.sort(chosen)]
            if tokens.shape[0] == 0:
                return None
            self._next_accept_edges.append(tokens)
            # Copy for the log: ``tokens`` may be a view into the engine's
            # round buffer, which must not stay pinned for the whole run.
            self.accepted_origins.append(tokens.copy())
            return MessageBatch._raw(
                self.node_id,
                tokens,
                ACCEPT,
                np.full(tokens.shape[0], self.node_id, dtype=np.int64),
            )

        # step == ell + 1: collect replies, rebuild ports, pad self-loops.
        replies = inbox.payloads_of_kind(ACCEPT)
        if replies.shape[0]:
            self._next_origin_edges.append(replies)
        partners = (
            np.concatenate(self._next_origin_edges + self._next_accept_edges)
            if self._next_origin_edges or self._next_accept_edges
            else np.empty(0, dtype=np.int64)
        )
        if partners.shape[0] > self._delta:
            raise AssertionError(
                f"node {self.node_id} assembled {partners.shape[0]} ports > Δ"
            )
        self.ports = np.concatenate(
            [
                partners,
                np.full(self._delta - partners.shape[0], self.node_id, dtype=np.int64),
            ]
        )
        self._next_origin_edges = []
        self._next_accept_edges = []
        self.evolutions_done = evolution + 1
        return None

    def is_idle(self) -> bool:
        return self.evolutions_done >= self.params.num_evolutions


def run_batch_expander(
    graph,
    params: ExpanderParams | None = None,
    rng: np.random.Generator | None = None,
    capacity: CapacityPolicy | None = None,
    engine: str = "vectorized",
) -> ProtocolRunResult:
    """Execute ``CreateExpander`` with batched nodes on ``graph``.

    Drop-in counterpart of
    :func:`repro.core.protocol.run_protocol_expander`: same inputs, same
    :class:`ProtocolRunResult`, same round schedule and capacity policy —
    only the message representation (arrays vs. objects) differs.
    ``engine`` selects the network delivery engine; running batch nodes on
    the ``"legacy"`` engine is supported (messages are materialised at the
    network boundary) and is how the differential tests cross-check the
    vectorized delivery path.
    """
    return run_expander_on_network(
        BatchExpanderNode, graph, params, rng, capacity, engine
    )
