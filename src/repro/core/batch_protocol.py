"""Batched message-level ``CreateExpander`` — array nodes on the NCC0 net.

This is the same protocol as :mod:`repro.core.protocol` (§2.1 executed
message-by-message under real capacity enforcement), but every node is a
:class:`repro.net.network.BatchProtocolNode`: a round's tokens leave a
node as one :class:`repro.net.batch.MessageBatch` (receiver + origin
arrays) instead of per-token ``Message`` objects, and the vectorized
delivery engine moves the whole round through flat numpy buffers.

Semantics are identical to the object engine — same round schedule
(``ℓ`` forwarding rounds, one acceptance round, one reply/rebuild round
per evolution), same per-node randomness shape (one uniform port draw per
resident token, one uniform acceptance subset per over-full node), same
NCC0 drop behaviour.  What changes is the constant factor: no Python
object per message, which is what makes ``n ≈ 5·10⁴`` protocol runs
practical (see ``benchmarks/bench_s1_engine_scaling.py``).

The token-forwarding inner loop is shared with the fast engine:
:func:`repro.core.walks.sample_port_targets`, in row mode.  (Row mode
draws ``⌊uniform·Δ⌋`` rather than matrix mode's ``rng.integers`` — see
the function's docstring for why the streams intentionally differ.)
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ExpanderParams
from repro.core.protocol import (
    ProtocolRunResult,
    prepare_network_inputs,
    run_expander_on_network,
)
from repro.core.walks import sample_port_targets
from repro.graphs.portgraph import PortGraph
from repro.net.batch import KINDS, MessageBatch
from repro.net.network import BatchProtocolNode, CapacityPolicy, SyncNetwork
from repro.net.soa import SoAInbox, SoAProtocolClass

__all__ = [
    "BatchExpanderNode",
    "SoAExpanderClass",
    "run_batch_expander",
    "run_soa_expander",
]

TOKEN = KINDS.code("token")
ACCEPT = KINDS.code("accept")


class BatchExpanderNode(BatchProtocolNode):
    """One NCC0 node executing ``CreateExpander`` on message arrays.

    State per evolution: the node's current port row (partner ids, own id
    for self-loops) as an ``int64`` array, plus the partner ids recorded
    for the next evolution graph.
    """

    def __init__(
        self,
        node_id: int,
        neighbors: list[int],
        params: ExpanderParams,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(node_id)
        self.params = params
        self.rng = rng
        # MakeBenign, locally: copy each incident edge Λ times, pad with
        # self-loops to degree Δ (laziness follows from 2·Λ·d ≤ Δ).
        copied = np.repeat(np.sort(np.asarray(neighbors, dtype=np.int64)), params.lam)
        if copied.shape[0] > params.delta // 2:
            raise ValueError(
                f"node {node_id}: Λ·deg = {copied.shape[0]} exceeds "
                f"Δ/2 = {params.delta // 2}"
            )
        self.ports = np.concatenate(
            [copied, np.full(params.delta - copied.shape[0], node_id, dtype=np.int64)]
        )
        self._next_origin_edges: list[np.ndarray] = []  # via own accepted tokens
        self._next_accept_edges: list[np.ndarray] = []  # via accepted foreign tokens
        self.evolutions_done = 0
        self.accepted_origins: list[np.ndarray] = []  # per-acceptance log
        # Hot-path constants (attribute lookups beat property calls at
        # n·rounds call volume).
        self._span = params.ell + 2
        self._ell = params.ell
        self._delta = params.delta
        self._accept_cap = params.accept_cap
        self._num_evolutions = params.num_evolutions
        self._own_tokens = np.full(params.tokens_per_node, node_id, dtype=np.int64)

    # ------------------------------------------------------------------
    def _forward(self, origins: np.ndarray) -> MessageBatch | None:
        """Send each token along a uniformly random port (one batch)."""
        if origins.shape[0] == 0:
            return None
        _, targets = sample_port_targets(self.ports, self.rng, count=origins.shape[0])
        return MessageBatch._raw(self.node_id, targets, TOKEN, origins)

    def on_round_batch(self, round_no: int, inbox: MessageBatch) -> MessageBatch | None:
        evolution, step = divmod(round_no, self._span)
        if evolution >= self._num_evolutions:
            return None

        if step == 0:
            # Launch Δ/8 own tokens (a fresh evolution starts).
            return self._forward(self._own_tokens)

        if step < self._ell:
            return self._forward(inbox.payloads_of_kind(TOKEN))

        if step == self._ell:
            # Acceptance: answer up to 3Δ/8 tokens, chosen uniformly.
            tokens = inbox.payloads_of_kind(TOKEN)
            if tokens.shape[0] > self._accept_cap:
                chosen = self.rng.choice(
                    tokens.shape[0], size=self._accept_cap, replace=False
                )
                tokens = tokens[np.sort(chosen)]
            if tokens.shape[0] == 0:
                return None
            self._next_accept_edges.append(tokens)
            # Copy for the log: ``tokens`` may be a view into the engine's
            # round buffer, which must not stay pinned for the whole run.
            self.accepted_origins.append(tokens.copy())
            return MessageBatch._raw(
                self.node_id,
                tokens,
                ACCEPT,
                np.full(tokens.shape[0], self.node_id, dtype=np.int64),
            )

        # step == ell + 1: collect replies, rebuild ports, pad self-loops.
        replies = inbox.payloads_of_kind(ACCEPT)
        if replies.shape[0]:
            self._next_origin_edges.append(replies)
        partners = (
            np.concatenate(self._next_origin_edges + self._next_accept_edges)
            if self._next_origin_edges or self._next_accept_edges
            else np.empty(0, dtype=np.int64)
        )
        if partners.shape[0] > self._delta:
            raise AssertionError(
                f"node {self.node_id} assembled {partners.shape[0]} ports > Δ"
            )
        self.ports = np.concatenate(
            [
                partners,
                np.full(self._delta - partners.shape[0], self.node_id, dtype=np.int64),
            ]
        )
        self._next_origin_edges = []
        self._next_accept_edges = []
        self.evolutions_done = evolution + 1
        return None

    def is_idle(self) -> bool:
        return self.evolutions_done >= self.params.num_evolutions


def run_batch_expander(
    graph,
    params: ExpanderParams | None = None,
    rng: np.random.Generator | None = None,
    capacity: CapacityPolicy | None = None,
    engine: str = "vectorized",
    rng_mode: str = "spawn",
) -> ProtocolRunResult:
    """Execute ``CreateExpander`` with batched nodes on ``graph``.

    Drop-in counterpart of
    :func:`repro.core.protocol.run_protocol_expander`: same inputs, same
    :class:`ProtocolRunResult`, same round schedule and capacity policy —
    only the message representation (arrays vs. objects) differs.
    ``engine`` selects the network delivery engine; running batch nodes on
    the ``"legacy"`` engine is supported (messages are materialised at the
    network boundary) and is how the differential tests cross-check the
    vectorized delivery path.  ``rng_mode="shared"`` makes every node draw
    from one shared generator in node-iteration order — the discipline
    under which :func:`run_soa_expander` is bit-for-bit identical.
    """
    return run_expander_on_network(
        BatchExpanderNode, graph, params, rng, capacity, engine, rng_mode
    )


class SoAExpanderClass(SoAProtocolClass):
    """Every NCC0 node of ``CreateExpander``, in structure-of-arrays form.

    The third execution tier of the expander protocol: the whole
    population's ports live in one ``(n, Δ)`` matrix, a round's resident
    tokens are the inbox's flat ``(holder, origin)`` columns, and one
    call forwards / accepts / rebuilds for all nodes.  The randomness
    discipline is one flat ``rng.random(m)`` port draw per forwarding
    round plus one ``rng.choice`` per over-full acceptor in ascending
    node order — exactly the stream the per-node batch tier consumes
    under ``rng_mode="shared"`` (sequential ``Generator.random(k)`` calls
    concatenate into one stream), so
    :func:`run_soa_expander` is **bit-for-bit** equal to
    :func:`run_batch_expander` with a shared generator: same final port
    matrix, same accepted-edge log, same metrics, same rounds.
    """

    def __init__(
        self,
        n: int,
        neighbors: list[list[int]],
        params: ExpanderParams,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(n)
        self.params = params
        self.rng = rng
        delta = params.delta
        # MakeBenign, population-wide: copy each incident edge Λ times,
        # pad with self-loops to degree Δ (same per-node layout — sorted
        # neighbours, copies adjacent — as the per-node tiers).
        deg = np.fromiter((len(nb) for nb in neighbors), dtype=np.int64, count=n)
        copied = deg * params.lam
        if (copied > delta // 2).any():
            worst = int(np.argmax(copied))
            raise ValueError(
                f"node {worst}: Λ·deg = {int(copied[worst])} exceeds "
                f"Δ/2 = {delta // 2}"
            )
        ids = np.arange(n, dtype=np.int64)
        self.ports = np.repeat(ids[:, None], delta, axis=1)
        if copied.sum():
            flat = np.concatenate(
                [
                    np.repeat(np.sort(np.asarray(nb, dtype=np.int64)), params.lam)
                    for nb in neighbors
                ]
            )
            rows = np.repeat(ids, copied)
            starts = np.cumsum(copied) - copied
            cols = np.arange(flat.shape[0], dtype=np.int64) - starts[rows]
            self.ports[rows, cols] = flat
        self.evolutions_done = 0
        #: Per-evolution ``(acceptors, origins)`` columns — the columnar
        #: counterpart of the per-node ``accepted_origins`` logs.
        self.accepted_log: list[tuple[np.ndarray, np.ndarray]] = []
        self._accept_nodes = self._accept_partners = _EMPTY_COL
        self._reply_nodes = self._reply_partners = _EMPTY_COL
        self._span = params.ell + 2
        self._ell = params.ell
        self._delta = delta
        self._accept_cap = params.accept_cap
        self._num_evolutions = params.num_evolutions
        self._own_tokens = np.repeat(ids, params.tokens_per_node)

    # ------------------------------------------------------------------
    def _forward(self, holders: np.ndarray, origins: np.ndarray) -> MessageBatch | None:
        """One uniformly random port draw per resident token, all nodes at
        once (the flat-stream equivalent of the batch tier's row mode)."""
        m = holders.shape[0]
        if m == 0:
            return None
        choices = (self.rng.random(m) * self._delta).astype(np.int64)
        return MessageBatch._raw(holders, self.ports[holders, choices], TOKEN, origins)

    def on_round_soa(self, round_no: int, inbox: SoAInbox) -> MessageBatch | None:
        evolution, step = divmod(round_no, self._span)
        if evolution >= self._num_evolutions:
            return None

        if step == 0:
            # Launch Δ/8 own tokens (a fresh evolution starts).
            return self._forward(self._own_tokens, self._own_tokens)

        if step < self._ell:
            tok = inbox.of_kind(TOKEN)
            return self._forward(tok.receivers, tok.payloads)

        if step == self._ell:
            # Acceptance: every holder answers up to 3Δ/8 of its tokens,
            # chosen uniformly — one ``rng.choice`` per over-full holder,
            # ascending (= the shared-generator batch order).
            tok = inbox.of_kind(TOKEN)
            m = len(tok)
            if m == 0:
                return None
            holders = tok.receivers
            origins = tok.payloads
            seg_starts, _ = tok.segments()
            seg_counts = np.diff(np.append(seg_starts, m))
            over = seg_counts > self._accept_cap
            if over.any():
                keep = np.ones(m, dtype=bool)
                for si in np.flatnonzero(over).tolist():
                    s = int(seg_starts[si])
                    cnt = int(seg_counts[si])
                    chosen = self.rng.choice(
                        cnt, size=self._accept_cap, replace=False
                    )
                    seg_keep = np.zeros(cnt, dtype=bool)
                    seg_keep[chosen] = True
                    keep[s : s + cnt] = seg_keep
                holders = holders[keep]
                origins = origins[keep]
            self._accept_nodes = holders.copy()
            self._accept_partners = origins.copy()
            self.accepted_log.append((self._accept_nodes, self._accept_partners))
            return MessageBatch._raw(
                self._accept_nodes, self._accept_partners, ACCEPT, self._accept_nodes
            )

        # step == ell + 1: collect replies, rebuild the port matrix.
        rep = inbox.of_kind(ACCEPT)
        if len(rep):
            self._reply_nodes = rep.receivers
            self._reply_partners = rep.payloads
        # Per node: reply partners first, then accepted-token partners —
        # the per-node tiers' concatenation order, recovered here by a
        # stable sort over [replies ‖ accepts].
        part_nodes = np.concatenate([self._reply_nodes, self._accept_nodes])
        part_vals = np.concatenate([self._reply_partners, self._accept_partners])
        order = np.argsort(part_nodes, kind="stable")
        sn = part_nodes[order]
        counts = np.bincount(sn, minlength=self.n)
        if counts.max(initial=0) > self._delta:
            worst = int(np.argmax(counts))
            raise AssertionError(
                f"node {worst} assembled {int(counts[worst])} ports > Δ"
            )
        ids = np.arange(self.n, dtype=np.int64)
        self.ports = np.repeat(ids[:, None], self._delta, axis=1)
        if sn.shape[0]:
            starts = np.cumsum(counts) - counts
            cols = np.arange(sn.shape[0], dtype=np.int64) - starts[sn]
            self.ports[sn, cols] = part_vals[order]
        self._accept_nodes = self._accept_partners = _EMPTY_COL
        self._reply_nodes = self._reply_partners = _EMPTY_COL
        self.evolutions_done = evolution + 1
        return None

    def is_idle(self) -> bool:
        return self.evolutions_done >= self._num_evolutions


_EMPTY_COL = np.empty(0, dtype=np.int64)


def run_soa_expander(
    graph,
    params: ExpanderParams | None = None,
    rng: np.random.Generator | None = None,
    capacity: CapacityPolicy | None = None,
    engine: str = "vectorized",
) -> ProtocolRunResult:
    """Execute ``CreateExpander`` as one SoA protocol class on ``graph``.

    Drop-in counterpart of :func:`run_batch_expander`: same inputs, same
    :class:`ProtocolRunResult`, same schedule and capacity policy.  The
    randomness discipline is the shared-generator one (``rng.spawn(2)``
    into a protocol stream and a network stream), so the run is
    bit-for-bit identical to
    ``run_batch_expander(..., rng_mode="shared")`` under the same seed —
    pinned by ``tests/core/test_soa_engines.py``.  Against the default
    per-node-spawned batch/object runs the comparison is structural
    (schedule, metrics shape, benign invariants), exactly as between the
    object and batch tiers themselves, whose streams also intentionally
    differ.  SoA classes run on the vectorized delivery engine only.
    """
    if engine != "vectorized":
        raise ValueError(
            f"the SoA tier requires the vectorized engine, got {engine!r}"
        )
    if rng is None:
        rng = np.random.default_rng(0)
    n, neighbors, params, capacity = prepare_network_inputs(graph, params, capacity)
    proto_rng, net_rng = rng.spawn(2)
    cls = SoAExpanderClass(n, neighbors, params, proto_rng)
    network = SyncNetwork(cls, capacity, net_rng, engine=engine)
    total_rounds = params.num_evolutions * (params.ell + 2)
    metrics = network.run(max_rounds=total_rounds + 1)
    return ProtocolRunResult(
        final_graph=PortGraph(ports=cls.ports.copy()),
        metrics=metrics,
        params=params,
        rounds=metrics.rounds,
    )
