"""Distributed-style minimum-id flooding and BFS (§2.1, footnote 8).

Once ``CreateExpander`` has produced a constant-conductance graph ``G_L``,
the paper roots a BFS tree at the node with the lowest identifier:

    "Every node simultaneously floods the graph with a token message that
    contains its identifier.  Every node that receives one or more tokens
    only forwards the token with lowest identifier."

Both phases are simulated here round-by-round on adjacency sets so the
round counts reported to the experiments are the *actual* synchronous
rounds the protocol would take (flooding stabilises after ``ecc(root)``
rounds; the BFS completes after ``depth`` rounds).  Parent ties are broken
towards the smallest id, which keeps the construction deterministic given
the graph.

These routines operate per connected component, which is what the
connected-components application (Theorem 1.2) needs: on a disconnected
graph each component independently elects its minimum id and builds its
own tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.analysis import adjacency_sets

__all__ = ["BFSForest", "flood_min_ids", "distributed_bfs", "build_bfs_forest"]


@dataclass
class BFSForest:
    """A BFS forest with per-node metadata.

    Attributes
    ----------
    parent:
        ``(n,)`` array; ``parent[v]`` is ``v``'s BFS parent (roots point to
        themselves).
    depth:
        ``(n,)`` array of hop distances to the component root.
    root_of:
        ``(n,)`` array; the root (minimum id) of each node's component.
    roots:
        Sorted list of component roots.
    rounds:
        Synchronous rounds consumed (flooding + level-synchronous BFS).
    """

    parent: np.ndarray
    depth: np.ndarray
    root_of: np.ndarray
    roots: list[int]
    rounds: int

    def children_lists(self) -> list[list[int]]:
        """Children of every node, sorted ascending (deterministic)."""
        children: list[list[int]] = [[] for _ in range(self.parent.shape[0])]
        for v, p in enumerate(self.parent.tolist()):
            if p != v:
                children[p].append(v)
        return children

    def tree_depth(self) -> int:
        """Maximum node depth across the forest."""
        return int(self.depth.max(initial=0))


def flood_min_ids(adj) -> tuple[np.ndarray, int]:
    """Flood minimum identifiers until stable.

    Every node repeatedly adopts the minimum of its own value and its
    neighbours' values.  Returns ``(root_of, rounds)`` where ``root_of[v]``
    is the minimum id in ``v``'s component and ``rounds`` is the number of
    rounds until no value changed (what a synchronous network would need,
    plus the final quiescence-detection round).
    """
    adj = adjacency_sets(adj)
    n = len(adj)
    best = np.arange(n, dtype=np.int64)
    rounds = 0
    changed = True
    while changed:
        changed = False
        nxt = best.copy()
        for v in range(n):
            for u in adj[v]:
                if best[u] < nxt[v]:
                    nxt[v] = best[u]
                    changed = True
        best = nxt
        rounds += 1
    return best, rounds


def distributed_bfs(adj, roots: list[int]) -> tuple[np.ndarray, np.ndarray, int]:
    """Level-synchronous BFS from the given roots.

    Returns ``(parent, depth, rounds)``.  In each round the current
    frontier's nodes offer themselves as parents to undiscovered
    neighbours; a node discovered by several neighbours in the same round
    picks the smallest id (deterministic tie-break, mirroring
    :func:`repro.graphs.analysis.bfs_tree`).
    """
    adj = adjacency_sets(adj)
    n = len(adj)
    parent = np.full(n, -1, dtype=np.int64)
    depth = np.full(n, -1, dtype=np.int64)
    frontier: list[int] = []
    for r in roots:
        parent[r] = r
        depth[r] = 0
        frontier.append(r)
    rounds = 0
    while frontier:
        rounds += 1
        offers: dict[int, int] = {}
        for v in frontier:
            for u in adj[v]:
                if parent[u] < 0:
                    prev = offers.get(u)
                    if prev is None or v < prev:
                        offers[u] = v
        nxt: list[int] = []
        for u, p in offers.items():
            parent[u] = p
            depth[u] = depth[p] + 1
            nxt.append(u)
        frontier = nxt
    return parent, depth, rounds


def build_bfs_forest(graph) -> BFSForest:
    """Full §2.1 procedure: flood minimum ids, then BFS from each
    component's minimum-id node."""
    adj = adjacency_sets(graph)
    root_of, flood_rounds = flood_min_ids(adj)
    roots = sorted(set(root_of.tolist()))
    parent, depth, bfs_rounds = distributed_bfs(adj, roots)
    return BFSForest(
        parent=parent,
        depth=depth,
        root_of=root_of,
        roots=roots,
        rounds=flood_rounds + bfs_rounds,
    )
