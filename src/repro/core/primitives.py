"""Distributed primitives on a well-formed tree.

§1.4 of the paper: *"These overlays can be used by distributed algorithms
to common tasks like aggregation, routing, or sampling in logarithmic
time."*  This module provides those primitives on top of a
:class:`repro.core.child_sibling.RootedTree` (typically the well-formed
tree produced by the Theorem 1.1 pipeline), with explicit round charges:

- **broadcast** — root to all nodes, ``depth`` rounds;
- **convergecast aggregation** — any associative/commutative reduction
  climbs the tree in ``depth`` rounds;
- **enumeration** — every node learns its rank in a global order
  (Euler-tour preorder), the backbone for the topology constructions in
  :mod:`repro.core.topologies`;
- **routing** — the unique tree path between two nodes (length at most
  ``2·depth + 1``), found through the lowest common ancestor.

Because the well-formed tree has degree ≤ 3 and depth ``O(log n)``, every
primitive is ``O(log n)`` rounds with ``O(1)`` messages per node per
round — the paper's claim in concrete form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.child_sibling import RootedTree
from repro.core.euler import preorder_and_sizes

__all__ = ["TreePrimitives"]


@dataclass
class _AggregateResult:
    """Value and round cost of a convergecast."""

    value: object
    rounds: int


class TreePrimitives:
    """Aggregation, enumeration, and routing over a rooted tree.

    Parameters
    ----------
    tree:
        Any rooted tree; primitives charge rounds proportional to its
        depth, so a well-formed tree gives the ``O(log n)`` costs the
        paper advertises.
    """

    def __init__(self, tree: RootedTree) -> None:
        tree.validate()
        self.tree = tree
        self._children = tree.children_lists()
        self._depth = tree.depth_array()
        self._labels: np.ndarray | None = None
        self._sizes: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.tree.n

    @property
    def height(self) -> int:
        """Tree height = the per-primitive round cost driver."""
        return int(self._depth.max(initial=0))

    # ------------------------------------------------------------------
    def broadcast_rounds(self) -> int:
        """Rounds for a root announcement to reach every node."""
        return self.height

    def aggregate(
        self,
        values: Sequence,
        combine: Callable[[object, object], object],
    ) -> _AggregateResult:
        """Convergecast reduction of per-node ``values`` with an
        associative, commutative ``combine``.

        Children report upward level by level; the root holds the total
        after ``height`` rounds.
        """
        if len(values) != self.n:
            raise ValueError(f"need one value per node, got {len(values)}")
        acc = list(values)
        order = sorted(range(self.n), key=lambda v: -int(self._depth[v]))
        for v in order:
            for c in self._children[v]:
                acc[v] = combine(acc[v], acc[c])
        return _AggregateResult(value=acc[self.tree.root], rounds=self.height)

    def count_nodes(self) -> _AggregateResult:
        """The simplest aggregation: ``n`` at the root in ``height``
        rounds (used to learn the exact ``n`` the algorithms only assumed
        an upper bound for)."""
        return self.aggregate([1] * self.n, lambda a, b: a + b)

    # ------------------------------------------------------------------
    def enumerate_nodes(self) -> tuple[np.ndarray, int]:
        """Assign every node a unique rank in ``0 .. n-1``.

        Uses the Euler-tour preorder (pointer-jumping list ranking —
        ``O(log n)`` rounds), the same machinery as the well-forming
        step.  Returns ``(ranks, rounds)``.
        """
        if self._labels is None:
            self._labels, self._sizes, self._rank_rounds = preorder_and_sizes(
                self.tree
            )
        return self._labels - 1, self._rank_rounds

    # ------------------------------------------------------------------
    def lca(self, a: int, b: int) -> int:
        """Lowest common ancestor (by parent-pointer climbing)."""
        da, db = int(self._depth[a]), int(self._depth[b])
        parent = self.tree.parent
        while da > db:
            a = int(parent[a])
            da -= 1
        while db > da:
            b = int(parent[b])
            db -= 1
        while a != b:
            a = int(parent[a])
            b = int(parent[b])
        return a

    def route(self, src: int, dst: int) -> tuple[list[int], int]:
        """The unique tree path from ``src`` to ``dst``.

        Returns ``(path, rounds)`` where ``rounds`` = path length (one
        forwarding hop per round).  Length is at most ``2·height``, i.e.
        ``O(log n)`` on a well-formed tree.
        """
        meet = self.lca(src, dst)
        parent = self.tree.parent
        up = [src]
        while up[-1] != meet:
            up.append(int(parent[up[-1]]))
        down = [dst]
        while down[-1] != meet:
            down.append(int(parent[down[-1]]))
        path = up + down[::-1][1:]
        return path, len(path) - 1

    # ------------------------------------------------------------------
    def sample_node(self, rng: np.random.Generator) -> tuple[int, int]:
        """Uniform random node via subtree-size descent.

        The root draws a rank uniformly and routes towards it using the
        subtree sizes (each hop discards the subtrees the rank does not
        fall into) — ``height`` rounds, the paper's "sampling in
        logarithmic time".  Returns ``(node, rounds)``.
        """
        if self._sizes is None:
            self.enumerate_nodes()
        target = int(rng.integers(0, self.n))
        ranks, _ = self.enumerate_nodes()
        node = int(np.nonzero(ranks == target)[0][0])
        return node, self.height
