"""Message-level ``CreateExpander`` in the NCC0 model.

This engine executes the algorithm of §2.1 node-by-node on the
:class:`repro.net.network.SyncNetwork` simulator, with every token
forwarding and acceptance reply materialised as an ``O(log n)``-bit
message subject to the NCC0 capacity (messages beyond the budget are
dropped by the network, as the model prescribes).

It exists to validate the claims the fast vectorised engine cannot:

- **Theorem 1.1's communication bound** — each node sends ``O(log n)``
  messages per round and ``O(log² n)`` in total (E4);
- **Lemma 3.2 in vivo** — at the calibrated parameters no message is
  actually dropped, i.e. the w.h.p. congestion bound holds (E5);
- **engine agreement** — the final graphs of both engines are benign with
  statistically matching conductance (integration tests).

Round layout: evolution ``i`` occupies rounds ``[i·(ℓ+2), (i+1)·(ℓ+2))``:
``ℓ`` token-forwarding rounds, one acceptance round, one reply/rebuild
round.  All nodes know ``(ℓ, Δ, Λ, L)``, so the schedule needs no
coordination (§2.1).  Self-loop forwards stay inside the node and use no
network capacity, matching the model (a node "sending to itself" is local
computation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import ExpanderParams
from repro.net.message import Message
from repro.net.network import CapacityPolicy, NetworkMetrics, ProtocolNode, SyncNetwork
from repro.graphs.portgraph import PortGraph

__all__ = [
    "ExpanderNode",
    "ProtocolRunResult",
    "run_protocol_expander",
    "run_expander_on_network",
    "prepare_network_inputs",
    "collect_final_graph",
]


class ExpanderNode(ProtocolNode):
    """One NCC0 node executing ``CreateExpander``.

    State per evolution: the node's current port list (partner ids,
    ``self`` for self-loops), the tokens it currently holds, and the edges
    recorded for the next evolution graph.
    """

    def __init__(
        self,
        node_id: int,
        neighbors: list[int],
        params: ExpanderParams,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(node_id)
        self.params = params
        self.rng = rng
        # MakeBenign, locally: copy each incident edge Λ times, pad with
        # self-loops to degree Δ (laziness follows from 2·Λ·d ≤ Δ).
        ports = [u for u in sorted(neighbors) for _ in range(params.lam)]
        if len(ports) > params.delta // 2:
            raise ValueError(
                f"node {node_id}: Λ·deg = {len(ports)} exceeds Δ/2 = {params.delta // 2}"
            )
        ports += [node_id] * (params.delta - len(ports))
        self.ports = ports
        self._next_origin_edges: list[int] = []  # partners via own accepted tokens
        self._next_accept_edges: list[int] = []  # partners via accepted foreign tokens
        self.evolutions_done = 0
        self.accepted_log: list[tuple[int, int]] = []  # (origin, acceptor=self)

    # ------------------------------------------------------------------
    def _phase(self, round_no: int) -> tuple[int, int]:
        span = self.params.ell + 2
        return round_no // span, round_no % span

    def _forward(self, origins: list[int]) -> list[Message]:
        """Send each token along a uniformly random port."""
        out: list[Message] = []
        for origin in origins:
            port = self.ports[int(self.rng.integers(0, self.params.delta))]
            out.append(Message(self.node_id, port, "token", origin))
        return out

    def on_round(self, round_no: int, inbox: list[Message]) -> list[Message]:
        evolution, step = self._phase(round_no)
        if evolution >= self.params.num_evolutions:
            return []
        params = self.params

        if step == 0:
            # Launch Δ/8 own tokens (a fresh evolution starts).
            return self._forward([self.node_id] * params.tokens_per_node)

        tokens = [m.payload for m in inbox if m.kind == "token"]

        if step < params.ell:
            return self._forward(tokens)

        if step == params.ell:
            # Acceptance: answer up to 3Δ/8 tokens, chosen uniformly.
            if len(tokens) > params.accept_cap:
                chosen = self.rng.choice(len(tokens), size=params.accept_cap, replace=False)
                tokens = [tokens[i] for i in sorted(chosen.tolist())]
            out = []
            for origin in tokens:
                self._next_accept_edges.append(origin)
                self.accepted_log.append((origin, self.node_id))
                out.append(Message(self.node_id, origin, "accept", self.node_id))
            return out

        # step == ell + 1: collect replies, rebuild ports, pad self-loops.
        for m in inbox:
            if m.kind == "accept":
                self._next_origin_edges.append(m.payload)
        partners = self._next_origin_edges + self._next_accept_edges
        if len(partners) > params.delta:
            raise AssertionError(
                f"node {self.node_id} assembled {len(partners)} ports > Δ"
            )
        self.ports = partners + [self.node_id] * (params.delta - len(partners))
        self._next_origin_edges = []
        self._next_accept_edges = []
        self.evolutions_done = evolution + 1
        return []

    def is_idle(self) -> bool:
        return self.evolutions_done >= self.params.num_evolutions


@dataclass
class ProtocolRunResult:
    """Outcome of a message-level ``CreateExpander`` run."""

    final_graph: PortGraph
    metrics: NetworkMetrics
    params: ExpanderParams
    rounds: int


def prepare_network_inputs(
    graph,
    params: ExpanderParams | None,
    capacity: CapacityPolicy | None,
) -> tuple[int, list[list[int]], ExpanderParams, CapacityPolicy]:
    """Shared preparation for the network-driven expander runners.

    Computes node count, adjacency lists, calibrated parameters, and the
    NCC0 capacity policy from an undirected networkx graph.  Used by both
    the per-message runner below and the batched runner in
    :mod:`repro.core.batch_protocol`.
    """
    from repro.core.benign import undirected_edge_list

    n, edges = undirected_edge_list(graph)
    if params is None:
        degree = np.zeros(n, dtype=np.int64)
        for a, b in edges:
            degree[a] += 1
            degree[b] += 1
        params = ExpanderParams.recommended(n, max_degree=int(degree.max(initial=1)))
    if capacity is None:
        capacity = CapacityPolicy.ncc0(n, params.delta)

    neighbors: list[list[int]] = [[] for _ in range(n)]
    for a, b in edges:
        neighbors[a].append(b)
        neighbors[b].append(a)
    return n, neighbors, params, capacity


def collect_final_graph(nodes, n: int, delta: int) -> PortGraph:
    """Assemble the final evolution graph from the nodes' port lists.

    The port lists held by the nodes after the last rebuild are the
    authoritative final graph.  If an 'accept' reply was dropped by the
    network the two endpoints disagree (the acceptor holds the edge, the
    origin does not) — exactly the knowledge-graph asymmetry the model
    permits; at calibrated parameters no drops occur and the graph is a
    symmetric multigraph (asserted by the tests).
    """
    ports = np.empty((n, delta), dtype=np.int64)
    for v, node in nodes.items():
        ports[v, :] = node.ports
    return PortGraph(ports=ports)


def run_expander_on_network(
    node_factory,
    graph,
    params: ExpanderParams | None = None,
    rng: np.random.Generator | None = None,
    capacity: CapacityPolicy | None = None,
    engine: str = "vectorized",
    rng_mode: str = "spawn",
) -> ProtocolRunResult:
    """Shared scaffold for network-driven ``CreateExpander`` runs.

    ``node_factory(node_id, neighbors, params, rng)`` builds one protocol
    node; everything else (parameter calibration, RNG discipline, round
    budget, final-graph assembly) is identical between the per-message
    and batched node implementations.

    ``rng_mode`` selects the randomness discipline:

    - ``"spawn"`` (default, the historical stream): every node draws from
      its own ``rng.spawn()`` child, the network from the last;
    - ``"shared"``: ``rng.spawn(2)`` yields one *protocol* generator that
      every node shares (drawing in node-iteration order) and one network
      generator.  Because sequential ``Generator.random(k)`` draws
      concatenate into one stream, this is exactly the discipline of the
      SoA tier's single flat draw per round — which is what makes
      :func:`repro.core.batch_protocol.run_soa_expander` bit-for-bit
      comparable against batched nodes under matched seeds.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if rng_mode not in ("spawn", "shared"):
        raise ValueError(f"rng_mode must be 'spawn' or 'shared', got {rng_mode!r}")
    n, neighbors, params, capacity = prepare_network_inputs(graph, params, capacity)

    if rng_mode == "spawn":
        child_rngs = rng.spawn(n + 1)
        node_rng = lambda v: child_rngs[v]  # noqa: E731
        net_rng = child_rngs[n]
    else:
        proto_rng, net_rng = rng.spawn(2)
        node_rng = lambda v: proto_rng  # noqa: E731
    nodes = {
        v: node_factory(v, neighbors[v], params, node_rng(v)) for v in range(n)
    }
    network = SyncNetwork(nodes, capacity, net_rng, engine=engine)
    total_rounds = params.num_evolutions * (params.ell + 2)
    metrics = network.run(max_rounds=total_rounds + 1)

    final = collect_final_graph(nodes, n, params.delta)
    return ProtocolRunResult(
        final_graph=final,
        metrics=metrics,
        params=params,
        rounds=metrics.rounds,
    )


def run_protocol_expander(
    graph,
    params: ExpanderParams | None = None,
    rng: np.random.Generator | None = None,
    capacity: CapacityPolicy | None = None,
    engine: str = "vectorized",
) -> ProtocolRunResult:
    """Execute ``CreateExpander`` message-by-message on ``graph``.

    ``graph`` is an undirected networkx graph (a directed knowledge graph
    should be bidirected first — one extra round, which
    :func:`repro.core.pipeline.build_well_formed_tree` charges).  Returns
    the final evolution graph assembled from the acceptors' edge records,
    plus full network metrics.  ``engine`` selects the network delivery
    engine (``"legacy"`` is the per-message oracle; both engines produce
    identical executions under the same seed).
    """
    return run_expander_on_network(ExpanderNode, graph, params, rng, capacity, engine)
