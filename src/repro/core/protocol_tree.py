"""Message-level rooting phase: min-id flooding + BFS under NCC0.

Completes the message-level story of Theorem 1.1: after
:mod:`repro.core.protocol` has built the expander graph with enforced
capacities, this module executes the *rooting* phase (§2.1, footnote 8)
node-by-node on the same simulator:

1. **min-id flooding** — every node repeatedly announces the smallest
   identifier it has heard to all distinct neighbours; after
   ``O(diameter)`` = ``O(log n)`` rounds everyone agrees on the root;
2. **BFS** — the root announces depth 0; a node adopting a parent
   announces its depth next round; ties break towards the smaller
   offering id (the same rule as the reference BFS, so the two are
   cross-checkable).

Every announcement is a real :class:`repro.net.message.Message` subject
to the NCC0 send/receive budgets.  A node sends at most one message per
distinct neighbour per round (≤ `Δ` = the capacity), so no drops occur —
asserted by the tests.

The final rebalancing (child–sibling + Euler tour) is charged
analytically by the pipeline (DESIGN.md §2.7); its message pattern is one
pointer-jump request per hosted tour element per round, which also fits
the ``O(Δ)`` budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.portgraph import PortGraph
from repro.net.message import Message
from repro.net.network import CapacityPolicy, NetworkMetrics, ProtocolNode, SyncNetwork

__all__ = ["TreeProtocolResult", "run_protocol_rooting"]


class _RootingNode(ProtocolNode):
    """One node of the flooding + BFS protocol."""

    def __init__(self, node_id: int, neighbors: list[int], flood_rounds: int) -> None:
        super().__init__(node_id)
        self.neighbors = sorted(set(neighbors))
        self.flood_rounds = flood_rounds
        self.best = node_id
        self.parent = -1
        self.depth = -1
        self._announced_depth = False
        self._done = False

    def on_round(self, round_no: int, inbox: list[Message]) -> list[Message]:
        out: list[Message] = []
        if round_no < self.flood_rounds:
            # Flooding phase: adopt and re-announce the minimum id.
            for msg in inbox:
                if msg.kind == "min_id" and msg.payload < self.best:
                    self.best = msg.payload
            out.extend(
                Message(self.node_id, u, "min_id", self.best)
                for u in self.neighbors
            )
            return out

        if round_no == self.flood_rounds and self.best == self.node_id:
            # Flooding converged: the unique minimum roots the BFS.
            self.parent = self.node_id
            self.depth = 0

        offers = [
            msg for msg in inbox if msg.kind == "bfs_offer"
        ]
        if self.parent < 0 and offers:
            chosen = min(offers, key=lambda m: m.sender)
            self.parent = chosen.sender
            self.depth = int(chosen.payload) + 1
        if self.parent >= 0 and not self._announced_depth:
            self._announced_depth = True
            out.extend(
                Message(self.node_id, u, "bfs_offer", self.depth)
                for u in self.neighbors
                if u != self.parent
            )
        self._done = self.parent >= 0 and self._announced_depth
        return out

    def is_idle(self) -> bool:
        return self._done


@dataclass
class TreeProtocolResult:
    """Outcome of the message-level rooting phase."""

    root: int
    parent: np.ndarray
    depth: np.ndarray
    metrics: NetworkMetrics
    rounds: int


def run_protocol_rooting(
    graph: PortGraph,
    flood_rounds: int,
    rng: np.random.Generator | None = None,
    capacity: CapacityPolicy | None = None,
    max_rounds: int | None = None,
) -> TreeProtocolResult:
    """Execute flooding + BFS message-by-message on an overlay graph.

    Parameters
    ----------
    graph:
        The (connected) expander :class:`PortGraph` produced by the
        evolution phase.
    flood_rounds:
        Length of the flooding phase; the paper uses the known bound
        ``L ≥ log n ≥ diameter`` rounds.  If flooding has not stabilised
        by then the BFS may root at a non-minimum id — callers pass the
        same `O(log n)` budget the paper assumes.
    capacity:
        NCC0 budget; defaults to ``Δ`` messages per round, matching the
        evolution phase.

    Raises
    ------
    RuntimeError
        If the BFS fails to span within ``max_rounds`` (disconnected
        input or starved capacity).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    n = graph.n
    if capacity is None:
        capacity = CapacityPolicy.ncc0(n, graph.delta)
    neighbor_sets = graph.neighbor_sets()
    nodes = {
        v: _RootingNode(v, sorted(neighbor_sets[v]), flood_rounds)
        for v in range(n)
    }
    network = SyncNetwork(nodes, capacity, rng)
    if max_rounds is None:
        max_rounds = flood_rounds + 4 * flood_rounds + 8
    metrics = network.run(max_rounds=max_rounds)

    parent = np.array([nodes[v].parent for v in range(n)], dtype=np.int64)
    depth = np.array([nodes[v].depth for v in range(n)], dtype=np.int64)
    if (parent < 0).any():
        missing = int((parent < 0).sum())
        raise RuntimeError(f"BFS did not span: {missing} nodes unreached")
    roots = [v for v in range(n) if parent[v] == v]
    if len(roots) != 1:
        raise RuntimeError(f"expected a unique root, got {roots}")
    return TreeProtocolResult(
        root=roots[0],
        parent=parent,
        depth=depth,
        metrics=metrics,
        rounds=metrics.rounds,
    )
