"""Message-level rooting phase: min-id flooding + BFS under NCC0.

Completes the message-level story of Theorem 1.1: after
:mod:`repro.core.protocol` has built the expander graph with enforced
capacities, this module executes the *rooting* phase (§2.1, footnote 8)
node-by-node on the same simulator:

1. **min-id flooding** — every node repeatedly announces the smallest
   identifier it has heard to all distinct neighbours; after
   ``O(diameter)`` = ``O(log n)`` rounds everyone agrees on the root;
2. **BFS** — the root announces depth 0; a node adopting a parent
   announces its depth next round; ties break towards the smaller
   offering id (the same rule as the reference BFS, so the two are
   cross-checkable).

Every announcement is a real message subject to the NCC0 send/receive
budgets.  A node sends at most one message per distinct neighbour per
round (≤ `Δ` = the capacity), so no drops occur — asserted by the tests.

Two node implementations execute the identical protocol:

- :class:`_RootingNode` — per-:class:`~repro.net.message.Message` objects
  (:func:`run_protocol_rooting`), the plainly written oracle;
- :class:`BatchRootingNode` — :class:`~repro.net.batch.MessageBatch`
  int64 columns (:func:`run_batch_rooting`), whose BFS offers carry
  ``(depth, offerer)`` pairs on the two payload lanes so the packet is
  self-contained.  On the vectorized engine a round of flooding moves as
  one flat buffer, which is what makes rooting practical at ``n ≥ 10⁵``
  (see ``benchmarks/bench_s2_rooting_scaling.py``).

Both produce bit-for-bit identical ``(root, parent, depth)`` arrays and
metrics under the same seed — enforced by
``tests/core/test_batch_rooting.py`` against each other and against the
reference :mod:`repro.core.bfs`.

The final rebalancing (child–sibling + Euler tour) is charged
analytically by the pipeline (DESIGN.md §2.7); its message pattern is one
pointer-jump request per hosted tour element per round, which also fits
the ``O(Δ)`` budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.portgraph import PortGraph
from repro.net.asynchrony import AsyncReport, run_with_asynchrony
from repro.net.batch import KINDS, MessageBatch
from repro.net.message import Message
from repro.net.network import (
    BatchProtocolNode,
    CapacityPolicy,
    NetworkMetrics,
    ProtocolNode,
    SyncNetwork,
)

__all__ = [
    "TreeProtocolResult",
    "BatchRootingNode",
    "ROOTING_TIERS",
    "build_rooting_population",
    "run_protocol_rooting",
    "run_batch_rooting",
    "run_rooting_under_asynchrony",
]

#: Execution tiers a rooting population can be built at (node
#: representation, orthogonal to the delivery engine) — authoritative in
#: :mod:`repro.runtime.context`, re-exported here for compatibility.
from repro.runtime import ROOTING_TIERS, RunContext  # noqa: E402

MIN_ID = KINDS.code("min_id")
BFS_OFFER = KINDS.code("bfs_offer")


class _RootingNode(ProtocolNode):
    """One node of the flooding + BFS protocol."""

    def __init__(self, node_id: int, neighbors: list[int], flood_rounds: int) -> None:
        super().__init__(node_id)
        self.neighbors = sorted(set(neighbors))
        self.flood_rounds = flood_rounds
        self.best = node_id
        self.parent = -1
        self.depth = -1
        self._announced_depth = False
        self._done = False

    def on_round(self, round_no: int, inbox: list[Message]) -> list[Message]:
        out: list[Message] = []
        if round_no <= self.flood_rounds:
            # Flooding phase: adopt and re-announce the minimum id.  The
            # inbox of round ``flood_rounds`` (messages *sent* in the last
            # flooding round) is still processed — discarding it would cut
            # the flood one hop short, so with ``flood_rounds == diameter``
            # several nodes would still believe themselves minimal.
            for msg in inbox:
                if msg.kind == "min_id" and msg.payload < self.best:
                    self.best = msg.payload
            if round_no < self.flood_rounds:
                out.extend(
                    Message(self.node_id, u, "min_id", self.best)
                    for u in self.neighbors
                )
                return out
            if self.best == self.node_id:
                # Flooding converged: the unique minimum roots the BFS.
                self.parent = self.node_id
                self.depth = 0

        offers = [
            msg for msg in inbox if msg.kind == "bfs_offer"
        ]
        if self.parent < 0 and offers:
            chosen = min(offers, key=lambda m: m.sender)
            self.parent = chosen.sender
            self.depth = int(chosen.payload) + 1
        if self.parent >= 0 and not self._announced_depth:
            self._announced_depth = True
            out.extend(
                Message(self.node_id, u, "bfs_offer", self.depth)
                for u in self.neighbors
                if u != self.parent
            )
        self._done = self.parent >= 0 and self._announced_depth
        return out

    def is_idle(self) -> bool:
        return self._done


class BatchRootingNode(BatchProtocolNode):
    """Batched flooding + BFS node: one :class:`MessageBatch` per round.

    Identical round schedule and tie-breaks as :class:`_RootingNode`
    (differentially tested); its BFS offers carry ``(depth, offerer)``
    pairs on the two payload lanes, so the offer packet is self-contained
    rather than leaning on the simulator's sender attribution.
    """

    def __init__(self, node_id: int, neighbors: list[int], flood_rounds: int) -> None:
        super().__init__(node_id)
        self.neighbors = np.asarray(sorted(set(neighbors)), dtype=np.int64)
        self.flood_rounds = flood_rounds
        self.best = node_id
        self.parent = -1
        self.depth = -1
        self._announced_depth = False
        self._done = False
        # The flooding announcement is the same batch every round except
        # for its payload value, so build it once and rewrite the payload
        # buffer in place when ``best`` improves.  (Safe: delivery gathers
        # payload columns into fresh arrays before the next round runs;
        # only the *receivers* column is read-only by contract — the
        # engine may freeze it and cache its grouping permutation — and
        # it is never mutated here.)
        deg = self.neighbors.shape[0]
        self._flood_payloads = np.full(deg, node_id, dtype=np.int64)
        self._flood_batch = (
            MessageBatch._raw(node_id, self.neighbors, MIN_ID, self._flood_payloads)
            if deg
            else None
        )

    def on_round_batch(self, round_no: int, inbox: MessageBatch) -> MessageBatch | None:
        out: MessageBatch | None = None
        if round_no <= self.flood_rounds:
            # Same final-inbox rule as the object node: round
            # ``flood_rounds`` still folds in the last flooding wave.
            heard = inbox.payloads_of_kind(MIN_ID)
            if heard.shape[0]:
                low = heard.min()
                if low < self.best:
                    self.best = int(low)
                    self._flood_payloads[:] = self.best
            if round_no < self.flood_rounds:
                return self._flood_batch
            if self.best == self.node_id:
                self.parent = self.node_id
                self.depth = 0

        if self.parent < 0:
            offers = inbox.of_kind(BFS_OFFER)
            if len(offers):
                depths = offers.payloads
                offerers = offers.payloads2
                # Offers arriving in one round are level-synchronous (all
                # the same depth), so the lexicographic (depth, offerer)
                # minimum reduces to the object node's min-sender rule —
                # while also guarding the mixed-depth case.
                j = int(np.lexsort((offerers, depths))[0])
                self.parent = int(offerers[j])
                self.depth = int(depths[j]) + 1
        if self.parent >= 0 and not self._announced_depth:
            self._announced_depth = True
            targets = self.neighbors[self.neighbors != self.parent]
            k = targets.shape[0]
            if k:
                out = MessageBatch._raw(
                    self.node_id,
                    targets,
                    BFS_OFFER,
                    np.full(k, self.depth, dtype=np.int64),
                    np.full(k, self.node_id, dtype=np.int64),
                )
        self._done = self.parent >= 0 and self._announced_depth
        return out

    def is_idle(self) -> bool:
        return self._done


@dataclass
class TreeProtocolResult:
    """Outcome of the message-level rooting phase."""

    root: int
    parent: np.ndarray
    depth: np.ndarray
    metrics: NetworkMetrics
    rounds: int


def _build_nodes(
    graph: PortGraph, flood_rounds: int, node_cls
) -> dict[int, ProtocolNode]:
    # Both node constructors normalise with sorted(set(...)) themselves.
    neighbor_sets = graph.neighbor_sets()
    return {
        v: node_cls(v, neighbor_sets[v], flood_rounds) for v in range(graph.n)
    }


def build_rooting_population(graph: PortGraph, flood_rounds: int, tier: str = "batch"):
    """Construct the rooting protocol at any execution tier.

    Returns a node dict (``"object"`` / ``"batch"``) or the SoA
    population class (``"soa"``) — whatever
    :class:`~repro.net.network.SyncNetwork` (or the asynchrony
    synchronisers) accepts directly.  All three run the identical
    protocol; the scenario runner and the S4 bench select among them.
    """
    if tier == "soa":
        # Lazy import: soa_rooting imports this module at load time.
        from repro.core.soa_rooting import SoARootingClass, csr_neighbors

        return SoARootingClass(*csr_neighbors(graph), flood_rounds)
    if tier not in ROOTING_TIERS:
        from repro.runtime import validate_tier

        validate_tier("rooting", tier)
    return _build_nodes(
        graph, flood_rounds, BatchRootingNode if tier == "batch" else _RootingNode
    )


def _collect_result(
    nodes: dict[int, ProtocolNode], n: int, metrics: NetworkMetrics
) -> TreeProtocolResult:
    """Validate the nodes' final state and assemble the result arrays."""
    parent = np.array([nodes[v].parent for v in range(n)], dtype=np.int64)
    depth = np.array([nodes[v].depth for v in range(n)], dtype=np.int64)
    if (parent < 0).any():
        missing = int((parent < 0).sum())
        raise RuntimeError(f"BFS did not span: {missing} nodes unreached")
    roots = [v for v in range(n) if parent[v] == v]
    if len(roots) != 1:
        raise RuntimeError(f"expected a unique root, got {roots}")
    return TreeProtocolResult(
        root=roots[0],
        parent=parent,
        depth=depth,
        metrics=metrics,
        rounds=metrics.rounds,
    )


def _resolve_defaults(
    graph: PortGraph,
    flood_rounds: int,
    rng: np.random.Generator | None,
    capacity: CapacityPolicy | None,
    max_rounds: int | None,
) -> tuple[np.random.Generator, CapacityPolicy, int]:
    """Default RNG / NCC0 budget / round budget, shared by every runner."""
    if rng is None:
        rng = np.random.default_rng(0)
    if capacity is None:
        capacity = CapacityPolicy.ncc0(graph.n, graph.delta)
    if max_rounds is None:
        max_rounds = flood_rounds + 4 * flood_rounds + 8
    return rng, capacity, max_rounds


def _run_rooting(
    node_cls,
    graph: PortGraph,
    flood_rounds: int,
    rng: np.random.Generator | None,
    capacity: CapacityPolicy | None,
    max_rounds: int | None,
    engine: str,
    ctx: RunContext | None = None,
) -> TreeProtocolResult:
    """Shared scaffold for the object and batched rooting runners."""
    rng, capacity, max_rounds = _resolve_defaults(
        graph, flood_rounds, rng, capacity, max_rounds
    )
    nodes = _build_nodes(graph, flood_rounds, node_cls)
    network = SyncNetwork(nodes, capacity, rng, engine=engine, ctx=ctx)
    metrics = network.run(max_rounds=max_rounds)
    return _collect_result(nodes, graph.n, metrics)


def run_protocol_rooting(
    graph: PortGraph,
    flood_rounds: int,
    rng: np.random.Generator | None = None,
    capacity: CapacityPolicy | None = None,
    max_rounds: int | None = None,
    engine: str = "vectorized",
    *,
    ctx: RunContext | None = None,
) -> TreeProtocolResult:
    """Execute flooding + BFS message-by-message on an overlay graph.

    Parameters
    ----------
    graph:
        The (connected) expander :class:`PortGraph` produced by the
        evolution phase.
    flood_rounds:
        Length of the flooding phase; the paper uses the known bound
        ``L ≥ log n ≥ diameter`` rounds.  The flood reaches exactly
        ``flood_rounds`` hops (the final wave's inbox is processed before
        the BFS hand-off), so ``flood_rounds == diameter`` suffices.  If
        flooding has not stabilised by then the BFS may root at a
        non-minimum id — callers pass the same `O(log n)` budget the
        paper assumes.
    capacity:
        NCC0 budget; defaults to ``Δ`` messages per round, matching the
        evolution phase.
    engine:
        Network delivery engine (``"vectorized"`` or ``"legacy"``).

    Raises
    ------
    RuntimeError
        If the BFS fails to span within ``max_rounds`` (disconnected
        input or starved capacity).
    """
    return _run_rooting(
        _RootingNode, graph, flood_rounds, rng, capacity, max_rounds, engine, ctx
    )


def run_batch_rooting(
    graph: PortGraph,
    flood_rounds: int,
    rng: np.random.Generator | None = None,
    capacity: CapacityPolicy | None = None,
    max_rounds: int | None = None,
    engine: str = "vectorized",
    *,
    ctx: RunContext | None = None,
) -> TreeProtocolResult:
    """Batched counterpart of :func:`run_protocol_rooting`.

    Drop-in: same inputs, same :class:`TreeProtocolResult`, bit-for-bit
    identical ``(root, parent, depth)`` and metrics under the same seed —
    only the message representation (int64 columns vs. objects) differs.
    Running batch nodes on the ``"legacy"`` engine is supported (messages
    materialise at the network boundary) and is how the differential
    tests cross-check the vectorized path.
    """
    return _run_rooting(
        BatchRootingNode, graph, flood_rounds, rng, capacity, max_rounds, engine, ctx
    )


def run_rooting_under_asynchrony(
    graph: PortGraph,
    flood_rounds: int,
    max_delay: int,
    rng: np.random.Generator | None = None,
    capacity: CapacityPolicy | None = None,
    max_rounds: int | None = None,
    engine: str = "vectorized",
    batched: bool = True,
    tier: str | None = None,
    fault_hook=None,
    *,
    ctx: RunContext | None = None,
) -> tuple[TreeProtocolResult, AsyncReport]:
    """Rooting under the footnote-2 synchroniser, batched by default.

    Convenience wiring for churn/delay workloads: builds the rooting
    population at the chosen execution ``tier`` (``"object"`` /
    ``"batch"`` / ``"soa"``; defaults to ``"batch"``, or ``"object"``
    with the older ``batched=False`` switch), runs it through
    :func:`repro.net.asynchrony.run_with_asynchrony` — the SoA tier lands
    on the columnar delay-queue synchroniser of
    :mod:`repro.scenarios.soa_sync` — and returns the usual
    :class:`TreeProtocolResult` plus the dilation report.  Because the
    synchroniser's delay stream is independent of delivery, the tree is
    identical to the synchronous run's under the same seed, at every
    tier.  ``fault_hook`` threads an adversarial scenario's compiled
    injector into the network.
    """
    if tier is None:
        tier = "batch" if batched else "object"
    rng, capacity, max_rounds = _resolve_defaults(
        graph, flood_rounds, rng, capacity, max_rounds
    )
    population = build_rooting_population(graph, flood_rounds, tier)
    report, network = run_with_asynchrony(
        population, capacity, rng, max_delay, max_rounds,
        engine=engine, fault_hook=fault_hook, ctx=ctx,
    )
    if tier == "soa":
        from repro.core.soa_rooting import collect_soa_result

        return collect_soa_result(population, network.metrics), report
    return _collect_result(population, graph.n, network.metrics), report
