"""repro-lint rule framework: codes, registry, violations, suppressions.

A *rule* is a small AST checker enforcing one determinism contract of the
three-tier engine (``docs/contracts.md`` enumerates the contracts; each
one cross-links the rule code that enforces it and the ``REPRO_SANITIZE``
assert that checks it at runtime).  Rules are classes registered under a
stable ``RLxxx`` code via :func:`register`; the analysis engine
(:mod:`repro.analysis.engine`) instantiates one checker per rule per file
and drives them all through a single AST walk, so adding a rule never adds
a parse or a traversal.

Rule numbering groups by contract family:

- ``RL1xx`` — RNG discipline (canonical generator usage);
- ``RL2xx`` — determinism hazards (iteration order, wall clock);
- ``RL3xx`` — columnar contracts (shared delivery columns, dtype lanes);
- ``RL4xx`` — shard safety (disjoint writes inside worker bodies);
- ``RL5xx`` — probe purity (telemetry observes, never perturbs);
- ``RL6xx`` — configuration discipline (one env source, one context).

Suppressions are source comments, checked per physical line of the
flagged statement:

- ``# repro-lint: disable=RL101`` (or ``disable=RL101,RL202`` /
  ``disable=all``) silences matching codes on that statement;
- ``# repro-lint: disable-file=RL202`` anywhere in a file silences the
  code for the whole file (used sparingly — prefer line-level).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

__all__ = [
    "Rule",
    "Violation",
    "FileContext",
    "REGISTRY",
    "register",
    "all_rules",
    "parse_suppressions",
]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit: a stable, sortable record.

    ``line_text`` is the stripped source of the flagged line — it keys the
    baseline fingerprint (:mod:`repro.analysis.baseline`), so violations
    survive unrelated line-number drift without going stale silently.
    """

    path: str  # repo-relative, posix separators
    line: int
    col: int
    code: str
    message: str
    line_text: str = field(compare=False, default="")

    def fingerprint(self) -> str:
        return f"{self.path}::{self.code}::{self.line_text}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "line_text": self.line_text,
        }


def parse_suppressions(lines: list[str]) -> tuple[dict[int, set[str]], set[str]]:
    """Scan source lines for suppression comments.

    Returns ``(per_line, whole_file)``: 1-based line number → codes
    silenced on that line, and codes silenced file-wide.  The token
    ``all`` silences every code.
    """
    per_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    for lineno, text in enumerate(lines, start=1):
        if "repro-lint" not in text:
            continue
        for kind, codes in _SUPPRESS_RE.findall(text):
            parsed = {c.strip().upper() for c in codes.split(",") if c.strip()}
            if kind == "disable-file":
                whole_file |= parsed
            else:
                per_line.setdefault(lineno, set()).update(parsed)
    return per_line, whole_file


class FileContext:
    """Everything one file's checkers share: path, source, scope stack,
    suppression table, and the violation sink."""

    def __init__(self, rel_path: str, source_lines: list[str]) -> None:
        self.rel_path = rel_path
        self.lines = source_lines
        self.suppress_lines, self.suppress_file = parse_suppressions(source_lines)
        # Module kind steers per-rule applicability: wall-clock reads are a
        # hazard inside the engine but the whole point of a benchmark.
        top = rel_path.split("/", 1)[0]
        if top in ("benchmarks", "examples", "tests"):
            self.kind = top
        else:
            self.kind = "engine"
        self.violations: list[Violation] = []
        #: Enclosing function/class nodes, innermost last (engine-managed).
        self.scope_stack: list[ast.AST] = []

    # ------------------------------------------------------------------
    def current_function(self) -> ast.AST | None:
        for node in reversed(self.scope_stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def _suppressed(self, code: str, lineno: int, end_lineno: int | None) -> bool:
        if code in self.suppress_file or "ALL" in self.suppress_file:
            return True
        last = end_lineno if end_lineno is not None else lineno
        for line in range(lineno, min(last, lineno + 10) + 1):
            codes = self.suppress_lines.get(line)
            if codes and (code in codes or "ALL" in codes):
                return True
        return False

    def report(self, node: ast.AST, code: str, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self._suppressed(code, lineno, getattr(node, "end_lineno", None)):
            return
        text = self.lines[lineno - 1].strip() if 0 < lineno <= len(self.lines) else ""
        self.violations.append(
            Violation(self.rel_path, lineno, col, code, message, line_text=text)
        )


class Rule:
    """Base class for one lint rule; one instance is created per file.

    Subclasses set the class attributes and implement any of the
    ``visit_<NodeType>(self, node)`` hooks the engine dispatches on
    (plus optional ``exit_function(self, node)`` when a function scope
    closes).  ``self.ctx`` is the file's :class:`FileContext`.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    #: One-line statement of the determinism contract this rule enforces
    #: (rendered by ``--list-rules`` and cross-linked from docs/contracts.md).
    contract: str = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.report(node, self.code, message)


#: code -> rule class.  Import order of the rules_* modules fixes the
#: report order for equal locations; codes must be unique.
REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    if not cls.code or not cls.name:
        raise ValueError(f"rule {cls.__name__} must define code and name")
    if cls.code in REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[type[Rule]]:
    """Registered rule classes, sorted by code (imports the built-in rule
    modules on first use so the registry is always populated)."""
    from repro.analysis import (  # noqa: F401
        rules_columnar,
        rules_config,
        rules_determinism,
        rules_obs,
        rules_rng,
        rules_shard,
    )

    return [REGISTRY[code] for code in sorted(REGISTRY)]
