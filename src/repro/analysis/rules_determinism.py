"""Determinism-hazard rules (RL2xx): iteration order and wall clock.

Message emission and edge construction must be derived from canonically
ordered data: the SoA contract is *ascending-sender* emission, and the
per-node tiers enumerate traffic in node-insertion order.  Iterating a
``set`` feeds hash-table order into that pipeline — order that CPython
happens to make reproducible for small dense ints, and silently stops
guaranteeing the moment ids become gappy or large (exactly how the
baselines' "works on the ring" code rots).  Wall-clock reads inside
engine paths leak real time into supposedly seed-determined executions.

Dict iteration is deliberately *not* flagged: CPython dicts iterate in
insertion order, which the engine's canonical-order conventions already
pin (docs/contracts.md records this decision).
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import attr_chain, call_name
from repro.analysis.rules import Rule, register

__all__ = ["SetIterationOrder", "WallClock"]

#: Calls producing a list of sets whose elements get iterated via
#: subscript (``adj = adjacency_sets(g)`` ... ``for u in adj[v]``) — the
#: idiom every baseline uses for neighbourhoods.
_SET_LIST_PRODUCERS = {"adjacency_sets"}

_SET_PRODUCERS = {"set", "frozenset"}


def _producer_tag(value: ast.AST) -> str | None:
    """Classify an assigned expression: ``"set"``, ``"setlist"``, or None."""
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        chain = call_name(value)
        if chain is None:
            return None
        base = chain.split(".")[-1]
        if base in _SET_PRODUCERS:
            return "set"
        if base in _SET_LIST_PRODUCERS:
            return "setlist"
    return None


@register
class SetIterationOrder(Rule):
    code = "RL201"
    name = "set-iteration-order"
    description = (
        "iteration over a set (hash order) where emission/edge code "
        "needs canonical order"
    )
    contract = (
        "Message emission and edge construction never depend on set "
        "iteration order; iterate sorted(...) or a canonical array."
    )

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        # (scope node id or None for module) -> name -> tag
        self._bindings: dict[int | None, dict[str, str]] = {None: {}}

    # -- binding tracking ----------------------------------------------
    def _scope_key(self) -> int | None:
        fn = self.ctx.current_function()
        return id(fn) if fn is not None else None

    def _bind(self, name: str, tag: str | None) -> None:
        scope = self._bindings.setdefault(self._scope_key(), {})
        if tag is None:
            scope.pop(name, None)
        else:
            scope[name] = tag

    def _lookup(self, name: str) -> str | None:
        tag = self._bindings.get(self._scope_key(), {}).get(name)
        if tag is None and self._scope_key() is not None:
            tag = self._bindings[None].get(name)
        return tag

    def exit_function(self, node: ast.AST) -> None:
        self._bindings.pop(id(node), None)

    def visit_Assign(self, node: ast.Assign) -> None:
        tag = _producer_tag(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, tag)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            self._bind(node.target.id, _producer_tag(node.value))

    # -- iteration checks ----------------------------------------------
    def _describe_set_iter(self, iter_node: ast.AST) -> str | None:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(iter_node, ast.Call):
            chain = call_name(iter_node)
            if chain is not None and chain.split(".")[-1] in _SET_PRODUCERS:
                return f"{chain}(...)"
            return None
        if isinstance(iter_node, ast.Name):
            if self._lookup(iter_node.id) == "set":
                return f"set '{iter_node.id}'"
            return None
        if isinstance(iter_node, ast.Subscript):
            base = iter_node.value
            if isinstance(base, ast.Name) and self._lookup(base.id) == "setlist":
                return f"adjacency set '{base.id}[...]'"
        return None

    def _check(self, iter_node: ast.AST) -> None:
        if self.ctx.kind == "tests":
            # Tests iterate sets for order-insensitive assertions; the
            # emission/edge contract concerns shipped code.
            return
        described = self._describe_set_iter(iter_node)
        if described is not None:
            self.report(
                iter_node,
                f"iteration over {described} is hash-order-dependent; "
                "iterate sorted(...) (or compare full canonical keys) so "
                "emission/edge construction stays order-independent",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check(node.iter)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check(node.iter)


_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}


@register
class WallClock(Rule):
    code = "RL202"
    name = "wall-clock"
    description = "wall-clock read inside an engine path"
    contract = (
        "Engine paths (src/repro) never read real time; rounds and clocks "
        "are logical.  Benchmarks/tests/examples measure freely."
    )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.ctx.kind != "engine":
            return
        chain = attr_chain(node)
        if chain in _WALL_CLOCK:
            self.report(
                node,
                f"wall-clock read '{chain}' in an engine path; simulated "
                "executions must be fully seed-determined (timing belongs "
                "in benchmarks, or suppress where measurement is the point)",
            )
