"""RNG-discipline rules (RL1xx).

The engine's bit-for-bit tier equality holds only because every random
draw flows through one explicitly seeded ``np.random.Generator`` in one
canonical order (docs/engine.md "canonical RNG discipline").  Any other
entropy source — the legacy global numpy RNG, the stdlib ``random``
module, an unseeded ``default_rng()`` — silently breaks seed
reproducibility, and deriving child generators by *drawing* from a parent
(instead of ``rng.spawn()``) couples the child stream to the parent's
consumption order, which is exactly what the tier-differential matrices
forbid.

Whitelisted seeding sites are the explicit-seed constructions the repo
uses everywhere: ``np.random.default_rng(<seed expression>)`` with an
argument.  Only the *argless* form (OS entropy) and draw-derived seeds
are flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import attr_chain, call_name, contains_rng_draw
from repro.analysis.rules import Rule, register

__all__ = ["LegacyGlobalRng", "StdlibRandom", "SeedlessDefaultRng", "UnspawnedStream"]

#: ``np.random`` members that are not the legacy global-state API.
_ALLOWED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

_NP_RANDOM_PREFIXES = ("np.random.", "numpy.random.")


@register
class LegacyGlobalRng(Rule):
    code = "RL101"
    name = "legacy-global-rng"
    description = (
        "call into the legacy global numpy RNG (np.random.rand, "
        "np.random.seed, ...) instead of an explicit Generator"
    )
    contract = (
        "Every random draw flows through an explicitly seeded "
        "np.random.Generator passed down the call stack."
    )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = attr_chain(node)
        if chain is None:
            return
        for prefix in _NP_RANDOM_PREFIXES:
            if chain.startswith(prefix):
                member = chain[len(prefix) :].split(".", 1)[0]
                if member and member not in _ALLOWED_NP_RANDOM:
                    self.report(
                        node,
                        f"legacy global-RNG access '{chain}': use an explicit "
                        "np.random.Generator (seeded default_rng) instead",
                    )
                return


@register
class StdlibRandom(Rule):
    code = "RL102"
    name = "stdlib-random"
    description = "import of the stdlib random module (process-global state)"
    contract = (
        "The stdlib random module is banned: its global state is invisible "
        "to the seed-matched differential matrices."
    )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(
                    node,
                    "stdlib 'random' import: engine code draws from the "
                    "explicit np.random.Generator discipline only",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            self.report(
                node,
                "stdlib 'random' import: engine code draws from the "
                "explicit np.random.Generator discipline only",
            )


def _is_default_rng_call(node: ast.Call) -> bool:
    chain = call_name(node)
    return chain is not None and (
        chain == "default_rng" or chain.endswith(".default_rng")
    )


@register
class SeedlessDefaultRng(Rule):
    code = "RL103"
    name = "seedless-default-rng"
    description = "default_rng() with no seed (OS entropy, nondeterministic)"
    contract = (
        "Generators are constructed only at whitelisted seeding sites: "
        "default_rng(<explicit seed>); the argless form draws OS entropy."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if _is_default_rng_call(node) and not node.args and not node.keywords:
            self.report(
                node,
                "default_rng() without a seed is nondeterministic; pass an "
                "explicit seed (or derive a stream with rng.spawn())",
            )


@register
class UnspawnedStream(Rule):
    code = "RL104"
    name = "unspawned-stream"
    description = (
        "child generator seeded by drawing from a parent generator "
        "instead of rng.spawn()"
    )
    contract = (
        "Derived streams come from rng.spawn(); seeding a child by drawing "
        "from the parent couples it to the parent's consumption order."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if not _is_default_rng_call(node) or not node.args:
            return
        draw = contains_rng_draw(node.args[0])
        if draw is not None:
            self.report(
                node,
                f"child generator seeded from a parent draw ('{draw}'); "
                "use rng.spawn() so the stream is independent of the "
                "parent's consumption order",
            )
