"""Columnar-contract rules (RL3xx): shared delivery columns stay intact.

The delivery tail caches and re-serves receiver-sorted layouts keyed by
the *identity* of protocol-emitted column objects, and the staged
:class:`~repro.net.soa.SoAInbox` hands those columns to every consumer as
views.  In-place mutation of a shared column — directly, or through
another numpy view of the same base (the PR 6 stale-permutation bug) —
silently misdelivers messages: the cache's permutation no longer matches
the values underneath it.  The runtime guard is the value-verified layout
cache plus the ``REPRO_SANITIZE=1`` asserts; these rules catch the write
at review time.

The lanes are ``int64`` end to end (``docs/engine.md``): a narrowing
``astype``/``dtype=`` on a column silently truncates ids and payloads at
scale, so it is flagged in engine paths.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import attr_chain, call_name
from repro.analysis.rules import Rule, register

__all__ = ["SharedColumnWrite", "ViewAliasWrite", "DtypeNarrowing"]

#: Attribute names of the shared message-column objects
#: (:class:`MessageBatch` / :class:`SoAInbox` lanes).
SHARED_COLUMN_ATTRS = {"senders", "receivers", "payloads", "payloads2", "kinds"}

#: Flat-column local names used by the delivery tail and its callers.
SHARED_COLUMN_NAMES = {
    "rcv_all",
    "snd_all",
    "kind_all",
    "pay_all",
    "pay2_all",
    "rcv_idx",
    "rcv_s",
    "snd_s",
    "kind_s",
    "pay_s",
    "pay2_s",
}

#: Name suffixes treated as "columnar" for the view-alias rule.
_COLUMN_SUFFIXES = ("_s", "_all", "_col", "_cols", "_column", "_columns", "_idx")

#: Constructors whose result is a *fresh* array the enclosing function
#: owns — writes to it are building, not mutating shared state.
_FRESH_PRODUCERS = {
    "empty",
    "zeros",
    "ones",
    "full",
    "arange",
    "array",
    "copy",
    "concatenate",
    "repeat",
    "fromiter",
    "empty_like",
    "zeros_like",
    "ones_like",
    "full_like",
}

#: numpy view-producing methods: ``x.view()``, ``x.reshape(...)`` share
#: the base buffer exactly like a slice does.
_VIEW_METHODS = {"view", "reshape"}


def _is_columnar_name(name: str) -> bool:
    return name in SHARED_COLUMN_NAMES or name.endswith(_COLUMN_SUFFIXES)


def _subscript_base(node: ast.Subscript) -> ast.AST:
    return node.value


class _FunctionState:
    __slots__ = ("fresh", "view_of")

    def __init__(self) -> None:
        self.fresh: set[str] = set()
        self.view_of: dict[str, str] = {}


class _ColumnarRule(Rule):
    """Shared per-function tracking of fresh arrays and view aliases."""

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._states: dict[int | None, _FunctionState] = {None: _FunctionState()}

    def _state(self) -> _FunctionState:
        fn = self.ctx.current_function()
        key = id(fn) if fn is not None else None
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _FunctionState()
        return state

    def exit_function(self, node: ast.AST) -> None:
        self._states.pop(id(node), None)

    def _classify_value(self, value: ast.AST) -> str | None:
        """``"fresh"`` for owned arrays, a base-name string for views."""
        if isinstance(value, ast.Call):
            chain = call_name(value)
            if chain is not None:
                base = chain.split(".")[-1]
                if base in _FRESH_PRODUCERS:
                    return "fresh"
                if base in _VIEW_METHODS and isinstance(value.func, ast.Attribute):
                    owner = value.func.value
                    if isinstance(owner, ast.Name):
                        return f"view:{owner.id}"
            return None
        if isinstance(value, ast.Subscript) and isinstance(value.value, ast.Name):
            if isinstance(value.slice, ast.Slice):
                return f"view:{value.value.id}"
            # Advanced (integer/boolean-array) indexing copies — fresh.
            return "fresh"
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        tag = self._classify_value(node.value)
        state = self._state()
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            state.fresh.discard(name)
            state.view_of.pop(name, None)
            if tag == "fresh":
                state.fresh.add(name)
            elif tag is not None and tag.startswith("view:"):
                state.view_of[name] = tag[5:]


@register
class SharedColumnWrite(_ColumnarRule):
    code = "RL301"
    name = "shared-column-write"
    description = (
        "in-place write to a shared delivery column (inbox/batch lane or "
        "delivery-tail flat column)"
    )
    contract = (
        "Delivered columns are immutable: protocol code never writes into "
        "inbox/batch lanes or the delivery tail's flat columns in place."
    )

    def _check_target(self, target: ast.AST) -> None:
        if not isinstance(target, ast.Subscript):
            return
        base = _subscript_base(target)
        if isinstance(base, ast.Attribute) and base.attr in SHARED_COLUMN_ATTRS:
            chain = attr_chain(base) or f"<expr>.{base.attr}"
            self.report(
                target,
                f"in-place write to shared column '{chain}[...]': delivered "
                "lanes are shared across the layout cache and every tier — "
                "build a fresh array instead of mutating",
            )
        elif isinstance(base, ast.Name) and base.id in SHARED_COLUMN_NAMES:
            if base.id not in self._state().fresh:
                self.report(
                    target,
                    f"in-place write to delivery column '{base.id}[...]' that "
                    "this function does not own; the layout cache keys on "
                    "these objects — allocate a fresh array",
                )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)

    def visit_Assign(self, node: ast.Assign) -> None:
        super().visit_Assign(node)
        for target in node.targets:
            self._check_target(target)


@register
class ViewAliasWrite(_ColumnarRule):
    code = "RL302"
    name = "view-alias-write"
    description = (
        "write through a numpy view of a columnar array (the PR 6 "
        "stale-permutation hazard)"
    )
    contract = (
        "No writes through views: a slice/reshape/view of a shared column "
        "aliases its base, so writing it mutates cached state invisibly."
    )

    def _check_target(self, target: ast.AST) -> None:
        if not isinstance(target, ast.Subscript):
            return
        base = _subscript_base(target)
        if not isinstance(base, ast.Name):
            return
        state = self._state()
        origin = state.view_of.get(base.id)
        if origin is None:
            return
        if origin in state.fresh or not _is_columnar_name(origin):
            return
        self.report(
            target,
            f"write through view '{base.id}' aliases column '{origin}': "
            "an aliased in-place write bypasses identity checks and "
            "misdelivers via stale cached permutations (PR 6 bug class) — "
            "copy before writing",
        )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)

    def visit_Assign(self, node: ast.Assign) -> None:
        super().visit_Assign(node)
        for target in node.targets:
            self._check_target(target)


_NARROW_DTYPES = {
    "int8",
    "int16",
    "int32",
    "uint8",
    "uint16",
    "uint32",
    "uint64",
}


def _narrow_dtype_name(node: ast.AST) -> str | None:
    """Name of a narrower-than-int64 integer dtype expression, or None."""
    chain = attr_chain(node)
    if chain is not None:
        base = chain.split(".")[-1]
        if base in _NARROW_DTYPES:
            return chain
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in _NARROW_DTYPES:
            return node.value
    return None


@register
class DtypeNarrowing(Rule):
    code = "RL303"
    name = "dtype-narrowing"
    description = "narrowing integer dtype on an engine-path array"
    contract = (
        "Message lanes (ids, ports, payloads) are int64 end to end; "
        "narrowing dtypes truncate silently at scale."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.kind != "engine":
            return
        chain = call_name(node)
        if chain is None:
            return
        method = chain.split(".")[-1]
        if method == "astype" and node.args:
            narrow = _narrow_dtype_name(node.args[0])
            if narrow is not None:
                self.report(
                    node,
                    f"astype({narrow}) narrows an engine-path array; the "
                    "column lanes are int64 end to end",
                )
            return
        for kw in node.keywords:
            if kw.arg == "dtype":
                narrow = _narrow_dtype_name(kw.value)
                if narrow is not None:
                    self.report(
                        node,
                        f"dtype={narrow} narrows an engine-path array; the "
                        "column lanes are int64 end to end",
                    )
