"""repro-lint baseline: accepted pre-existing violations.

The lint gate fails only on *new* violations: hits not accounted for by
the committed baseline file (``repro-lint-baseline.json`` at the repo
root).  The baseline is a fingerprint multiset — each entry keys
``path::code::stripped-line-text`` with a count — so violations survive
unrelated line-number drift, while editing a flagged line (or adding a
second identical one) resurfaces it.  Shrinking the baseline is always
safe; growing it is a reviewed decision (``--write-baseline``).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.rules import Violation

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "write_baseline",
    "partition_new",
]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "repro-lint-baseline.json"


def load_baseline(path: Path) -> Counter:
    """Load a baseline fingerprint multiset (empty when missing)."""
    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in "
            f"{path} (expected {BASELINE_VERSION})"
        )
    entries = payload.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"baseline entries must be a mapping in {path}")
    return Counter({str(k): int(v) for k, v in entries.items()})


def write_baseline(path: Path, violations: list[Violation]) -> None:
    """Write the current violation set as the new baseline
    (deterministic: sorted keys, trailing newline)."""
    counts = Counter(v.fingerprint() for v in violations)
    payload = {
        "version": BASELINE_VERSION,
        "entries": {k: counts[k] for k in sorted(counts)},
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def partition_new(
    violations: list[Violation], baseline: Counter
) -> tuple[list[Violation], list[Violation]]:
    """Split into ``(new, accepted)`` against the baseline multiset.

    Violations are consumed in sorted order: for each fingerprint, the
    first ``baseline[fp]`` occurrences are accepted, the rest are new —
    deterministic, so the gate never flaps between equal hits.
    """
    seen: Counter = Counter()
    new: list[Violation] = []
    accepted: list[Violation] = []
    for violation in sorted(violations):
        fp = violation.fingerprint()
        seen[fp] += 1
        if seen[fp] <= baseline.get(fp, 0):
            accepted.append(violation)
        else:
            new.append(violation)
    return new, accepted
