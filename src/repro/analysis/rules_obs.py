"""Probe-purity rules (RL5xx): telemetry observes, never perturbs.

The round-trace layer (:mod:`repro.obs`) guarantees that a traced run is
bit-for-bit identical to an untraced one (docs/contracts.md C7): tracing
reads metric deltas and timestamps around an unchanged inner round, and
never draws randomness or writes back into engine state.  The runtime
side of the contract is the traced-vs-untraced invariance matrices in
``tests/obs/``; these rules catch the two ways a probe can break it at
review time:

- **RL501** — a probe draws from an RNG.  Any draw inside telemetry code
  advances a generator the engine also consumes, so enabling the trace
  shifts every subsequent fault/delay decision (``rng.spawn()`` is the
  sanctioned derivation and stays exempt).
- **RL502** — a probe mutates its observed arguments.  A store through a
  non-``self`` parameter (``counts[0] = -1``, ``batch.kinds = ...``)
  turns an observer into a participant: the traced run no longer
  executes the same state transitions as the untraced one.

*Probe scope* is everything in ``src/repro/obs/`` plus any function whose
name starts with ``probe_`` or ``on_trace_`` anywhere else — the naming
convention for user-supplied trace callbacks.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import call_name, is_rng_name
from repro.analysis.rules import Rule, register

__all__ = ["ProbeRngDraw", "ProbeParamMutation"]

#: Files that are probe scope in their entirety.
_OBS_PREFIX = "src/repro/obs/"

#: Function-name prefixes marking user-supplied trace callbacks.
_PROBE_FN_PREFIXES = ("probe_", "on_trace_")


def _in_probe_scope(ctx) -> bool:
    """Is the walker currently inside telemetry code?"""
    if ctx.rel_path.startswith(_OBS_PREFIX):
        return True
    for node in ctx.scope_stack:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith(_PROBE_FN_PREFIXES):
                return True
    return False


@register
class ProbeRngDraw(Rule):
    code = "RL501"
    name = "probe-rng-draw"
    description = "RNG draw inside telemetry/probe code"
    contract = (
        "Probes never draw randomness: a draw inside trace code advances "
        "a generator the engine consumes, so tracing would shift every "
        "subsequent fault and delay decision."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if not _in_probe_scope(self.ctx):
            return
        chain = call_name(node)
        if chain is None or "." not in chain:
            return
        owner, method = chain.rsplit(".", 1)
        if method == "spawn":
            return
        if is_rng_name(owner.split(".")[-1]):
            self.report(
                node,
                f"RNG draw '{chain}' inside probe scope: telemetry must "
                "leave every generator's stream untouched (traced and "
                "untraced runs share the RNG consumption order)",
            )


@register
class ProbeParamMutation(Rule):
    code = "RL502"
    name = "probe-param-mutation"
    description = "store through a probe's observed argument"
    contract = (
        "Probes observe by value: no subscript or attribute store whose "
        "base is a non-self parameter — a probe that writes back turns "
        "tracing into a state transition."
    )

    def _param_names(self, fn: ast.AST) -> set[str]:
        a = fn.args
        names = {arg.arg for arg in a.posonlyargs + a.args + a.kwonlyargs}
        for var in (a.vararg, a.kwarg):
            if var is not None:
                names.add(var.arg)
        names.discard("self")
        names.discard("cls")
        return names

    def _check_target(self, target: ast.AST) -> None:
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return
        if not _in_probe_scope(self.ctx):
            return
        fn = self.ctx.current_function()
        if fn is None:
            return
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if isinstance(base, ast.Name) and base.id in self._param_names(fn):
            self.report(
                target,
                f"probe writes through its argument '{base.id}': telemetry "
                "code must not mutate observed state — copy before writing "
                "or record into the tracer's own tables",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
