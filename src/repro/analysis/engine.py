"""repro-lint analysis engine: one AST walk drives every rule.

The engine parses each file once, instantiates one checker per registered
rule, and dispatches AST nodes to the checkers' ``visit_<NodeType>``
hooks during a single depth-first traversal.  Scope structure
(function/class nesting) is maintained on the shared
:class:`~repro.analysis.rules.FileContext` so rules can track
per-function state (fresh-array bindings, view aliases) without walking
anything themselves; when a function scope closes, checkers exposing
``exit_function`` are notified.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.rules import FileContext, Rule, Violation, all_rules

__all__ = ["analyze_source", "analyze_file", "analyze_paths", "iter_python_files"]

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

#: Directories never descended into when expanding path arguments.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "node_modules", ".pytest_cache"}


class _Walker:
    """Single-pass dispatcher: node-type name → interested checkers."""

    def __init__(self, checkers: list[Rule], ctx: FileContext) -> None:
        self.ctx = ctx
        self._handlers: dict[str, list] = {}
        self._exit_function = [
            c.exit_function for c in checkers if hasattr(c, "exit_function")
        ]
        for checker in checkers:
            for attr in dir(type(checker)):
                if attr.startswith("visit_"):
                    self._handlers.setdefault(attr[6:], []).append(
                        getattr(checker, attr)
                    )

    def walk(self, node: ast.AST) -> None:
        handlers = self._handlers.get(type(node).__name__)
        if handlers:
            for handler in handlers:
                handler(node)
        is_scope = isinstance(node, _SCOPE_NODES)
        if is_scope:
            self.ctx.scope_stack.append(node)
        for child in ast.iter_child_nodes(node):
            self.walk(child)
        if is_scope:
            self.ctx.scope_stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for hook in self._exit_function:
                    hook(node)


def analyze_source(
    source: str,
    rel_path: str = "<string>",
    select: set[str] | None = None,
) -> list[Violation]:
    """Lint one source string; returns sorted violations.

    ``select`` restricts to a subset of rule codes (all when ``None``).
    Files that fail to parse yield a single ``RL000`` syntax violation
    rather than aborting the run — a tree with a broken file should fail
    lint loudly, not crash it.
    """
    lines = source.splitlines()
    ctx = FileContext(rel_path, lines)
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        ctx.violations.append(
            Violation(
                rel_path,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                "RL000",
                f"syntax error: {exc.msg}",
                line_text="",
            )
        )
        return ctx.violations
    checkers = [
        cls(ctx) for cls in all_rules() if select is None or cls.code in select
    ]
    _Walker(checkers, ctx).walk(tree)
    return sorted(ctx.violations)


def analyze_file(
    path: Path, root: Path, select: set[str] | None = None
) -> list[Violation]:
    rel = path.resolve().relative_to(root.resolve()).as_posix()
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [Violation(rel, 1, 0, "RL000", f"unreadable file: {exc}")]
    return analyze_source(source, rel_path=rel, select=select)


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    seen.add(sub.resolve())
        elif path.suffix == ".py":
            seen.add(path.resolve())
    return sorted(seen)


def analyze_paths(
    paths: list[Path], root: Path, select: set[str] | None = None
) -> list[Violation]:
    """Lint every ``.py`` file under ``paths`` (relative paths are rendered
    against ``root``, the repo checkout)."""
    violations: list[Violation] = []
    for file_path in iter_python_files(paths):
        violations.extend(analyze_file(file_path, root, select=select))
    return sorted(violations)
