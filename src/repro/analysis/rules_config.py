"""Configuration-discipline rules (RL6xx): one env source, one context.

Contract C8 (``docs/contracts.md``): every execution knob resolves
through :class:`repro.runtime.context.RunContext` along one precedence
chain (explicit kwarg > CLI > ``REPRO_*`` environment > default), and the
environment step of that chain lives in :mod:`repro.runtime.envsource`
and nowhere else.  A raw ``os.environ["REPRO_*"]`` read scattered in an
engine module re-creates the pre-context world: two call sites can
resolve the same knob differently, and a knob can change mid-run behind
a frozen context's back.  Writes are worse — mutating ``REPRO_*`` so
downstream code re-sniffs it (the old bench idiom) bypasses the chain
entirely; thread a context instead.

- **RL601** — raw ``REPRO_*`` environment access outside
  ``src/repro/runtime/``: any ``os.environ[...]`` / ``os.environ.get``
  / ``os.getenv`` (and the write/delete forms) whose key is a
  ``REPRO_``-prefixed string literal, or a name following the repo's
  ``*_ENV`` constant convention (``WORKERS_ENV``, ``TRACE_ENV``, ...).
  Tests stay in scope: the sanctioned spelling there is
  ``monkeypatch.setenv``/``delenv``, which restores state and never
  reads.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import attr_chain, call_name
from repro.analysis.rules import Rule, register

__all__ = ["RawReproEnvAccess"]

#: The one package allowed to touch the process environment for REPRO_*
#: knobs (contract C8's environment step).
_RUNTIME_PREFIX = "src/repro/runtime/"

#: ``os.environ`` method names that take the variable name first.
_ENVIRON_METHODS = ("get", "pop", "setdefault", "__getitem__", "__contains__")

#: ``os``-level functions that take the variable name first.
_OS_FUNCS = ("getenv", "putenv", "unsetenv")


def _is_repro_key(node: ast.AST) -> bool:
    """Does this expression name a ``REPRO_*`` environment variable?

    String literals are matched by prefix; plain names are matched by the
    repo convention that env-var constants end in ``_ENV`` (they all hold
    ``REPRO_*`` names — :data:`repro.runtime.context.WORKERS_ENV`,
    :data:`repro.obs.tracer.TRACE_ENV`, ...).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.startswith("REPRO_")
    if isinstance(node, ast.Name):
        return node.id.endswith("_ENV")
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("_ENV")
    return False


@register
class RawReproEnvAccess(Rule):
    code = "RL601"
    name = "raw-repro-env-access"
    description = "raw REPRO_* environment access outside repro.runtime"
    contract = (
        "Every REPRO_* knob resolves through the RunContext precedence "
        "chain; the environment is read only in repro.runtime.envsource, "
        "so a knob has exactly one resolution and cannot change behind a "
        "frozen context's back."
    )

    def _exempt(self) -> bool:
        return self.ctx.rel_path.startswith(_RUNTIME_PREFIX)

    def _flag(self, node: ast.AST, spelling: str) -> None:
        self.report(
            node,
            f"raw REPRO_* environment access '{spelling}': resolve the "
            "knob through repro.runtime (RunContext.resolve / envsource) "
            "instead of reading or mutating os.environ directly",
        )

    # ``os.environ["REPRO_X"]`` in any expression/assign/delete context.
    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._exempt():
            return
        if attr_chain(node.value) in ("os.environ", "environ") and _is_repro_key(
            node.slice
        ):
            self._flag(node, "os.environ[...]")

    # ``os.environ.get("REPRO_X")`` / ``os.getenv("REPRO_X")`` and friends.
    def visit_Call(self, node: ast.Call) -> None:
        if self._exempt() or not node.args:
            return
        chain = call_name(node)
        if chain is None:
            return
        if chain in tuple(f"os.environ.{m}" for m in _ENVIRON_METHODS) or chain in (
            tuple(f"os.{f}" for f in _OS_FUNCS) + tuple(f"environ.{m}" for m in _ENVIRON_METHODS)
        ):
            if _is_repro_key(node.args[0]):
                self._flag(node, chain)

    # ``"REPRO_X" in os.environ`` membership probes.
    def visit_Compare(self, node: ast.Compare) -> None:
        if self._exempt():
            return
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.In, ast.NotIn)):
                continue
            if attr_chain(comparator) in ("os.environ", "environ") and _is_repro_key(
                node.left
            ):
                self._flag(node, "... in os.environ")
