"""Shard-safety rules (RL4xx): disjoint writes inside worker bodies.

The :class:`~repro.net.shard.ShardPool` contract is that worker ``w``
writes its outputs only at ``[off, off + k)`` — the prefix-sum offset of
its receiver range in the shared arena.  Two workers writing overlapping
arena slices is a silent cross-process race: no exception, just corrupted
sorted columns on whichever worker loses.  The runtime guard is the
``REPRO_SANITIZE=1`` arena canary; this rule catches the unbounded write
statically.

The rule applies inside the designated shard-worker function bodies and
requires every subscript *store* to an output column (``*_out`` names, or
``cols[...]`` arena lanes) to index through an offset-derived bound — a
slice whose endpoints reference an ``off``/``end`` variable.  A write
like ``pay_out[:m] = ...`` (whole-arena) or ``pay_out[local] = ...``
(scatter by global index) inside a worker is exactly the overlap class
the canary exists for.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import Rule, register

__all__ = ["ShardUnboundedWrite", "SHARD_WORKER_FUNCS"]

#: Function names treated as shard-worker bodies (the fork target and its
#: in-process serial twin).  Extend when adding new worker entry points.
SHARD_WORKER_FUNCS = {"_worker_loop", "_serial_sort"}

#: Substrings marking a variable as an offset bound derived from
#: ``shard_bounds`` prefix sums.
_OFFSET_MARKERS = ("off", "end")


def _mentions_offset(node: ast.AST | None) -> bool:
    if node is None:
        return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and any(
            marker in sub.id for marker in _OFFSET_MARKERS
        ):
            return True
    return False


def _is_output_column(base: ast.AST) -> str | None:
    """Arena output lanes: ``<name>_out[...]`` or ``cols[<key>][...]``."""
    if isinstance(base, ast.Name) and base.id.endswith("_out"):
        return base.id
    if isinstance(base, ast.Subscript) and isinstance(base.value, ast.Name):
        if base.value.id in ("cols", "columns"):
            key = base.slice
            if isinstance(key, ast.Constant):
                return f"{base.value.id}[{key.value!r}]"
            return f"{base.value.id}[...]"
    return None


@register
class ShardUnboundedWrite(Rule):
    code = "RL401"
    name = "shard-unbounded-write"
    description = (
        "arena write inside a shard worker not bounded by shard offsets"
    )
    contract = (
        "Shard workers write only their own [off, off+k) arena slice; "
        "offsets come from the recv-count prefix sums at shard_bounds."
    )

    def _in_worker(self) -> bool:
        fn = self.ctx.current_function()
        return fn is not None and fn.name in SHARD_WORKER_FUNCS

    def _check_target(self, target: ast.AST) -> None:
        if not self._in_worker() or not isinstance(target, ast.Subscript):
            return
        column = _is_output_column(target.value)
        if column is None:
            return
        sl = target.slice
        if isinstance(sl, ast.Slice):
            if _mentions_offset(sl.lower) and _mentions_offset(sl.upper):
                return
        self.report(
            target,
            f"shard worker writes '{column}' without shard-offset bounds; "
            "workers own only [off, off+k) of the arena — overlapping "
            "writes race silently across processes",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
