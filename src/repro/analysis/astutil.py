"""Small shared AST helpers for repro-lint rules."""

from __future__ import annotations

import ast

__all__ = ["attr_chain", "call_name", "contains_rng_draw", "RNG_NAME_HINTS"]

#: Variable-name heuristics for "this is a numpy Generator": the canonical
#: parameter name used throughout the engine plus the derived-stream
#: convention (``delay_rng``, ``fault_rng``, ...).
RNG_NAME_HINTS = ("rng",)


def attr_chain(node: ast.AST) -> str | None:
    """Dotted name of an attribute chain (``np.random.default_rng``), or
    ``None`` when the expression is not a plain name/attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's target, or ``None``."""
    return attr_chain(node.func)


def is_rng_name(name: str) -> bool:
    """Heuristic: does ``name`` denote a ``np.random.Generator``?"""
    return name in RNG_NAME_HINTS or name.endswith("_rng")


def contains_rng_draw(node: ast.AST) -> str | None:
    """Dotted call name of the first RNG *draw* inside ``node``'s subtree
    (``rng.integers(...)``, ``delay_rng.choice(...)``), else ``None``.

    ``rng.spawn()`` is the sanctioned derivation and is not a draw.
    """
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        chain = call_name(sub)
        if chain is None or "." not in chain:
            continue
        owner, method = chain.rsplit(".", 1)
        if method == "spawn":
            continue
        base = owner.split(".")[-1]
        if is_rng_name(base):
            return chain
    return None
