"""repro-lint: determinism-contract static analysis for the engine.

The engine's headline guarantee — bit-for-bit equality across the
object/batch/SoA tiers, worker counts, and synchronisers — rests on
source-level conventions (canonical RNG discipline, ascending-sender
emission, int64 lanes, order-independent emission, disjoint shard
writes).  This package checks those conventions mechanically:

- ``python -m repro.analysis`` lints the tree against the registered
  rules (``--list-rules``), gated by the committed baseline
  (``repro-lint-baseline.json``);
- ``docs/contracts.md`` enumerates the contracts, each cross-linked to
  its rule code here and to the ``REPRO_SANITIZE=1`` runtime assert that
  checks it during execution.

Pure stdlib (``ast``) — importable and runnable without numpy.
"""

from repro.analysis.baseline import (
    load_baseline,
    partition_new,
    write_baseline,
)
from repro.analysis.cli import main
from repro.analysis.engine import analyze_paths, analyze_source
from repro.analysis.rules import REGISTRY, Rule, Violation, all_rules

__all__ = [
    "REGISTRY",
    "Rule",
    "Violation",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "load_baseline",
    "main",
    "partition_new",
    "write_baseline",
]
