"""repro-lint command line: ``python -m repro.analysis [paths ...]``.

Exit status is the CI contract: 0 when no violations beyond the committed
baseline, 1 when new violations exist (or any file fails to parse), 2 on
usage errors.  ``--format json`` emits a stable machine-readable report
(schema ``repro-lint/v1``) that the CI job uploads as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    partition_new,
    write_baseline,
)
from repro.analysis.engine import analyze_paths
from repro.analysis.rules import all_rules

__all__ = ["main", "REPORT_SCHEMA", "DEFAULT_PATHS"]

REPORT_SCHEMA = "repro-lint/v1"

#: The full tree: engine sources plus everything that drives them.
DEFAULT_PATHS = ("src", "benchmarks", "examples", "tests")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: determinism-contract static analysis for the "
            "three-tier engine (see docs/contracts.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root that paths and the baseline resolve against (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every violation is treated as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current violations as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to this file as well as stdout summary",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and their contracts, then exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for cls in all_rules():
        lines.append(f"{cls.code}  {cls.name}")
        lines.append(f"    {cls.description}")
        lines.append(f"    contract: {cls.contract}")
    return "\n".join(lines)


def _json_report(violations, new, baseline_counts) -> dict:
    by_code = Counter(v.code for v in violations)
    return {
        "schema": REPORT_SCHEMA,
        "rules": {
            cls.code: {
                "name": cls.name,
                "description": cls.description,
                "contract": cls.contract,
            }
            for cls in all_rules()
        },
        "violations": [v.as_dict() for v in sorted(violations)],
        "new": [v.as_dict() for v in sorted(new)],
        "counts": {
            "total": len(violations),
            "new": len(new),
            "baselined": len(violations) - len(new),
            "baseline_entries": sum(baseline_counts.values()),
            "by_code": {code: by_code[code] for code in sorted(by_code)},
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    root = Path(args.root).resolve()
    raw_paths = args.paths or [p for p in DEFAULT_PATHS if (root / p).exists()]
    paths = []
    for raw in raw_paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if not path.exists():
            parser.error(f"path does not exist: {raw}")
        paths.append(path)
    if not paths:
        parser.error("nothing to lint: no paths given and no defaults exist")

    select = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",") if code.strip()}
        known = {cls.code for cls in all_rules()}
        unknown = select - known
        if unknown:
            parser.error(f"unknown rule codes: {', '.join(sorted(unknown))}")

    violations = analyze_paths(paths, root, select=select)

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    )
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path

    if args.write_baseline:
        write_baseline(baseline_path, violations)
        print(
            f"wrote {baseline_path} ({len(violations)} accepted violation(s))"
        )
        return 0

    baseline_counts = Counter() if args.no_baseline else load_baseline(baseline_path)
    new, accepted = partition_new(violations, baseline_counts)

    if args.format == "json":
        report = json.dumps(
            _json_report(violations, new, baseline_counts), indent=2, sort_keys=True
        )
    else:
        lines = [v.render() for v in sorted(new)]
        if accepted:
            lines.append(f"({len(accepted)} baselined violation(s) not shown)")
        lines.append(
            f"repro-lint: {len(violations)} violation(s), {len(new)} new"
        )
        report = "\n".join(lines)

    if args.output:
        out_path = Path(args.output)
        out_path.write_text(report + "\n", encoding="utf-8")
        print(f"wrote {out_path}")
        if args.format == "human":
            print(report.splitlines()[-1])
    else:
        print(report)

    return 1 if new else 0
