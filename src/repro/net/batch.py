"""Array-backed message batches for the vectorized network engine.

A :class:`MessageBatch` is the flat-array counterpart of a list of
:class:`repro.net.message.Message` objects: four parallel ``int64`` columns
(sender, receiver, kind code, payload).  Protocol nodes that implement
:class:`repro.net.network.BatchProtocolNode` exchange batches instead of
per-message objects, which lets the vectorized engine move a whole round of
traffic through numpy without ever materialising Python objects.

Design notes
------------
- **Kinds are interned.**  Message kinds are short strings ("token",
  "accept", …); the module-level :data:`KINDS` table maps them to small
  integer codes so batches stay pure ``int64``.  The table is append-only
  and process-global — the handful of protocol kinds never collide.
- **Scalar broadcasting.**  ``senders`` and ``kinds`` may be stored as a
  scalar when uniform across the batch (the overwhelmingly common case: a
  node emits one batch of one kind per round).  This keeps per-node
  construction O(1) python work; ``senders_array()`` etc. materialise full
  columns on demand.
- **Payloads are integers.**  A batch payload is one ``int64`` per message
  — or an ``(int64, int64)`` pair when the optional second payload lane
  ``payloads2`` is attached (e.g. the rooting phase's ``(depth, offerer)``
  BFS offers).  Either shape matches the paper's ``O(log n)``-bit packets.
  Object messages whose payloads are neither integers nor integer pairs
  cannot be delivered to a batch node — the engine raises ``TypeError``.
"""

from __future__ import annotations

import numpy as np

from repro.net.message import Message

__all__ = ["KindTable", "KINDS", "MessageBatch", "pair_payload"]


class KindTable:
    """Bidirectional interning of message-kind strings to int codes."""

    def __init__(self) -> None:
        self._codes: dict[str, int] = {}
        self._names: list[str] = []

    def code(self, kind: str) -> int:
        """Intern ``kind`` and return its stable integer code."""
        code = self._codes.get(kind)
        if code is None:
            code = len(self._names)
            self._codes[kind] = code
            self._names.append(kind)
        return code

    def name(self, code: int) -> str:
        return self._names[code]


#: Process-global kind registry shared by all networks and batches.
KINDS = KindTable()


def pair_payload(payload) -> tuple[int, int] | None:
    """``(a, b)`` if ``payload`` is a pair of integers, else ``None``.

    The single predicate deciding which object-message payloads map onto
    the two batch payload lanes; shared by :meth:`MessageBatch.from_messages`
    and the vectorized engine's object-chunk packing.
    """
    if isinstance(payload, tuple) and len(payload) == 2:
        a, b = payload
        if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
            return int(a), int(b)
    return None


def _as_column(value, length: int, what: str) -> np.ndarray:
    arr = np.asarray(value, dtype=np.int64)
    if arr.ndim == 0:
        return np.full(length, int(arr), dtype=np.int64)
    if arr.shape[0] != length:
        raise ValueError(f"{what} column has length {arr.shape[0]}, expected {length}")
    return arr


class MessageBatch:
    """A flat batch of messages: parallel int64 columns.

    ``receivers`` and ``payloads`` are always arrays; ``senders`` and
    ``kinds`` may be scalars meaning "uniform across the batch".
    ``payloads2`` is an optional second payload lane (``None`` when the
    batch carries single-integer payloads): protocols whose packets are
    integer *pairs* — e.g. the rooting phase's ``(depth, offerer)`` BFS
    offers — put the first component in ``payloads`` and the second in
    ``payloads2``.
    """

    __slots__ = ("senders", "receivers", "kinds", "payloads", "payloads2")

    def __init__(self, senders, receivers, kinds, payloads=None, payloads2=None) -> None:
        self.receivers = np.asarray(receivers, dtype=np.int64)
        if self.receivers.ndim != 1:
            raise ValueError("receivers must be a 1-d array")
        m = self.receivers.shape[0]
        # Scalars are normalised to python ints so hot-path code can test
        # ``type(x) is np.ndarray`` to distinguish the broadcast case.
        self.senders = int(senders) if np.ndim(senders) == 0 else _as_column(senders, m, "senders")
        if isinstance(kinds, str):
            kinds = KINDS.code(kinds)
        self.kinds = int(kinds) if np.ndim(kinds) == 0 else _as_column(kinds, m, "kinds")
        if payloads is None:
            payloads = np.zeros(m, dtype=np.int64)
        self.payloads = _as_column(payloads, m, "payloads")
        self.payloads2 = (
            None if payloads2 is None else _as_column(payloads2, m, "payloads2")
        )

    # ------------------------------------------------------------------
    @classmethod
    def _raw(cls, senders, receivers, kinds, payloads, payloads2=None) -> "MessageBatch":
        """Unvalidated constructor for engine/protocol hot paths.

        Columns are stored exactly as given (arrays may be views into
        round buffers; scalars stay scalars) — callers own the invariants
        the public constructor would otherwise check.
        """
        batch = object.__new__(cls)
        batch.senders = senders
        batch.receivers = receivers
        batch.kinds = kinds
        batch.payloads = payloads
        batch.payloads2 = payloads2
        return batch

    def __len__(self) -> int:
        return self.receivers.shape[0]

    def senders_array(self) -> np.ndarray:
        if type(self.senders) is not np.ndarray:
            return np.full(len(self), int(self.senders), dtype=np.int64)
        return self.senders

    def kinds_array(self) -> np.ndarray:
        if type(self.kinds) is not np.ndarray:
            return np.full(len(self), int(self.kinds), dtype=np.int64)
        return self.kinds

    # ------------------------------------------------------------------
    def payloads_of_kind(self, kind: int) -> np.ndarray:
        """Primary payload column of the messages of kind ``kind``.

        The cheap single-lane filter used by protocol hot paths (no
        sub-batch object, no sender/secondary-lane indexing).
        """
        kinds = self.kinds
        if type(kinds) is np.ndarray:
            return self.payloads[kinds == kind]
        return self.payloads if kinds == kind else _NO_COLUMN

    def of_kind(self, kind: int) -> "MessageBatch":
        """Sub-batch of the messages of kind ``kind`` (columns as views)."""
        kinds = self.kinds
        if type(kinds) is not np.ndarray:
            return self if kinds == kind else _EMPTY
        mask = kinds == kind
        senders = self.senders
        return MessageBatch._raw(
            senders[mask] if type(senders) is np.ndarray else senders,
            self.receivers[mask],
            kind,
            self.payloads[mask],
            self.payloads2[mask] if self.payloads2 is not None else None,
        )

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "MessageBatch":
        """The shared empty batch (treat as immutable)."""
        return _EMPTY

    @classmethod
    def concat(cls, batches: list["MessageBatch"]) -> "MessageBatch":
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        if any(b.payloads2 is not None for b in batches):
            # Lane-less batches zero-fill the secondary lane — the same
            # convention ``from_messages`` applies to mixed inboxes.
            payloads2 = np.concatenate(
                [
                    b.payloads2
                    if b.payloads2 is not None
                    else np.zeros(len(b), dtype=np.int64)
                    for b in batches
                ]
            )
        else:
            payloads2 = None
        return cls(
            np.concatenate([b.senders_array() for b in batches]),
            np.concatenate([b.receivers for b in batches]),
            np.concatenate([b.kinds_array() for b in batches]),
            np.concatenate([b.payloads for b in batches]),
            payloads2,
        )

    @classmethod
    def from_messages(cls, messages: list[Message]) -> "MessageBatch":
        """Convert object messages (integer or integer-pair payloads) to a
        batch.  A pair payload ``(a, b)`` lands in the two payload lanes;
        in a mixed batch the single-integer messages zero-fill lane two."""
        m = len(messages)
        senders = np.empty(m, dtype=np.int64)
        receivers = np.empty(m, dtype=np.int64)
        kinds = np.empty(m, dtype=np.int64)
        payloads = np.empty(m, dtype=np.int64)
        payloads2 = None
        for i, msg in enumerate(messages):
            if isinstance(msg.payload, (int, np.integer)):
                payloads[i] = msg.payload
            else:
                pair = pair_payload(msg.payload)
                if pair is None:
                    raise TypeError(
                        f"batch conversion requires integer or integer-pair "
                        f"payloads, got {type(msg.payload).__name__} in {msg!r}"
                    )
                if payloads2 is None:
                    payloads2 = np.zeros(m, dtype=np.int64)
                payloads[i], payloads2[i] = pair
            senders[i] = msg.sender
            receivers[i] = msg.receiver
            kinds[i] = KINDS.code(msg.kind)
        return cls(senders, receivers, kinds, payloads, payloads2)

    def to_messages(self) -> list[Message]:
        """Materialise per-message objects (interop with object nodes).

        A batch with a secondary payload lane yields pair payloads.
        """
        senders = self.senders_array()
        kinds = self.kinds_array()
        if self.payloads2 is not None:
            return [
                Message(
                    int(senders[i]),
                    int(self.receivers[i]),
                    KINDS.name(int(kinds[i])),
                    (int(self.payloads[i]), int(self.payloads2[i])),
                )
                for i in range(len(self))
            ]
        return [
            Message(int(senders[i]), int(self.receivers[i]), KINDS.name(int(kinds[i])), int(self.payloads[i]))
            for i in range(len(self))
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageBatch(len={len(self)})"


_NO_COLUMN = np.empty(0, dtype=np.int64)
_EMPTY = MessageBatch._raw(0, np.empty(0, dtype=np.int64), 0, np.empty(0, dtype=np.int64))
