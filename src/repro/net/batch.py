"""Array-backed message batches for the vectorized network engine.

A :class:`MessageBatch` is the flat-array counterpart of a list of
:class:`repro.net.message.Message` objects: four parallel ``int64`` columns
(sender, receiver, kind code, payload).  Protocol nodes that implement
:class:`repro.net.network.BatchProtocolNode` exchange batches instead of
per-message objects, which lets the vectorized engine move a whole round of
traffic through numpy without ever materialising Python objects.

Design notes
------------
- **Kinds are interned.**  Message kinds are short strings ("token",
  "accept", …); the module-level :data:`KINDS` table maps them to small
  integer codes so batches stay pure ``int64``.  The table is append-only
  and process-global — the handful of protocol kinds never collide.
- **Scalar broadcasting.**  ``senders`` and ``kinds`` may be stored as a
  scalar when uniform across the batch (the overwhelmingly common case: a
  node emits one batch of one kind per round).  This keeps per-node
  construction O(1) python work; ``senders_array()`` etc. materialise full
  columns on demand.
- **Payloads are integers.**  A batch payload is a single ``int64`` per
  message (a node identifier, matching the paper's ``O(log n)``-bit
  packets).  Object messages with non-integer payloads cannot be delivered
  to a batch node — the engine raises ``TypeError``.
"""

from __future__ import annotations

import numpy as np

from repro.net.message import Message

__all__ = ["KindTable", "KINDS", "MessageBatch"]


class KindTable:
    """Bidirectional interning of message-kind strings to int codes."""

    def __init__(self) -> None:
        self._codes: dict[str, int] = {}
        self._names: list[str] = []

    def code(self, kind: str) -> int:
        """Intern ``kind`` and return its stable integer code."""
        code = self._codes.get(kind)
        if code is None:
            code = len(self._names)
            self._codes[kind] = code
            self._names.append(kind)
        return code

    def name(self, code: int) -> str:
        return self._names[code]


#: Process-global kind registry shared by all networks and batches.
KINDS = KindTable()


def _as_column(value, length: int, what: str) -> np.ndarray:
    arr = np.asarray(value, dtype=np.int64)
    if arr.ndim == 0:
        return np.full(length, int(arr), dtype=np.int64)
    if arr.shape[0] != length:
        raise ValueError(f"{what} column has length {arr.shape[0]}, expected {length}")
    return arr


class MessageBatch:
    """A flat batch of messages: parallel int64 columns.

    ``receivers`` and ``payloads`` are always arrays; ``senders`` and
    ``kinds`` may be scalars meaning "uniform across the batch".
    """

    __slots__ = ("senders", "receivers", "kinds", "payloads")

    def __init__(self, senders, receivers, kinds, payloads=None) -> None:
        self.receivers = np.asarray(receivers, dtype=np.int64)
        if self.receivers.ndim != 1:
            raise ValueError("receivers must be a 1-d array")
        m = self.receivers.shape[0]
        # Scalars are normalised to python ints so hot-path code can test
        # ``type(x) is np.ndarray`` to distinguish the broadcast case.
        self.senders = int(senders) if np.ndim(senders) == 0 else _as_column(senders, m, "senders")
        if isinstance(kinds, str):
            kinds = KINDS.code(kinds)
        self.kinds = int(kinds) if np.ndim(kinds) == 0 else _as_column(kinds, m, "kinds")
        if payloads is None:
            payloads = np.zeros(m, dtype=np.int64)
        self.payloads = _as_column(payloads, m, "payloads")

    # ------------------------------------------------------------------
    @classmethod
    def _raw(cls, senders, receivers, kinds, payloads) -> "MessageBatch":
        """Unvalidated constructor for engine/protocol hot paths.

        Columns are stored exactly as given (arrays may be views into
        round buffers; scalars stay scalars) — callers own the invariants
        the public constructor would otherwise check.
        """
        batch = object.__new__(cls)
        batch.senders = senders
        batch.receivers = receivers
        batch.kinds = kinds
        batch.payloads = payloads
        return batch

    def __len__(self) -> int:
        return self.receivers.shape[0]

    def senders_array(self) -> np.ndarray:
        if type(self.senders) is not np.ndarray:
            return np.full(len(self), int(self.senders), dtype=np.int64)
        return self.senders

    def kinds_array(self) -> np.ndarray:
        if type(self.kinds) is not np.ndarray:
            return np.full(len(self), int(self.kinds), dtype=np.int64)
        return self.kinds

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "MessageBatch":
        """The shared empty batch (treat as immutable)."""
        return _EMPTY

    @classmethod
    def concat(cls, batches: list["MessageBatch"]) -> "MessageBatch":
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        return cls(
            np.concatenate([b.senders_array() for b in batches]),
            np.concatenate([b.receivers for b in batches]),
            np.concatenate([b.kinds_array() for b in batches]),
            np.concatenate([b.payloads for b in batches]),
        )

    @classmethod
    def from_messages(cls, messages: list[Message]) -> "MessageBatch":
        """Convert object messages (integer payloads only) to a batch."""
        m = len(messages)
        senders = np.empty(m, dtype=np.int64)
        receivers = np.empty(m, dtype=np.int64)
        kinds = np.empty(m, dtype=np.int64)
        payloads = np.empty(m, dtype=np.int64)
        for i, msg in enumerate(messages):
            if not isinstance(msg.payload, (int, np.integer)):
                raise TypeError(
                    f"batch conversion requires integer payloads, got "
                    f"{type(msg.payload).__name__} in {msg!r}"
                )
            senders[i] = msg.sender
            receivers[i] = msg.receiver
            kinds[i] = KINDS.code(msg.kind)
            payloads[i] = msg.payload
        return cls(senders, receivers, kinds, payloads)

    def to_messages(self) -> list[Message]:
        """Materialise per-message objects (interop with object nodes)."""
        senders = self.senders_array()
        kinds = self.kinds_array()
        return [
            Message(int(senders[i]), int(self.receivers[i]), KINDS.name(int(kinds[i])), int(self.payloads[i]))
            for i in range(len(self))
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageBatch(len={len(self)})"


_EMPTY = MessageBatch._raw(0, np.empty(0, dtype=np.int64), 0, np.empty(0, dtype=np.int64))
