"""Synchronous capacity-limited network simulator (NCC0 semantics).

§1.1 of the paper: *"if more messages than allowed are sent to a node, the
node receives an arbitrary subset (and the rest is simply dropped by the
network)"*.  The simulator enforces both directions of the
``O(log n)``-messages-per-round bound:

- a node attempting to **send** more than ``capacity.max_send`` messages
  has a uniformly random subset of that size delivered to the network (the
  rest never leave the node);
- a node addressed by more than ``capacity.max_receive`` messages
  **receives** a uniformly random subset of that size.

Every round records metrics (max sent/received per node, drop counts,
totals) so experiments can report the communication quantities Theorem 1.1
bounds: ``O(log n)`` messages per node per round and ``O(log² n)`` total
per node.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.net.message import Message

__all__ = ["CapacityPolicy", "NetworkMetrics", "ProtocolNode", "SyncNetwork"]


@dataclass(frozen=True)
class CapacityPolicy:
    """Per-node per-round message budgets.  ``None`` disables a bound
    (used by the unbounded-communication baselines)."""

    max_send: int | None
    max_receive: int | None

    @classmethod
    def ncc0(cls, n: int, delta: int) -> "CapacityPolicy":
        """The NCC0 budget used throughout the reproduction.

        The paper allows ``O(log n)`` messages per round; the concrete
        constant is tied to the algorithm's degree parameter
        ``Δ = Θ(log n)`` — a node may need to answer up to ``3Δ/8``
        tokens plus forward ``Δ/8`` of its own in one round, so the
        capacity is set to ``Δ`` (send and receive).
        """
        del n  # the budget is expressed through delta = Theta(log n)
        return cls(max_send=delta, max_receive=delta)

    @classmethod
    def unbounded(cls) -> "CapacityPolicy":
        return cls(max_send=None, max_receive=None)


@dataclass
class NetworkMetrics:
    """Aggregated communication statistics over a simulation."""

    rounds: int = 0
    total_messages: int = 0
    send_drops: int = 0
    receive_drops: int = 0
    max_sent_per_round: int = 0
    max_received_per_round: int = 0
    sent_per_node: defaultdict[int, int] = field(default_factory=lambda: defaultdict(int))
    received_per_node: defaultdict[int, int] = field(default_factory=lambda: defaultdict(int))

    @property
    def total_drops(self) -> int:
        return self.send_drops + self.receive_drops

    def max_total_sent_by_any_node(self) -> int:
        """Largest whole-run send count of a single node — the quantity
        Theorem 1.1 bounds by ``O(log² n)``."""
        return max(self.sent_per_node.values(), default=0)

    def max_total_received_by_any_node(self) -> int:
        return max(self.received_per_node.values(), default=0)


class ProtocolNode:
    """Base class for nodes driven by :class:`SyncNetwork`.

    Subclasses implement :meth:`on_round`: consume the inbox delivered at
    the beginning of the round and return the messages to send.  A message
    sent in round ``i`` is received at the beginning of round ``i + 1``
    (§1.1).  Messages a node addresses to itself are handed back locally
    next round without touching the network (a self-loop forward is not
    communication).
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_round(self, round_no: int, inbox: list[Message]) -> Iterable[Message]:
        """Process this round's inbox; return outgoing messages."""
        raise NotImplementedError

    def is_idle(self) -> bool:
        """True when the node has no pending work; the simulator stops
        once every node is idle and no messages are in flight."""
        return True


class SyncNetwork:
    """Round-driven simulator with capacity enforcement and metrics."""

    def __init__(
        self,
        nodes: dict[int, ProtocolNode],
        capacity: CapacityPolicy,
        rng: np.random.Generator,
    ) -> None:
        self.nodes = nodes
        self.capacity = capacity
        self.rng = rng
        self.metrics = NetworkMetrics()
        self.round_no = 0
        self._pending: dict[int, list[Message]] = {nid: [] for nid in nodes}

    # ------------------------------------------------------------------
    def run_round(self) -> None:
        """Execute one synchronous round for every node."""
        outgoing: dict[int, list[Message]] = {}
        for nid, node in self.nodes.items():
            inbox = self._pending[nid]
            self._pending[nid] = []
            produced = list(node.on_round(self.round_no, inbox) or [])
            for msg in produced:
                if msg.sender != nid:
                    raise ValueError(
                        f"node {nid} attempted to forge a message from {msg.sender}"
                    )
            outgoing[nid] = produced

        self._deliver(outgoing)
        self.round_no += 1
        self.metrics.rounds = self.round_no

    def _deliver(self, outgoing: dict[int, list[Message]]) -> None:
        cap = self.capacity
        inboxes: dict[int, list[Message]] = defaultdict(list)
        max_sent = 0
        for nid, msgs in outgoing.items():
            local = [m for m in msgs if m.receiver == nid]
            remote = [m for m in msgs if m.receiver != nid]
            # Self-addressed messages bypass the network (no capacity use).
            inboxes[nid].extend(local)
            if cap.max_send is not None and len(remote) > cap.max_send:
                keep = self.rng.choice(len(remote), size=cap.max_send, replace=False)
                self.metrics.send_drops += len(remote) - cap.max_send
                remote = [remote[i] for i in sorted(keep.tolist())]
            max_sent = max(max_sent, len(remote))
            self.metrics.sent_per_node[nid] += len(remote)
            self.metrics.total_messages += len(remote)
            for msg in remote:
                if msg.receiver not in self.nodes:
                    raise KeyError(f"message addressed to unknown node {msg.receiver}")
                inboxes[msg.receiver].append(msg)

        max_received = 0
        for nid, msgs in inboxes.items():
            remote = [m for m in msgs if m.sender != nid]
            local = [m for m in msgs if m.sender == nid]
            if cap.max_receive is not None and len(remote) > cap.max_receive:
                keep = self.rng.choice(len(remote), size=cap.max_receive, replace=False)
                self.metrics.receive_drops += len(remote) - cap.max_receive
                remote = [remote[i] for i in sorted(keep.tolist())]
            max_received = max(max_received, len(remote))
            self.metrics.received_per_node[nid] += len(remote)
            self._pending[nid].extend(local + remote)

        self.metrics.max_sent_per_round = max(self.metrics.max_sent_per_round, max_sent)
        self.metrics.max_received_per_round = max(
            self.metrics.max_received_per_round, max_received
        )

    # ------------------------------------------------------------------
    def run(
        self,
        max_rounds: int,
        stop_when: Callable[[], bool] | None = None,
    ) -> NetworkMetrics:
        """Run until every node is idle with no messages in flight, a
        custom predicate fires, or ``max_rounds`` elapses."""
        for _ in range(max_rounds):
            self.run_round()
            if stop_when is not None and stop_when():
                break
            in_flight = any(self._pending[nid] for nid in self.nodes)
            if not in_flight and all(node.is_idle() for node in self.nodes.values()):
                break
        return self.metrics
