"""Synchronous capacity-limited network simulator (NCC0 semantics).

§1.1 of the paper: *"if more messages than allowed are sent to a node, the
node receives an arbitrary subset (and the rest is simply dropped by the
network)"*.  The simulator enforces both directions of the
``O(log n)``-messages-per-round bound:

- a node attempting to **send** more than ``capacity.max_send`` messages
  has a uniformly random subset of that size delivered to the network (the
  rest never leave the node);
- a node addressed by more than ``capacity.max_receive`` messages
  **receives** a uniformly random subset of that size.

Every round records metrics (max sent/received per node, drop counts,
totals) so experiments can report the communication quantities Theorem 1.1
bounds: ``O(log n)`` messages per node per round and ``O(log² n)`` total
per node.

Two delivery engines
--------------------
``SyncNetwork(engine=...)`` selects how a round's traffic moves:

- ``"vectorized"`` (default) packs the round into flat sender/receiver
  index buffers, truncates over-capacity groups with one permutation draw
  (:func:`repro.net.vectorops.segmented_keep_indices`), and accumulates
  per-node counters with ``np.bincount``;
- ``"legacy"`` walks per-message Python loops — slower, but written
  plainly enough to serve as the differential-testing oracle.

Both engines follow one **canonical RNG discipline** (documented in
``docs/engine.md``): traffic is enumerated in node-insertion order, a
truncation permutation is drawn only when some group actually exceeds its
cap, and self-addressed messages bypass the network entirely.  Under the
same seed the two engines therefore deliver *identical* inboxes and
metrics, which ``tests/net/test_engine_equivalence.py`` enforces.

Nodes come in two flavours: :class:`ProtocolNode` (per-message objects)
and :class:`BatchProtocolNode` (array batches, see
:mod:`repro.net.batch`).  Either kind runs on either engine; batch nodes
on the vectorized engine never materialise Python message objects, which
is what makes large-``n`` runs practical.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro import sanitize as _sanitize
from repro.net.batch import KINDS, MessageBatch, pair_payload
from repro.net.message import Message
from repro.net.soa import SoAInbox, SoAProtocolClass
from repro.net.vectorops import group_argsort, needs_truncation, segmented_keep_indices

#: Valid values for ``SyncNetwork(engine=...)`` — authoritative in
#: :mod:`repro.runtime.context`, re-exported here for compatibility.
from repro.runtime import ENGINES, RunContext

__all__ = [
    "CapacityPolicy",
    "NetworkMetrics",
    "NodeCounts",
    "RoundMetricsView",
    "ProtocolNode",
    "BatchProtocolNode",
    "SoAProtocolClass",
    "SoAInbox",
    "SyncNetwork",
    "ENGINES",
]


def _fault_keep_indices(keep, m_total: int) -> np.ndarray:
    """Normalise a fault hook's return value to ascending keep-indices.

    One contract for both delivery engines: a hook may return either a
    **boolean keep-mask** over the round's remote messages (length must
    equal the message count) or ascending integer **keep-indices** (the
    shape :func:`repro.net.vectorops.segmented_keep_indices` produces, so
    truncation-style hooks compose without a mask detour).  Anything else
    — wrong mask length, out-of-range or non-ascending indices, a float
    array — raises instead of silently corrupting the round: an integer
    array fed to ``np.flatnonzero`` (the old mask-only decode) would have
    been misread as a mask, dropping different messages *and* miscounting
    ``metrics.fault_drops``.
    """
    keep = np.asarray(keep)
    if keep.ndim != 1:
        raise ValueError(
            f"fault hook must return a 1-d keep-mask or keep-indices, "
            f"got shape {keep.shape}"
        )
    if keep.dtype == np.bool_:
        if keep.shape[0] != m_total:
            raise ValueError(
                f"fault hook keep-mask has length {keep.shape[0]}, "
                f"expected the round's {m_total} remote messages"
            )
        return np.flatnonzero(keep)
    if not np.issubdtype(keep.dtype, np.integer):
        raise TypeError(
            "fault hook must return a boolean keep-mask or integer "
            f"keep-indices, got dtype {keep.dtype}"
        )
    if keep.shape[0]:
        if int(keep[0]) < 0 or int(keep[-1]) >= m_total:
            raise ValueError(
                f"fault hook keep-indices out of range for {m_total} messages"
            )
        if keep.shape[0] > 1 and bool((keep[1:] <= keep[:-1]).any()):
            raise ValueError(
                "fault hook keep-indices must be strictly ascending "
                "(canonical message order)"
            )
    return keep


class _RoundLayout:
    """Cross-round cache of the delivery tail's receiver-sorted layout.

    Steady-state protocols (flooding over a fixed adjacency — the SoA
    rooting workload) re-emit the *same* sender/receiver column objects
    round after round.  For such rounds the entire grouping layout is
    provably unchanged, so the tail reuses it wholesale: the sort
    permutation, the sorted key columns, the send/receive bincounts and
    maxima, the receiver segment offsets, the no-self-addressed-traffic
    flag, and (when sharded) the worker pool's cached shard
    permutations.  Only the payload lanes are re-gathered.

    An entry is keyed by the column *object* but trusted only after a
    value comparison against a defensive copy taken at store time — see
    the alias-write guard in ``_deliver_flat``.  Entries are stored only
    for pristine rounds (no local split, no truncation, no id mapping),
    i.e. exactly when the keyed objects are the protocol-emitted arrays
    a later round could re-emit.
    """

    __slots__ = (
        "rcv",
        "rcv_copy",
        "order",
        "rcv_s",
        "recv_counts",
        "recv_max",
        "seg_starts",
        "seg_nodes",
        "shard_gen",
        "snd",
        "snd_copy",
        "snd_s",
        "sent_counts",
        "sent_max",
        "no_local",
    )

    def __init__(self) -> None:
        self.clear_rcv()
        self.clear_snd()

    def clear_rcv(self) -> None:
        self.rcv = self.rcv_copy = None
        self.order = None
        self.rcv_s = None
        self.recv_counts = None
        self.recv_max = 0
        self.seg_starts = self.seg_nodes = None
        self.shard_gen = None
        self.no_local = False

    def clear_snd(self) -> None:
        self.snd = self.snd_copy = None
        self.snd_s = None
        self.sent_counts = None
        self.sent_max = 0
        self.no_local = False


@dataclass(frozen=True)
class CapacityPolicy:
    """Per-node per-round message budgets.  ``None`` disables a bound
    (used by the unbounded-communication baselines)."""

    max_send: int | None
    max_receive: int | None

    @classmethod
    def ncc0(cls, n: int, delta: int) -> "CapacityPolicy":
        """The NCC0 budget used throughout the reproduction.

        The paper allows ``O(log n)`` messages per round; the concrete
        constant is tied to the algorithm's degree parameter
        ``Δ = Θ(log n)`` — a node may need to answer up to ``3Δ/8``
        tokens plus forward ``Δ/8`` of its own in one round, so the
        capacity is set to ``Δ`` (send and receive).
        """
        del n  # the budget is expressed through delta = Theta(log n)
        return cls(max_send=delta, max_receive=delta)

    @classmethod
    def unbounded(cls) -> "CapacityPolicy":
        return cls(max_send=None, max_receive=None)


class NodeCounts:
    """Per-node message counters with lazy columnar accumulation.

    Behaves like the ``defaultdict(int)`` it replaces (missing keys read
    as 0 without inserting), but can additionally absorb whole per-node
    count *columns* in O(1) Python work (:meth:`add_column`) — the
    vectorized engines hand over their int64 accumulators instead of
    looping ``n`` dict writes.  The column is folded into the dict view
    only when some consumer actually reads per-node values, so runs that
    only look at scalar aggregates (every scaling bench) never pay the
    flush at all.
    """

    __slots__ = ("_dict", "_ids", "_counts")

    def __init__(self) -> None:
        self._dict: dict[int, int] = {}
        self._ids: np.ndarray | None = None
        self._counts: np.ndarray | None = None

    # -- columnar side -------------------------------------------------
    def add_column(self, ids: np.ndarray, counts: np.ndarray) -> None:
        """Accumulate a per-node count column (``counts`` aligned to
        ``ids``).  Repeated calls with the *same* ``ids`` object — the
        steady state of one network handing over its accumulators — are a
        single vectorized add."""
        if self._counts is None:
            self._ids = ids
            self._counts = counts.copy()
        elif self._ids is ids:
            self._counts += counts
        else:  # pragma: no cover - networks never swap id arrays mid-run
            self._flush()
            self._ids = ids
            self._counts = counts.copy()

    def _flush(self) -> None:
        if self._counts is None:
            return
        ids, counts = self._ids, self._counts
        self._ids = self._counts = None
        d = self._dict
        nz = np.flatnonzero(counts)
        for k, v in zip(ids[nz].tolist(), counts[nz].tolist()):
            d[k] = d.get(k, 0) + v

    # -- mapping side (defaultdict(int)-compatible) --------------------
    def __getitem__(self, key: int) -> int:
        self._flush()
        return self._dict.get(key, 0)

    def __setitem__(self, key: int, value: int) -> None:
        self._flush()
        self._dict[key] = value

    def get(self, key: int, default: int = 0) -> int:
        self._flush()
        return self._dict.get(key, default)

    def __contains__(self, key) -> bool:
        self._flush()
        return key in self._dict

    def __iter__(self):
        self._flush()
        return iter(self._dict)

    def __len__(self) -> int:
        self._flush()
        return len(self._dict)

    def keys(self):
        self._flush()
        return self._dict.keys()

    def values(self):
        self._flush()
        return self._dict.values()

    def items(self):
        self._flush()
        return self._dict.items()

    def __eq__(self, other) -> bool:
        self._flush()
        if isinstance(other, NodeCounts):
            other._flush()
            return self._dict == other._dict
        return self._dict == other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        self._flush()
        return f"NodeCounts({self._dict!r})"


class RoundMetricsView:
    """Lazy per-round view over a traced run's ``net`` round table.

    :class:`NetworkMetrics` totals are cumulative — "how many fault
    drops happened *in round 7*" used to be unanswerable without hand
    instrumentation.  On a traced run the network records per-round
    deltas into a columnar :class:`repro.obs.RoundTrace`, and this view
    (the :class:`NodeCounts` idiom: a thin wrapper, columns cut lazily)
    exposes them via ``metrics.per_round``.  Untraced runs materialise
    nothing: ``metrics.per_round`` stays ``None``.

    Every accessor returns a numpy int64/float64 view of length
    ``len(view)`` = rounds recorded so far; index ``i`` is the delta for
    round ``rounds()[i]``.
    """

    __slots__ = ("_trace",)

    def __init__(self, trace) -> None:
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace)

    def column(self, name: str) -> np.ndarray:
        return self._trace.column(name)

    def rounds(self) -> np.ndarray:
        return self.column("round")

    def inbox_sizes(self) -> np.ndarray:
        """Messages consumed from the staged inbox at each round start."""
        return self.column("inbox")

    def messages_sent(self) -> np.ndarray:
        return self.column("sent")

    def delivered(self) -> np.ndarray:
        """Messages staged for next-round delivery (local ones included)."""
        return self.column("delivered")

    def fault_drops(self) -> np.ndarray:
        return self.column("fault_drops")

    def send_drops(self) -> np.ndarray:
        return self.column("send_drops")

    def receive_drops(self) -> np.ndarray:
        return self.column("receive_drops")

    def layout_hits(self) -> np.ndarray:
        """1 where the round reused the cached receiver-sorted layout."""
        return self.column("layout_hit")

    def seconds(self) -> np.ndarray:
        return self.column("seconds")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoundMetricsView(rounds={len(self)})"


@dataclass
class NetworkMetrics:
    """Aggregated communication statistics over a simulation.

    ``stopped_by_predicate`` / ``in_flight_at_stop`` record the early-stop
    bookkeeping of :meth:`SyncNetwork.run`: whether a ``stop_when``
    predicate ended the run, and how many messages were still in flight at
    that moment (0 when the predicate happened to fire on the round the
    network went quiescent anyway).

    ``fault_drops`` counts messages removed by an installed adversarial
    fault hook (see :class:`SyncNetwork`); it is deliberately *not* part
    of ``total_drops``, which keeps its §1.1 capacity-only meaning.
    """

    rounds: int = 0
    total_messages: int = 0
    send_drops: int = 0
    receive_drops: int = 0
    fault_drops: int = 0
    max_sent_per_round: int = 0
    max_received_per_round: int = 0
    stopped_by_predicate: bool = False
    in_flight_at_stop: int = 0
    sent_per_node: NodeCounts = field(default_factory=NodeCounts)
    received_per_node: NodeCounts = field(default_factory=NodeCounts)
    # Per-round deltas, populated only on traced runs (None otherwise —
    # no materialisation on the untraced path).  Excluded from equality
    # and from ``as_dict()``: the cross-tier equality surface is the
    # simulated totals, never the telemetry.
    per_round: "RoundMetricsView | None" = field(
        default=None, compare=False, repr=False
    )

    @property
    def total_drops(self) -> int:
        return self.send_drops + self.receive_drops

    def max_total_sent_by_any_node(self) -> int:
        """Largest whole-run send count of a single node — the quantity
        Theorem 1.1 bounds by ``O(log² n)``."""
        return max(self.sent_per_node.values(), default=0)

    def max_total_received_by_any_node(self) -> int:
        return max(self.received_per_node.values(), default=0)

    def as_dict(self) -> dict:
        """Snapshot of every aggregate (per-node dicts nonzero-filtered);
        the equality the engine-equivalence tests assert."""
        return {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "send_drops": self.send_drops,
            "receive_drops": self.receive_drops,
            "fault_drops": self.fault_drops,
            "max_sent_per_round": self.max_sent_per_round,
            "max_received_per_round": self.max_received_per_round,
            "stopped_by_predicate": self.stopped_by_predicate,
            "in_flight_at_stop": self.in_flight_at_stop,
            "sent_per_node": {k: v for k, v in self.sent_per_node.items() if v},
            "received_per_node": {k: v for k, v in self.received_per_node.items() if v},
        }


class ProtocolNode:
    """Base class for nodes driven by :class:`SyncNetwork`.

    Subclasses implement :meth:`on_round`: consume the inbox delivered at
    the beginning of the round and return the messages to send.  A message
    sent in round ``i`` is received at the beginning of round ``i + 1``
    (§1.1).  Messages a node addresses to itself are handed back locally
    next round without touching the network (a self-loop forward is not
    communication).
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_round(self, round_no: int, inbox: list[Message]) -> Iterable[Message]:
        """Process this round's inbox; return outgoing messages."""
        raise NotImplementedError

    def is_idle(self) -> bool:
        """True when the node has no pending work; the simulator stops
        once every node is idle and no messages are in flight."""
        return True


class BatchProtocolNode(ProtocolNode):
    """A node that exchanges :class:`~repro.net.batch.MessageBatch` arrays.

    The engines deliver a ``MessageBatch`` inbox and expect a
    ``MessageBatch`` (or ``None``) back from :meth:`on_round_batch`; the
    implicit sender of every emitted message is the node itself (scalar
    ``senders`` recommended — forging another sender raises, exactly as
    for object nodes).  Payloads are single ``int64`` values, or
    ``(int64, int64)`` pairs via the optional ``payloads2`` lane — either
    way matching the paper's ``O(log n)``-bit packets.
    """

    def on_round_batch(self, round_no: int, inbox: MessageBatch) -> MessageBatch | None:
        raise NotImplementedError

    def on_round(self, round_no: int, inbox: list[Message]) -> Iterable[Message]:
        # Object-world bridge (engines dispatch on the class and never use
        # it; handy for driving a batch node directly in tests).
        out = self.on_round_batch(round_no, MessageBatch.from_messages(inbox))
        return [] if out is None else out.to_messages()


class SyncNetwork:
    """Round-driven simulator with capacity enforcement and metrics.

    ``fault_hook`` installs an oblivious message adversary in the delivery
    tail: a callable ``hook(round_no, senders, receivers) -> keep`` over
    the round's *remote* traffic in canonical order (real node ids,
    parallel columns), returning ``None`` for "no faults this round", a
    boolean keep-mask, or ascending integer keep-indices (both forms are
    validated and decoded identically by both engines — see
    ``_fault_keep_indices``).  The hook runs after the local split
    (self-addressed messages bypass the network and are immune) and
    before send-capacity truncation, and must not consume the delivery
    RNG — which is what keeps a faulted execution identical across
    engines and node tiers under a shared seed (see
    :mod:`repro.scenarios.spec`).
    """

    def __init__(
        self,
        nodes: dict[int, ProtocolNode] | SoAProtocolClass,
        capacity: CapacityPolicy,
        rng: np.random.Generator,
        engine: str | None = None,
        fault_hook: Callable[[int, np.ndarray, np.ndarray], np.ndarray | None] | None = None,
        workers: int | None = None,
        tracer=None,
        *,
        ctx: RunContext | None = None,
    ) -> None:
        # One execution config (contract C8): either the caller hands a
        # resolved RunContext (kwargs still win, per the precedence
        # chain), or the historical kwargs build one internally.  The
        # engine never env-sniffs REPRO_ENGINE on the shim path — the
        # kwarg default is pinned explicitly, preserving the pre-context
        # semantics where only benches honoured that variable.
        if ctx is None:
            ctx = RunContext.resolve(
                engine=engine or "vectorized",
                workers=workers,
                tracer=tracer,
                fault_hook=fault_hook,
            )
        else:
            ctx = ctx.with_overrides(
                engine=engine, workers=workers, tracer=tracer, fault_hook=fault_hook
            )
        engine = ctx.engine
        if engine == "soa":
            # "soa" names a node representation (tier), not a delivery
            # engine; SoA populations always ride the vectorized tail.
            engine = "vectorized"
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.ctx = ctx
        self.capacity = capacity
        self.rng = rng
        self.engine = engine
        self.fault_hook = ctx.fault_hook
        self.round_no = 0
        # ``ctx.workers`` shards the SoA delivery tail's receiver sort
        # across a fork-inherited shared-memory pool (repro.net.shard) —
        # results are bit-for-bit identical at every count.  ``None``
        # resolved from REPRO_WORKERS (default 1); non-SoA populations
        # ignore it.
        self._workers = ctx.workers
        self._shards = None
        self._metrics = NetworkMetrics()
        if isinstance(nodes, SoAProtocolClass):
            # SoA tier: one object holds every node's state; delivery runs
            # through the same vectorized flat tail as batch traffic.
            if engine != "vectorized":
                raise ValueError(
                    "SoA protocol classes require the vectorized engine"
                )
            self._soa = nodes
            self._soa_inbox = SoAInbox.empty()
            self.nodes = {}
            n = nodes.n
            self._n = n
            self._ids = np.arange(n, dtype=np.int64)
            self._index = {}
            self._contiguous = True
            # Per-node bookkeeping stays empty on the SoA path — run_round
            # short-circuits into _deliver_soa and never consults it.
            self._is_batch = {}
            self._any_batch = False
            self._pending: dict[int, list[Message] | MessageBatch] = {}
        else:
            self._soa = None
            self.nodes = nodes
            n = len(nodes)
            self._n = n
            self._ids = (
                np.fromiter(nodes.keys(), dtype=np.int64, count=n)
                if n
                else np.empty(0, dtype=np.int64)
            )
            self._index = {nid: i for i, nid in enumerate(nodes)}
            self._contiguous = bool(n) and bool((self._ids == np.arange(n)).all())
            if not self._contiguous:
                self._sort_order = np.argsort(self._ids, kind="stable")
                self._sorted_ids = self._ids[self._sort_order]
            self._is_batch = {
                nid: isinstance(node, BatchProtocolNode) for nid, node in nodes.items()
            }
            self._any_batch = any(self._is_batch.values())
            self._pending = {
                nid: (MessageBatch.empty() if self._is_batch[nid] else [])
                for nid in nodes
            }
        # Vectorized engines accumulate per-node totals in arrays and flush
        # them into the metrics dicts lazily (see the ``metrics`` property).
        self._sent_counts = np.zeros(n, dtype=np.int64)
        self._recv_counts = np.zeros(n, dtype=np.int64)
        self._counts_dirty = False
        self._pending_count = 0
        self._layout = _RoundLayout()
        # REPRO_SOA_LAYOUT_REUSE=0 restores the pre-shard sort-only cache
        # (identity-trusting, re-gathers every column every round) — the
        # control arm of bench_s3's re-sort-elimination measurement.
        self._reuse_layouts = ctx.layout_reuse
        # ---- round-trace telemetry (C7: observes, never steers) -------
        # Resolution order: explicit kwarg > context > ambient
        # capture()/activate() tracer > REPRO_TRACE env singleton.  A
        # context resolved *outside* a capture() scope carries
        # ``tracer=None``, so the ambient session is still consulted at
        # construction time — the pre-context semantics.  Untraced runs
        # keep every probe at a single ``is None`` check and materialise
        # nothing.
        tr = ctx.tracer
        if tr is None:
            from repro.obs import resolve_tracer

            tr = resolve_tracer(None)
        self._tracer = tr
        self._round_trace = None
        self._shard_trace = None
        self._shard_ops_seen = 0
        self._layout_hit = False
        if tr is not None:
            tier = (
                "soa"
                if self._soa is not None
                else ("batch" if self._any_batch else "object")
            )
            self._trace_clock = tr.clock
            self._round_trace = tr.table(
                "net",
                (
                    "round",
                    "inbox",
                    "sent",
                    "delivered",
                    "fault_drops",
                    "send_drops",
                    "receive_drops",
                    "layout_hit",
                ),
                meta={
                    "tier": tier,
                    "engine": engine,
                    "n": n,
                    "workers": self._workers,
                },
            )
            self._metrics.per_round = RoundMetricsView(self._round_trace)

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> NetworkMetrics:
        """The run's metrics; hands the vectorized per-node counters to
        the lazy ``sent_per_node`` / ``received_per_node`` column views
        (no per-node Python work — the dicts materialise only if read)."""
        if self._counts_dirty:
            self._metrics.sent_per_node.add_column(self._ids, self._sent_counts)
            self._metrics.received_per_node.add_column(self._ids, self._recv_counts)
            self._sent_counts[:] = 0
            self._recv_counts[:] = 0
            self._counts_dirty = False
        return self._metrics

    def pending_messages(self) -> int:
        """Messages in flight (delivered next round), local ones included."""
        return self._pending_count

    # ------------------------------------------------------------------
    # SoA inbox staging (synchroniser interposition point).
    # ------------------------------------------------------------------
    def take_staged_soa_inbox(self) -> SoAInbox:
        """Remove and return the staged next-round :class:`SoAInbox`.

        The interposition point for delay synchronisers
        (:mod:`repro.scenarios.soa_sync`): the columns a round's delivery
        staged can be pulled out, held in a delay queue, and re-staged via
        :meth:`stage_soa_inbox` before the next :meth:`run_round`.  SoA
        networks only.
        """
        if self._soa is None:
            raise ValueError("inbox staging is only available on SoA networks")
        inbox = self._soa_inbox
        self._soa_inbox = SoAInbox.empty()
        self._pending_count = 0
        return inbox

    def stage_soa_inbox(self, inbox: SoAInbox) -> None:
        """Install ``inbox`` as the next round's delivery (SoA networks)."""
        if self._soa is None:
            raise ValueError("inbox staging is only available on SoA networks")
        self._soa_inbox = inbox
        self._pending_count = len(inbox)

    # ------------------------------------------------------------------
    def run_round(self) -> None:
        """Execute one synchronous round for every node.

        Nodes producing nothing are skipped by delivery entirely; a node's
        outgoing traffic is validated (no forged senders) before any of it
        enters the network.

        On a traced run (see :mod:`repro.obs`) the round is additionally
        recorded into the ``net`` round table as metric *deltas* around
        the unchanged inner round — tracing reads counters after the
        fact and never touches RNG streams or delivery order, so a
        traced execution is bit-for-bit the untraced one.
        """
        rt = self._round_trace
        if rt is None:
            self._run_round_inner()
            return
        clock = self._trace_clock
        start = clock()
        m = self._metrics
        inbox0 = self._pending_count
        msgs0 = m.total_messages
        fault0 = m.fault_drops
        send0 = m.send_drops
        recv0 = m.receive_drops
        self._layout_hit = False
        self._run_round_inner()
        rt.append(
            self.round_no - 1,
            inbox0,
            m.total_messages - msgs0,
            self._pending_count,
            m.fault_drops - fault0,
            m.send_drops - send0,
            m.receive_drops - recv0,
            1 if self._layout_hit else 0,
            clock() - start,
        )
        if self._shards is not None:
            self._record_shard_rounds()

    def _record_shard_rounds(self) -> None:
        """Append the pool's per-worker stats for ops since last seen.

        The pool keeps per-worker message counts and wall seconds of its
        most recent op (sort or gather); at most one op happens per
        round, so comparing ``op_seq`` against a high-water mark turns
        those into per-round shard rows without touching the workers.
        """
        pool = self._shards
        if pool is None or pool.op_seq == self._shard_ops_seen:
            return
        self._shard_ops_seen = pool.op_seq
        st = self._shard_trace
        if st is None:
            st = self._tracer.table(
                "shard",
                ("round", "shard", "messages", "op"),
                meta={"n": self._n, "workers": pool.workers},
            )
            self._shard_trace = st
        op = 0 if pool.last_op == "sort" else 1
        round_no = self.round_no - 1
        counts = pool.last_counts
        seconds = pool.last_seconds
        for w in range(pool.workers):
            st.append(round_no, w, int(counts[w]), op, float(seconds[w]))

    def _run_round_inner(self) -> None:
        if self._soa is not None:
            inbox = self._soa_inbox
            self._soa_inbox = SoAInbox.empty()
            produced = self._soa.on_round_soa(self.round_no, inbox)
            self._deliver_soa(produced)
            self.round_no += 1
            self._metrics.rounds = self.round_no
            return

        outputs: list[tuple[int, list[Message] | MessageBatch]] = []
        pending = self._pending
        is_batch = self._is_batch
        empty = MessageBatch.empty()
        round_no = self.round_no
        for nid, node in self.nodes.items():
            inbox = pending[nid]
            if is_batch[nid]:
                pending[nid] = empty
                produced = node.on_round_batch(round_no, inbox)
                if produced is not None and produced.receivers.shape[0]:
                    senders = produced.senders
                    bad = (
                        bool((senders != nid).any())
                        if type(senders) is np.ndarray
                        else senders != nid
                    )
                    if bad:
                        raise ValueError(
                            f"node {nid} attempted to forge a message from another sender"
                        )
                    outputs.append((nid, produced))
            else:
                pending[nid] = []
                produced = list(node.on_round(round_no, inbox) or [])
                if produced:
                    for msg in produced:
                        if msg.sender != nid:
                            raise ValueError(
                                f"node {nid} attempted to forge a message from {msg.sender}"
                            )
                    outputs.append((nid, produced))

        if self.engine == "legacy":
            self._deliver_legacy(outputs)
        else:
            self._deliver_vectorized(outputs)
        self.round_no += 1
        self._metrics.rounds = self.round_no

    # ------------------------------------------------------------------
    def _run_fault_hook(self, snd_ids: np.ndarray, rcv_ids: np.ndarray):
        """Invoke the adversary hook; under ``REPRO_SANITIZE=1`` verify it
        behaved obliviously.

        The hook contract (every tier, one seed, one fault stream) only
        holds if the hook neither draws from the delivery RNG — that
        would shift every subsequent truncation lottery — nor mutates the
        sender/receiver columns it is shown, which on the vectorized path
        are the live round columns.
        """
        if not _sanitize.ENABLED:
            return self.fault_hook(self.round_no, snd_ids, rcv_ids)
        state_before = _sanitize.rng_state(self.rng)
        snd_before = snd_ids.copy()
        rcv_before = rcv_ids.copy()
        keep = self.fault_hook(self.round_no, snd_ids, rcv_ids)
        if _sanitize.rng_state(self.rng) != state_before:
            raise _sanitize.SanitizeError(
                "sanitize: fault hook consumed the delivery RNG in round "
                f"{self.round_no}; hooks must pre-spawn their own stream "
                "(rng.spawn) or compile their schedule up front"
            )
        if not (
            np.array_equal(snd_ids, snd_before)
            and np.array_equal(rcv_ids, rcv_before)
        ):
            raise _sanitize.SanitizeError(
                "sanitize: fault hook mutated the sender/receiver columns "
                f"in round {self.round_no}; hooks observe traffic and "
                "return keep indices or a mask, they never edit lanes"
            )
        return keep

    # ------------------------------------------------------------------
    # Legacy engine: per-message loops, the differential-testing oracle.
    # ------------------------------------------------------------------
    def _deliver_legacy(self, outputs) -> None:
        cap = self.capacity
        metrics = self._metrics
        index = self._index
        ids = self._ids

        # Phase 1 — enumerate remote traffic in canonical order; local
        # (self-addressed) messages bypass the network entirely.
        flat: list[Message] = []
        flat_senders: list[int] = []
        local: dict[int, list[Message]] = {}
        for nid, produced in outputs:
            msgs = produced.to_messages() if isinstance(produced, MessageBatch) else produced
            for msg in msgs:
                if msg.receiver == nid:
                    local.setdefault(nid, []).append(msg)
                else:
                    flat.append(msg)
                    flat_senders.append(index[nid])

        # Phase 1.5 — adversarial faults (same hook point as the
        # vectorized tail: remote traffic in canonical order, before any
        # capacity truncation, no delivery-RNG consumption).
        if self.fault_hook is not None and flat:
            snd_ids = ids[np.asarray(flat_senders, dtype=np.int64)]
            rcv_ids = np.fromiter(
                (m.receiver for m in flat), dtype=np.int64, count=len(flat)
            )
            keep = self._run_fault_hook(snd_ids, rcv_ids)
            if keep is not None:
                kept = _fault_keep_indices(keep, len(flat))
                if kept.size != len(flat):
                    metrics.fault_drops += len(flat) - kept.size
                    flat = [flat[i] for i in kept.tolist()]
                    flat_senders = [flat_senders[i] for i in kept.tolist()]

        # Phase 2 — send-capacity truncation (shared RNG discipline: one
        # permutation, drawn only when some sender is over budget).
        if cap.max_send is not None and flat:
            counts: defaultdict[int, int] = defaultdict(int)
            for idx in flat_senders:
                counts[idx] += 1
            if max(counts.values()) > cap.max_send:
                keep = segmented_keep_indices(
                    np.asarray(flat_senders, dtype=np.int64), cap.max_send, self.rng
                )
                metrics.send_drops += len(flat) - keep.size
                flat = [flat[i] for i in keep.tolist()]
                flat_senders = [flat_senders[i] for i in keep.tolist()]

        # Phase 3 — sent metrics, per message (oracle style).
        max_sent_counts: defaultdict[int, int] = defaultdict(int)
        for idx in flat_senders:
            max_sent_counts[idx] += 1
        for idx, count in max_sent_counts.items():
            metrics.sent_per_node[int(ids[idx])] += count
        metrics.total_messages += len(flat)
        metrics.max_sent_per_round = max(
            metrics.max_sent_per_round, max(max_sent_counts.values(), default=0)
        )

        # Phase 4 — receiver validation + grouping (canonical order kept).
        flat_receivers: list[int] = []
        for msg in flat:
            j = index.get(msg.receiver)
            if j is None:
                raise KeyError(f"message addressed to unknown node {msg.receiver}")
            flat_receivers.append(j)

        # Phase 5 — receive-capacity truncation, same shared discipline.
        if cap.max_receive is not None and flat:
            counts = defaultdict(int)
            for idx in flat_receivers:
                counts[idx] += 1
            if max(counts.values()) > cap.max_receive:
                keep = segmented_keep_indices(
                    np.asarray(flat_receivers, dtype=np.int64), cap.max_receive, self.rng
                )
                metrics.receive_drops += len(flat) - keep.size
                flat = [flat[i] for i in keep.tolist()]
                flat_receivers = [flat_receivers[i] for i in keep.tolist()]

        # Phase 6 — receive metrics + inbox assembly (local first, then
        # survivors in canonical arrival order).
        groups: dict[int, list[Message]] = {}
        for msg, idx in zip(flat, flat_receivers):
            groups.setdefault(idx, []).append(msg)
        max_received = 0
        for idx, msgs in groups.items():
            metrics.received_per_node[int(ids[idx])] += len(msgs)
            max_received = max(max_received, len(msgs))
        metrics.max_received_per_round = max(metrics.max_received_per_round, max_received)

        for nid, msgs in local.items():
            self._stage_inbox(nid, msgs)
        for idx, msgs in groups.items():
            self._stage_inbox(int(ids[idx]), msgs)
        self._pending_count = len(flat) + sum(len(msgs) for msgs in local.values())

    def _stage_inbox(self, nid: int, msgs: list[Message]) -> None:
        if self._is_batch[nid]:
            existing = self._pending[nid]
            addition = MessageBatch.from_messages(msgs)
            self._pending[nid] = (
                addition if len(existing) == 0 else MessageBatch.concat([existing, addition])
            )
        else:
            self._pending[nid].extend(msgs)

    # ------------------------------------------------------------------
    # Vectorized engine: flat index buffers + segment truncation.
    # ------------------------------------------------------------------
    def _deliver_vectorized(self, outputs) -> None:
        """Array-path delivery (pack phase).

        The round's traffic is packed into flat parallel columns (sender
        index, receiver id, kind code, payload) in canonical order and
        handed to :meth:`_deliver_flat` — the shared tail that also
        serves the SoA tier, so every representation consumes the
        delivery RNG identically.
        """
        index = self._index
        build_codes = self._any_batch

        # ---- pack ------------------------------------------------------
        # The dominant case (pure batch traffic, one message kind per
        # round — exactly what the protocol schedule produces) skips the
        # kind column entirely: ``round_kind`` carries the single code.
        rcv_chunks: list[np.ndarray] = []
        chunk_sender: list[int] = []
        chunk_len: list[int] = []
        obj_chunks: list[list[Message] | None] = []
        kind_chunks: list = []  # array or scalar per chunk
        pay_chunks: list = []
        pay_ok_chunks: list = []  # True (all ok) or bool array
        pay2_chunks: list = []  # None (no lane) or int64 array per chunk
        has2_chunks: list = []  # False / True (whole chunk) or bool array
        any_objs = False
        any_pay_bad = False
        any_pay2 = False
        round_kind: int | None = None
        uniform_kinds = True

        for nid, produced in outputs:
            if type(produced) is list:
                k = len(produced)
                rcv_chunks.append(
                    np.fromiter((m.receiver for m in produced), dtype=np.int64, count=k)
                )
                chunk_sender.append(index[nid])
                chunk_len.append(k)
                obj_chunks.append(produced)
                any_objs = True
                uniform_kinds = False
                if build_codes:
                    kind_chunks.append(
                        np.fromiter(
                            (KINDS.code(m.kind) for m in produced), dtype=np.int64, count=k
                        )
                    )
                    pays = np.zeros(k, dtype=np.int64)
                    ok = np.ones(k, dtype=bool)
                    pays2 = None
                    has2 = None
                    for i, m in enumerate(produced):
                        if isinstance(m.payload, (int, np.integer)):
                            pays[i] = int(m.payload)
                        else:
                            pair = pair_payload(m.payload)
                            if pair is None:
                                ok[i] = False
                                any_pay_bad = True
                            else:
                                if pays2 is None:
                                    pays2 = np.zeros(k, dtype=np.int64)
                                    has2 = np.zeros(k, dtype=bool)
                                pays[i], pays2[i] = pair
                                has2[i] = True
                    pay_chunks.append(pays)
                    pay_ok_chunks.append(True if ok.all() else ok)
                    if pays2 is None:
                        pay2_chunks.append(None)
                        has2_chunks.append(False)
                    else:
                        any_pay2 = True
                        pay2_chunks.append(pays2)
                        has2_chunks.append(True if has2.all() else has2)
                else:
                    kind_chunks.append(0)
                    pay_chunks.append(None)
                    pay_ok_chunks.append(True)
                    pay2_chunks.append(None)
                    has2_chunks.append(False)
            else:
                kinds = produced.kinds
                if type(kinds) is np.ndarray:
                    uniform_kinds = False
                elif round_kind is None:
                    round_kind = kinds
                elif kinds != round_kind:
                    uniform_kinds = False
                rcv_chunks.append(produced.receivers)
                chunk_sender.append(index[nid])
                chunk_len.append(produced.receivers.shape[0])
                obj_chunks.append(None)
                kind_chunks.append(kinds)
                pay_chunks.append(produced.payloads)
                pay_ok_chunks.append(True)
                pay2_chunks.append(produced.payloads2)
                if produced.payloads2 is None:
                    has2_chunks.append(False)
                else:
                    any_pay2 = True
                    has2_chunks.append(True)

        if not rcv_chunks:
            self._pending_count = 0
            return
        uniform_kinds = uniform_kinds and round_kind is not None

        # ---- flatten ---------------------------------------------------
        rcv_all = rcv_chunks[0] if len(rcv_chunks) == 1 else np.concatenate(rcv_chunks)
        snd_all = np.repeat(
            np.asarray(chunk_sender, dtype=np.int64),
            np.asarray(chunk_len, dtype=np.int64),
        )
        m_total = rcv_all.shape[0]

        objs: list[Message | None] | None = None
        if any_objs:
            objs = []
            for length, rem in zip(chunk_len, obj_chunks):
                objs.extend(rem if rem is not None else [None] * length)

        kind_all = pay_all = pay_ok_all = None
        if uniform_kinds:
            # Pure-batch uniform round: payload column by concatenation,
            # no kind column at all.
            pay_all = (
                pay_chunks[0] if len(pay_chunks) == 1 else np.concatenate(pay_chunks)
            )
        elif build_codes:
            kind_all = np.empty(m_total, dtype=np.int64)
            pay_all = np.empty(m_total, dtype=np.int64)
            offset = 0
            for length, kinds, pays in zip(chunk_len, kind_chunks, pay_chunks):
                kind_all[offset : offset + length] = kinds
                if pays is not None:
                    pay_all[offset : offset + length] = pays
                offset += length
            if any_pay_bad:
                pay_ok_all = np.ones(m_total, dtype=bool)
                offset = 0
                for length, ok in zip(chunk_len, pay_ok_chunks):
                    if ok is not True:
                        pay_ok_all[offset : offset + length] = ok
                    offset += length

        # ---- secondary payload lane (pair payloads) --------------------
        # ``pay2_all`` zero-fills lane-less traffic; ``pay2_has_all`` is the
        # per-message presence mask, or None when the whole round carries
        # the lane (the common case: one pair-payload protocol per round).
        pay2_all = pay2_has_all = None
        if any_pay2:
            pay2_all = np.zeros(m_total, dtype=np.int64)
            offset = 0
            for length, pays2 in zip(chunk_len, pay2_chunks):
                if pays2 is not None:
                    pay2_all[offset : offset + length] = pays2
                offset += length
            if not all(h is True for h in has2_chunks):
                pay2_has_all = np.zeros(m_total, dtype=bool)
                offset = 0
                for length, has2 in zip(chunk_len, has2_chunks):
                    if has2 is True:
                        pay2_has_all[offset : offset + length] = True
                    elif has2 is not False:
                        pay2_has_all[offset : offset + length] = has2
                    offset += length

        self._deliver_flat(
            rcv_all,
            snd_all,
            kind_all,
            pay_all,
            pay_ok_all,
            pay2_all,
            pay2_has_all,
            objs,
            round_kind,
            uniform_kinds,
        )

    # ------------------------------------------------------------------
    # SoA engine entry: one batch carries the whole population's round.
    # ------------------------------------------------------------------
    def _deliver_soa(self, produced: MessageBatch | None) -> None:
        """Validate an SoA class's round batch and feed the shared tail.

        The class's emitted columns *are* the packed round: senders must
        already be in canonical order (ascending node index, per-sender
        emission order), which is what keeps truncation draws, metrics,
        and inbox sequences bit-for-bit equal to the per-node tiers.
        """
        if produced is None or produced.receivers.shape[0] == 0:
            self._pending_count = 0
            return
        rcv_all = produced.receivers
        m = rcv_all.shape[0]
        senders = produced.senders
        if type(senders) is not np.ndarray:
            snd_all = np.full(m, int(senders), dtype=np.int64)
        else:
            snd_all = senders
        if snd_all.shape[0] != m:
            raise ValueError("SoA batch senders column must match receivers")
        if _sanitize.ENABLED or not (
            self._reuse_layouts and snd_all is self._layout.snd
        ):
            # Identity-stable sender columns were validated when cached;
            # the alias-write guard in _deliver_flat re-validates if the
            # values turn out to have changed underneath the identity.
            # Sanitize mode re-checks every round regardless.
            self._require_ascending_senders(snd_all)
        kinds = produced.kinds
        if type(kinds) is np.ndarray:
            round_kind, kind_all, uniform_kinds = None, kinds, False
        else:
            round_kind, kind_all, uniform_kinds = int(kinds), None, True
        self._deliver_flat(
            rcv_all,
            snd_all,
            kind_all,
            produced.payloads,
            None,
            produced.payloads2,
            None,
            None,
            round_kind,
            uniform_kinds,
        )

    def _require_ascending_senders(self, snd_all: np.ndarray) -> None:
        if (
            int(snd_all[0]) < 0
            or int(snd_all[-1]) >= self._n
            or (snd_all[1:] < snd_all[:-1]).any()
        ):
            raise ValueError(
                "SoA batch senders must be node indices sorted ascending "
                "(the canonical emission order)"
            )

    def _shard_pool(self, m: int):
        """The lazily created worker pool behind ``workers > 1``."""
        pool = self._shards
        if pool is None:
            from repro.net.shard import ShardPool

            pool = ShardPool(self._n, self._workers, capacity=max(2 * m, 1024))
            self._shards = pool
        return pool

    # ------------------------------------------------------------------
    # Shared delivery tail: local split, truncation, metrics, assembly.
    # ------------------------------------------------------------------
    def _deliver_flat(
        self,
        rcv_all,
        snd_all,
        kind_all,
        pay_all,
        pay_ok_all,
        pay2_all,
        pay2_has_all,
        objs,
        round_kind,
        uniform_kinds,
    ) -> None:
        """Deliver one round packed as flat parallel columns.

        Self-addressed messages are split off with one vectorized mask,
        capacity truncation runs on index buffers via
        :func:`segmented_keep_indices`, and inboxes are cut as *views* of
        receiver-sorted columns (or kept whole as the next
        :class:`SoAInbox`) — per-message Python work only happens for
        object-node interop.
        """
        cap = self.capacity
        metrics = self._metrics
        n = self._n
        ids = self._ids
        contiguous = self._contiguous
        m_total = rcv_all.shape[0]
        lay = self._layout
        reuse = self._reuse_layouts
        entry_rcv, entry_snd = rcv_all, snd_all

        if _sanitize.ENABLED:
            # int64 end to end: a narrowed lane (RL303's runtime twin)
            # silently wraps ids/payloads at scale.
            _sanitize.check_int64("receivers", rcv_all)
            _sanitize.check_int64("senders", snd_all)
            _sanitize.check_int64("kinds", kind_all)
            _sanitize.check_int64("payloads", pay_all)
            _sanitize.check_int64("payloads2", pay2_all)

        # ---- alias-write guard over the layout cache -------------------
        # Identity alone can lie: an emitter may mutate a re-emitted
        # column through a *different view of the same base* (the frozen
        # writeable flag only guards the cached view itself).  An identity
        # hit is therefore only trusted after a value comparison against
        # the defensive copy taken at store time; a mismatch invalidates
        # that side and the round falls back to a fresh sort — never a
        # silent misdelivery through a stale permutation.
        rcv_ok = snd_ok = False
        if reuse:
            if rcv_all is lay.rcv:
                if np.array_equal(rcv_all, lay.rcv_copy):
                    rcv_ok = True
                else:
                    lay.clear_rcv()
            if snd_all is lay.snd:
                if np.array_equal(snd_all, lay.snd_copy):
                    snd_ok = True
                else:
                    lay.clear_snd()
                    if self._soa is not None:
                        # _deliver_soa skipped its canonical-order check
                        # on the identity hit; the values changed, so it
                        # must be re-run on what is actually there.
                        self._require_ascending_senders(snd_all)
        elif rcv_all is lay.rcv:
            # Legacy cache mode (REPRO_SOA_LAYOUT_REUSE=0): identity-only
            # reuse of the sort permutation, nothing else.
            rcv_ok = True

        # ---- split off self-addressed traffic (bypasses the network) ---
        if rcv_ok and snd_ok and lay.no_local:
            # Verified-unchanged round layout: the store round proved this
            # sender/receiver pair carries no self-addressed traffic.
            local_mask = None
        else:
            snd_real = snd_all if contiguous else ids[snd_all]
            local_mask = rcv_all == snd_real
        if local_mask is not None and local_mask.any():
            loc_sel = np.flatnonzero(local_mask)
            rem_sel = np.flatnonzero(~local_mask)
            loc_rcv_idx = snd_all[loc_sel]
            loc_kind = kind_all[loc_sel] if kind_all is not None else None
            loc_pay = pay_all[loc_sel] if pay_all is not None else None
            loc_ok = pay_ok_all[loc_sel] if pay_ok_all is not None else None
            loc_pay2 = pay2_all[loc_sel] if pay2_all is not None else None
            loc_has2 = pay2_has_all[loc_sel] if pay2_has_all is not None else None
            loc_objs = [objs[i] for i in loc_sel.tolist()] if objs is not None else None
            rcv_all = rcv_all[rem_sel]
            snd_all = snd_all[rem_sel]
            if kind_all is not None:
                kind_all = kind_all[rem_sel]
            if pay_all is not None:
                pay_all = pay_all[rem_sel]
            if pay_ok_all is not None:
                pay_ok_all = pay_ok_all[rem_sel]
            if pay2_all is not None:
                pay2_all = pay2_all[rem_sel]
            if pay2_has_all is not None:
                pay2_has_all = pay2_has_all[rem_sel]
            if objs is not None:
                objs = [objs[i] for i in rem_sel.tolist()]
            m_total = rcv_all.shape[0]
            loc_count = loc_rcv_idx.shape[0]
            rcv_ok = snd_ok = False  # columns rebound to fresh arrays
        else:
            loc_rcv_idx = None
            loc_kind = loc_pay = loc_ok = loc_pay2 = loc_has2 = loc_objs = None
            loc_count = 0

        def select(keep: np.ndarray):
            nonlocal rcv_all, snd_all, objs, kind_all, pay_all, pay_ok_all, m_total
            nonlocal pay2_all, pay2_has_all, rcv_ok, snd_ok
            rcv_ok = snd_ok = False
            rcv_all = rcv_all[keep]
            snd_all = snd_all[keep]
            if objs is not None:
                objs = [objs[i] for i in keep.tolist()]
            if kind_all is not None:
                kind_all = kind_all[keep]
            if pay_all is not None:
                pay_all = pay_all[keep]
            if pay_ok_all is not None:
                pay_ok_all = pay_ok_all[keep]
            if pay2_all is not None:
                pay2_all = pay2_all[keep]
            if pay2_has_all is not None:
                pay2_has_all = pay2_has_all[keep]
            m_total = rcv_all.shape[0]

        # ---- adversarial faults ---------------------------------------
        # Oblivious drops (crash isolation, partitions, link loss) act on
        # the surviving remote columns in canonical order — the identical
        # hook point as the legacy engine, before capacity truncation, so
        # every tier sees the same fault stream under a shared seed.
        if self.fault_hook is not None and m_total:
            snd_ids = snd_all if contiguous else ids[snd_all]
            keep = self._run_fault_hook(snd_ids, rcv_all)
            if keep is not None:
                kept = _fault_keep_indices(keep, m_total)
                if kept.size != m_total:
                    metrics.fault_drops += m_total - kept.size
                    select(kept)

        # ---- send capacity + sent metrics (one shared bincount) -------
        if m_total:
            if snd_ok and lay.sent_counts is not None:
                sent_counts, sent_max = lay.sent_counts, lay.sent_max
            else:
                sent_counts = np.bincount(snd_all, minlength=n)
                sent_max = int(sent_counts.max())
            if cap.max_send is not None and sent_max > cap.max_send:
                keep = segmented_keep_indices(snd_all, cap.max_send, self.rng)
                metrics.send_drops += m_total - keep.size
                select(keep)
                if m_total:
                    sent_counts = np.bincount(snd_all, minlength=n)
                    sent_max = int(sent_counts.max())
            if m_total:
                self._sent_counts += sent_counts
                self._counts_dirty = True
                metrics.max_sent_per_round = max(
                    metrics.max_sent_per_round, sent_max
                )
        else:
            sent_counts, sent_max = None, 0
        metrics.total_messages += m_total

        # ---- receiver mapping -----------------------------------------
        if m_total:
            if contiguous:
                if not rcv_ok:  # verified-unchanged columns passed before
                    invalid = (rcv_all < 0) | (rcv_all >= n)
                    if invalid.any():
                        raise KeyError(
                            f"message addressed to unknown node {int(rcv_all[int(invalid.argmax())])}"
                        )
                rcv_idx = rcv_all
            else:
                pos = np.searchsorted(self._sorted_ids, rcv_all)
                pos_clip = np.minimum(pos, max(n - 1, 0))
                invalid = (pos >= n) | (self._sorted_ids[pos_clip] != rcv_all)
                if invalid.any():
                    raise KeyError(
                        f"message addressed to unknown node {int(rcv_all[int(invalid.argmax())])}"
                    )
                rcv_idx = self._sort_order[pos]
        else:
            rcv_idx = rcv_all

        # ---- receive capacity + recv metrics (one shared bincount) ----
        if m_total:
            if rcv_ok and contiguous and lay.recv_counts is not None:
                recv_counts, recv_max = lay.recv_counts, lay.recv_max
            else:
                recv_counts = np.bincount(rcv_idx, minlength=n)
                recv_max = int(recv_counts.max())
            if cap.max_receive is not None and recv_max > cap.max_receive:
                keep = segmented_keep_indices(rcv_idx, cap.max_receive, self.rng)
                metrics.receive_drops += m_total - keep.size
                rcv_idx = rcv_idx[keep]
                select(keep)
                if m_total:
                    recv_counts = np.bincount(rcv_idx, minlength=n)
                    recv_max = int(recv_counts.max())
            if m_total:
                self._recv_counts += recv_counts
                self._counts_dirty = True
                metrics.max_received_per_round = max(
                    metrics.max_received_per_round, recv_max
                )
        else:
            recv_counts = None

        # ---- inbox assembly (local first, canonical order after) ------
        if loc_count:
            # Prepend local messages so they sort ahead of remote ones for
            # the same receiver (stable sort ⇒ legacy's local-first order).
            rcv_idx = np.concatenate([loc_rcv_idx, rcv_idx])
            snd_all = np.concatenate([loc_rcv_idx, snd_all])
            if kind_all is not None:
                kind_all = np.concatenate([loc_kind, kind_all])
            if pay_all is not None:
                pay_all = np.concatenate([loc_pay, pay_all])
            if pay2_all is not None:
                # Local and remote lanes always co-exist (both derive from
                # the same pack), so no zero-fill is needed here.
                pay2_all = np.concatenate([loc_pay2, pay2_all])
                if pay2_has_all is not None:
                    pay2_has_all = np.concatenate([loc_has2, pay2_has_all])
            if pay_ok_all is not None or loc_ok is not None:
                ones = lambda k: np.ones(k, dtype=bool)  # noqa: E731
                pay_ok_all = np.concatenate(
                    [
                        loc_ok if loc_ok is not None else ones(loc_count),
                        pay_ok_all if pay_ok_all is not None else ones(m_total),
                    ]
                )
            if objs is not None:
                objs = loc_objs + objs
            m_total += loc_count

        self._pending_count = m_total
        if not m_total:
            return

        # ---- receiver-grouping layout ---------------------------------
        # Rounds that re-emit identity-stable (and value-verified) column
        # objects — flooding protocols announcing over a fixed adjacency
        # every round — reuse the previous receiver-sorted layout
        # wholesale: permutation, sorted key columns, segment offsets.
        # Only the payload lanes are re-gathered, which is what removes
        # the per-round re-sort from the n=10⁶..10⁷ SoA runs.  Fresh
        # layouts sort in-process, or in receiver-range shards on the
        # worker pool when ``workers > 1`` (bit-for-bit identical — see
        # repro.net.shard for the stability argument).
        simple_lanes = (
            kind_all is None
            and pay_ok_all is None
            and pay2_has_all is None
            and objs is None
            and pay_all is not None
        )
        pool = self._shards
        if rcv_ok and rcv_idx is lay.rcv and lay.order is not None:
            if self._round_trace is not None:
                self._layout_hit = True
            order = lay.order
            rcv_s = lay.rcv_s if lay.rcv_s is not None else rcv_idx[order]
            seg = (
                (lay.seg_starts, lay.seg_nodes)
                if lay.seg_starts is not None
                else None
            )
            if snd_ok and snd_all is lay.snd and lay.snd_s is not None:
                snd_s = lay.snd_s
            else:
                snd_s = snd_all[order]
            kind_s = ok_s = has2_s = objs_s = None
            if (
                simple_lanes
                and pool is not None
                and lay.shard_gen is not None
                and lay.shard_gen == pool.gen
            ):
                pay_s, pay2_s = pool.gather_payloads(
                    m_total, pay_all, pay2_all, lay.shard_gen
                )
            else:
                kind_s = kind_all[order] if kind_all is not None else None
                pay_s = pay_all[order] if pay_all is not None else None
                ok_s = pay_ok_all[order] if pay_ok_all is not None else None
                pay2_s = pay2_all[order] if pay2_all is not None else None
                has2_s = (
                    pay2_has_all[order] if pay2_has_all is not None else None
                )
                objs_s = (
                    [objs[i] for i in order.tolist()] if objs is not None else None
                )
        else:
            sharded = (
                self._workers > 1
                and self._soa is not None
                and loc_count == 0
                and simple_lanes
                and recv_counts is not None
            )
            if sharded:
                if pool is None:
                    pool = self._shard_pool(m_total)
                order, rcv_s, snd_s, pay_s, pay2_s = pool.sort_round(
                    rcv_idx, snd_all, pay_all, pay2_all, recv_counts
                )
                kind_s = ok_s = has2_s = objs_s = None
            else:
                order = group_argsort(rcv_idx, n)
                rcv_s = rcv_idx[order]
                snd_s = snd_all[order]
                kind_s = kind_all[order] if kind_all is not None else None
                pay_s = pay_all[order] if pay_all is not None else None
                ok_s = pay_ok_all[order] if pay_ok_all is not None else None
                pay2_s = pay2_all[order] if pay2_all is not None else None
                has2_s = (
                    pay2_has_all[order] if pay2_has_all is not None else None
                )
                objs_s = (
                    [objs[i] for i in order.tolist()] if objs is not None else None
                )

            # Receiver segment offsets fall out of the bincount for free
            # when no local messages interleave with remote groups.
            if loc_count == 0 and recv_counts is not None:
                seg_nodes = np.flatnonzero(recv_counts)
                seg_starts = np.zeros(seg_nodes.shape[0], dtype=np.int64)
                np.cumsum(recv_counts[seg_nodes][:-1], out=seg_starts[1:])
                seg = (seg_starts, seg_nodes)
            else:
                seg = None

            if reuse:
                # Store only pristine layouts: the keyed objects must be
                # the protocol-emitted arrays a later round can re-emit
                # (no local split, no truncation, no id mapping touched
                # them).  Non-pristine rounds leave an older still-valid
                # entry in place — flooding rounds interleaved with
                # offer/response rounds keep hitting.
                if rcv_idx is entry_rcv:
                    # Freeze the cached view: direct in-place mutation of
                    # a re-emitted receivers buffer errors immediately;
                    # writes through other views of the same base are
                    # caught by the value comparison at the next hit.
                    rcv_idx.flags.writeable = False
                    lay.rcv = rcv_idx
                    lay.rcv_copy = rcv_idx.copy()
                    lay.order = order
                    lay.rcv_s = rcv_s
                    lay.recv_counts = recv_counts
                    lay.recv_max = recv_max
                    lay.seg_starts, lay.seg_nodes = (
                        seg if seg is not None else (None, None)
                    )
                    lay.shard_gen = pool.gen if sharded else None
                    if snd_all is entry_snd:
                        lay.snd = snd_all
                        lay.snd_copy = snd_all.copy()
                        lay.snd_s = snd_s
                        lay.sent_counts = sent_counts
                        lay.sent_max = sent_max
                        lay.no_local = loc_count == 0
                    else:
                        lay.clear_snd()
            elif rcv_idx is not lay.rcv:
                # Legacy sort-only cache: identical to the pre-shard
                # behaviour (identity-keyed permutation, frozen view).
                rcv_idx.flags.writeable = False
                lay.clear_rcv()
                lay.clear_snd()
                lay.rcv = rcv_idx
                lay.order = order

        if _sanitize.ENABLED:
            # Postcondition of every layout path above (fresh sort, cache
            # hit, sharded sort): the grouped columns are receiver-sorted.
            # An unsorted rcv_s here means a stale permutation or a shard
            # worker writing outside its range.
            _sanitize.check_receiver_sorted("rcv_s", rcv_s)
            _sanitize.check_int64("rcv_s", rcv_s)
            _sanitize.check_int64("snd_s", snd_s)
            _sanitize.check_int64("pay_s", pay_s)
            _sanitize.check_int64("pay2_s", pay2_s)

        snd_real_s = snd_s if contiguous else ids[snd_s]
        rcv_real_s = rcv_s if contiguous else ids[rcv_s]

        if self._soa is not None:
            # The sorted columns ARE the next round's inbox: no group
            # cutting, no per-node objects — one SoAInbox for everyone.
            self._soa_inbox = SoAInbox(
                snd_real_s,
                rcv_s,
                round_kind if uniform_kinds else kind_s,
                pay_s,
                pay2_s,
                segments=seg,
            )
            return

        cuts = np.flatnonzero(rcv_s[1:] != rcv_s[:-1]) + 1
        starts = [0] + cuts.tolist() + [m_total]
        group_rcv = rcv_s[np.asarray(starts[:-1], dtype=np.int64)].tolist()

        uniform_kind = round_kind if uniform_kinds else None
        if uniform_kind is None and kind_s is not None and int(kind_s.min()) == int(kind_s.max()):
            uniform_kind = int(kind_s[0])

        pending = self._pending
        is_batch = self._is_batch
        kind_name = KINDS.name
        raw = MessageBatch._raw
        for g in range(len(starts) - 1):
            s = starts[g]
            e = starts[g + 1]
            nid = group_rcv[g] if contiguous else int(ids[group_rcv[g]])
            if is_batch[nid]:
                if ok_s is not None and not ok_s[s:e].all():
                    raise TypeError(
                        f"batch node {nid} received a message whose payload is "
                        f"neither an integer nor an integer pair"
                    )
                # Attach the secondary lane iff some message in the group
                # carries it — the rule ``MessageBatch.from_messages`` (and
                # hence the legacy engine) applies to mixed inboxes.
                if pay2_s is not None and (has2_s is None or bool(has2_s[s:e].any())):
                    p2 = pay2_s[s:e]
                else:
                    p2 = None
                pending[nid] = raw(
                    snd_real_s[s:e],
                    rcv_real_s[s:e],
                    uniform_kind if uniform_kind is not None else kind_s[s:e],
                    pay_s[s:e],
                    p2,
                )
            elif objs_s is not None:
                msgs = []
                for i in range(s, e):
                    obj = objs_s[i]
                    if obj is None:
                        if pay2_s is not None and (has2_s is None or has2_s[i]):
                            payload = (int(pay_s[i]), int(pay2_s[i]))
                        else:
                            payload = int(pay_s[i])
                        obj = Message(
                            int(snd_real_s[i]),
                            nid,
                            kind_name(int(kind_s[i])) if kind_s is not None else kind_name(uniform_kind),
                            payload,
                        )
                    msgs.append(obj)
                pending[nid] = msgs
            else:
                uname = kind_name(uniform_kind) if kind_s is None else None
                pending[nid] = [
                    Message(
                        int(snd_real_s[i]),
                        nid,
                        uname if uname is not None else kind_name(int(kind_s[i])),
                        (int(pay_s[i]), int(pay2_s[i]))
                        if pay2_s is not None and (has2_s is None or has2_s[i])
                        else int(pay_s[i]),
                    )
                    for i in range(s, e)
                ]

    # ------------------------------------------------------------------
    def run(
        self,
        max_rounds: int,
        stop_when: Callable[[], bool] | None = None,
    ) -> NetworkMetrics:
        """Run until every node is idle with no messages in flight, a
        custom predicate fires, or ``max_rounds`` elapses.

        The in-flight/idle bookkeeping is evaluated every round *before*
        the ``stop_when`` predicate is honoured, so a predicate firing on
        the final round still yields consistent metrics:
        ``stopped_by_predicate`` is set and ``in_flight_at_stop`` records
        how many messages were pending (0 when the network was quiescent
        anyway).
        """
        for _ in range(max_rounds):
            self.run_round()
            in_flight = self.pending_messages()
            idle = in_flight == 0 and (
                self._soa.is_idle()
                if self._soa is not None
                else all(node.is_idle() for node in self.nodes.values())
            )
            if stop_when is not None and stop_when():
                self._metrics.stopped_by_predicate = True
                self._metrics.in_flight_at_stop = in_flight
                break
            if idle:
                break
        return self.metrics
