"""Structure-of-arrays protocol classes: one call advances *all* nodes.

The third execution tier of the simulator.  Object nodes
(:class:`~repro.net.network.ProtocolNode`) cost one Python call per
message; batch nodes (:class:`~repro.net.network.BatchProtocolNode`) cost
one call per *node* per round.  At ``n ≥ 10⁵`` that per-node overhead
(~10µs/node/round) dominates the whole simulation, so this module inverts
the dispatch: a :class:`SoAProtocolClass` is one object representing every
node of a protocol, holding node state in shared numpy columns (state
codes, parent/min-id/depth arrays, port matrices) and advancing the entire
population with **one** :meth:`~SoAProtocolClass.on_round_soa` call per
round.

Delivery still runs through :class:`repro.net.network.SyncNetwork`'s
vectorized engine — the class's emitted :class:`~repro.net.batch.MessageBatch`
enters the exact same flat-column pipeline (local split, send/receive
truncation via ``segmented_keep_indices``, bincount metrics) as per-node
batch traffic, so the canonical RNG discipline of ``docs/engine.md`` is
preserved *bit for bit*: a protocol class that emits its round's traffic
in canonical order (ascending sender, per-sender emission order) produces
the identical execution — same inboxes, same drops, same metrics — as the
equivalent per-node batch protocol under the same seed.  The three-way
differential suites (``tests/core/test_soa_engines.py``,
``tests/net/test_engine_equivalence.py``) enforce this.

The inbox side is an :class:`SoAInbox`: the whole round's surviving
traffic as receiver-sorted flat columns (local messages first within each
receiver group, then remote survivors in canonical arrival order — the
same per-node sequences the other tiers see, concatenated).  Helpers
provide the segment reductions protocol classes actually need (per-receiver
minima for flooding-style protocols, per-receiver segments for token
accounting) without materialising any per-node structure.
"""

from __future__ import annotations

import numpy as np

from repro import sanitize as _sanitize
from repro.net.batch import KINDS, MessageBatch
from repro.runtime.envsource import env_flag

__all__ = ["DEBUG_VALIDATE", "SoAInbox", "SoAProtocolClass"]

_NO_COLUMN = np.empty(0, dtype=np.int64)

#: Debug-mode column validation (set ``REPRO_DEBUG_SOA=1`` — or the
#: unified ``REPRO_SANITIZE=1``, which implies it — or flip the module
#: flag in tests).  ``SoAInbox.concat`` documents "no re-sorting" —
#: with the flag on it *checks* that every input is itself receiver-sorted,
#: so a caller concatenating genuinely unordered columns (and then not
#: re-sorting, as the delay queue does) fails loudly instead of handing a
#: protocol class segments that straddle receiver groups.
DEBUG_VALIDATE = env_flag("REPRO_DEBUG_SOA", False) or _sanitize.ENABLED


class SoAInbox:
    """One round of delivered traffic, as receiver-sorted flat columns.

    ``receivers`` holds *node indices* (the SoA tier requires contiguous
    ids ``0..n-1``, so index and id coincide), sorted ascending; within a
    receiver group, local (self-addressed) messages come first, then
    remote survivors in canonical arrival order — exactly the per-node
    inbox sequences of the object/batch tiers, concatenated.  ``kinds``
    may be a scalar code (uniform round, the common case for protocol
    schedules) or a per-message column.  ``payloads2`` is the optional
    second payload lane (``None`` when absent for the whole round).
    """

    __slots__ = ("senders", "receivers", "kinds", "payloads", "payloads2", "_segments")

    def __init__(
        self, senders, receivers, kinds, payloads, payloads2=None, segments=None
    ) -> None:
        self.senders = senders
        self.receivers = receivers
        self.kinds = kinds
        self.payloads = payloads
        self.payloads2 = payloads2
        # Optional precomputed ``(starts, nodes)`` receiver segments —
        # the delivery tail already knows them from its bincount, which
        # saves protocol classes the O(m) boundary scan per round.
        # Memoised on first computation otherwise.
        self._segments = segments

    @classmethod
    def empty(cls) -> "SoAInbox":
        return _EMPTY_INBOX

    def __len__(self) -> int:
        return int(self.receivers.shape[0])

    # ------------------------------------------------------------------
    def of_kind(self, kind: int) -> "SoAInbox":
        """Sub-inbox of the messages of kind ``kind`` (columns as views).

        Filtering preserves the receiver sort.  With a scalar kind (the
        uniform-round fast path) no copy happens at all.
        """
        kinds = self.kinds
        if type(kinds) is not np.ndarray:
            return self if kinds == kind else _EMPTY_INBOX
        mask = kinds == kind
        return SoAInbox(
            self.senders[mask],
            self.receivers[mask],
            kind,
            self.payloads[mask],
            self.payloads2[mask] if self.payloads2 is not None else None,
        )

    # ------------------------------------------------------------------
    def take(self, sel: np.ndarray) -> "SoAInbox":
        """Inbox restricted to rows ``sel``, in ``sel``'s sequence.

        ``sel`` is an integer index array (a selection or a permutation);
        scalar kinds and an absent secondary lane are preserved.  The
        column gather behind the delay-queue synchroniser's release path
        (:mod:`repro.scenarios.soa_sync`).
        """
        if sel.shape[0] == 0:
            return _EMPTY_INBOX
        kinds = self.kinds
        return SoAInbox(
            self.senders[sel],
            self.receivers[sel],
            kinds[sel] if type(kinds) is np.ndarray else kinds,
            self.payloads[sel],
            self.payloads2[sel] if self.payloads2 is not None else None,
        )

    @classmethod
    def concat(
        cls, inboxes: list["SoAInbox"], *, check: bool | None = None
    ) -> "SoAInbox":
        """Concatenate inboxes column-wise (no re-sorting).

        Uniform scalar kinds stay scalar; mixed kinds materialise a
        column.  Lane-less traffic zero-fills ``payloads2`` when some
        input carries it — the :class:`~repro.net.batch.MessageBatch`
        convention.  Callers own the receiver ordering of the result
        (the delay queue re-sorts on release).  With
        :data:`DEBUG_VALIDATE` on (or ``check=True``), each *input* is
        checked to be receiver-sorted — the documented precondition that
        makes the concatenation a sequence of well-formed segments.  A
        caller whose accumulated buffer is legitimately segment-ordered
        rather than globally sorted (the delay queue's in-flight columns,
        which it re-sorts on release) opts out with ``check=False`` and
        asserts its own entry precondition instead.
        """
        inboxes = [b for b in inboxes if len(b)]
        if DEBUG_VALIDATE if check is None else check:
            for b in inboxes:
                r = b.receivers
                if r.shape[0] > 1 and bool((r[1:] < r[:-1]).any()):
                    raise ValueError(
                        "SoAInbox.concat input is not receiver-sorted; "
                        "concat never re-sorts — sort inputs first (the "
                        "delay queue re-sorts its *release*, not its pushes)"
                    )
        if not inboxes:
            return _EMPTY_INBOX
        if len(inboxes) == 1:
            return inboxes[0]
        first_kinds = inboxes[0].kinds
        if all(
            type(b.kinds) is not np.ndarray and b.kinds == first_kinds
            for b in inboxes
        ):
            kinds: int | np.ndarray = first_kinds
        else:
            kinds = np.concatenate(
                [
                    b.kinds
                    if type(b.kinds) is np.ndarray
                    else np.full(len(b), int(b.kinds), dtype=np.int64)
                    for b in inboxes
                ]
            )
        if any(b.payloads2 is not None for b in inboxes):
            payloads2 = np.concatenate(
                [
                    b.payloads2
                    if b.payloads2 is not None
                    else np.zeros(len(b), dtype=np.int64)
                    for b in inboxes
                ]
            )
        else:
            payloads2 = None
        return cls(
            np.concatenate([b.senders for b in inboxes]),
            np.concatenate([b.receivers for b in inboxes]),
            kinds,
            np.concatenate([b.payloads for b in inboxes]),
            payloads2,
        )

    # ------------------------------------------------------------------
    def segments(self) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, nodes)``: offsets of each receiver group in the
        sorted columns and the node index owning each group.

        Computed once and memoised (or handed in precomputed by the
        delivery tail); every per-receiver reduction shares it."""
        seg = self._segments
        if seg is not None:
            return seg
        receivers = self.receivers
        if receivers.shape[0] == 0:
            seg = (_NO_COLUMN, _NO_COLUMN)
        else:
            starts = np.flatnonzero(
                np.concatenate([[True], receivers[1:] != receivers[:-1]])
            )
            seg = (starts, receivers[starts])
        self._segments = seg
        return seg

    def min_by_receiver(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-receiver minimum of ``values`` (parallel to the columns).

        Returns ``(nodes, mins)`` for the receivers that got at least one
        message — the flooding reduction (`np.minimum.reduceat` over the
        receiver segments), with no per-node Python work.
        """
        starts, nodes = self.segments()
        if nodes.shape[0] == 0:
            return nodes, _NO_COLUMN
        return nodes, np.minimum.reduceat(values, starts)

    # ------------------------------------------------------------------
    def to_node_lists(self, n: int) -> list[list[tuple[int, str, int]]]:
        """Materialise per-node ``(sender, kind, payload)`` inbox lists.

        Test/debug interop only — defeats the whole point on hot paths.
        """
        out: list[list[tuple[int, str, int]]] = [[] for _ in range(n)]
        kinds = self.kinds
        uniform = None if type(kinds) is np.ndarray else KINDS.name(int(kinds))
        for i in range(len(self)):
            payload: int | tuple[int, int] = int(self.payloads[i])
            if self.payloads2 is not None:
                payload = (payload, int(self.payloads2[i]))
            out[int(self.receivers[i])].append(
                (
                    int(self.senders[i]),
                    uniform if uniform is not None else KINDS.name(int(kinds[i])),
                    payload,
                )
            )
        return out


_EMPTY_INBOX = SoAInbox(_NO_COLUMN, _NO_COLUMN, 0, _NO_COLUMN)


class SoAProtocolClass:
    """All nodes of one protocol, advanced by a single call per round.

    Subclasses hold the population's state in numpy columns and implement
    :meth:`on_round_soa`: consume the round's :class:`SoAInbox`, return
    the whole population's outgoing traffic as one
    :class:`~repro.net.batch.MessageBatch` (or ``None``).

    Contract (enforced by the engine):

    - the class covers the contiguous id range ``0..n-1``;
    - the emitted batch's ``senders`` is a per-message column sorted
      ascending (canonical node order; within one sender, emission order)
      — this is what makes the delivery RNG discipline, and therefore the
      whole execution, bit-for-bit identical to the per-node tiers;
    - the vectorized delivery engine only (`engine="vectorized"`).
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("an SoA protocol class needs at least one node")
        self.n = n

    def on_round_soa(self, round_no: int, inbox: SoAInbox) -> MessageBatch | None:
        """Advance every node one round; return the population's traffic."""
        raise NotImplementedError

    def is_idle(self) -> bool:
        """True when *every* node has no pending work (class-level analogue
        of :meth:`~repro.net.network.ProtocolNode.is_idle`)."""
        return True
