"""Sharded shared-memory receiver sort for the SoA delivery tail.

At ``n = 10⁷`` one round of SoA delivery is a handful of O(m) column
passes, and the heaviest of them — the receiver-grouping sort plus the
sorted gathers that build the next :class:`~repro.net.soa.SoAInbox` —
parallelise cleanly: the inbox layout is already *sharded by receiver*
(receiver-sorted columns are the concatenation of disjoint receiver
ranges).  This module supplies the worker pool behind
``SyncNetwork(workers=...)``:

- **arena**: one anonymous ``mmap`` (``MAP_SHARED``) per column, created
  *before* the workers fork so parent and children address the same
  physical pages — no pickling, no per-round serialisation.  The parent
  copies the round's flat columns in; workers write their sorted slices
  out; the parent copies the results back out (the arena is reused the
  next round).
- **shards**: worker ``w`` owns the contiguous receiver-index range
  ``[bounds[w], bounds[w+1])``.  It selects its messages with one
  ``flatnonzero`` scan, sorts them with the same stable
  :func:`~repro.net.vectorops.group_argsort` the single-process tail
  uses, and writes order + gathered columns at its global offset
  (the cumulative receiver-count prefix at its lower bound).
- **merge**: nothing to do.  ``np.flatnonzero`` yields ascending
  indices, so each shard's sort is the stable sort of a *subsequence*,
  and concatenating stable sorts over disjoint ascending receiver
  ranges is exactly the global stable receiver sort.  The sharded
  result is therefore **bit-for-bit** the single-process permutation —
  not merely equivalent — which is what lets the differential matrices
  compare executions across worker counts directly.

Steady-state rounds whose receiver layout is unchanged (the flooding
fast path — see the layout cache in :mod:`repro.net.network`) skip the
sort entirely: workers keep their shard permutation across rounds
(keyed by a generation counter) and a ``gather`` job re-gathers only
the payload lanes.

When ``fork`` is unavailable the pool degrades to an in-process serial
loop over the same per-shard jobs — bit-for-bit identical by
construction, so worker counts stay portable knobs rather than
semantics.
"""

from __future__ import annotations

import mmap
import multiprocessing as mp
import os
import time
import warnings
import weakref

import numpy as np

from repro import sanitize as _sanitize
from repro.net.vectorops import group_argsort

#: Environment variable consulted when ``workers`` is not given explicitly
#: (the harness axis); resolution lives in :mod:`repro.runtime` with the
#: rest of the precedence chain — re-exported here for compatibility.
from repro.runtime import WORKERS_ENV, resolve_workers

__all__ = [
    "WORKERS_ENV",
    "ShardPool",
    "effective_workers",
    "fork_available",
    "resolve_workers",
    "shard_bounds",
]

_COLUMNS = (
    # round inputs (parent writes, workers read)
    "rcv",
    "snd",
    "pay",
    "pay2",
    # sorted outputs (workers write, parent reads)
    "order",
    "rcv_s",
    "snd_s",
    "pay_s",
    "pay2_s",
)

_WORKER_TIMEOUT = 60.0  # seconds; a shard job is a few O(m/W) passes

#: Guard value planted one slot past the round's extent under
#: ``REPRO_SANITIZE=1``; any other value after a sort means a worker
#: wrote beyond its prefix-sum range.
_CANARY = -0x5EEDCAFE


def fork_available() -> bool:
    """Whether the fork start method (and hence a real worker pool)
    exists on this platform."""
    try:
        mp.get_context("fork")
    except ValueError:
        return False
    return True


def effective_workers(workers: int) -> int:
    """The process count a ``workers``-worker pool actually runs with:
    ``workers`` under fork, 1 under the serial fallback.  Bench JSON
    records this next to the requested count so cross-platform result
    files stay honest about their parallelism."""
    if workers > 1 and not fork_available():
        return 1
    return int(workers)


_SERIAL_FALLBACK_WARNED = False


def _warn_serial_fallback(workers: int) -> None:
    """One warning per process: requested parallelism quietly degrading
    to a serial loop is worth a single loud line, not per-pool spam."""
    global _SERIAL_FALLBACK_WARNED
    if _SERIAL_FALLBACK_WARNED:
        return
    _SERIAL_FALLBACK_WARNED = True
    warnings.warn(
        f"ShardPool(workers={workers}): the fork start method is "
        "unavailable on this platform; running the per-shard jobs as an "
        "in-process serial loop (bit-for-bit identical results, no "
        "parallel speedup). Bench rows record workers_effective=1.",
        RuntimeWarning,
        stacklevel=3,
    )


def shard_bounds(n: int, workers: int) -> np.ndarray:
    """Contiguous receiver-index ranges: shard ``w`` owns
    ``[bounds[w], bounds[w+1])``.  Ranges partition ``0..n-1`` evenly
    (within one) and may be empty when ``workers > n``."""
    if n < 0 or workers < 1:
        raise ValueError("need n >= 0 and workers >= 1")
    return np.asarray(
        [(n * w) // workers for w in range(workers + 1)], dtype=np.int64
    )


def _worker_loop(conn, cols, lo: int, hi: int) -> None:
    """One shard worker: serve sort/gather jobs over the shared arena."""
    rcv_in, snd_in, pay_in, pay2_in = (
        cols["rcv"],
        cols["snd"],
        cols["pay"],
        cols["pay2"],
    )
    order_out, rcv_out, snd_out, pay_out, pay2_out = (
        cols["order"],
        cols["rcv_s"],
        cols["snd_s"],
        cols["pay_s"],
        cols["pay2_s"],
    )
    local = None  # cached global indices of this shard's messages
    gen_seen = -1
    off_seen = 0
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent vanished
            break
        op = job[0]
        if op == "stop":
            break
        try:
            if op == "sort":
                _, m, off, gen, want_pay2 = job
                # Per-job wall seconds ride back on the reply so a traced
                # run can report shard balance; measurement is telemetry's
                # job, the sort itself stays seed-determined.
                start = time.perf_counter()  # repro-lint: disable=RL202
                rcv = rcv_in[:m]
                sel = np.flatnonzero((rcv >= lo) & (rcv < hi))
                # sel is ascending, so this is the stable sort of a
                # subsequence — stability of the global order preserved.
                perm = group_argsort(rcv[sel] - lo, hi - lo)
                local = sel[perm]
                gen_seen, off_seen = gen, off
                k = local.shape[0]
                end = off + k
                order_out[off:end] = local
                rcv_out[off:end] = rcv[local]
                snd_out[off:end] = snd_in[local]
                pay_out[off:end] = pay_in[local]
                if want_pay2:
                    pay2_out[off:end] = pay2_in[local]
                dt = time.perf_counter() - start  # repro-lint: disable=RL202
                conn.send(("ok", k, dt))
            elif op == "gather":
                _, gen, want_pay2 = job
                if local is None or gen != gen_seen:
                    conn.send(("error", "stale shard generation", 0.0))
                    continue
                start = time.perf_counter()  # repro-lint: disable=RL202
                end = off_seen + local.shape[0]
                pay_out[off_seen:end] = pay_in[local]
                if want_pay2:
                    pay2_out[off_seen:end] = pay2_in[local]
                dt = time.perf_counter() - start  # repro-lint: disable=RL202
                conn.send(("ok", int(local.shape[0]), dt))
            else:
                conn.send(("error", f"unknown shard op {op!r}", 0.0))
        except Exception as exc:  # pragma: no cover - defensive relay
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}", 0.0))
            except OSError:
                break
    conn.close()


def _shutdown(procs, conns) -> None:
    """Stop workers (also the ``weakref.finalize`` target, so it must not
    hold the pool itself)."""
    for conn in conns:
        try:
            conn.send(("stop",))
        except (OSError, BrokenPipeError, ValueError):
            pass
    for proc in procs:
        proc.join(timeout=2)
        if proc.is_alive():  # pragma: no cover - wedged worker
            proc.terminate()
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class ShardPool:
    """Persistent worker pool computing the receiver sort in shards.

    ``sort_round`` is a drop-in for the single-process tail's

    .. code-block:: python

        order = group_argsort(rcv_idx, n)
        rcv_s, snd_s, pay_s = rcv_idx[order], snd_all[order], pay_all[order]

    returning bit-for-bit identical arrays (see module docstring for the
    stability argument).  The pool owns its arena and workers; arenas are
    resized by re-creating the pool state when a round outgrows them.
    """

    def __init__(self, n: int, workers: int, capacity: int = 1024) -> None:
        if workers < 2:
            raise ValueError(
                "ShardPool needs >= 2 workers; the 1-worker path is the "
                "in-process sort"
            )
        self.n = int(n)
        self.workers = int(workers)
        self.bounds = shard_bounds(self.n, self.workers)
        self.gen = 0
        # Telemetry of the most recent op (sort or gather): per-worker
        # message counts and wall seconds, plus an op sequence number so
        # a traced network can turn "ops since last seen" into per-round
        # shard rows.  Pure observation — never read by the sort itself.
        self.last_counts = np.zeros(self.workers, dtype=np.int64)
        self.last_seconds = np.zeros(self.workers, dtype=np.float64)
        self.last_op: str | None = None
        self.op_seq = 0
        self._capacity = 0
        self._cols: dict[str, np.ndarray] | None = None
        self._procs: list = []
        self._conns: list = []
        self._serial_cache: list[tuple[np.ndarray, int]] = []
        self._finalizer = None
        try:
            self._ctx = mp.get_context("fork")
            self._serial = False
        except ValueError:  # pragma: no cover - non-fork platforms
            self._ctx = None
            self._serial = True
            _warn_serial_fallback(self.workers)
        self._setup(max(int(capacity), 1))

    # ------------------------------------------------------------------
    def _setup(self, capacity: int) -> None:
        self._stop_workers()
        # A fresh arena invalidates every worker-side permutation cache;
        # bumping the generation makes the parent-side layout cache fall
        # back to a full sort instead of a stale gather.
        self.gen += 1
        self._capacity = capacity
        cols: dict[str, np.ndarray] = {}
        for name in _COLUMNS:
            # Anonymous MAP_SHARED pages: untouched columns (e.g. an
            # unused pay2 lane) cost address space only.  The old arena
            # is reclaimed when its last numpy view is garbage-collected.
            cols[name] = np.frombuffer(
                mmap.mmap(-1, capacity * 8), dtype=np.int64
            )
        self._cols = cols
        if self._serial:
            return
        procs, conns = [], []
        for w in range(self.workers):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_loop,
                args=(
                    child_conn,
                    cols,
                    int(self.bounds[w]),
                    int(self.bounds[w + 1]),
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)
        self._procs, self._conns = procs, conns
        self._finalizer = weakref.finalize(self, _shutdown, procs, conns)

    def _stop_workers(self) -> None:
        if self._finalizer is not None:
            self._finalizer()  # idempotent
            self._finalizer = None
        self._procs, self._conns = [], []
        self._serial_cache = []

    def close(self) -> None:
        """Stop the workers and drop the arena (safe to call twice)."""
        self._stop_workers()
        self._cols = None
        self._capacity = 0

    def _ensure(self, m: int) -> None:
        if m <= self._capacity and self._cols is not None:
            return
        self._setup(max(2 * m, 2 * self._capacity, 1024))

    # ------------------------------------------------------------------
    def _collect(self) -> int:
        total = 0
        for w, conn in enumerate(self._conns):
            if not conn.poll(_WORKER_TIMEOUT):  # pragma: no cover
                raise RuntimeError(f"shard worker {w} timed out")
            tag, val, dt = conn.recv()
            if tag != "ok":
                raise RuntimeError(f"shard worker {w} failed: {val}")
            self.last_counts[w] = val
            self.last_seconds[w] = dt
            total += val
        return total

    def _serial_sort(self, m: int, offs: np.ndarray, want_pay2: bool) -> None:
        cols = self._cols
        rcv = cols["rcv"][:m]
        self._serial_cache = []
        for w in range(self.workers):
            start = time.perf_counter()  # repro-lint: disable=RL202
            lo, hi = int(self.bounds[w]), int(self.bounds[w + 1])
            sel = np.flatnonzero((rcv >= lo) & (rcv < hi))
            perm = group_argsort(rcv[sel] - lo, hi - lo)
            local = sel[perm]
            off = int(offs[w])
            end = off + local.shape[0]
            cols["order"][off:end] = local
            cols["rcv_s"][off:end] = rcv[local]
            cols["snd_s"][off:end] = cols["snd"][local]
            cols["pay_s"][off:end] = cols["pay"][local]
            if want_pay2:
                cols["pay2_s"][off:end] = cols["pay2"][local]
            self._serial_cache.append((local, off))
            self.last_counts[w] = local.shape[0]
            self.last_seconds[w] = time.perf_counter() - start  # repro-lint: disable=RL202

    # ------------------------------------------------------------------
    def sort_round(
        self,
        rcv_idx: np.ndarray,
        snd_all: np.ndarray,
        pay_all: np.ndarray,
        pay2_all: np.ndarray | None,
        recv_counts: np.ndarray,
    ):
        """Sharded receiver sort + delivery gathers for one round.

        ``recv_counts`` is the round's per-receiver ``bincount`` (length
        ``n``) — its prefix sums at the shard bounds are the workers'
        output offsets, which is the whole "merge".  Returns
        ``(order, rcv_s, snd_s, pay_s, pay2_s)`` bit-for-bit equal to
        the in-process ``group_argsort`` path.
        """
        m = int(rcv_idx.shape[0])
        if recv_counts.shape[0] != self.n:
            raise ValueError(
                f"recv_counts must have length n={self.n}, "
                f"got {recv_counts.shape[0]}"
            )
        if m == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty, empty, (None if pay2_all is None else empty)
        self._ensure(m)
        cols = self._cols
        cols["rcv"][:m] = rcv_idx
        cols["snd"][:m] = snd_all
        cols["pay"][:m] = pay_all
        want_pay2 = pay2_all is not None
        if want_pay2:
            cols["pay2"][:m] = pay2_all
        csum = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(recv_counts, out=csum[1:])
        offs = csum[self.bounds[:-1]]
        self.gen += 1
        sanitize = _sanitize.ENABLED
        guarded = False
        if sanitize:
            # Arena canary: a valid ``order`` entry is an index in
            # ``[0, m)``, so poison the lane with -1 and plant a guard
            # one slot past the round's extent.  A worker writing outside
            # its prefix-sum range either leaves a poisoned slot
            # uncovered (overlap elsewhere) or tramples the guard —
            # both the write-overlap race class the shard merge relies
            # on never happening.
            cols["order"][:m] = -1
            guarded = self._capacity > m
            if guarded:
                cols["order"][m] = _CANARY
        if self._serial:
            self._serial_sort(m, offs, want_pay2)
        else:
            for w, conn in enumerate(self._conns):
                conn.send(("sort", m, int(offs[w]), self.gen, want_pay2))
            total = self._collect()
            if total != m:
                raise RuntimeError(
                    f"shard sort covered {total} of {m} messages — "
                    "receiver indices outside [0, n)?"
                )
        if sanitize:
            order_lane = cols["order"][:m]
            if bool((order_lane < 0).any()):
                hole = int(np.argmax(order_lane < 0))
                raise _sanitize.SanitizeError(
                    f"sanitize: shard sort left output slot {hole} of {m} "
                    "unwritten — workers overlapped or skipped a "
                    "prefix-sum range"
                )
            if guarded and int(cols["order"][m]) != _CANARY:
                raise _sanitize.SanitizeError(
                    "sanitize: shard sort trampled the guard slot past "
                    f"the round's extent (m={m}) — a worker wrote beyond "
                    "its range"
                )
            _sanitize.check_receiver_sorted("rcv_s", cols["rcv_s"][:m])
        self.last_op = "sort"
        self.op_seq += 1
        return (
            cols["order"][:m].copy(),
            cols["rcv_s"][:m].copy(),
            cols["snd_s"][:m].copy(),
            cols["pay_s"][:m].copy(),
            cols["pay2_s"][:m].copy() if want_pay2 else None,
        )

    def gather_payloads(
        self,
        m: int,
        pay_all: np.ndarray,
        pay2_all: np.ndarray | None,
        gen: int,
    ):
        """Re-gather only the payload lanes with the shard permutations
        cached by the ``gen``-th :meth:`sort_round` (steady-state rounds
        whose receiver layout is unchanged)."""
        if gen != self.gen:
            raise RuntimeError("stale shard generation for payload gather")
        cols = self._cols
        cols["pay"][:m] = pay_all
        want_pay2 = pay2_all is not None
        if want_pay2:
            cols["pay2"][:m] = pay2_all
        if self._serial:
            for w, (local, off) in enumerate(self._serial_cache):
                start = time.perf_counter()  # repro-lint: disable=RL202
                end = off + local.shape[0]
                cols["pay_s"][off:end] = cols["pay"][local]
                if want_pay2:
                    cols["pay2_s"][off:end] = cols["pay2"][local]
                self.last_counts[w] = local.shape[0]
                self.last_seconds[w] = time.perf_counter() - start  # repro-lint: disable=RL202
        else:
            for conn in self._conns:
                conn.send(("gather", gen, want_pay2))
            self._collect()
        self.last_op = "gather"
        self.op_seq += 1
        return (
            cols["pay_s"][:m].copy(),
            cols["pay2_s"][:m].copy() if want_pay2 else None,
        )
