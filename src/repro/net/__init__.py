"""Synchronous message-passing substrate (NCC0 and hybrid accounting).

The paper's model (§1.1): time proceeds in synchronous rounds; a node can
send a message to any node whose identifier it knows; messages are
``O(log n)`` bits; each node can send and receive at most ``O(log n)``
messages per round, and **excess messages are dropped arbitrarily** by the
network.  :class:`repro.net.network.SyncNetwork` implements exactly that
contract, with per-round metrics so experiments can report the maximum
loads and totals that Theorem 1.1 bounds.

:mod:`repro.net.hybrid` provides the bookkeeping for the hybrid model of
Section 4 (CONGEST local edges + capacity-limited global edges).
"""

from repro.net.message import Message
from repro.net.batch import KINDS, MessageBatch
from repro.net.network import (
    ENGINES,
    BatchProtocolNode,
    CapacityPolicy,
    NetworkMetrics,
    ProtocolNode,
    SyncNetwork,
)
from repro.net.soa import SoAInbox, SoAProtocolClass
from repro.net.vectorops import group_argsort, segmented_keep_indices
from repro.net.hybrid import HybridLedger

__all__ = [
    "Message",
    "MessageBatch",
    "KINDS",
    "CapacityPolicy",
    "NetworkMetrics",
    "ProtocolNode",
    "BatchProtocolNode",
    "SoAProtocolClass",
    "SoAInbox",
    "SyncNetwork",
    "ENGINES",
    "group_argsort",
    "segmented_keep_indices",
    "HybridLedger",
]
