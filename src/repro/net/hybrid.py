"""Hybrid-model communication accounting (Section 4).

The hybrid model distinguishes **local** edges (the initial graph; CONGEST
— one ``O(log n)``-bit message per edge per direction per round) from
**global** edges (established during execution; each node may send and
receive only ``Õ(1)`` global messages per round — the *global capacity*
``γ``).

The Section-4 algorithms in this repository execute their graph logic
directly (their correctness is validated against ground truth) while
charging their communication to a :class:`HybridLedger` according to the
paper's primitive costs.  The ledger is how the experiments report the
``O(log n)`` round totals and ``O(log³ n)``–``O(log⁵ n)`` global
capacities claimed by Theorems 1.2–1.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["HybridLedger"]


@dataclass
class HybridLedger:
    """Accumulates per-phase round and capacity charges.

    Attributes
    ----------
    phases:
        Ordered list of ``(name, local_rounds, global_rounds,
        global_capacity)`` entries.  *Capacity* is the per-node per-round
        global message budget a phase needs (the maximum over its rounds),
        not a total.
    """

    phases: list[tuple[str, int, int, int]] = field(default_factory=list)

    def charge(
        self,
        name: str,
        local_rounds: int = 0,
        global_rounds: int = 0,
        global_capacity: int = 0,
    ) -> None:
        """Record a phase's communication cost."""
        if min(local_rounds, global_rounds, global_capacity) < 0:
            raise ValueError("charges must be non-negative")
        self.phases.append((name, local_rounds, global_rounds, global_capacity))

    def merge(self, other: "HybridLedger", prefix: str = "") -> None:
        """Absorb another ledger's phases (e.g. a sub-algorithm's)."""
        for name, lr, gr, gc in other.phases:
            self.phases.append((f"{prefix}{name}", lr, gr, gc))

    @property
    def total_rounds(self) -> int:
        """Total rounds; local and global rounds of one phase overlap in
        the model (a node uses both modes simultaneously), so a phase
        costs the max of the two."""
        return sum(max(lr, gr) for _name, lr, gr, _gc in self.phases)

    @property
    def max_global_capacity(self) -> int:
        """Peak per-node per-round global message budget over all phases."""
        return max((gc for *_rest, gc in self.phases), default=0)

    def summary(self) -> dict[str, int]:
        return {
            "phases": len(self.phases),
            "total_rounds": self.total_rounds,
            "max_global_capacity": self.max_global_capacity,
        }
