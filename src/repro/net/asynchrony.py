"""Asynchronous execution via an α-synchroniser (paper footnote 2).

Footnote 2 of the paper: *"some of the algorithms can be adapted to work
in an asynchronous model where a round is measured by the time it takes
for the slowest message to arrive…  If all nodes know the maximum delay
of a message, they can simulate the synchronous algorithm.  A practical
downside … is that the algorithm operates only as fast as the slowest
part of the network."*

This module implements exactly that simulation: messages are assigned
random delays in ``[1, max_delay]`` time units; every node holds round
``i``'s messages until time ``i · max_delay`` has elapsed (the
α-synchroniser barrier), so the protocol's behaviour is *identical* to
the synchronous execution while the wall-clock dilates by the slowest
link.  :class:`AsyncReport` records both the logical rounds and the
elapsed time units, quantifying the footnote's "as fast as the slowest
part" caveat.

Two contracts are enforced here (both regression-tested in
``tests/net/test_asynchrony.py``):

- **RNG independence.**  Delay samples are drawn from an independent
  ``rng.spawn()`` stream, never from the generator that drives network
  delivery — so the protocol execution is bit-for-bit the synchronous one
  under the same seed, including capacity-truncation draws.
- **Explicit non-convergence.**  Exhausting ``max_rounds`` without
  reaching quiescence raises (matching
  :func:`repro.core.protocol_tree.run_protocol_rooting`); callers opting
  out via ``require_quiescence=False`` get ``report.converged == False``
  instead of a silently truncated run.

All three node representations run here: object and batch nodes through
the per-node loop below, and :class:`~repro.net.soa.SoAProtocolClass`
populations through the columnar synchroniser of
:mod:`repro.scenarios.soa_sync` (a flat delay queue over the staged
inbox columns — one Python call per round regardless of ``n``), to which
this function transparently dispatches.  An optional ``fault_hook``
installs an oblivious message adversary (drops, crash isolation,
partitions — see :mod:`repro.scenarios.spec`) in the delivery tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.network import CapacityPolicy, ProtocolNode, SyncNetwork
from repro.net.soa import SoAProtocolClass
from repro.runtime import RunContext

__all__ = ["AsyncReport", "run_with_asynchrony"]


@dataclass
class AsyncReport:
    """Timing of an asynchronous execution under the synchroniser."""

    logical_rounds: int
    max_delay: int
    elapsed_time_units: int
    observed_max_delay: int
    converged: bool = True

    @property
    def dilation(self) -> float:
        """Wall-clock cost per logical round (the footnote's slowdown)."""
        if self.logical_rounds == 0:
            return 0.0
        return self.elapsed_time_units / self.logical_rounds


def run_with_asynchrony(
    nodes: dict[int, ProtocolNode] | SoAProtocolClass,
    capacity: CapacityPolicy,
    rng: np.random.Generator,
    max_delay: int,
    max_rounds: int,
    engine: str = "vectorized",
    require_quiescence: bool = True,
    fault_hook=None,
    workers: int | None = None,
    tracer=None,
    *,
    ctx: RunContext | None = None,
) -> tuple[AsyncReport, SyncNetwork]:
    """Run a protocol under random message delays with a synchroniser.

    Every message *delivered* for round ``i + 1`` receives an i.i.d.
    delay uniform on ``[1, max_delay]``; the synchroniser releases round
    ``i + 1`` once every round-``i`` message has arrived, i.e. after
    ``max_delay`` time units per round.  The barrier boundary is
    *inclusive*: a delay equal to ``max_delay`` (the slowest link
    footnote 2 allows) arrives exactly at the barrier and is delivered
    with it, in both this per-node synchroniser (which holds whole
    rounds, so a maximal delay is absorbed structurally) and the SoA
    delay queue (which holds per-message release times and releases
    ``release <= barrier`` — a delay *beyond* the barrier raises there
    rather than starving the run).  Because nodes act only on
    barrier boundaries, the execution is semantically the synchronous one
    — the function runs the protocol on the standard :class:`SyncNetwork`
    while accounting the asynchronous clock, and reports the dilation.

    ``engine`` selects the delivery engine; batch nodes on the default
    ``"vectorized"`` engine never materialise per-message objects, so
    delayed large-``n`` workloads run at batched speed.  Passing a
    :class:`~repro.net.soa.SoAProtocolClass` as ``nodes`` dispatches to
    the columnar SoA synchroniser (:mod:`repro.scenarios.soa_sync`),
    whose flat delay queue materialises per-message release times without
    any per-node Python work — bit-for-bit the same execution, at SoA
    speed.  ``fault_hook`` installs an oblivious message adversary on the
    network (see :class:`SyncNetwork`).  ``workers`` shards the SoA
    delivery tail (``None`` → ``REPRO_WORKERS``); the per-node tiers
    ignore it, and every worker count yields the identical execution.
    ``tracer`` records a per-round trace (:mod:`repro.obs`) — pure
    observation, so a traced run is bit-for-bit the untraced one.  A
    resolved ``ctx`` (:class:`~repro.runtime.context.RunContext`)
    supplies workers/tracer/fault spec at once; explicit kwargs win.

    Returns the timing report and the (already run) network, whose nodes
    hold the protocol's results.

    Raises
    ------
    RuntimeError
        If ``max_rounds`` elapses before the network quiesces (no idle
        break fired) and ``require_quiescence`` is True.  With
        ``require_quiescence=False`` the truncation is flagged on
        ``AsyncReport.converged`` instead.
    """
    if max_delay < 1:
        raise ValueError("max_delay must be >= 1")
    # Delay sampling must not perturb the delivery stream: drawing from
    # ``rng`` itself would interleave with capacity-truncation draws and
    # diverge the execution from the synchronous one under the same seed.
    delay_rng = rng.spawn(1)[0]
    if isinstance(nodes, SoAProtocolClass):
        # Import kept lazy: scenarios is a higher layer built on this one.
        from repro.scenarios.soa_sync import run_soa_synchroniser

        return run_soa_synchroniser(
            nodes,
            capacity,
            rng,
            delay_rng,
            max_delay,
            max_rounds,
            engine=engine,
            require_quiescence=require_quiescence,
            fault_hook=fault_hook,
            workers=workers,
            tracer=tracer,
            ctx=ctx,
        )
    network = SyncNetwork(
        nodes,
        capacity,
        rng,
        engine=engine,
        fault_hook=fault_hook,
        tracer=tracer,
        ctx=ctx,
    )
    observed = 0
    rounds = 0
    converged = False
    for _ in range(max_rounds):
        network.run_round()
        rounds += 1
        # Sample the delays of this round's delivered messages; the
        # barrier waits out max_delay regardless (the footnote's cost).
        # Drawing per *delivered* message keeps the stream aligned with
        # the SoA synchroniser's release-time column under a shared seed.
        delivered = network.pending_messages()
        if delivered:
            delays = delay_rng.integers(1, max_delay + 1, size=delivered)
            observed = max(observed, int(delays.max(initial=0)))
        if not delivered and all(node.is_idle() for node in network.nodes.values()):
            converged = True
            break
    if not converged and require_quiescence:
        raise RuntimeError(
            f"asynchronous run did not quiesce within {max_rounds} rounds "
            f"({network.pending_messages()} messages still in flight)"
        )
    report = AsyncReport(
        logical_rounds=rounds,
        max_delay=max_delay,
        elapsed_time_units=rounds * max_delay,
        observed_max_delay=observed,
        converged=converged,
    )
    return report, network
