"""Message objects exchanged over the simulated network.

A message models the paper's ``O(log n)``-bit packets: it carries a small
``kind`` tag and a payload that, by convention, holds at most a constant
number of node identifiers plus ``O(1)`` integers.  The simulator does not
enforce payload size (Python objects would make that meaningless); the
protocol implementations keep payloads to the constant-identifier budget
and the tests inspect representative payloads for compliance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Message"]


@dataclass(frozen=True, slots=True)
class Message:
    """One network packet.

    Attributes
    ----------
    sender / receiver:
        Node identifiers.  The simulator only delivers a message if the
        sender legitimately produced it in the current round; knowledge
        semantics (``u`` must know ``id(v)``) are the protocol's
        responsibility, as in the paper.
    kind:
        Small string tag multiplexing protocol phases (e.g. ``"token"``,
        ``"accept"``).
    payload:
        Constant-size content; by convention a tuple of ints.
    """

    sender: int
    receiver: int
    kind: str
    payload: Any = None
