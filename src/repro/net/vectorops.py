"""Vectorized group-truncation primitives shared across the reproduction.

Both delivery engines of :class:`repro.net.network.SyncNetwork` and the
acceptance step of ``CreateExpander`` (§2.1 line c) face the same problem:
given ``m`` items labelled with a group id (sender, receiver, or walk
endpoint), keep a *uniformly random* subset of at most ``cap`` items per
group and drop the rest — the paper's "arbitrary subset" drop semantics
made uniform (§1.1).

The implementation draws **one** ``rng.permutation(m)`` and keeps, within
each group, the ``cap`` items of lowest permutation rank.  Because every
permutation is equally likely, each size-``cap`` subset of a group is kept
with equal probability (the chi-square tests in
``tests/net/test_capacity_semantics.py`` pin this down).  Centralising the
draw here is what makes the legacy and vectorized network engines agree
*exactly*: both call this function with identical group arrays in the same
canonical order, so the same messages survive under the same seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["segmented_keep_indices", "needs_truncation", "group_argsort"]


def group_argsort(values: np.ndarray, bound: int) -> np.ndarray:
    """Stable argsort of small non-negative integers (group labels).

    Exactly ``np.argsort(values, kind="stable")`` for ``values`` in
    ``[0, bound)``, but ~4× faster on large rounds: when the unique
    combined key ``value·m + index`` fits in int64 it is introsorted
    (numpy's stable sort for int64 is a mergesort, which the delivery
    tail's per-round receiver grouping spends most of its time in).
    Falls back to the stable sort when the key could overflow.
    """
    m = values.shape[0]
    if m and bound <= (2**62) // m:
        return np.argsort(values * np.int64(m) + np.arange(m, dtype=np.int64))
    return np.argsort(values, kind="stable")


def segmented_keep_indices(
    groups: np.ndarray, cap: int, rng: np.random.Generator
) -> np.ndarray:
    """Indices (sorted ascending) of items kept under a per-group cap.

    Parameters
    ----------
    groups:
        ``(m,)`` integer array — the group label of each item, in the
        caller's canonical item order.
    cap:
        Maximum number of items to keep per group (``>= 0``).
    rng:
        Randomness source; consumes exactly one ``permutation(m)`` draw.

    Returns
    -------
    np.ndarray
        Sorted item indices, so selecting them preserves the canonical
        order of the survivors.
    """
    groups = np.asarray(groups)
    m = groups.shape[0]
    if m == 0:
        return np.empty(0, dtype=np.int64)
    perm = rng.permutation(m)
    shuffled = groups[perm]
    order = np.argsort(shuffled, kind="stable")
    sorted_groups = shuffled[order]
    group_start = np.searchsorted(sorted_groups, sorted_groups, side="left")
    rank_in_group = np.arange(m) - group_start
    keep = rank_in_group < cap
    return np.sort(perm[order[keep]])


def needs_truncation(counts: np.ndarray, cap: int | None) -> bool:
    """Whether any group exceeds ``cap`` (``None`` disables the bound).

    The shared RNG discipline: an engine consumes randomness **only** when
    this predicate is true, so capacity settings that never bind leave the
    generator untouched (asserted by the capacity-semantics tests).
    """
    if cap is None or counts.size == 0:
        return False
    return int(counts.max()) > cap
