"""Experiment harness: table formatting and scaling-law fits.

Every benchmark in ``benchmarks/`` reproduces one paper claim (DESIGN.md
§3) and prints a table of the measured rows.  Since the paper's claims are
asymptotic (``O(log n)`` rounds, ``Ω(√ℓ)`` growth, …), the harness
provides the fits the claims are judged by:

- :func:`fit_vs_logn` — least squares of ``y ≈ a + b·log₂ n``; a claim of
  ``O(log n)`` holds when the fit is good (high ``R²``) and, crucially,
  the *ratio* ``y / log₂ n`` stays bounded across the sweep;
- :func:`loglog_slope` — power-law exponent, used to check super-/sub-
  logarithmic growth (e.g. pointer jumping's ``Θ(n)`` message blow-up).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Table",
    "fit_vs_logn",
    "loglog_slope",
    "geometric_sizes",
    "ENGINE_CHOICES",
    "TIER_CHOICES",
    "ROOTING_CHOICES",
    "EXPANDER_CHOICES",
    "HYBRID_CHOICES",
    "select_tier",
    "tier_filter",
    "select_engine",
    "select_rooting",
    "select_workers",
    "add_engine_argument",
    "add_workers_argument",
]

#: Choice vocabularies, re-exported from :mod:`repro.runtime` — the
#: single source of truth for every execution-stack dimension (contract
#: C8).  ``ENGINE_CHOICES`` are the delivery engines of
#: :class:`repro.net.network.SyncNetwork`; ``TIER_CHOICES`` adds
#: ``"soa"`` — structure-of-arrays protocol classes on the vectorized
#: delivery path (one Python call advances all nodes).
from repro.runtime import ENGINES as ENGINE_CHOICES  # noqa: E402
from repro.runtime import TIER_CHOICES  # noqa: E402
from repro.runtime import EXPANDER_MODES as EXPANDER_CHOICES  # noqa: E402
from repro.runtime import HYBRID_TIERS as HYBRID_CHOICES  # noqa: E402
from repro.runtime import ROOTING_MODES as ROOTING_CHOICES  # noqa: E402

#: The benchmark-selectable dimensions (env var, fallback default, choice
#: tuple per kind) — kept importable for tests and bench scripts, backed
#: by :data:`repro.runtime.context.TIER_KINDS`.
from repro.runtime import TIER_KINDS as _TIER_KINDS  # noqa: E402

from repro.runtime import choice_specified as _choice_specified  # noqa: E402
from repro.runtime import select_choice as _select_choice  # noqa: E402


def select_tier(
    kind: str = "engine",
    cli_value: str | None = None,
    default: str | None = None,
    choices: tuple[str, ...] | None = None,
) -> str:
    """Resolve one benchmark-selectable dimension of the execution stack.

    ``kind`` is ``"engine"`` (delivery engine / execution tier,
    ``REPRO_ENGINE``), ``"rooting"`` (pipeline rooting mode,
    ``REPRO_ROOTING``), ``"expander"`` (pipeline expander mode,
    ``REPRO_EXPANDER``), or ``"hybrid"`` (§4 hybrid pipeline tier,
    ``REPRO_HYBRID``).  Precedence: explicit CLI value > the kind's
    environment variable > ``default`` (the kind's conventional default
    when omitted).  Raises on unknown kinds and names so typos fail
    loudly instead of silently benchmarking the wrong stack; pass
    ``choices`` to restrict (e.g. ``ENGINE_CHOICES`` for engine-only
    benches).

    Delegates to :func:`repro.runtime.context.select_choice` — the same
    resolution :meth:`repro.runtime.context.RunContext.resolve` applies,
    so a bench flag and a context field can never disagree.
    """
    return _select_choice(kind, cli_value, default=default, choices=choices)


def tier_filter(
    kind: str = "engine",
    cli_value: str | None = None,
    choices: tuple[str, ...] | None = None,
) -> str | None:
    """Like :func:`select_tier`, but ``None`` when the user chose nothing.

    The standard bench pattern "time every stack unless the user
    restricted the run (CLI flag or env var)" — previously copy-pasted
    into each ``main()``.
    """
    if _choice_specified(kind, cli_value):
        return select_tier(kind, cli_value, choices=choices)
    return None


def select_engine(
    cli_value: str | None = None,
    default: str = "vectorized",
    choices: tuple[str, ...] = ENGINE_CHOICES,
) -> str:
    """Back-compat wrapper: ``select_tier("engine", ...)``."""
    return select_tier("engine", cli_value, default=default, choices=choices)


def select_rooting(cli_value: str | None = None, default: str = "reference") -> str:
    """Back-compat wrapper: ``select_tier("rooting", ...)``."""
    return select_tier("rooting", cli_value, default=default)


def add_engine_argument(parser, choices: tuple[str, ...] = ENGINE_CHOICES) -> None:
    """Attach the standard ``--engine`` flag to an argparse parser."""
    parser.add_argument(
        "--engine",
        choices=choices,
        default=None,
        help="network delivery engine (default: REPRO_ENGINE env var or 'vectorized')",
    )


def select_workers(cli_value: int | None = None) -> int:
    """Resolve the sharded-delivery worker count for the SoA tier.

    Precedence mirrors :func:`select_tier`: explicit CLI value >
    ``REPRO_WORKERS`` > 1.  A single source of truth with the network's
    own resolution (:func:`repro.net.shard.resolve_workers`), so a bench
    and the networks it constructs can never disagree on the count.
    """
    from repro.net.shard import resolve_workers

    return resolve_workers(cli_value)


def add_workers_argument(parser) -> None:
    """Attach the standard ``--workers`` flag to an argparse parser."""
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "shard the SoA delivery tail across this many workers "
            "(default: REPRO_WORKERS env var or 1; results are "
            "bit-for-bit identical at every count)"
        ),
    )


@dataclass
class Table:
    """A paper-style results table with aligned plain-text rendering."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add(self, *values) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [
            max(len(col), *(len(row[i]) for row in self.rows)) if self.rows else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        header = " | ".join(col.ljust(w) for col, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(val.ljust(w) for val, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def fit_vs_logn(ns, ys) -> tuple[float, float, float]:
    """Least-squares fit ``y ≈ a + b · log₂(n)``.

    Returns ``(a, b, r_squared)``.  ``b`` is the rounds-per-doubling slope
    that the ``O(log n)`` theorems predict is constant.
    """
    ns = np.asarray(ns, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if ns.shape[0] < 2:
        raise ValueError("need at least two points to fit")
    xs = np.log2(ns)
    coeffs = np.polyfit(xs, ys, deg=1)
    b, a = float(coeffs[0]), float(coeffs[1])
    predicted = a + b * xs
    ss_res = float(((ys - predicted) ** 2).sum())
    ss_tot = float(((ys - ys.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return a, b, r2


def loglog_slope(xs, ys) -> float:
    """Power-law exponent: slope of ``log y`` against ``log x``."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if (xs <= 0).any() or (ys <= 0).any():
        raise ValueError("log-log fit requires positive data")
    coeffs = np.polyfit(np.log(xs), np.log(ys), deg=1)
    return float(coeffs[0])


def geometric_sizes(lo: int, hi: int, factor: float = 2.0) -> list[int]:
    """Geometric sweep ``lo, lo·f, … ≤ hi`` (deduplicated, ints)."""
    if lo < 1 or hi < lo or factor <= 1.0:
        raise ValueError("need 1 <= lo <= hi and factor > 1")
    sizes = []
    x = float(lo)
    while x <= hi + 1e-9:
        v = int(round(x))
        if not sizes or v != sizes[-1]:
            sizes.append(v)
        x *= factor
    return sizes
