"""Experiment harness: table formatting and scaling-law fits.

Every benchmark in ``benchmarks/`` reproduces one paper claim (DESIGN.md
§3) and prints a table of the measured rows.  Since the paper's claims are
asymptotic (``O(log n)`` rounds, ``Ω(√ℓ)`` growth, …), the harness
provides the fits the claims are judged by:

- :func:`fit_vs_logn` — least squares of ``y ≈ a + b·log₂ n``; a claim of
  ``O(log n)`` holds when the fit is good (high ``R²``) and, crucially,
  the *ratio* ``y / log₂ n`` stays bounded across the sweep;
- :func:`loglog_slope` — power-law exponent, used to check super-/sub-
  logarithmic growth (e.g. pointer jumping's ``Θ(n)`` message blow-up).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Table",
    "fit_vs_logn",
    "loglog_slope",
    "geometric_sizes",
    "ENGINE_CHOICES",
    "TIER_CHOICES",
    "ROOTING_CHOICES",
    "select_engine",
    "select_rooting",
    "add_engine_argument",
]

#: Delivery engines of :class:`repro.net.network.SyncNetwork` that the
#: benchmarks can select between (single source of truth: the network).
from repro.net.network import ENGINES as ENGINE_CHOICES  # noqa: E402

#: Execution tiers for stack-aware benchmarks: the two delivery engines
#: plus ``"soa"`` — structure-of-arrays protocol classes on the
#: vectorized delivery path (one Python call advances all nodes).
TIER_CHOICES = ENGINE_CHOICES + ("soa",)

#: Rooting modes of :func:`repro.core.pipeline.build_well_formed_tree`
#: that pipeline-driving benchmarks can select between.
from repro.core.pipeline import ROOTING_MODES as ROOTING_CHOICES  # noqa: E402


def select_engine(
    cli_value: str | None = None,
    default: str = "vectorized",
    choices: tuple[str, ...] = ENGINE_CHOICES,
) -> str:
    """Resolve the network delivery engine (or execution tier) for a run.

    Precedence: explicit CLI value > ``REPRO_ENGINE`` environment variable
    > ``default``.  Raises on unknown names so typos fail loudly instead
    of silently benchmarking the wrong engine.  Benchmarks whose stacks
    include the SoA tier pass ``choices=TIER_CHOICES``.
    """
    value = cli_value or os.environ.get("REPRO_ENGINE") or default
    if value not in choices:
        raise ValueError(f"engine must be one of {choices}, got {value!r}")
    return value


def select_rooting(cli_value: str | None = None, default: str = "reference") -> str:
    """Resolve the pipeline rooting mode for a benchmark run.

    Precedence: explicit CLI value > ``REPRO_ROOTING`` environment
    variable > ``default`` — the rooting-mode analogue of
    :func:`select_engine`, used by the monitoring/churn benchmarks to
    drive their overlay constructions on any execution tier.
    """
    value = cli_value or os.environ.get("REPRO_ROOTING") or default
    if value not in ROOTING_CHOICES:
        raise ValueError(f"rooting must be one of {ROOTING_CHOICES}, got {value!r}")
    return value


def add_engine_argument(parser, choices: tuple[str, ...] = ENGINE_CHOICES) -> None:
    """Attach the standard ``--engine`` flag to an argparse parser."""
    parser.add_argument(
        "--engine",
        choices=choices,
        default=None,
        help="network delivery engine (default: REPRO_ENGINE env var or 'vectorized')",
    )


@dataclass
class Table:
    """A paper-style results table with aligned plain-text rendering."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add(self, *values) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [
            max(len(col), *(len(row[i]) for row in self.rows)) if self.rows else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        header = " | ".join(col.ljust(w) for col, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(val.ljust(w) for val, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def fit_vs_logn(ns, ys) -> tuple[float, float, float]:
    """Least-squares fit ``y ≈ a + b · log₂(n)``.

    Returns ``(a, b, r_squared)``.  ``b`` is the rounds-per-doubling slope
    that the ``O(log n)`` theorems predict is constant.
    """
    ns = np.asarray(ns, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if ns.shape[0] < 2:
        raise ValueError("need at least two points to fit")
    xs = np.log2(ns)
    coeffs = np.polyfit(xs, ys, deg=1)
    b, a = float(coeffs[0]), float(coeffs[1])
    predicted = a + b * xs
    ss_res = float(((ys - predicted) ** 2).sum())
    ss_tot = float(((ys - ys.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return a, b, r2


def loglog_slope(xs, ys) -> float:
    """Power-law exponent: slope of ``log y`` against ``log x``."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if (xs <= 0).any() or (ys <= 0).any():
        raise ValueError("log-log fit requires positive data")
    coeffs = np.polyfit(np.log(xs), np.log(ys), deg=1)
    return float(coeffs[0])


def geometric_sizes(lo: int, hi: int, factor: float = 2.0) -> list[int]:
    """Geometric sweep ``lo, lo·f, … ≤ hi`` (deduplicated, ints)."""
    if lo < 1 or hi < lo or factor <= 1.0:
        raise ValueError("need 1 <= lo <= hi and factor > 1")
    sizes = []
    x = float(lo)
    while x <= hi + 1e-9:
        v = int(round(x))
        if not sizes or v != sizes[-1]:
            sizes.append(v)
        x *= factor
    return sizes
