"""Shared experiment harness for the benchmark suite (DESIGN.md §3)."""

from repro.experiments.harness import Table, fit_vs_logn, geometric_sizes, loglog_slope

__all__ = ["Table", "fit_vs_logn", "geometric_sizes", "loglog_slope"]
