"""Global minimum edge cut via Stoer–Wagner (from scratch).

Benign graphs (Definition 2.1) must keep a ``Λ``-sized minimum cut through
every evolution — this is the property that lets Karger's cut-counting bound
(Lemma 3.8) turn per-set Chernoff bounds into a w.h.p. statement over all
``2^n`` subsets.  The experiment suite verifies the invariant directly on
small and medium graphs with the deterministic Stoer–Wagner algorithm
implemented here (weights encode edge multiplicities of the port graph).

Reference: M. Stoer and F. Wagner, *A simple min-cut algorithm*, J. ACM 44
(1997).  ``O(n³)`` with the simple array-based maximum-adjacency search,
fine for the ``n ≤ ~700`` graphs we check exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stoer_wagner_min_cut", "min_cut_of_portgraph"]


def stoer_wagner_min_cut(weights: np.ndarray) -> tuple[float, list[int]]:
    """Minimum weighted cut of an undirected graph.

    Parameters
    ----------
    weights:
        Symmetric ``(n, n)`` non-negative weight matrix; ``weights[u, v]``
        is the total capacity between ``u`` and ``v`` (parallel edges are
        summed; the diagonal is ignored).

    Returns
    -------
    (cut_value, partition):
        The minimum cut weight and one side of an optimal partition (as a
        sorted list of original node ids).

    Raises
    ------
    ValueError
        If the matrix is not square/symmetric or has fewer than 2 nodes.
    """
    weights = np.array(weights, dtype=np.float64, copy=True)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError("weights must be a square matrix")
    n = weights.shape[0]
    if n < 2:
        raise ValueError("min cut needs at least 2 nodes")
    if not np.allclose(weights, weights.T):
        raise ValueError("weights must be symmetric")
    np.fill_diagonal(weights, 0.0)

    # merged[v] = list of original nodes contracted into supernode v.
    merged: list[list[int]] = [[v] for v in range(n)]
    active = list(range(n))
    best_value = float("inf")
    best_side: list[int] = []

    while len(active) > 1:
        # Maximum adjacency (maximum weight) search.
        start = active[0]
        in_a = {start}
        w = {v: weights[start, v] for v in active if v != start}
        order = [start]
        while len(in_a) < len(active):
            nxt = max(w, key=lambda v: (w[v], -v))
            order.append(nxt)
            in_a.add(nxt)
            cut_of_the_phase = w.pop(nxt)
            for v in w:
                w[v] += weights[nxt, v]
        s, t = order[-2], order[-1]
        if cut_of_the_phase < best_value:
            best_value = float(cut_of_the_phase)
            best_side = sorted(merged[t])
        # Contract t into s.
        weights[s, :] += weights[t, :]
        weights[:, s] += weights[:, t]
        weights[s, s] = 0.0
        weights[t, :] = 0.0
        weights[:, t] = 0.0
        merged[s] = merged[s] + merged[t]
        active.remove(t)
    return best_value, best_side


def min_cut_of_portgraph(port_graph) -> int:
    """Minimum cut of a :class:`PortGraph`, counting parallel edges.

    Self-loops never cross a cut and are ignored.  Returns the integer cut
    size (all multiplicities are integral).

    Raises
    ------
    ValueError
        If the port graph is disconnected (infinite/zero cut ambiguity) —
        callers check connectivity first.
    """
    n = port_graph.n
    weights = np.zeros((n, n), dtype=np.float64)
    rows = np.repeat(np.arange(n), port_graph.delta)
    cols = port_graph.ports.ravel()
    mask = rows != cols
    np.add.at(weights, (rows[mask], cols[mask]), 0.5)
    np.add.at(weights, (cols[mask], rows[mask]), 0.5)
    value, _side = stoer_wagner_min_cut(weights)
    if value <= 0:
        raise ValueError("port graph is disconnected; min cut is 0")
    return int(round(value))
