"""Port-based ``Δ``-regular lazy multigraphs ("benign graphs").

Definition 2.1 of the paper requires every evolution graph ``G_i`` to be

1. ``Δ``-regular — every node has exactly ``Δ`` incident edge endpoints,
2. lazy — at least ``Δ/2`` of them are self-loops, and
3. ``Λ``-connected — every cut has at least ``Λ`` edges.

The natural representation is a *port array*: an ``(n, Δ)`` integer matrix
``ports`` where ``ports[v, k]`` is the node at the other end of ``v``'s
``k``-th port (``v`` itself for a self-loop).  A random-walk step from ``v``
picks a port uniformly at random, which is exactly the paper's walk model
(self-loops contribute a single port, so a node with ``Δ/2`` self-loops
stays put with probability ``1/2``).

The representation is fully vectorised: the walk engine
(:mod:`repro.core.walks`) advances hundreds of thousands of tokens per step
with two numpy gathers, which is what makes large-``n`` experiments feasible
(the calibration notes flag simulation speed as the reproduction risk).

Alongside the partner node, each port optionally carries an *edge id*
(``port_edge_ids``), used by the spanning-tree algorithm of Theorem 1.3 to
"unwind" random walks: every non-loop edge of every evolution graph is
registered with provenance so a walk can be expanded back to base-graph
edges.  Self-loop ports carry edge id ``-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PortGraph", "SELF_LOOP"]

#: Edge id stored on self-loop ports.
SELF_LOOP = -1


@dataclass
class PortGraph:
    """A ``Δ``-regular multigraph with self-loops, stored as a port array.

    Parameters
    ----------
    ports:
        ``(n, Δ)`` integer array; ``ports[v, k]`` is the partner of port
        ``k`` at node ``v``.  A value equal to ``v`` denotes a self-loop.
    port_edge_ids:
        Optional ``(n, Δ)`` integer array giving the id of the undirected
        edge each port belongs to (``SELF_LOOP`` for self-loops).  Both
        endpoints of an edge carry the same id, which is what lets walk
        traces be resolved back to edges.
    """

    ports: np.ndarray
    port_edge_ids: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        self.ports = np.asarray(self.ports, dtype=np.int64)
        if self.ports.ndim != 2:
            raise ValueError("ports must be a 2-D (n, delta) array")
        if self.port_edge_ids is not None:
            self.port_edge_ids = np.asarray(self.port_edge_ids, dtype=np.int64)
            if self.port_edge_ids.shape != self.ports.shape:
                raise ValueError("port_edge_ids must match ports in shape")

    # ------------------------------------------------------------------
    # Basic shape accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.ports.shape[0]

    @property
    def delta(self) -> int:
        """Uniform degree ``Δ`` (ports per node)."""
        return self.ports.shape[1]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_multiset(
        cls,
        n: int,
        delta: int,
        endpoints_a: np.ndarray,
        endpoints_b: np.ndarray,
        edge_ids: np.ndarray | None = None,
    ) -> "PortGraph":
        """Build a port graph from an undirected edge multiset, padding every
        node with self-loops up to degree ``delta``.

        Each edge ``{a, b}`` consumes one port at ``a`` and one at ``b``
        (two ports at ``a`` if ``a == b``, i.e. an explicitly created
        loop-edge, as opposed to padding self-loops which consume one).

        Raises
        ------
        ValueError
            If some node would exceed ``delta`` ports.
        """
        endpoints_a = np.asarray(endpoints_a, dtype=np.int64)
        endpoints_b = np.asarray(endpoints_b, dtype=np.int64)
        if endpoints_a.shape != endpoints_b.shape:
            raise ValueError("endpoint arrays must have equal length")
        m = endpoints_a.shape[0]
        if edge_ids is None:
            edge_ids = np.arange(m, dtype=np.int64)
        else:
            edge_ids = np.asarray(edge_ids, dtype=np.int64)

        # Each edge produces two (node, partner, edge_id) port stubs.
        stub_nodes = np.concatenate([endpoints_a, endpoints_b])
        stub_partners = np.concatenate([endpoints_b, endpoints_a])
        stub_ids = np.concatenate([edge_ids, edge_ids])

        counts = np.bincount(stub_nodes, minlength=n)
        if counts.max(initial=0) > delta:
            worst = int(np.argmax(counts))
            raise ValueError(
                f"node {worst} has {int(counts[worst])} edge endpoints, "
                f"exceeding delta={delta}"
            )

        node_ids = np.arange(n, dtype=np.int64)
        ports = np.repeat(node_ids[:, None], delta, axis=1)
        ids = np.full((n, delta), SELF_LOOP, dtype=np.int64)

        # Stable sort stubs by node, then compute each stub's slot index
        # within its node group so scatter assignment is vectorised.
        order = np.argsort(stub_nodes, kind="stable")
        sorted_nodes = stub_nodes[order]
        group_starts = np.searchsorted(sorted_nodes, sorted_nodes, side="left")
        slots = np.arange(sorted_nodes.shape[0]) - group_starts
        ports[sorted_nodes, slots] = stub_partners[order]
        ids[sorted_nodes, slots] = stub_ids[order]
        return cls(ports=ports, port_edge_ids=ids)

    @classmethod
    def ring_with_chords(
        cls, n: int, delta: int = 16, chords: int = 2, seed: int | None = 0
    ) -> "PortGraph":
        """Connected low-diameter multigraph standing in for evolution
        output: a ring (connectivity) plus ``chords`` random permutation
        chord sets (expansion), so every node has degree
        ``≤ 2 + 2·chords`` regardless of ``n``.

        The shared workload family of the S2/S3 rooting benchmarks and
        the SoA differential/property suites — their cross-checks assume
        they all sample the *same* family, so the construction lives
        here once.
        """
        rng = np.random.default_rng(seed)
        idx = np.arange(n, dtype=np.int64)
        ends_a = [idx]
        ends_b = [np.roll(idx, -1)]
        for _ in range(chords):
            ends_a.append(idx)
            ends_b.append(rng.permutation(n).astype(np.int64))
        return cls.from_edge_multiset(
            n=n,
            delta=delta,
            endpoints_a=np.concatenate(ends_a),
            endpoints_b=np.concatenate(ends_b),
        )

    @classmethod
    def complete_lazy(cls, n: int, delta: int) -> "PortGraph":
        """A lazy circulant reference graph: ``Δ/2`` ports per node point
        at symmetric shifts ``±1, ±2, …`` and the rest are self-loops.
        Useful as an "already good" starting point in tests.

        Shifts come in ``(s, n−s)`` pairs so the port multiset is a valid
        undirected multigraph; a final unpaired port (odd ``Δ/2``) stays a
        self-loop to preserve symmetry.
        """
        half = delta // 2
        ports = np.repeat(np.arange(n, dtype=np.int64)[:, None], delta, axis=1)
        if n > 1:
            for k in range(half - (half % 2)):
                s = (k // 2) % (n - 1) + 1
                shift = s if k % 2 == 0 else n - s
                ports[:, k] = (np.arange(n) + shift) % n
        return cls(ports=ports)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def self_loop_counts(self) -> np.ndarray:
        """Number of self-loop ports per node."""
        return (self.ports == np.arange(self.n)[:, None]).sum(axis=1)

    def real_degree(self) -> np.ndarray:
        """Number of non-self-loop ports per node."""
        return self.delta - self.self_loop_counts()

    def is_lazy(self, min_fraction: float = 0.5) -> bool:
        """True if every node has at least ``min_fraction · Δ`` self-loops
        (Definition 2.1, property 2)."""
        return bool(self.self_loop_counts().min(initial=self.delta) >= min_fraction * self.delta)

    def is_symmetric(self) -> bool:
        """True if the port multiset is a valid undirected multigraph: the
        number of ports at ``u`` pointing to ``v`` equals the number at
        ``v`` pointing to ``u`` for every pair ``u ≠ v``."""
        u = np.repeat(np.arange(self.n), self.delta)
        v = self.ports.ravel()
        mask = u != v
        forward = {}
        for a, b in zip(u[mask].tolist(), v[mask].tolist()):
            forward[(a, b)] = forward.get((a, b), 0) + 1
        for (a, b), cnt in forward.items():
            if forward.get((b, a), 0) != cnt:
                return False
        return True

    def neighbor_sets(self) -> list[set[int]]:
        """Simple-graph adjacency (distinct non-self partners per node)."""
        out: list[set[int]] = []
        for v in range(self.n):
            row = self.ports[v]
            out.append({int(u) for u in row if u != v})
        return out

    def edge_multiset(self) -> list[tuple[int, int]]:
        """All undirected non-loop edges with multiplicity.

        Each edge ``{u, v}`` appears once per parallel copy (derived from
        the port array; every copy occupies one port at each endpoint).
        """
        edges: list[tuple[int, int]] = []
        for v in range(self.n):
            for u in self.ports[v]:
                u = int(u)
                if u > v:
                    edges.append((v, u))
        return edges

    def unique_edges(self) -> set[tuple[int, int]]:
        """Distinct undirected non-loop edges (no multiplicity)."""
        return set(self.edge_multiset())

    def num_unique_edges(self) -> int:
        """``len(unique_edges())`` without materialising Python tuples.

        One vectorized pass over the port matrix — the per-evolution
        ``distinct_edges`` statistic at ``n = 10⁵`` costs milliseconds
        instead of a 10⁶-iteration Python loop.
        """
        rows = np.repeat(np.arange(self.n, dtype=np.int64), self.delta)
        cols = self.ports.reshape(-1)
        mask = cols > rows
        if not mask.any():
            return 0
        keys = np.sort(rows[mask] * np.int64(self.n) + cols[mask])
        return int(1 + np.count_nonzero(keys[1:] != keys[:-1]))

    # ------------------------------------------------------------------
    # Matrices
    # ------------------------------------------------------------------
    def walk_matrix(self) -> np.ndarray:
        """Dense random-walk transition matrix ``P`` with
        ``P[v, u] = (#ports of v pointing at u) / Δ``.

        For a symmetric port multiset ``P`` is a symmetric doubly
        stochastic matrix, so its eigenvalues are real — the spectral-gap
        measurements in :mod:`repro.graphs.spectral` rely on this.  Dense;
        intended for ``n`` up to a few thousand.
        """
        mat = np.zeros((self.n, self.n), dtype=np.float64)
        rows = np.repeat(np.arange(self.n), self.delta)
        np.add.at(mat, (rows, self.ports.ravel()), 1.0)
        mat /= self.delta
        return mat

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def copy(self) -> "PortGraph":
        ids = None if self.port_edge_ids is None else self.port_edge_ids.copy()
        return PortGraph(ports=self.ports.copy(), port_edge_ids=ids)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PortGraph(n={self.n}, delta={self.delta})"
